"""Key-level enrichment-memo benchmark (key skew x update rate).

Sweeps the probe-key distribution (high skew vs. all-unique) and the
reference-update rate over a hash-join enrichment feed with the
cross-batch enrichment memo off and on, verifying:

* >= 2x simulated computing-cost win at high skew / update rate 0;
* >= 1.3x wall-clock win at high skew / rate 0 (full mode only);
* *exact* 1.00x parity (and zero hits) when every probe key is unique;
* byte-identical stored outputs memo-on vs. memo-off at every sweep
  point, including a 4-worker computing pool and a 4-partition intake.

Output goes to ``BENCH_memo.json`` at the repo root (simulated numbers;
``benchmarks/results/`` holds the paper-figure tables only).

Usage::

    python benchmarks/bench_memo.py            # full run
    python benchmarks/bench_memo.py --smoke    # quick CI run

Exits non-zero if any invariant fails.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small fast run for CI (fewer records, no wall-clock gate)",
    )
    parser.add_argument("--ref-records", type=int, default=None)
    parser.add_argument("--tweets", type=int, default=None)
    parser.add_argument("--batch-size", type=int, default=None)
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_memo.json",
    )
    args = parser.parse_args(argv)

    ref_records = args.ref_records or (2000 if args.smoke else 20000)
    tweets = args.tweets or (600 if args.smoke else 3000)
    batch_size = args.batch_size or (60 if args.smoke else 100)
    # As in the state-cache bench, the smoke run's smaller reference
    # dataset charges its work at a higher scale so the per-batch build
    # and probe work stay the dominant cost the memo removes.
    work_scale = 100.0 if args.smoke else 30.0

    from repro.bench.memo import run_memo_sweep

    result = run_memo_sweep(
        ref_records=ref_records,
        tweets=tweets,
        batch_size=batch_size,
        work_scale=work_scale,
        # Wall clock is too noisy to gate on the smoke run's tiny volumes
        # (and CI runners are shared); the full run enforces the floor.
        check_wallclock=not args.smoke,
    )
    result["mode"] = "smoke" if args.smoke else "full"
    args.output.write_text(json.dumps(result, indent=2) + "\n")

    print(f"enrichment-memo benchmark -> {args.output}")
    for profile, block in result["profiles"].items():
        for rate, cell in block["rates"].items():
            print(
                f"  {profile:>10} rate {rate:>5}: "
                f"win {cell['computing_seconds_win']:.2f}x  "
                f"hits {cell['memo_on']['memo_hits']}  "
                f"misses {cell['memo_on']['memo_misses']}  "
                f"hashes_equal={cell['output_hashes_equal']}"
            )
    for shape, cell in result["shapes"].items():
        print(
            f"  {shape:>20}: win {cell['computing_seconds_win']:.2f}x  "
            f"hashes_equal={cell['output_hashes_equal']}"
        )
    if "wallclock_high_skew_rate0" in result:
        wc = result["wallclock_high_skew_rate0"]
        print(
            f"  wall clock high-skew rate 0: {wc['ratio']:.2f}x "
            f"(off {wc['memo_off_best_seconds']:.3f}s, "
            f"on {wc['memo_on_best_seconds']:.3f}s)"
        )
    for name, passed in result["checks"].items():
        print(f"  [{'PASS' if passed else 'FAIL'}] {name}")
    if not result["ok"]:
        print("enrichment-memo benchmark FAILED", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
