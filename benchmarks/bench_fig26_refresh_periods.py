"""Figure 26: refresh periods (computing-job execution time per batch).

Paper values (seconds/batch, Dynamic SQL++ on 6 nodes, 1X/4X/16X):
Safety Rating 1.02/0.52/0.66, Religious Population 1.20/0.65/0.74,
Largest Religions 1.29/0.65/0.82, Fuzzy Suspects 21.97/1.71/5.72,
Nearby Monuments 22.65/1.81/6.36.

The shape that must hold: the hash-join cases refresh in O(100ms)-scale
periods dominated by reference-state rebuild, while Fuzzy Suspects and
Nearby Monuments take an order of magnitude longer per 1X-equivalent
batch because per-record computation dominates; larger batches raise the
period (more records per job).
"""

from repro.bench import BATCH_SIZES, SIMPLE_CASES, USE_CASES, env_tweets, format_table

NODES = 6
TWEETS = env_tweets(7000)

PAPER_1X = {
    "safety_rating": 1.02,
    "religious_population": 1.20,
    "largest_religions": 1.29,
    "fuzzy_suspects": 21.97,
    "nearby_monuments": 22.65,
}


def run_sweep(harness):
    batches = BATCH_SIZES
    rows = []
    periods = {}
    for case in SIMPLE_CASES:
        row = [USE_CASES[case].title]
        for label in ("1X", "4X", "16X"):
            report = harness.run_enrichment(
                case, TWEETS, NODES, batch_size=batches[label], language="sqlpp"
            )
            row.append(report.refresh_period * 1000.0)
            periods[(case, label)] = report.refresh_period
        row.append(PAPER_1X[case])
        rows.append(row)
    return rows, periods


def test_fig26_refresh_periods(harness, benchmark, emit):
    result = {}

    def sweep():
        result["rows"], result["periods"] = run_sweep(harness)

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows, periods = result["rows"], result["periods"]
    emit(
        "fig26_refresh_periods",
        format_table(
            f"Figure 26 — refresh period (ms/batch), Dynamic SQL++, {NODES} nodes",
            ["use case", "1X (ms)", "4X (ms)", "16X (ms)", "paper 1X (s)"],
            rows,
        ),
    )

    # periods never shrink with batch size (state-rebuild-dominated cases
    # stay roughly flat; per-record-dominated cases grow linearly)
    for case in SIMPLE_CASES:
        assert periods[(case, "16X")] >= periods[(case, "1X")] * 0.95, case
    for heavy in ("fuzzy_suspects", "nearby_monuments"):
        assert periods[(heavy, "16X")] > 2 * periods[(heavy, "1X")], heavy
    # the computation-heavy cases refresh much slower than the hash cases
    # (paper: ~20x at 1X)
    for heavy in ("fuzzy_suspects", "nearby_monuments"):
        for cheap in ("safety_rating", "religious_population", "largest_religions"):
            assert periods[(heavy, "16X")] > 2 * periods[(cheap, "16X")], (
                heavy, cheap,
            )
