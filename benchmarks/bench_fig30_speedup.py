"""Figure 30: 24-node vs 6-node speed-up for all eight UDFs, by batch size.

Paper setup: 100k tweets, speed-up = throughput(24 nodes)/throughput(6
nodes), computed per batch size (1X/4X/16X); ideal is 4x.  Expected
shapes:

* the simple hash-join cases (Safety Rating, Largest Religions, Religious
  Population) speed up poorly — their refresh periods are already tiny,
  so added nodes mostly add per-job overhead;
* Nearby Monuments barely speeds up — the index probe broadcast cost is
  per-record, not per-node;
* the computation-heavy cases (Fuzzy Suspects, Suspicious Names, Tweet
  Context, Worrisome Tweets) speed up well;
* larger batches speed up better (execution overhead growth is smaller
  relative to per-batch work).
"""

from repro.bench import BATCH_SIZES, USE_CASES, env_tweets, format_table

CASES = [
    "safety_rating",
    "largest_religions",
    "religious_population",
    "fuzzy_suspects",
    "nearby_monuments",
    "suspicious_names",
    "tweet_context",
    "worrisome_tweets",
]
TWEETS = env_tweets(7000)


def run_sweep(harness):
    rows = []
    speedups = {}
    for case in CASES:
        row = [USE_CASES[case].title]
        for label in ("1X", "4X", "16X"):
            small = harness.run_enrichment(
                case, TWEETS, 6, batch_size=BATCH_SIZES[label], language="sqlpp"
            ).throughput
            large = harness.run_enrichment(
                case, TWEETS, 24, batch_size=BATCH_SIZES[label], language="sqlpp"
            ).throughput
            speedup = large / small if small else 0.0
            row.append(speedup)
            speedups[(case, label)] = speedup
        rows.append(row)
    return rows, speedups


def test_fig30_speedup(harness, benchmark, emit):
    result = {}

    def sweep():
        result["rows"], result["speedups"] = run_sweep(harness)

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows, speedups = result["rows"], result["speedups"]
    emit(
        "fig30_speedup",
        format_table(
            f"Figure 30 — speed-up of 24 vs 6 nodes ({TWEETS} tweets; "
            "ideal = 4.0)",
            ["use case", "1X", "4X", "16X"],
            rows,
        ),
    )

    simple = ["safety_rating", "largest_religions", "religious_population"]
    computation_heavy = ["fuzzy_suspects", "tweet_context"]
    # the cheap hash-join cases barely speed up: their refresh periods are
    # already small, so added nodes mostly add per-job overhead (§7.4)
    for case in simple:
        assert speedups[(case, "16X")] < 2.0, case
    # the broadcast-probing monuments case also speeds up poorly
    assert speedups[("nearby_monuments", "16X")] < 2.0
    # computation-dominated cases scale well
    for case in computation_heavy:
        assert speedups[(case, "16X")] > 2.0, case
    mean_simple = sum(speedups[(c, "16X")] for c in simple) / len(simple)
    for case in computation_heavy:
        assert speedups[(case, "16X")] > mean_simple, case
    # every case still benefits from the larger cluster at 16X
    for case in CASES:
        assert speedups[(case, "16X")] > 1.0, case
    # nobody meaningfully exceeds the ideal 4x (Tweet Context may flirt
    # with it, as in the paper)
    for (case, label), value in speedups.items():
        assert value < 5.5, (case, label, value)
