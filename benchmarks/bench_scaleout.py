"""Scale-out benchmark: intake partitions x sub-batch splits + restart.

Sweeps the real partitioned execution path:

* intake partitions 1/2/4 on an intake-bound plain feed — verifies
  >= 1.8x simulated makespan improvement at 4 partitions and identical
  output hashes at every partition count;
* sub-batch splits (unsplit / half / quarter batches) on one oversized
  Tweet Context batch over a 4-worker pool — verifies >= 1.5x at
  quarter splits with identical hashes;
* a durable-restart cycle: a partitioned + sub-batched file feed killed
  mid-run, resumed from its on-disk checkpoint with fresh adapters —
  verifies no acked loss and a byte-identical final dataset.

Output goes to ``BENCH_scaleout.json`` at the repo root (simulated
numbers; ``benchmarks/results/`` holds the paper-figure tables only).

Usage::

    python benchmarks/bench_scaleout.py            # full run
    python benchmarks/bench_scaleout.py --smoke    # quick CI run

Exits non-zero if any invariant fails.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small fast run for CI (fewer records)",
    )
    parser.add_argument("--records", type=int, default=None)
    parser.add_argument("--batch-size", type=int, default=None)
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_scaleout.json",
    )
    args = parser.parse_args(argv)

    records = args.records or (2400 if args.smoke else 4800)
    batch_size = args.batch_size or (240 if args.smoke else 480)

    from repro.bench.scaleout import run_scaleout

    result = run_scaleout(records=records, batch_size=batch_size)
    result["mode"] = "smoke" if args.smoke else "full"
    args.output.write_text(json.dumps(result, indent=2) + "\n")

    print(f"scale-out benchmark -> {args.output}")
    print(
        f"  intake speedup at 4 partitions: "
        f"{result['intake_speedup_at_max_partitions']:.2f}x "
        f"(floor {result['intake_speedup_floor']}x)"
    )
    print(
        f"  sub-batch speedup at quarter splits: "
        f"{result['subbatch_speedup_at_quarter_splits']:.2f}x "
        f"(floor {result['subbatch_speedup_floor']}x)"
    )
    restart = result["restart"]
    print(
        f"  restart: interrupted after {restart['acked_batches_at_crash']} "
        f"acked batch(es) / {restart['records_stored_at_crash']} records, "
        f"resume re-ingested {restart['resumed_records_ingested']} of "
        f"{restart['records']}"
    )
    for name, passed in result["checks"].items():
        print(f"  [{'PASS' if passed else 'FAIL'}] {name}")
    return 0 if result["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
