"""Figure 24: basic (no-UDF) ingestion speed-up over 1-24 nodes.

Paper series: Static Ingestion, Balanced Static Ingestion, Dynamic
Ingestion 1X/4X/16X, Balanced Dynamic Ingestion 1X/4X/16X, over cluster
sizes 1..24, ingesting 10M tweets (scaled down here; shapes, not absolute
numbers, are the target):

* static is flat — parsing is coupled to the single intake node;
* balanced static grows with every added node;
* dynamic (single intake) rises, then saturates on intake-node resources;
* larger batches beat smaller ones (fewer computing jobs);
* balanced dynamic tracks balanced static on small clusters but falls
  behind as per-job overhead grows with cluster size.

Section 7.1's refresh-rate observation (68/27/10 jobs/s at 1X/4X/16X on
24 nodes) is reported alongside.
"""

from repro.bench import BATCH_SIZES, env_tweets, format_table
from repro.ingestion.feed import Framework

NODE_SIZES = [1, 2, 3, 4, 5, 6, 12, 18, 24]
TWEETS = env_tweets(5000)


def run_sweep(harness):
    # Figure 24 keeps the paper's absolute batch sizes: the studied effect
    # is per-job overhead amortization, which scaling would distort.
    batches = BATCH_SIZES
    rows = []
    refresh_rates = {}
    for nodes in NODE_SIZES:
        row = [nodes]
        row.append(
            harness.run_enrichment(
                None, TWEETS, nodes, framework=Framework.STATIC
            ).throughput
        )
        row.append(
            harness.run_enrichment(
                None, TWEETS, nodes, framework=Framework.STATIC,
                balanced_intake=True,
            ).throughput
        )
        for label in ("1X", "4X", "16X"):
            report = harness.run_enrichment(
                None, TWEETS, nodes, batch_size=batches[label]
            )
            row.append(report.throughput)
            if nodes == 24:
                refresh_rates[label] = report.refresh_rate
        for label in ("1X", "4X", "16X"):
            row.append(
                harness.run_enrichment(
                    None, TWEETS, nodes, batch_size=batches[label],
                    balanced_intake=True,
                ).throughput
            )
        rows.append(row)
    return rows, refresh_rates


def test_fig24_basic_ingestion(harness, benchmark, emit):
    result = {}

    def sweep():
        result["rows"], result["refresh"] = run_sweep(harness)

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows, refresh_rates = result["rows"], result["refresh"]

    table = format_table(
        f"Figure 24 — {TWEETS} tweets, throughput (records/simulated second)",
        ["nodes", "static", "bal-static", "dyn-1X", "dyn-4X", "dyn-16X",
         "bdyn-1X", "bdyn-4X", "bdyn-16X"],
        rows,
    )
    rates = ", ".join(
        f"{label}: {rate:.1f} jobs/s"
        for label, rate in sorted(refresh_rates.items())
    )
    emit(
        "fig24_basic_ingestion",
        table
        + f"\n\nRefresh rates at 24 nodes ({rates})"
        + "\nPaper reports 68 / 27 / 10 jobs/s at 1X / 4X / 16X "
        + "(at the paper's absolute batch sizes).",
    )

    # ---- shape assertions (who wins, where curves bend) ----
    by_nodes = {row[0]: row[1:] for row in rows}
    static = [by_nodes[n][0] for n in NODE_SIZES]
    bal_static = [by_nodes[n][1] for n in NODE_SIZES]
    dyn_16x = [by_nodes[n][4] for n in NODE_SIZES]
    bdyn_16x = [by_nodes[n][7] for n in NODE_SIZES]
    mean_static = sum(static) / len(static)
    assert max(static) - min(static) < 0.4 * mean_static, "static must stay flat"
    assert bal_static[-1] > 4 * bal_static[0], "balanced static must scale out"
    assert dyn_16x[-1] > static[-1], "dynamic must beat single-node-parse static"
    assert bdyn_16x[-1] > 2 * bdyn_16x[0], "balanced dynamic must grow"
    assert bdyn_16x[-1] < bal_static[-1], "per-job overhead must show at 24 nodes"
    assert by_nodes[6][4] >= by_nodes[6][3] >= by_nodes[6][2], "16X >= 4X >= 1X"
