"""Update-rate sensitivity benchmark for the enrichment-state cache.

Sweeps the reference-update rate (0, 1, 10, 100 updates per simulated
second) over a hash-join enrichment feed with the cross-batch state
cache off and on (§7.3 sensitivity curve), verifying:

* >= 2x simulated computing-cost win at rate 0 (build-dominated UDF);
* wall clock at rate 0 no worse with the cache on (full mode only);
* graceful degradation to baseline-equivalent throughput as the update
  rate grows;
* byte-identical stored outputs cache-on vs. cache-off at every rate.

Output goes to ``BENCH_updates.json`` at the repo root (simulated
numbers; ``benchmarks/results/`` holds the paper-figure tables only).

Usage::

    python benchmarks/bench_updates.py            # full run
    python benchmarks/bench_updates.py --smoke    # quick CI run

Exits non-zero if any invariant fails.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small fast run for CI (fewer records, no wall-clock gate)",
    )
    parser.add_argument("--ref-records", type=int, default=None)
    parser.add_argument("--tweets", type=int, default=None)
    parser.add_argument("--batch-size", type=int, default=None)
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_updates.json",
    )
    args = parser.parse_args(argv)

    ref_records = args.ref_records or (2000 if args.smoke else 20000)
    tweets = args.tweets or (600 if args.smoke else 3000)
    batch_size = args.batch_size or (60 if args.smoke else 100)
    # The smoke run's smaller reference dataset charges its work at a
    # higher scale so the build stays dominated by reference cardinality
    # (the regime the cache targets), like the figure benches do.
    work_scale = 100.0 if args.smoke else 30.0

    from repro.bench.updates import run_update_sweep

    result = run_update_sweep(
        ref_records=ref_records,
        tweets=tweets,
        batch_size=batch_size,
        work_scale=work_scale,
        # Wall clock is too noisy to gate on the smoke run's tiny volumes
        # (and CI runners are shared); the full run enforces the floor.
        check_wallclock=not args.smoke,
    )
    result["mode"] = "smoke" if args.smoke else "full"
    args.output.write_text(json.dumps(result, indent=2) + "\n")

    print(f"update-rate benchmark -> {args.output}")
    for rate, cell in result["rates"].items():
        print(
            f"  rate {rate:>6}: win {cell['computing_seconds_win']:.2f}x  "
            f"throughput on/off {cell['throughput_ratio_on_vs_off']:.3f}  "
            f"hits {cell['cache_on']['state_cache_hits']}  "
            f"hashes_equal={cell['output_hashes_equal']}"
        )
    if "wallclock_rate0" in result:
        wc = result["wallclock_rate0"]
        print(
            f"  wall clock at rate 0: {wc['ratio']:.2f}x "
            f"(off {wc['cache_off_best_seconds']:.3f}s, "
            f"on {wc['cache_on_best_seconds']:.3f}s)"
        )
    for name, passed in result["checks"].items():
        print(f"  [{'PASS' if passed else 'FAIL'}] {name}")
    if not result["ok"]:
        print("update-rate benchmark FAILED", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
