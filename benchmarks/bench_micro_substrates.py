"""Micro-benchmarks of the substrates (wall-clock, for regression tracking).

These are not paper figures; they measure the real Python performance of
the building blocks so substrate regressions are visible independently of
the simulated-time results.
"""

import random

import pytest

from repro.adm import Point, open_type, parse_json
from repro.sqlpp import EvaluationContext, Evaluator, parse_expression
from repro.storage import BPlusTree, Dataset, LSMTree, RTree
from repro.udf.library import SQLPP_UDFS
from repro.workloads import TweetGenerator


def test_micro_adm_parse(benchmark):
    raws = list(TweetGenerator().raw_json(500))

    def parse_all():
        for raw in raws:
            parse_json(raw)

    benchmark(parse_all)


def test_micro_lsm_insert(benchmark):
    def insert_2000():
        tree = LSMTree(memtable_budget=256)
        for i in range(2000):
            tree.upsert(i, {"id": i})
        return tree

    benchmark(insert_2000)


def test_micro_lsm_lookup(benchmark):
    tree = LSMTree(memtable_budget=256)
    for i in range(5000):
        tree.upsert(i, {"id": i})
    keys = random.Random(0).sample(range(5000), 500)

    def lookup_all():
        for key in keys:
            tree.get(key)

    benchmark(lookup_all)


def test_micro_btree_probe(benchmark):
    tree = BPlusTree(order=32)
    for i in range(10_000):
        tree.insert(i, f"pk{i}")
    keys = random.Random(0).sample(range(10_000), 1000)

    def probe_all():
        for key in keys:
            tree.search(key)

    benchmark(probe_all)


def test_micro_rtree_probe(benchmark):
    rnd = random.Random(0)
    tree = RTree(max_entries=16)
    for i in range(5000):
        tree.insert(Point(rnd.uniform(0, 100), rnd.uniform(0, 100)), i)
    from repro.adm import Circle

    queries = [
        Circle(Point(rnd.uniform(0, 100), rnd.uniform(0, 100)), 1.5)
        for _ in range(200)
    ]

    def probe_all():
        for query in queries:
            list(tree.search(query))

    benchmark(probe_all)


def test_micro_sqlpp_parse(benchmark):
    source = SQLPP_UDFS["tweet_context"]

    def parse_udf():
        from repro.sqlpp import parse_function

        return parse_function(source)

    benchmark(parse_udf)


def test_micro_sqlpp_hash_enrichment(benchmark):
    ratings = Dataset(
        "SafetyRatings", open_type("T"), "country_code", num_partitions=4,
        validate=False,
    )
    for i in range(2000):
        ratings.insert({"country_code": f"C{i:04d}", "safety_rating": "3"})
    ratings.flush_all()
    ctx = EvaluationContext({"SafetyRatings": ratings})
    evaluator = Evaluator(ctx)
    expr = parse_expression(
        "SELECT VALUE s.safety_rating FROM SafetyRatings s "
        "WHERE t.country = s.country_code"
    )
    tweets = [{"country": f"C{i % 2000:04d}"} for i in range(500)]

    def enrich_all():
        ctx.refresh_batch()
        for tweet in tweets:
            evaluator.evaluate_query(expr, {"t": tweet})

    benchmark(enrich_all)
