"""Shared benchmark fixtures.

Each figure benchmark sweeps its paper configuration, prints the resulting
table (bypassing capture so it appears in ``--benchmark-only`` output),
writes it under ``benchmarks/results/``, and times one representative
configuration with pytest-benchmark.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench import ExperimentHarness, env_scale

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def harness():
    """One harness (catalog cache) shared by every benchmark."""
    return ExperimentHarness(reference_scale=env_scale(), num_partitions=6)


@pytest.fixture
def emit(capsys):
    """Print a results table live and persist it to benchmarks/results/."""

    def _emit(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        with capsys.disabled():
            print(f"\n{text}\n")

    return _emit
