"""Wall-clock records/sec: interpreted vs. planned vs. columnar evaluation.

Unlike the fig* benchmarks (deterministic simulated cost), this harness
measures real elapsed time, so its output goes to ``BENCH_wallclock.json``
at the repo root rather than ``benchmarks/results/``.

Usage::

    python benchmarks/bench_wallclock.py            # full run
    python benchmarks/bench_wallclock.py --smoke    # quick CI run

Exits non-zero if planned evaluation is slower than interpreted, if
columnar evaluation is slower than planned, or — with
``--baseline BENCH_wallclock.json`` — if the planned or columnar speedup
ratio regressed more than ``--baseline-tolerance`` (default 20%) against
the recorded baseline.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small fast run for CI (fewer records and repeats)",
    )
    parser.add_argument("--records", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_wallclock.json",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="previous BENCH_wallclock.json to gate planned throughput "
        "against (fail on regression beyond the tolerance)",
    )
    parser.add_argument(
        "--baseline-tolerance",
        type=float,
        default=0.20,
        help="allowed fractional drop in planned rec/s vs the baseline",
    )
    parser.add_argument(
        "--interp-baseline-tolerance",
        type=float,
        default=0.30,
        help="allowed fractional drop in calibration-normalized "
        "interpreter throughput vs the baseline (generous: the "
        "normalization removes machine speed, not scheduler noise)",
    )
    args = parser.parse_args(argv)

    records = args.records or (300 if args.smoke else 1500)
    repeats = args.repeats or (2 if args.smoke else 3)

    # Snapshot the baseline before running: --output may point at the same
    # file (the committed BENCH_wallclock.json), which the run overwrites.
    baseline = None
    if args.baseline is not None and args.baseline.exists():
        baseline = json.loads(args.baseline.read_text())

    from repro.bench.wallclock import run_wallclock

    result = run_wallclock(records=records, repeats=repeats)
    result["mode"] = "smoke" if args.smoke else "full"
    args.output.write_text(json.dumps(result, indent=2) + "\n")

    aggregate = result["aggregate"]
    print(f"wrote {args.output}")
    for key, case in result["cases"].items():
        print(
            f"  {key:24s} interpreted {case['interpreted_records_per_sec']:8.0f} rec/s"
            f"  planned {case['planned_records_per_sec']:8.0f} rec/s"
            f"  ({case['speedup']:.2f}x)"
            f"  columnar {case['columnar_records_per_sec']:8.0f} rec/s"
            f"  ({case['columnar_speedup']:.2f}x)"
        )
    print(
        f"  {'aggregate':24s} interpreted {aggregate['interpreted_records_per_sec']:8.0f} rec/s"
        f"  planned {aggregate['planned_records_per_sec']:8.0f} rec/s"
        f"  ({aggregate['speedup']:.2f}x)"
        f"  columnar {aggregate['columnar_records_per_sec']:8.0f} rec/s"
        f"  ({aggregate['columnar_speedup']:.2f}x)"
    )
    interpreter = result.get("interpreter", {})
    if interpreter:
        print(
            f"  calibration: {result['calibration_ops_per_sec']:.0f} ops/s"
        )
        for key, case in interpreter["cases"].items():
            print(
                f"  interp {key:17s} {case['interpreted_records_per_sec']:8.0f} rec/s"
                f"  normalized {case['normalized_throughput']:7.1f}"
            )
        interp_agg = interpreter["aggregate"]
        print(
            f"  interp {'aggregate':17s} {interp_agg['interpreted_records_per_sec']:8.0f} rec/s"
            f"  normalized {interp_agg['normalized_throughput']:7.1f}"
        )
    if aggregate["speedup"] < 1.0:
        print("FAIL: planned evaluation is slower than interpreted", file=sys.stderr)
        return 1
    if aggregate["columnar_speedup"] < 1.0:
        print("FAIL: columnar evaluation is slower than planned", file=sys.stderr)
        return 1
    if baseline is not None:
        # Gate on the planned/interpreted speedup ratio, not absolute
        # rec/s: the ratio is comparable across machines and between
        # smoke and full workload sizes, absolute throughput is not.
        recorded = baseline.get("aggregate", {}).get("speedup")
        if recorded:
            floor = recorded * (1.0 - args.baseline_tolerance)
            current = aggregate["speedup"]
            print(
                f"  baseline planned speedup {recorded:.2f}x "
                f"(floor {floor:.2f}x at {args.baseline_tolerance:.0%} "
                f"tolerance) -> current {current:.2f}x"
            )
            if current < floor:
                print(
                    "FAIL: planned throughput regressed more than "
                    f"{args.baseline_tolerance:.0%} vs {args.baseline}",
                    file=sys.stderr,
                )
                return 1
        # Columnar gate mirrors the planned gate but only fires when the
        # baseline was recorded at the same workload size: the columnar
        # ratio is machine-comparable yet NOT size-comparable (kernel
        # compile and hash build amortize over the record count, so a
        # smoke run legitimately shows a smaller ratio than a full run).
        # Baselines that predate the columnar path lack the key entirely.
        recorded_columnar = baseline.get("aggregate", {}).get("columnar_speedup")
        if recorded_columnar and baseline.get("mode") != result["mode"]:
            print(
                f"  skipping columnar ratio gate: baseline mode "
                f"{baseline.get('mode')!r} != current {result['mode']!r}"
            )
            recorded_columnar = None
        if recorded_columnar:
            floor = recorded_columnar * (1.0 - args.baseline_tolerance)
            current = aggregate["columnar_speedup"]
            print(
                f"  baseline columnar speedup {recorded_columnar:.2f}x "
                f"(floor {floor:.2f}x at {args.baseline_tolerance:.0%} "
                f"tolerance) -> current {current:.2f}x"
            )
            if current < floor:
                print(
                    "FAIL: columnar throughput regressed more than "
                    f"{args.baseline_tolerance:.0%} vs {args.baseline}",
                    file=sys.stderr,
                )
                return 1
        # Interpreter gate: calibration-normalized throughput is
        # machine-comparable (rec/s divided by a pure-Python ops/s score
        # measured in the same run), so a drop beyond the tolerance means
        # the interpreter itself got slower, not the machine.
        recorded_interp = (
            baseline.get("interpreter", {})
            .get("aggregate", {})
            .get("normalized_throughput")
        )
        if recorded_interp and interpreter:
            current_interp = interpreter["aggregate"]["normalized_throughput"]
            floor = recorded_interp * (1.0 - args.interp_baseline_tolerance)
            print(
                f"  baseline interp normalized {recorded_interp:.1f} "
                f"(floor {floor:.1f} at {args.interp_baseline_tolerance:.0%} "
                f"tolerance) -> current {current_interp:.1f}"
            )
            if current_interp < floor:
                print(
                    "FAIL: interpreter throughput regressed more than "
                    f"{args.interp_baseline_tolerance:.0%} vs {args.baseline}",
                    file=sys.stderr,
                )
                return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
