"""Figure 31: throughput (a) and speed-up (b) vs cluster size, complex UDFs.

Paper setup: 100k tweets, 16X batches, cluster sizes 6/12/18/24, for
Nearby Monuments, Naive Nearby Monuments (index disabled via a query
hint), Suspicious Names, Tweet Context, and Worrisome Tweets.  Expected
shapes:

* throughput improves with nodes, leveling off as per-job execution
  overhead eats the gains;
* Nearby Monuments speeds up worst — the index NLJ broadcasts every
  record to all nodes;
* Naive Nearby Monuments starts far below the indexed plan but *scales
  better* — its scan-based join is split across nodes.
"""

from repro.bench import BATCH_SIZES, USE_CASES, env_tweets, format_table

CASES = [
    "nearby_monuments",
    "naive_nearby_monuments",
    "suspicious_names",
    "tweet_context",
    "worrisome_tweets",
]
NODE_SIZES = [6, 12, 18, 24]
TWEETS = env_tweets(7000)
# the naive scan plan's real (wall-clock) cost per tweet is ~20x the
# others'; its simulated throughput is per-record dominated, so a shorter
# stream measures the same steady state
NAIVE_TWEETS = env_tweets(800)


def run_sweep(harness):
    throughput = {}
    for case in CASES:
        tweets = NAIVE_TWEETS if case == "naive_nearby_monuments" else TWEETS
        for nodes in NODE_SIZES:
            throughput[(case, nodes)] = harness.run_enrichment(
                case, tweets, nodes, batch_size=BATCH_SIZES["16X"],
                language="sqlpp",
            ).throughput
    return throughput


def test_fig31_complex_scaleout(harness, benchmark, emit):
    result = {}
    benchmark.pedantic(
        lambda: result.setdefault("tput", run_sweep(harness)),
        rounds=1, iterations=1,
    )
    throughput = result["tput"]

    tput_rows = [
        [USE_CASES[case].title] + [throughput[(case, n)] for n in NODE_SIZES]
        for case in CASES
    ]
    speedup_rows = [
        [USE_CASES[case].title]
        + [throughput[(case, n)] / throughput[(case, 6)] for n in NODE_SIZES]
        for case in CASES
    ]
    table = format_table(
        f"Figure 31a — {TWEETS} tweets, 16X batches, throughput "
        "(records/simulated second)",
        ["use case"] + [f"{n} nodes" for n in NODE_SIZES],
        tput_rows,
    )
    table += "\n\n" + format_table(
        "Figure 31b — speed-up relative to 6 nodes",
        ["use case"] + [f"{n} nodes" for n in NODE_SIZES],
        speedup_rows,
    )
    emit("fig31_complex_scaleout", table)

    for case in CASES:
        # more nodes help every complex case
        assert throughput[(case, 24)] > throughput[(case, 6)], case
    # indexed monuments >> naive monuments in absolute terms at 6 nodes
    assert (
        throughput[("nearby_monuments", 6)]
        > 2 * throughput[("naive_nearby_monuments", 6)]
    )
    # ...but the naive plan scales better (its scan divides across nodes;
    # the index plan broadcasts every probe)
    naive_speedup = (
        throughput[("naive_nearby_monuments", 24)]
        / throughput[("naive_nearby_monuments", 6)]
    )
    indexed_speedup = (
        throughput[("nearby_monuments", 24)] / throughput[("nearby_monuments", 6)]
    )
    assert naive_speedup > indexed_speedup
    # gains level off: 24 nodes is less than the ideal 4x over 6 nodes
    for case in CASES:
        assert throughput[(case, 24)] < 4.5 * throughput[(case, 6)], case


def test_fig31_partitioned_subbatch_parity(harness):
    """One complex-UDF configuration on the real scaled-out path.

    Runs Suspicious Names with 4 intake partitions, a 4-worker pool,
    and quarter-batch splits — the full partitioned pipeline — and
    checks it stores exactly what the single-lane run stores."""
    tweets = env_tweets(800)
    batch = BATCH_SIZES["16X"]
    single = harness.run_enrichment(
        "suspicious_names", tweets, 6, batch_size=batch, language="sqlpp"
    )
    scaled = harness.run_enrichment(
        "suspicious_names", tweets, 6, batch_size=batch, language="sqlpp",
        # the stream is shorter than one 16X batch, so split on a quarter
        # of the actual batch record count
        intake_partitions=4, max_subbatch_records=tweets // 4,
        computing_workers=4,
    )
    assert scaled.intake_partitions == 4
    assert scaled.subbatches_dispatched > 0
    assert scaled.records_stored == single.records_stored
    # the pool + splits may help; they must never hurt
    assert scaled.runtime.makespan_seconds <= single.runtime.makespan_seconds * 1.05
