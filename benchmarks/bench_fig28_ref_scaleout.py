"""Figure 28: reference-data scale-out.

Paper setup: grow the reference datasets to 2X/3X/4X while growing the
cluster to 12/18/24 nodes, 16X batches, SQL++ UDFs 1-5.  Expected shape:
throughput *drops only slightly* as both grow — per-batch state-rebuild
work grows with the data but is divided over proportionally more nodes;
the residual decline is the larger cluster's execution overhead.
"""

from repro.bench import (
    BATCH_SIZES,
    SIMPLE_CASES,
    USE_CASES,
    ExperimentHarness,
    env_scale,
    env_tweets,
    format_table,
)

TWEETS = env_tweets(2000)
STEPS = [(1, 6), (2, 12), (3, 18), (4, 24)]  # (ref multiplier, nodes)


def run_sweep():
    base_scale = env_scale()
    series = {}
    rows = []
    harnesses = {
        mult: ExperimentHarness(
            reference_scale=base_scale * mult,
            num_partitions=nodes,
            # keep the base work scale: 2X generated data must charge 2X
            # the paper-1X work, not be renormalized back to 1X
            reference_work_scale=1.0 / base_scale,
        )
        for mult, nodes in STEPS
    }
    for case in SIMPLE_CASES:
        row = [USE_CASES[case].title]
        for mult, nodes in STEPS:
            report = harnesses[mult].run_enrichment(
                case, TWEETS, nodes, batch_size=BATCH_SIZES["16X"],
                language="sqlpp",
            )
            row.append(report.throughput)
            series[(case, mult)] = report.throughput
        rows.append(row)
    return rows, series


def test_fig28_reference_scaleout(benchmark, emit):
    result = {}

    def sweep():
        result["rows"], result["series"] = run_sweep()

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows, series = result["rows"], result["series"]
    emit(
        "fig28_ref_scaleout",
        format_table(
            f"Figure 28 — {TWEETS} tweets, reference data 1X-4X with 6-24 "
            "nodes, 16X batches (records/simulated second)",
            ["use case", "1X/6n", "2X/12n", "3X/18n", "4X/24n"],
            rows,
        ),
    )

    for case in SIMPLE_CASES:
        base = series[(case, 1)]
        final = series[(case, 4)]
        # scales well: 4x data on 4x nodes keeps at least half the
        # throughput (the paper shows a slight decline, not a collapse)
        assert final > 0.5 * base, (case, base, final)
        # ...but the growing execution overhead shows: no case speeds up 2x
        assert final < 2.0 * base, (case, base, final)


def test_fig28_partitioned_intake_parity(harness):
    """The figure's sweep on the real partitioned intake path.

    Partitioned intake is an execution-path change, not a workload
    change: running a figure configuration with 4 real intake partitions
    must store the same records and land in the same throughput
    neighborhood as the single-lane run (intake is not the bottleneck
    for the enrichment cases, so the gain is bounded)."""
    tweets = env_tweets(800)
    case = SIMPLE_CASES[0]
    single = harness.run_enrichment(
        case, tweets, 6, batch_size=BATCH_SIZES["16X"], language="sqlpp"
    )
    partitioned = harness.run_enrichment(
        case, tweets, 6, batch_size=BATCH_SIZES["16X"], language="sqlpp",
        intake_partitions=4,
    )
    assert partitioned.intake_partitions == 4
    assert len(partitioned.intake_partition_busy) == 4
    assert partitioned.records_stored == single.records_stored
    # partitioning the intake lane never makes the feed slower, and on a
    # compute-bound enrichment it cannot make it much faster either
    assert partitioned.throughput >= 0.9 * single.throughput
    assert partitioned.throughput <= 2.0 * single.throughput
