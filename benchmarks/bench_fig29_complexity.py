"""Figure 29: UDF complexity comparison (use cases 5-8).

Paper setup: 100k tweets on 6 nodes, batch sizes 1X/4X/16X, for Nearby
Monuments, Suspicious Names, Tweet Context, and Worrisome Tweets.
Expected shapes:

* these UDFs are one to two orders of magnitude slower than the simple
  hash-join cases (throughput in the hundreds of records/second);
* Tweet Context — which joins multiple reference datasets per subquery —
  benefits most from larger batches; the sequential-join cases
  (Nearby Monuments, Suspicious Names, Worrisome Tweets) gain less.
"""

from repro.bench import BATCH_SIZES, COMPLEX_CASES, USE_CASES, env_tweets, format_table

NODES = 6
TWEETS = env_tweets(8000)


def run_sweep(harness):
    rows = []
    series = {}
    for case in COMPLEX_CASES:
        row = [USE_CASES[case].title]
        for label in ("1X", "4X", "16X"):
            report = harness.run_enrichment(
                case, TWEETS, NODES, batch_size=BATCH_SIZES[label],
                language="sqlpp",
            )
            row.append(report.throughput)
            series[(case, label)] = report.throughput
        rows.append(row)
    return rows, series


def test_fig29_udf_complexity(harness, benchmark, emit):
    result = {}

    def sweep():
        result["rows"], result["series"] = run_sweep(harness)

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows, series = result["rows"], result["series"]
    emit(
        "fig29_complexity",
        format_table(
            f"Figure 29 — {TWEETS} tweets, complex UDFs on {NODES} nodes "
            "(records/simulated second)",
            ["use case", "1X", "4X", "16X"],
            rows,
        ),
    )

    for case in COMPLEX_CASES:
        # batching never hurts
        assert series[(case, "16X")] >= series[(case, "1X")] * 0.95, case
    # the case with the largest per-batch state rebuild gains most from
    # batching: in our physical plans that is Suspicious Names (its 1M-row
    # equality hash table is rebuilt every batch); the paper's plan makes
    # Tweet Context the big gainer instead — see EXPERIMENTS.md
    gains = {
        case: series[(case, "16X")] / series[(case, "1X")]
        for case in COMPLEX_CASES
    }
    assert gains["suspicious_names"] >= max(
        gains[c] for c in COMPLEX_CASES if c != "suspicious_names"
    ) * 0.9, gains
    # Tweet Context remains the slowest (most complex) case, as in Fig. 29
    for case in COMPLEX_CASES:
        if case != "tweet_context":
            assert (
                series[("tweet_context", "16X")] <= series[(case, "16X")]
            ), (case, series)
