"""Ablations of the framework's design choices (DESIGN.md §4).

* **Predeployed jobs** (§5.1): invoking a cached computing-job spec vs
  recompiling and redistributing it per batch.
* **Decoupled storage** (§5.2): computing and storage jobs overlapping vs
  the coupled insert job that waits for the log force per batch.
* **Partition-holder capacity** (§5.3): bounded holders must absorb the
  intake/computing rate mismatch without dropping or duplicating records.
* **Computing models** (§4.3): Model 1 (per record) vs Model 2 (per
  batch) vs Model 3 (stream) on a stateful UDF — including Model 3's
  failure when the build side spills.
"""

import pytest

from repro.bench import BATCH_SIZES, env_tweets, format_table
from repro.errors import StreamingJoinError
from repro.ingestion.feed import ComputingModel, Framework

NODES = 6
TWEETS = env_tweets(1500)
CASE = "safety_rating"


def test_ablation_predeploy(harness, benchmark, emit):
    result = {}

    def sweep():
        result["pre"] = harness.run_enrichment(
            CASE, TWEETS, NODES, batch_size=BATCH_SIZES["1X"], predeploy=True
        )
        result["compile"] = harness.run_enrichment(
            CASE, TWEETS, NODES, batch_size=BATCH_SIZES["1X"], predeploy=False
        )

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    pre, compile_each = result["pre"], result["compile"]
    emit(
        "ablation_predeploy",
        format_table(
            "Ablation §5.1 — predeployed vs recompile-per-batch computing jobs",
            ["variant", "throughput", "refresh period (ms)", "jobs"],
            [
                ["predeployed", pre.throughput, pre.refresh_period * 1000,
                 pre.num_computing_jobs],
                ["recompiled", compile_each.throughput,
                 compile_each.refresh_period * 1000,
                 compile_each.num_computing_jobs],
            ],
        ),
    )
    assert pre.throughput > compile_each.throughput
    assert compile_each.refresh_period > pre.refresh_period


def test_ablation_decoupled_storage(harness, benchmark, emit):
    result = {}

    def sweep():
        result["dec"] = harness.run_enrichment(
            CASE, TWEETS, NODES, batch_size=BATCH_SIZES["1X"], decoupled=True
        )
        result["coup"] = harness.run_enrichment(
            CASE, TWEETS, NODES, batch_size=BATCH_SIZES["1X"], decoupled=False
        )

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    decoupled, coupled = result["dec"], result["coup"]
    emit(
        "ablation_decoupling",
        format_table(
            "Ablation §5.2 — decoupled computing+storage vs coupled insert job",
            ["variant", "throughput", "refresh period (ms)"],
            [
                ["decoupled", decoupled.throughput, decoupled.refresh_period * 1000],
                ["coupled", coupled.throughput, coupled.refresh_period * 1000],
            ],
        ),
    )
    assert decoupled.throughput > coupled.throughput


def test_ablation_computing_models(harness, benchmark, emit):
    result = {}

    def sweep():
        result["m1"] = harness.run_enrichment(
            CASE, min(TWEETS, 300), NODES,
            computing_model=ComputingModel.PER_RECORD,
        )
        result["m2"] = harness.run_enrichment(
            CASE, min(TWEETS, 300), NODES, batch_size=BATCH_SIZES["1X"],
        )
        result["m3"] = harness.run_enrichment(
            CASE, min(TWEETS, 300), NODES, language="java",
            framework=Framework.STATIC,
        )

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    m1, m2, m3 = result["m1"], result["m2"], result["m3"]
    emit(
        "ablation_models",
        format_table(
            "Ablation §4.3 — computing models on a stateful UDF",
            ["model", "throughput", "jobs", "sees updates"],
            [
                ["1: per record", m1.throughput, m1.num_computing_jobs,
                 "every record"],
                ["2: per batch", m2.throughput, m2.num_computing_jobs,
                 "every batch"],
                ["3: stream", m3.throughput, m3.num_computing_jobs, "never"],
            ],
        ),
    )
    # Model 1 << Model 2 << Model 3 in throughput; freshness is the inverse.
    assert m1.throughput < m2.throughput < m3.throughput
    assert m1.num_computing_jobs > m2.num_computing_jobs


def test_ablation_stream_model_spill(harness, benchmark):
    """Model 3 over a spilling build side must fail (§4.3.4 case 2)."""

    def attempt():
        with pytest.raises(StreamingJoinError):
            harness.run_enrichment(
                CASE, 50, NODES, language="sqlpp", framework=Framework.STATIC,
                computing_model=ComputingModel.STREAM,
                stream_memory_budget=1,
            )

    benchmark.pedantic(attempt, rounds=1, iterations=1)


def test_ablation_holder_capacity(harness, benchmark, emit):
    """Bounded intake holders: correctness under backpressure."""
    from repro.adm import open_type
    from repro.cluster import Cluster
    from repro.ingestion import (
        DynamicIngestionPipeline,
        FeedDefinition,
        GeneratorAdapter,
    )
    from repro.storage import Dataset
    import json

    rows = []

    def sweep():
        for capacity in (1, 4, 64):
            target = Dataset(
                "T", open_type("TT", id="int64"), "id",
                num_partitions=NODES, validate=False,
            )
            feed = FeedDefinition(
                "F", "T", batch_size=BATCH_SIZES["1X"],
                intake_holder_capacity=capacity,
            )
            raws = [json.dumps({"id": i}) for i in range(2000)]
            report = DynamicIngestionPipeline(Cluster(NODES), {"T": target}).run(
                feed, GeneratorAdapter(raws)
            )
            assert report.records_stored == 2000  # never lose records
            metrics = report.runtime
            rows.append([
                capacity, report.throughput, report.stalls,
                metrics.layer("intake").blocked, metrics.holder_high_water,
            ])

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "ablation_holder_capacity",
        format_table(
            "Ablation §5.3 — intake partition-holder capacity (frames)",
            ["capacity", "throughput", "stalls", "intake blocked (s)",
             "high-water"],
            rows,
        ),
    )
    # a capacity-1 holder must throttle the feed (real backpressure), not
    # drop records; an ample holder never blocks the intake
    assert rows[0][3] > 0.0 and rows[0][2] > 0
    assert rows[-1][3] == 0.0 and rows[-1][2] == 0
