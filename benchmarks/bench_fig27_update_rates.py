"""Figure 27: enrichment throughput under concurrent reference updates.

Paper setup: 100k tweets on 6 nodes; a client upserts reference records
at 0/1/10/50/100/200/400 records per second while each use case's feed
runs.  Expected shapes:

* every case drops when the rate goes from none to one update/second —
  the LSM in-memory component activates and all reference reads slow;
* Fuzzy Suspects (smallest reference dataset) is least affected;
* Nearby Monuments (index probes throughout the job instead of one scan
  per batch) resists low rates but degrades most at high rates — the
  paper measures 24% of its no-update throughput at 400 upd/s vs 52% for
  Safety Rating.
"""

from repro.bench import BATCH_SIZES, SIMPLE_CASES, USE_CASES, env_tweets, format_table

NODES = 6
TWEETS = env_tweets(4000)
RATES = [0, 1, 10, 50, 100, 200, 400]


def run_sweep(harness):
    batch = BATCH_SIZES["1X"]
    rows = []
    series = {}
    for case in SIMPLE_CASES:
        row = [USE_CASES[case].title]
        for rate in RATES:
            report = harness.run_enrichment(
                case, TWEETS, NODES, batch_size=batch, language="sqlpp",
                update_rate=float(rate),
            )
            row.append(report.throughput)
            series[(case, rate)] = report.throughput
        rows.append(row)
    return rows, series


def test_fig27_update_rates(harness, benchmark, emit):
    result = {}

    def sweep():
        result["rows"], result["series"] = run_sweep(harness)

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows, series = result["rows"], result["series"]

    ratio_rows = []
    for case in SIMPLE_CASES:
        base = series[(case, 0)]
        ratio_rows.append(
            [USE_CASES[case].title]
            + [series[(case, rate)] / base for rate in RATES]
        )
    table = format_table(
        f"Figure 27 — {TWEETS} tweets, throughput (records/simulated second) "
        "vs reference update rate",
        ["use case"] + [f"{r}/s" for r in RATES],
        rows,
    )
    table += "\n\n" + format_table(
        "Relative to no-update throughput (paper: Nearby Monuments 24%, "
        "Safety Rating 52% at 400/s)",
        ["use case"] + [f"{r}/s" for r in RATES],
        ratio_rows,
    )
    emit("fig27_update_rates", table)

    for case in SIMPLE_CASES:
        # update activity hurts everyone by the time the rate is high
        assert series[(case, 400)] < series[(case, 0)], case
        # high rates hurt at least as much as low rates (within noise)
        assert series[(case, 400)] <= series[(case, 1)] * 1.05, case
    for case in SIMPLE_CASES:
        if case != "fuzzy_suspects":
            # every sizable-reference case already drops at 1 update/s
            assert series[(case, 1)] < series[(case, 0)], case
    # index-probing Nearby Monuments degrades more than Safety Rating at 400/s
    monuments_ratio = series[("nearby_monuments", 400)] / series[("nearby_monuments", 0)]
    safety_ratio = series[("safety_rating", 400)] / series[("safety_rating", 0)]
    assert monuments_ratio < safety_ratio
    # Fuzzy Suspects (smallest reference data) is the least affected
    fuzzy_ratio = series[("fuzzy_suspects", 400)] / series[("fuzzy_suspects", 0)]
    for other in ("safety_rating", "religious_population", "largest_religions",
                  "nearby_monuments"):
        other_ratio = series[(other, 400)] / series[(other, 0)]
        assert fuzzy_ratio >= other_ratio * 0.9, other
