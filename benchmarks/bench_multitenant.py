"""Multi-tenant feed-fabric benchmark: fabric vs static equal split.

Runs an 8-feed fleet on one shared simulated runtime twice per workload
shape — once under a :class:`FeedFabric` global worker budget, once with
the budget statically equal-split across feeds — verifying:

* >= 1.5x fleet-makespan speedup on a skewed (2 heavy / 6 light) fleet;
* parity within tolerance on a uniform fleet (no skew to exploit);
* byte-identical per-feed stored outputs fabric-on vs fabric-off;
* deterministic repeats (same makespans + per-feed output hashes);
* the worker budget is never exceeded and heavy tenants actually borrow;
* a memory-governed run stores the same bytes while splitting one cache
  budget across tenants.

Output goes to ``BENCH_multitenant.json`` at the repo root (simulated
numbers; ``benchmarks/results/`` holds the paper-figure tables only).

Usage::

    python benchmarks/bench_multitenant.py            # full run
    python benchmarks/bench_multitenant.py --smoke    # quick CI run

Exits non-zero if any invariant fails.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small fast run for CI (fewer records)",
    )
    parser.add_argument("--heavy-records", type=int, default=None)
    parser.add_argument("--batch-size", type=int, default=None)
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_multitenant.json",
    )
    args = parser.parse_args(argv)

    heavy_records = args.heavy_records or (800 if args.smoke else 2400)
    batch_size = args.batch_size or (40 if args.smoke else 80)
    words = 120 if args.smoke else 200

    from repro.bench.multitenant import run_multitenant

    result = run_multitenant(
        heavy_records=heavy_records, batch_size=batch_size, words=words
    )
    result["mode"] = "smoke" if args.smoke else "full"
    args.output.write_text(json.dumps(result, indent=2) + "\n")

    print(f"multitenant benchmark -> {args.output}")
    print(
        f"  skewed fleet speedup: {result['skewed_speedup']:.2f}x "
        f"(floor {result['skewed_speedup_floor']}x)"
    )
    print(
        f"  uniform fleet speedup: {result['uniform_speedup']:.2f}x "
        f"(parity floor {result['uniform_parity_floor']}x)"
    )
    summary = result["skewed"]["fabric"]["fabric_summary"]
    print(
        f"  skewed fabric: peak {summary['peak_total_held']}/"
        f"{summary['total_workers']} worker(s) held, "
        f"{summary['leases_granted']} lease(s) granted, "
        f"{summary['recalls_issued']} recall(s)"
    )
    governed = result["governed"]
    print(
        f"  governed run: {governed['governor']['rebalances']} "
        f"rebalance(s), {governed['governor']['grants']} grant(s)"
    )
    for name, passed in result["checks"].items():
        print(f"  [{'PASS' if passed else 'FAIL'}] {name}")
    if not result["ok"]:
        print("multitenant benchmark FAILED", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
