"""Chaos benchmark: deterministic fault injection + supervised recovery.

Each scenario is a reproducible discrete-event fault schedule (computing
crash, storage stall, holder disconnect, transient channel-send failure)
driven through a full feed under the Spill policy.  The harness verifies:

* **zero acked-record loss** — every well-formed input record is stored
  after recovery (at-least-once replay + primary-key upsert);
* **determinism** — two identical runs produce byte-identical fault
  counters and the same simulated makespan;
* a no-fault baseline keeps every fault counter at zero.

Output goes to ``BENCH_chaos.json`` at the repo root (simulated numbers,
but kept out of ``benchmarks/results/``, which holds the paper-figure
tables only).

Usage::

    python benchmarks/bench_chaos.py            # full run
    python benchmarks/bench_chaos.py --smoke    # quick CI run

Exits non-zero if any invariant fails.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small fast run for CI (fewer records)",
    )
    parser.add_argument("--records", type=int, default=None)
    parser.add_argument("--batch-size", type=int, default=None)
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_chaos.json",
    )
    args = parser.parse_args(argv)

    records = args.records or (600 if args.smoke else 2000)
    batch_size = args.batch_size or (100 if args.smoke else 200)

    from repro.bench.chaos import run_chaos

    result = run_chaos(records=records, batch_size=batch_size)
    result["mode"] = "smoke" if args.smoke else "full"
    args.output.write_text(json.dumps(result, indent=2) + "\n")

    print(f"wrote {args.output}")
    failed = []
    for name, scenario in result["scenarios"].items():
        checks = scenario["checks"]
        status = "ok  " if all(checks.values()) else "FAIL"
        faults = scenario["faults"]
        print(
            f"  [{status}] {name:32s} "
            f"{scenario['throughput_records_per_sim_second']:10.0f} rec/s  "
            f"crashes={faults['crashes']} restarts={faults['restarts']} "
            f"dead_letters={scenario['dead_letters']} "
            f"stored={scenario['records_stored']}/{scenario['records_ingested']}"
        )
        for check, passed in checks.items():
            if not passed:
                failed.append(f"{name}: {check}")
    if failed:
        for failure in failed:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
