"""External-enrichment benchmark: batched remote lookups under faults.

Each scenario drives a full feed through a simulated remote enricher
behind the complete resilience stack — per-call deadlines, retries with
exponential backoff, a client-side rate limiter, and a per-enricher
circuit breaker — while the remote's behavior (outage, slowdown,
flakiness) is scripted on the feed's FaultPlan.  The harness verifies:

* **zero acked loss** — every record is stored (possibly pending) or
  dead-lettered with provenance, no matter how broken the remote is;
* **determinism** — two identical runs produce byte-identical external
  counters and makespans;
* **progressive degradation** — completeness orders healthy ≥ flaky ≥
  partial outage ≥ hard-down, the breaker's fail-fast beats burning
  retry budgets, and backfill/replay restore completeness to 1.0 once
  the remote recovers.

Output goes to ``BENCH_external.json`` at the repo root (simulated
numbers; ``benchmarks/results/`` stays reserved for the paper-figure
tables).

Usage::

    python benchmarks/bench_external.py            # full run
    python benchmarks/bench_external.py --smoke    # quick CI run

Exits non-zero if any invariant fails.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small fast run for CI (fewer records)",
    )
    parser.add_argument("--records", type=int, default=None)
    parser.add_argument("--batch-size", type=int, default=None)
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_external.json",
    )
    args = parser.parse_args(argv)

    records = args.records or (600 if args.smoke else 2000)
    batch_size = args.batch_size or (100 if args.smoke else 200)

    from repro.bench.external import run_external

    result = run_external(records=records, batch_size=batch_size)
    result["mode"] = "smoke" if args.smoke else "full"
    args.output.write_text(json.dumps(result, indent=2) + "\n")

    print(f"wrote {args.output}")
    failed = []
    for name, scenario in result["scenarios"].items():
        checks = scenario["checks"]
        status = "ok  " if all(checks.values()) else "FAIL"
        external = scenario["external"]
        print(
            f"  [{status}] {name:24s} "
            f"completeness={scenario['enrichment_completeness']:.3f}  "
            f"calls={external['calls']} retries={external['retries']} "
            f"fail_fast={external['fail_fast']} "
            f"pending={external['records_pending']} "
            f"dead_lettered={external['records_dead_lettered']}"
        )
        for check, passed in checks.items():
            if not passed:
                failed.append(f"{name}: {check}")
    for check, passed in result["cross_scenario_checks"].items():
        print(f"  [{'ok  ' if passed else 'FAIL'}] {check}")
        if not passed:
            failed.append(f"cross: {check}")
    if failed:
        for failure in failed:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
