"""Figure 25: 1M tweets enriched with UDFs 1-5 on a 6-node cluster.

Paper series (log scale): Static Enrichment w/ Java, Dynamic Enrichment
w/ Java 1X/4X/16X, Dynamic Enrichment w/ SQL++ 1X/4X/16X, over the five
use cases Safety Rating, Religious Population, Largest Religions, Fuzzy
Suspects, Nearby Monuments.

Expected shapes:

* static Java beats dynamic on every case except Nearby Monuments — the
  stream model reuses stale state for free, while Nearby Monuments lets
  the SQL++ plan probe the partitioned R-tree that Java cannot use;
* throughput grows with batch size, but much less for Fuzzy Suspects and
  Nearby Monuments, whose per-record computation dwarfs job overhead.
"""

from repro.bench import BATCH_SIZES, SIMPLE_CASES, USE_CASES, env_tweets, format_table
from repro.ingestion.feed import Framework

NODES = 6
TWEETS = env_tweets(3000)


def run_sweep(harness):
    batches = BATCH_SIZES
    rows = []
    for case in SIMPLE_CASES:
        row = [USE_CASES[case].title]
        row.append(
            harness.run_enrichment(
                case, TWEETS, NODES, language="java", framework=Framework.STATIC
            ).throughput
        )
        for label in ("1X", "4X", "16X"):
            row.append(
                harness.run_enrichment(
                    case, TWEETS, NODES, batch_size=batches[label], language="java"
                ).throughput
            )
        for label in ("1X", "4X", "16X"):
            row.append(
                harness.run_enrichment(
                    case, TWEETS, NODES, batch_size=batches[label], language="sqlpp"
                ).throughput
            )
        rows.append(row)
    return rows


def test_fig25_udf_enrichment(harness, benchmark, emit):
    result = {}
    benchmark.pedantic(
        lambda: result.setdefault("rows", run_sweep(harness)), rounds=1, iterations=1
    )
    rows = result["rows"]
    emit(
        "fig25_udf_enrichment",
        format_table(
            f"Figure 25 — {TWEETS} tweets with UDFs, {NODES} nodes, "
            "throughput (records/simulated second)",
            ["use case", "static-java", "dyn-java-1X", "dyn-java-4X",
             "dyn-java-16X", "dyn-sqlpp-1X", "dyn-sqlpp-4X", "dyn-sqlpp-16X"],
            rows,
        ),
    )

    by_case = {row[0]: row[1:] for row in rows}
    for title, series in by_case.items():
        static_java = series[0]
        dyn_java_16x = series[3]
        dyn_sqlpp_16x = series[6]
        if title == "Nearby Monuments":
            # the R-tree-probing SQL++ plan beats the scanning Java UDF
            assert dyn_sqlpp_16x > dyn_java_16x, title
        elif title == "Fuzzy Suspects":
            # per-record computation dominates: static's stale state buys
            # little, the two land close together (paper Fig. 25)
            assert static_java >= dyn_java_16x * 0.6, title
        else:
            # stale-state static enrichment wins the hash-join cases
            assert static_java >= dyn_java_16x, title
        # batch size helps (or at least never hurts) dynamic enrichment
        assert series[3] >= series[1] * 0.95, title  # java 16X vs 1X
        assert series[6] >= series[4] * 0.95, title  # sqlpp 16X vs 1X
    # batching helps the cheap hash-join cases far more than the
    # computation-dominated ones (Fuzzy Suspects)
    cheap_gain = by_case["Safety Rating"][6] / by_case["Safety Rating"][4]
    fuzzy_gain = by_case["Fuzzy Suspects"][6] / by_case["Fuzzy Suspects"][4]
    assert cheap_gain > fuzzy_gain
