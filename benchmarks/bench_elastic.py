"""Elastic computing-pool benchmark: worker-count sweep + auto-scaling.

Runs a compute-bound enrichment feed at static pool sizes (1, 2, 4
workers) and once under ``FeedPolicy.elastic()``, verifying:

* >= 1.8x simulated-makespan speedup at 4 workers vs 1;
* byte-identical stored outputs at every worker count (sequencer);
* deterministic repeats (same makespan + output hash);
* the elastic controller actually scales up under congestion.

Output goes to ``BENCH_elastic.json`` at the repo root (simulated
numbers; ``benchmarks/results/`` holds the paper-figure tables only).

Usage::

    python benchmarks/bench_elastic.py            # full run
    python benchmarks/bench_elastic.py --smoke    # quick CI run

Exits non-zero if any invariant fails.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small fast run for CI (fewer records)",
    )
    parser.add_argument("--records", type=int, default=None)
    parser.add_argument("--batch-size", type=int, default=None)
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_elastic.json",
    )
    args = parser.parse_args(argv)

    records = args.records or (960 if args.smoke else 2400)
    batch_size = args.batch_size or (40 if args.smoke else 80)

    from repro.bench.elastic import run_elastic

    result = run_elastic(records=records, batch_size=batch_size)
    result["mode"] = "smoke" if args.smoke else "full"
    args.output.write_text(json.dumps(result, indent=2) + "\n")

    print(f"elastic benchmark -> {args.output}")
    print(
        f"  speedup at max workers: {result['speedup_at_max_workers']:.2f}x "
        f"(floor {result['speedup_floor']}x)"
    )
    print(f"  elastic speedup: {result['elastic_speedup']:.2f}x")
    elastic = result["elastic"]
    print(
        f"  elastic pool: peak {elastic['peak_workers']}, "
        f"{elastic['scale_ups']} up(s), {elastic['scale_downs']} down(s)"
    )
    for name, passed in result["checks"].items():
        print(f"  [{'PASS' if passed else 'FAIL'}] {name}")
    if not result["ok"]:
        print("elastic benchmark FAILED", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
