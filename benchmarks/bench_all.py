"""Perf observatory: run every BENCH_* suite through one harness.

Runs each standalone benchmark script (wallclock, updates, elastic,
chaos, scale-out, external, memo, multitenant) as a subprocess, collects the key machine-comparable
numbers from the ``BENCH_*.json`` each one writes, and appends a per-PR
row to ``BENCH_TRAJECTORY.json`` at the repo root — one row per git
head, so the file reads as the repo's performance history.

Usage::

    python benchmarks/bench_all.py                  # full run, all suites
    python benchmarks/bench_all.py --smoke          # quick CI run
    python benchmarks/bench_all.py --suites wallclock,updates
    python benchmarks/bench_all.py --smoke --baseline BENCH_TRAJECTORY.json

Exit is non-zero if any suite fails its own invariants (each script
already gates itself), or — with ``--baseline`` — if a gated speedup
ratio (wall-clock planned/columnar, or the memo's rate-0 simulated win)
dropped more than ``--baseline-tolerance`` (default 20%) below the last
committed trajectory row.  Speedup *ratios* are compared, never absolute rec/s:
ratios survive machine and workload-size changes, throughput does not.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_DIR = REPO_ROOT / "benchmarks"


def _wallclock_summary(result: dict) -> dict:
    aggregate = result["aggregate"]
    return {
        "speedup": aggregate["speedup"],
        "columnar_speedup": aggregate["columnar_speedup"],
        "planned_records_per_sec": aggregate["planned_records_per_sec"],
        "columnar_records_per_sec": aggregate["columnar_records_per_sec"],
        "interp_normalized_throughput": result["interpreter"]["aggregate"][
            "normalized_throughput"
        ],
    }


def _updates_summary(result: dict) -> dict:
    return {"sim_win_rate0": result["wins"][0], "ok": result["ok"]}


def _elastic_summary(result: dict) -> dict:
    return {
        "speedup_at_max_workers": result["speedup_at_max_workers"],
        "elastic_speedup": result["elastic_speedup"],
        "ok": result["ok"],
    }


def _chaos_summary(result: dict) -> dict:
    return {"scenarios": len(result["scenarios"]), "ok": result["ok"]}


def _external_summary(result: dict) -> dict:
    return {
        "scenarios": len(result["scenarios"]),
        "hard_down_completeness": result["scenarios"]["hard_down"][
            "enrichment_completeness"
        ],
        "ok": result["ok"],
    }


def _memo_summary(result: dict) -> dict:
    high = result["profiles"]["high_skew"]["rates"]
    rate0 = high["0.0"]
    return {
        "sim_win_rate0": rate0["computing_seconds_win"],
        "memo_hits_rate0": rate0["memo_on"]["memo_hits"],
        "parity_all_unique": result["checks"]["exact_parity_at_all_unique_keys"],
        "ok": result["ok"],
    }


def _multitenant_summary(result: dict) -> dict:
    return {
        "skewed_speedup": result["skewed_speedup"],
        "uniform_speedup": result["uniform_speedup"],
        "recalls_issued": result["skewed"]["fabric"]["fabric_summary"][
            "recalls_issued"
        ],
        "ok": result["ok"],
    }


def _scaleout_summary(result: dict) -> dict:
    return {
        "intake_speedup_at_max_partitions": result[
            "intake_speedup_at_max_partitions"
        ],
        "subbatch_speedup_at_quarter_splits": result[
            "subbatch_speedup_at_quarter_splits"
        ],
        "ok": result["ok"],
    }


#: suite name -> (script, output json, summary extractor)
SUITES = {
    "wallclock": ("bench_wallclock.py", "BENCH_wallclock.json", _wallclock_summary),
    "updates": ("bench_updates.py", "BENCH_updates.json", _updates_summary),
    "elastic": ("bench_elastic.py", "BENCH_elastic.json", _elastic_summary),
    "chaos": ("bench_chaos.py", "BENCH_chaos.json", _chaos_summary),
    "scaleout": ("bench_scaleout.py", "BENCH_scaleout.json", _scaleout_summary),
    "external": ("bench_external.py", "BENCH_external.json", _external_summary),
    "memo": ("bench_memo.py", "BENCH_memo.json", _memo_summary),
    "multitenant": (
        "bench_multitenant.py",
        "BENCH_multitenant.json",
        _multitenant_summary,
    ),
}

#: suite -> speedup-ratio metrics the --baseline gate compares (ratios
#: survive machine and workload-size changes; absolute numbers do not)
GATED_RATIOS = {
    "wallclock": ("speedup", "columnar_speedup"),
    "memo": ("sim_win_rate0",),
    "multitenant": ("skewed_speedup",),
}


def _git_label() -> str:
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                cwd=REPO_ROOT,
                capture_output=True,
                text=True,
                check=True,
            ).stdout.strip()
            or "unknown"
        )
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="pass --smoke to every suite (small fast CI run)",
    )
    parser.add_argument(
        "--suites",
        type=str,
        default=",".join(SUITES),
        help="comma-separated subset of: " + ", ".join(SUITES),
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_TRAJECTORY.json",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="previous BENCH_TRAJECTORY.json to gate the wall-clock "
        "speedup ratios against (fail on regression beyond the tolerance)",
    )
    parser.add_argument(
        "--baseline-tolerance",
        type=float,
        default=0.20,
        help="allowed fractional drop in the wall-clock planned/columnar "
        "speedup ratios vs the last baseline row",
    )
    args = parser.parse_args(argv)

    selected = [name.strip() for name in args.suites.split(",") if name.strip()]
    unknown = [name for name in selected if name not in SUITES]
    if unknown:
        parser.error(f"unknown suite(s): {', '.join(unknown)}")

    # Snapshot the baseline row before running: --output may point at the
    # committed BENCH_TRAJECTORY.json, which this run rewrites.  Only rows
    # recorded at the same workload size are comparable — the columnar
    # ratio amortizes fixed per-batch costs over the record count — so the
    # gate uses the most recent row whose mode matches this run's.
    mode = "smoke" if args.smoke else "full"
    baseline_row = None
    if args.baseline is not None and args.baseline.exists():
        rows = json.loads(args.baseline.read_text()).get("rows", [])
        matching = [r for r in rows if r.get("mode") == mode]
        if matching:
            baseline_row = matching[-1]

    suites: dict = {}
    for name in selected:
        script, output_json, summarize = SUITES[name]
        cmd = [sys.executable, str(BENCH_DIR / script)]
        if args.smoke:
            cmd.append("--smoke")
        print(f"=== {name}: {' '.join(cmd[1:])}")
        proc = subprocess.run(cmd, cwd=REPO_ROOT)
        if proc.returncode != 0:
            print(f"FAIL: suite {name} exited {proc.returncode}", file=sys.stderr)
            return proc.returncode
        result = json.loads((REPO_ROOT / output_json).read_text())
        suites[name] = summarize(result)

    row = {
        "label": _git_label(),
        "mode": mode,
        "suites": suites,
    }

    trajectory = {"benchmark": "per-PR performance trajectory", "rows": []}
    if args.output.exists():
        trajectory = json.loads(args.output.read_text())
    rows = trajectory.setdefault("rows", [])
    # One row per (git head, mode): re-running on the same commit replaces
    # the old row instead of appending a duplicate.
    rows[:] = [
        r
        for r in rows
        if (r.get("label"), r.get("mode")) != (row["label"], row["mode"])
    ]
    rows.append(row)
    args.output.write_text(json.dumps(trajectory, indent=2) + "\n")
    print(f"wrote {args.output} ({len(rows)} row(s), head {row['label']})")
    for name, summary in suites.items():
        parts = ", ".join(
            f"{key} {value:.2f}" if isinstance(value, float) else f"{key} {value}"
            for key, value in summary.items()
        )
        print(f"  {name:10s} {parts}")

    if baseline_row is not None:
        for suite_name, metrics in GATED_RATIOS.items():
            if suite_name not in suites:
                continue
            recorded = baseline_row.get("suites", {}).get(suite_name, {})
            current = suites[suite_name]
            for metric in metrics:
                recorded_value = recorded.get(metric)
                if not recorded_value:
                    continue  # baseline predates this metric
                floor = recorded_value * (1.0 - args.baseline_tolerance)
                print(
                    f"  baseline {suite_name} {metric} {recorded_value:.2f}x "
                    f"(floor {floor:.2f}x at {args.baseline_tolerance:.0%} "
                    f"tolerance) -> current {current[metric]:.2f}x"
                )
                if current[metric] < floor:
                    print(
                        f"FAIL: {suite_name} {metric} regressed more than "
                        f"{args.baseline_tolerance:.0%} vs "
                        f"{baseline_row.get('label', '?')} in {args.baseline}",
                        file=sys.stderr,
                    )
                    return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
