"""FeedRunReport metric arithmetic."""

import pytest

from repro.ingestion.feed import BatchStats, FeedRunReport


def make_report(**overrides):
    values = dict(
        feed_name="F",
        framework="dynamic",
        records_ingested=1000,
        records_stored=1000,
        simulated_seconds=10.0,
        intake_seconds=2.0,
        computing_seconds=8.0,
        storage_seconds=1.0,
    )
    values.update(overrides)
    return FeedRunReport(**values)


class TestThroughput:
    def test_steady_state_excludes_fixed_start(self):
        report = make_report(simulated_seconds=12.0, fixed_start_seconds=2.0)
        assert report.throughput == pytest.approx(100.0)

    def test_zero_duration_guarded(self):
        report = make_report(simulated_seconds=0.0)
        assert report.throughput == 0.0

    def test_fixed_start_exceeding_duration_guarded(self):
        report = make_report(simulated_seconds=1.0, fixed_start_seconds=5.0)
        assert report.throughput == 0.0


class TestRefreshMetrics:
    def test_refresh_period_is_mean_makespan(self):
        report = make_report()
        report.batch_stats = [
            BatchStats(0, 100, 0.5, 0.01, 0.1),
            BatchStats(1, 100, 1.5, 0.01, 0.1),
        ]
        assert report.refresh_period == pytest.approx(1.0)

    def test_refresh_period_empty(self):
        assert make_report().refresh_period == 0.0

    def test_refresh_rate(self):
        report = make_report(num_computing_jobs=5, simulated_seconds=10.0)
        assert report.refresh_rate == pytest.approx(0.5)

    def test_refresh_rate_zero_duration(self):
        report = make_report(simulated_seconds=0.0, num_computing_jobs=5)
        assert report.refresh_rate == 0.0

    def test_refresh_rate_excludes_fixed_start(self):
        report = make_report(
            simulated_seconds=12.0, fixed_start_seconds=2.0, num_computing_jobs=5
        )
        assert report.refresh_rate == pytest.approx(0.5)

    def test_throughput_and_refresh_rate_share_denominator(self):
        """Both rates use steady-state seconds (sim minus fixed start)."""
        report = make_report(
            simulated_seconds=12.0,
            fixed_start_seconds=2.0,
            records_stored=1000,
            num_computing_jobs=5,
        )
        steady = report.simulated_seconds - report.fixed_start_seconds
        assert report.throughput == pytest.approx(1000 / steady)
        assert report.refresh_rate == pytest.approx(5 / steady)

    def test_refresh_rate_fixed_start_exceeding_duration_guarded(self):
        report = make_report(
            simulated_seconds=1.0, fixed_start_seconds=5.0, num_computing_jobs=5
        )
        assert report.refresh_rate == 0.0
