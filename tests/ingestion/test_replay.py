"""Dead-letter replay: repaired rows re-ingest, residue stays queryable."""

import json

import pytest

from repro.core import AsterixLite
from repro.errors import AdmParseError
from repro.ingestion import FeedPolicy, GeneratorAdapter, replay_dead_letters


def make_system(policy=None):
    system = AsterixLite(num_nodes=2)
    system.execute(
        """
        CREATE TYPE TweetType AS OPEN { id: int64 };
        CREATE DATASET Tweets(TweetType) PRIMARY KEY id;
        """
    )
    system.create_feed("TweetFeed", {"type-name": "TweetType"})
    system.connect_feed(
        "TweetFeed", "Tweets", policy=policy or FeedPolicy.spill()
    )
    return system


def raws_with_malformed(n, bad_ids):
    return [
        '{"id": %d, "text": ' % i if i in bad_ids else json.dumps({"id": i})
        for i in range(n)
    ]


class TestReplayDeadLetters:
    def _ingest_with_failures(self, bad_ids={4, 11}):
        system = make_system()
        adapter = GeneratorAdapter(raws_with_malformed(20, bad_ids))
        report = system.start_feed("TweetFeed", adapter, batch_size=5)
        assert report.faults.records_dead_lettered == len(bad_ids)
        return system

    def test_repaired_rows_land_in_target_and_clear(self):
        system = self._ingest_with_failures()
        dead_letters = system.catalog["TweetFeed_DeadLetters"]
        # the operator repairs every broken row in place
        for row in list(dead_letters.scan()):
            repaired = dict(row)
            repaired["raw"] = json.dumps({"id": row["seq"]})
            dead_letters.upsert(repaired)

        result = system.replay_dead_letters("TweetFeed", batch_size=5)
        assert result.replayed == 2
        assert result.records_stored == 2
        assert result.still_dead == 0
        assert len(dead_letters) == 0
        stored = sorted(system.query("SELECT VALUE t.id FROM Tweets t"))
        assert stored == list(range(20))

    def test_still_broken_rows_return_to_dead_letters(self):
        system = self._ingest_with_failures()
        dead_letters = system.catalog["TweetFeed_DeadLetters"]
        # repair only seq 4; seq 11 stays malformed
        for row in list(dead_letters.scan()):
            if row["seq"] == 4:
                repaired = dict(row)
                repaired["raw"] = json.dumps({"id": 4})
                dead_letters.upsert(repaired)

        result = replay_dead_letters(system, "TweetFeed", batch_size=5)
        assert result.replayed == 2
        assert result.records_stored == 1
        assert result.still_dead == 1
        residue = list(dead_letters.scan())
        assert len(residue) == 1
        assert "AdmParseError" in residue[0]["error"]
        assert residue[0]["raw"].startswith('{"id": 11')

    def test_replay_without_dead_letters_is_a_no_op(self):
        system = make_system()
        adapter = GeneratorAdapter(raws_with_malformed(10, set()))
        system.start_feed("TweetFeed", adapter, batch_size=5)
        result = system.replay_dead_letters("TweetFeed")
        assert result.replayed == 0
        assert result.run is None

    def test_escalating_policy_restores_snapshot_on_abort(self):
        system = self._ingest_with_failures()
        dead_letters = system.catalog["TweetFeed_DeadLetters"]
        before = sorted(row["dl_id"] for row in dead_letters.scan())
        # a fail-fast policy aborts the replay run on the first still-bad
        # row: every snapshot entry must survive
        with pytest.raises(AdmParseError):
            system.replay_dead_letters(
                "TweetFeed", policy=FeedPolicy.basic()
            )
        after = sorted(row["dl_id"] for row in dead_letters.scan())
        assert after == before

    def test_replay_report_carries_provenance(self):
        system = self._ingest_with_failures(bad_ids={3})
        dead_letters = system.catalog["TweetFeed_DeadLetters"]
        for row in list(dead_letters.scan()):
            repaired = dict(row)
            repaired["raw"] = json.dumps({"id": row["seq"]})
            dead_letters.upsert(repaired)
        result = system.replay_dead_letters("TweetFeed")
        assert result.dead_letter_dataset == "TweetFeed_DeadLetters"
        assert result.replayed_ids == ["parse#3"]
        assert result.run is not None
        assert result.run.records_stored == 1
