"""Dead-letter replay: repaired rows re-ingest, residue stays queryable."""

import json

from repro.core import AsterixLite
from repro.errors import AdmParseError, CircuitBreakerError
from repro.ingestion import FeedPolicy, GeneratorAdapter, replay_dead_letters
from repro.ingestion.replay import classify_replay_error


def make_system(policy=None):
    system = AsterixLite(num_nodes=2)
    system.execute(
        """
        CREATE TYPE TweetType AS OPEN { id: int64 };
        CREATE DATASET Tweets(TweetType) PRIMARY KEY id;
        """
    )
    system.create_feed("TweetFeed", {"type-name": "TweetType"})
    system.connect_feed(
        "TweetFeed", "Tweets", policy=policy or FeedPolicy.spill()
    )
    return system


def raws_with_malformed(n, bad_ids):
    return [
        '{"id": %d, "text": ' % i if i in bad_ids else json.dumps({"id": i})
        for i in range(n)
    ]


class TestReplayDeadLetters:
    def _ingest_with_failures(self, bad_ids={4, 11}):
        system = make_system()
        adapter = GeneratorAdapter(raws_with_malformed(20, bad_ids))
        report = system.start_feed("TweetFeed", adapter, batch_size=5)
        assert report.faults.records_dead_lettered == len(bad_ids)
        return system

    def test_repaired_rows_land_in_target_and_clear(self):
        system = self._ingest_with_failures()
        dead_letters = system.catalog["TweetFeed_DeadLetters"]
        # the operator repairs every broken row in place
        for row in list(dead_letters.scan()):
            repaired = dict(row)
            repaired["raw"] = json.dumps({"id": row["seq"]})
            dead_letters.upsert(repaired)

        result = system.replay_dead_letters("TweetFeed", batch_size=5)
        assert result.replayed == 2
        assert result.records_stored == 2
        assert result.still_dead == 0
        assert len(dead_letters) == 0
        stored = sorted(system.query("SELECT VALUE t.id FROM Tweets t"))
        assert stored == list(range(20))

    def test_still_broken_rows_return_to_dead_letters(self):
        system = self._ingest_with_failures()
        dead_letters = system.catalog["TweetFeed_DeadLetters"]
        # repair only seq 4; seq 11 stays malformed
        for row in list(dead_letters.scan()):
            if row["seq"] == 4:
                repaired = dict(row)
                repaired["raw"] = json.dumps({"id": 4})
                dead_letters.upsert(repaired)

        result = replay_dead_letters(system, "TweetFeed", batch_size=5)
        assert result.replayed == 2
        assert result.records_stored == 1
        assert result.still_dead == 1
        residue = list(dead_letters.scan())
        assert len(residue) == 1
        assert "AdmParseError" in residue[0]["error"]
        assert residue[0]["raw"].startswith('{"id": 11')

    def test_replay_without_dead_letters_is_a_no_op(self):
        system = make_system()
        adapter = GeneratorAdapter(raws_with_malformed(10, set()))
        system.start_feed("TweetFeed", adapter, batch_size=5)
        result = system.replay_dead_letters("TweetFeed")
        assert result.replayed == 0
        assert result.run is None

    def test_escalating_policy_falls_back_to_per_row_replay(self):
        system = self._ingest_with_failures()
        dead_letters = system.catalog["TweetFeed_DeadLetters"]
        before = sorted(row["dl_id"] for row in dead_letters.scan())
        # a fail-fast policy aborts the whole-batch replay on the first
        # still-bad row; the pass falls back to row-at-a-time replay and
        # re-dead-letters each failure instead of raising
        result = system.replay_dead_letters(
            "TweetFeed", policy=FeedPolicy.basic()
        )
        assert result.replayed == 2
        assert result.records_stored == 0
        assert result.still_dead == 2
        after = sorted(row["dl_id"] for row in dead_letters.scan())
        assert after == before  # original dl_ids survive the round-trip

    def test_partial_repair_survives_escalating_policy(self):
        # One repaired row, one still-broken row, fail-fast policy: the
        # old behavior aborted the whole pass; now the good row lands and
        # only the bad one returns to the dead-letter dataset.
        system = self._ingest_with_failures()
        dead_letters = system.catalog["TweetFeed_DeadLetters"]
        for row in list(dead_letters.scan()):
            if row["seq"] == 4:
                repaired = dict(row)
                repaired["raw"] = json.dumps({"id": 4})
                dead_letters.upsert(repaired)
        result = system.replay_dead_letters(
            "TweetFeed", policy=FeedPolicy.basic()
        )
        assert result.records_stored == 1
        assert result.still_dead == 1
        assert 4 in system.query("SELECT VALUE t.id FROM Tweets t")

    def test_replay_failures_carry_attempts_and_classification(self):
        system = self._ingest_with_failures(bad_ids={4})
        dead_letters = system.catalog["TweetFeed_DeadLetters"]
        first = system.replay_dead_letters("TweetFeed", batch_size=5)
        assert first.permanent_failures == 1
        assert first.retryable_failures == 0
        (residue,) = list(dead_letters.scan())
        assert residue["attempts"] == 1
        assert residue["retryable"] is False
        # a second pass without repair bumps the counter again
        second = system.replay_dead_letters("TweetFeed", batch_size=5)
        assert second.permanent_failures == 1
        (residue,) = list(dead_letters.scan())
        assert residue["attempts"] == 2

    def test_classify_replay_error(self):
        assert classify_replay_error(AdmParseError("bad")) == "permanent"
        assert (
            classify_replay_error(CircuitBreakerError("F", 3, 2))
            == "retryable"
        )
        assert classify_replay_error("AdmParseError: boom") == "permanent"
        assert (
            classify_replay_error("ExternalEnrichmentError: down")
            == "retryable"
        )

    def test_replay_report_carries_provenance(self):
        system = self._ingest_with_failures(bad_ids={3})
        dead_letters = system.catalog["TweetFeed_DeadLetters"]
        for row in list(dead_letters.scan()):
            repaired = dict(row)
            repaired["raw"] = json.dumps({"id": row["seq"]})
            dead_letters.upsert(repaired)
        result = system.replay_dead_letters("TweetFeed")
        assert result.dead_letter_dataset == "TweetFeed_DeadLetters"
        assert result.replayed_ids == ["parse#3"]
        assert result.run is not None
        assert result.run.records_stored == 1
