"""Reference update clients (the §7.3 machinery)."""

import itertools

import pytest

from repro.ingestion import CompositeUpdateClient, ReferenceUpdateClient


def make_client(rate, applied):
    source = ({"id": i} for i in itertools.count())
    return ReferenceUpdateClient(rate, source, applied.append)


class TestReferenceUpdateClient:
    def test_rate_times_elapsed(self):
        applied = []
        client = make_client(10.0, applied)
        assert client.advance(1.0) == 10
        assert len(applied) == 10

    def test_fractional_carryover(self):
        applied = []
        client = make_client(1.0, applied)
        for _ in range(4):
            client.advance(0.3)
        assert len(applied) == 1  # 1.2 accumulated
        client.advance(0.9)
        assert len(applied) == 2

    def test_zero_rate_never_fires(self):
        applied = []
        client = make_client(0.0, applied)
        assert client.advance(100.0) == 0
        assert applied == []

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            ReferenceUpdateClient(-1, iter([]), lambda r: None)

    def test_exhausted_source_stops_quietly(self):
        applied = []
        client = ReferenceUpdateClient(10.0, iter([{"id": 1}]), applied.append)
        assert client.advance(1.0) == 1
        assert client.advance(1.0) == 0

    def test_exhaustion_is_surfaced_and_stops_activity(self):
        """Regression: exhaustion used to silently zero ``_carry`` while
        still accepting ``advance`` calls as if updates kept flowing."""
        applied = []
        client = ReferenceUpdateClient(10.0, iter([{"id": 1}]), applied.append)
        assert not client.exhausted
        client.advance(1.0)
        assert client.exhausted
        # Subsequent advances are no-ops: no carry accumulates, nothing
        # fires, the applied counter stays frozen.
        assert client.advance(5.0) == 0
        assert client._carry == 0.0
        assert client.applied == 1
        assert applied == [{"id": 1}]

    def test_unexhausted_client_not_flagged(self):
        client = make_client(1.0, [])
        client.advance(10.0)
        assert not client.exhausted

    def test_applied_counter(self):
        client = make_client(5.0, [])
        client.advance(2.0)
        assert client.applied == 10

    def test_updates_activate_lsm_memtable(self):
        from repro.adm import open_type
        from repro.storage import Dataset

        ds = Dataset("R", open_type("T", id="int64"), "id", validate=False)
        ds.insert({"id": 1, "v": 0})
        ds.flush_all()
        assert not ds.update_activity
        client = ReferenceUpdateClient(
            1.0, iter([{"id": 1, "v": 1}]), ds.upsert
        )
        client.advance(1.0)
        assert ds.update_activity  # the §7.3 in-memory component effect


class TestCompositeClient:
    def test_fans_out(self):
        a, b = [], []
        composite = CompositeUpdateClient([make_client(1.0, a), make_client(2.0, b)])
        fired = composite.advance(1.0)
        assert fired == 3
        assert composite.applied == 3
        assert len(a) == 1 and len(b) == 2

    def test_exhausted_only_when_all_members_are(self):
        finite = ReferenceUpdateClient(
            10.0, iter([{"id": 1}]), lambda r: None
        )
        endless = make_client(1.0, [])
        composite = CompositeUpdateClient([finite, endless])
        composite.advance(1.0)
        assert finite.exhausted
        assert not composite.exhausted
        alone = CompositeUpdateClient([finite])
        assert alone.exhausted
