"""Ingestion policies: soft errors, dead letters, congestion, recovery."""

import json

import pytest

from repro.adm import open_type
from repro.cluster import Cluster
from repro.core import AsterixLite
from repro.errors import AdmParseError, CircuitBreakerError
from repro.ingestion import (
    AttachedFunction,
    DynamicIngestionPipeline,
    FeedDefinition,
    FeedPolicy,
    Framework,
    GeneratorAdapter,
    QueueAdapter,
    SoftErrorAction,
    SoftErrorHandler,
    StaticIngestionPipeline,
    CongestionAction,
)
from repro.runtime import CrashAt, FaultMetrics, FaultPlan
from repro.storage import Dataset
from repro.udf import FunctionRegistry


def make_env():
    target = Dataset("T", open_type("TT", id="int64"), "id",
                     num_partitions=2, validate=False)
    catalog = {"T": target}
    registry = FunctionRegistry(lambda: set(catalog))
    registry.register_sqlpp(
        """
        CREATE FUNCTION explodeOnSeven(t) {
            LET x = 1 / (t.id - 7)
            SELECT t.*, x
        }
        """
    )
    return catalog, registry


def raws_with_malformed(n, bad_ids=()):
    out = []
    for i in range(n):
        if i in bad_ids:
            out.append('{"id": %d, "text": ' % i)  # truncated JSON
        else:
            out.append(json.dumps({"id": i}))
    return out


class TestPresets:
    def test_preset_actions(self):
        assert FeedPolicy.basic().on_soft_error is SoftErrorAction.FAIL
        assert FeedPolicy.basic().max_restarts == 0
        spill = FeedPolicy.spill()
        assert spill.on_soft_error is SoftErrorAction.DEAD_LETTER
        assert spill.on_congestion is CongestionAction.BLOCK
        discard = FeedPolicy.discard()
        assert discard.on_soft_error is SoftErrorAction.SKIP
        assert discard.on_congestion is CongestionAction.DISCARD
        throttle = FeedPolicy.throttle()
        assert throttle.on_congestion is CongestionAction.THROTTLE
        elastic = FeedPolicy.elastic()
        assert elastic.max_consecutive_soft_errors == 64
        assert elastic.max_restarts == 8

    def test_preset_overrides(self):
        policy = FeedPolicy.spill(
            max_consecutive_soft_errors=3, dead_letter_dataset="Morgue"
        )
        assert policy.name == "Spill"
        assert policy.max_consecutive_soft_errors == 3
        assert policy.dead_letter_name("F") == "Morgue"
        assert FeedPolicy.spill().dead_letter_name("F") == "F_DeadLetters"

    def test_restart_policy_projection(self):
        policy = FeedPolicy.elastic(backoff_initial_seconds=0.1)
        restart = policy.restart_policy()
        assert restart.max_restarts == 8
        assert restart.backoff_initial_seconds == pytest.approx(0.1)


class TestSoftErrorHandler:
    def test_fail_reraises_original(self):
        handler = SoftErrorHandler("F", FeedPolicy.basic(), FaultMetrics())
        error = AdmParseError("bad", seq=3)
        with pytest.raises(AdmParseError):
            handler.handle("parse", "{bad", error)

    def test_skip_counts(self):
        faults = FaultMetrics()
        handler = SoftErrorHandler("F", FeedPolicy.discard(), faults)
        handler.handle("parse", "{bad", AdmParseError("bad"))
        assert faults.records_skipped == 1
        assert faults.records_dead_lettered == 0

    def test_dead_letter_without_dataset_degrades_to_skip(self):
        faults = FaultMetrics()
        handler = SoftErrorHandler("F", FeedPolicy.spill(), faults, None)
        handler.handle("parse", "{bad", AdmParseError("bad"))
        assert faults.records_skipped == 1

    def test_breaker_trips_after_consecutive_failures(self):
        faults = FaultMetrics()
        policy = FeedPolicy.discard(max_consecutive_soft_errors=2)
        handler = SoftErrorHandler("F", policy, faults)
        handler.handle("parse", "a", AdmParseError("bad"))
        handler.handle("parse", "b", AdmParseError("bad"))
        with pytest.raises(CircuitBreakerError) as info:
            handler.handle("parse", "c", AdmParseError("bad"))
        assert info.value.consecutive == 3
        assert faults.circuit_breaker_trips == 1

    def test_success_resets_breaker_streak(self):
        faults = FaultMetrics()
        policy = FeedPolicy.discard(max_consecutive_soft_errors=2)
        handler = SoftErrorHandler("F", policy, faults)
        for _ in range(5):
            handler.handle("parse", "a", AdmParseError("bad"))
            handler.note_success()
        handler.handle("parse", "a", AdmParseError("bad"))
        handler.handle("parse", "a", AdmParseError("bad"))
        assert faults.circuit_breaker_trips == 0

    def test_dead_letter_key_is_replay_stable(self):
        faults = FaultMetrics()
        dataset = Dataset(
            "DL", open_type("DLT", dl_id="string"), "dl_id", validate=False
        )
        handler = SoftErrorHandler("F", FeedPolicy.spill(), faults, dataset)
        for _ in range(2):  # the same record replayed after a crash
            handler.handle("parse", "{bad", AdmParseError("bad"), seq=17)
        assert len(dataset) == 1  # upserted, not duplicated
        entry = next(iter(dataset.scan()))
        assert entry["dl_id"] == "parse#17"
        assert entry["seq"] == 17
        assert entry["raw"] == "{bad"
        assert "AdmParseError" in entry["error"]


class TestBreakerEdges:
    """Edge behavior of the max-consecutive-failures feed breaker."""

    def _handler(self, limit, dataset=None):
        faults = FaultMetrics()
        policy = FeedPolicy.spill(max_consecutive_soft_errors=limit)
        return SoftErrorHandler("F", policy, faults, dataset), faults

    def test_exactly_n_failures_do_not_trip(self):
        # the limit is a tolerance: N consecutive soft errors are absorbed,
        # only failure N+1 escalates
        handler, faults = self._handler(limit=3)
        for seq in range(3):
            handler.handle("parse", f"r{seq}", AdmParseError("bad"), seq=seq)
        assert handler.consecutive == 3
        assert faults.circuit_breaker_trips == 0
        with pytest.raises(CircuitBreakerError) as info:
            handler.handle("parse", "r3", AdmParseError("bad"), seq=3)
        assert info.value.consecutive == 4
        assert info.value.limit == 3
        assert faults.circuit_breaker_trips == 1

    def test_success_at_boundary_resets_counter(self):
        # a success when the streak sits exactly at the limit resets it:
        # the next failure starts a fresh streak of one
        handler, faults = self._handler(limit=2)
        handler.handle("parse", "a", AdmParseError("bad"))
        handler.handle("parse", "b", AdmParseError("bad"))
        handler.note_success()
        assert handler.consecutive == 0
        handler.handle("parse", "c", AdmParseError("bad"))
        handler.handle("parse", "d", AdmParseError("bad"))
        assert faults.circuit_breaker_trips == 0

    def test_zero_limit_disables_breaker(self):
        handler, faults = self._handler(limit=0)
        for seq in range(50):
            handler.handle("parse", f"r{seq}", AdmParseError("bad"), seq=seq)
        assert faults.circuit_breaker_trips == 0

    def test_pre_trip_failures_are_dead_lettered_but_not_the_trip(self):
        # failures below the limit route to the dead-letter dataset; the
        # tripping failure escalates *instead of* being dead-lettered, so
        # the dataset holds exactly the absorbed residue
        dataset = Dataset(
            "DL", open_type("DLT", dl_id="string"), "dl_id", validate=False
        )
        handler, faults = self._handler(limit=2, dataset=dataset)
        handler.handle("parse", "a", AdmParseError("bad"), seq=0)
        handler.handle("parse", "b", AdmParseError("bad"), seq=1)
        with pytest.raises(CircuitBreakerError):
            handler.handle("parse", "c", AdmParseError("bad"), seq=2)
        assert faults.records_dead_lettered == 2
        assert sorted(r["dl_id"] for r in dataset.scan()) == [
            "parse#0",
            "parse#1",
        ]

    def test_feed_level_trip_escalates_and_keeps_dead_letters(self):
        system = AsterixLite(num_nodes=2)
        system.execute(
            """
            CREATE TYPE TweetType AS OPEN { id: int64 };
            CREATE DATASET Tweets(TweetType) PRIMARY KEY id;
            """
        )
        system.create_feed("TweetFeed", {"type-name": "TweetType"})
        system.connect_feed(
            "TweetFeed",
            "Tweets",
            policy=FeedPolicy.spill(max_consecutive_soft_errors=2),
        )
        # three consecutive malformed rows: two dead-letter, the third trips
        raws = [json.dumps({"id": i}) for i in range(4)]
        raws[1:1] = ['{"id": x', '{"id": y', '{"id": z']
        with pytest.raises(CircuitBreakerError):
            system.start_feed(
                "TweetFeed", GeneratorAdapter(raws), batch_size=4
            )
        dead = list(system.catalog["TweetFeed_DeadLetters"].scan())
        assert len(dead) == 2


class TestPipelinePolicies:
    def test_default_policy_fails_fast_like_the_seed(self):
        catalog, _registry = make_env()
        pipeline = DynamicIngestionPipeline(Cluster(2), catalog)
        feed = FeedDefinition("F", "T", batch_size=4)
        with pytest.raises(AdmParseError):
            pipeline.run(
                feed, GeneratorAdapter(raws_with_malformed(8, bad_ids={2}))
            )

    def test_skip_policy_drops_malformed_and_continues(self):
        catalog, _registry = make_env()
        pipeline = DynamicIngestionPipeline(Cluster(2), catalog)
        feed = FeedDefinition(
            "F", "T", batch_size=4, policy=FeedPolicy.discard()
        )
        report = pipeline.run(
            feed, GeneratorAdapter(raws_with_malformed(12, bad_ids={2, 9}))
        )
        assert report.records_stored == 10
        assert report.faults.records_skipped == 2
        assert sorted(r["id"] for r in catalog["T"].scan()) == [
            i for i in range(12) if i not in (2, 9)
        ]

    def test_udf_soft_errors_dead_lettered(self):
        catalog, registry = make_env()
        pipeline = DynamicIngestionPipeline(Cluster(2), catalog, registry)
        feed = FeedDefinition(
            "F", "T", batch_size=4,
            functions=[AttachedFunction("explodeOnSeven")],
            policy=FeedPolicy.spill(),
        )
        raws = [json.dumps({"id": i}) for i in range(10)]
        report = pipeline.run(feed, GeneratorAdapter(raws))
        assert report.records_stored == 9  # id 7 exploded
        assert report.faults.records_dead_lettered == 1
        entries = list(catalog["F_DeadLetters"].scan())
        assert len(entries) == 1
        assert entries[0]["stage"] == "udf"
        assert "ZeroDivisionError" in entries[0]["error"]
        assert json.loads(entries[0]["raw"])["id"] == 7

    def test_circuit_breaker_aborts_error_storm(self):
        catalog, _registry = make_env()
        pipeline = DynamicIngestionPipeline(Cluster(2), catalog)
        feed = FeedDefinition(
            "F", "T", batch_size=4,
            policy=FeedPolicy.discard(max_consecutive_soft_errors=3),
        )
        # ten malformed records in a row: the breaker must trip
        with pytest.raises(CircuitBreakerError):
            pipeline.run(
                feed,
                GeneratorAdapter(raws_with_malformed(10, bad_ids=set(range(10)))),
            )

    def test_static_pipeline_honors_skip_policy(self):
        catalog, _registry = make_env()
        pipeline = StaticIngestionPipeline(Cluster(2), catalog)
        feed = FeedDefinition(
            "F", "T", framework=Framework.STATIC,
            policy=FeedPolicy.discard(),
        )
        report = pipeline.run(
            feed, GeneratorAdapter(raws_with_malformed(8, bad_ids={5}))
        )
        assert report.records_stored == 7
        assert report.faults.records_skipped == 1

    def test_idle_adapter_times_out_per_policy(self):
        catalog, _registry = make_env()
        pipeline = DynamicIngestionPipeline(Cluster(2), catalog)
        adapter = QueueAdapter()
        adapter.send_many(json.dumps({"id": i}) for i in range(3))
        # the producer never calls end(): the policy's idle timeout is what
        # completes the feed instead of a FeedStateError crash
        feed = FeedDefinition(
            "F", "T", batch_size=8,
            policy=FeedPolicy.discard(
                adapter_idle_timeout_seconds=1.0, adapter_idle_poll_seconds=0.25
            ),
        )
        report = pipeline.run(feed, adapter)
        assert report.records_stored == 3
        assert report.faults.idle_timeouts == 1
        assert report.runtime.layers["intake"].idle >= 1.0


class TestCongestionReactions:
    def _congested_feed(self, policy):
        catalog, registry = make_env()
        pipeline = DynamicIngestionPipeline(Cluster(2), catalog, registry)
        feed = FeedDefinition(
            "F", "T", batch_size=8, intake_holder_capacity=1,
            functions=[AttachedFunction("explodeOnSeven")],
            policy=policy,
        )
        raws = [json.dumps({"id": i}) for i in range(64) if i != 7]
        report = pipeline.run(feed, GeneratorAdapter(raws))
        return report, catalog

    def test_discard_congestion_drops_frames_and_counts(self):
        report, catalog = self._congested_feed(
            FeedPolicy.discard(on_soft_error=SoftErrorAction.SKIP)
        )
        faults = report.faults
        # capacity-1 holders against a slow UDF job guarantee congestion
        assert faults.frames_dropped > 0
        assert faults.records_discarded > 0
        assert report.records_stored < report.records_ingested

    def test_throttle_congestion_slows_admission_losslessly(self):
        report, _catalog = self._congested_feed(FeedPolicy.throttle())
        assert report.records_stored == report.records_ingested
        # admission slowed instead of dropping: delays accrued, nothing lost
        assert report.faults.throttle_seconds > 0.0
        assert report.faults.records_discarded == 0


class TestSystemLevelDeadLetters:
    def _system(self):
        system = AsterixLite(num_nodes=2)
        system.execute(
            """
            CREATE TYPE TweetType AS OPEN { id: int64 };
            CREATE DATASET Tweets(TweetType) PRIMARY KEY id;
            """
        )
        system.create_feed("TweetFeed", {"type-name": "TweetType"})
        return system

    def test_dead_letters_queryable_via_sqlpp(self):
        system = self._system()
        system.connect_feed("TweetFeed", "Tweets", policy=FeedPolicy.spill())
        adapter = GeneratorAdapter(raws_with_malformed(20, bad_ids={4, 11}))
        report = system.start_feed("TweetFeed", adapter, batch_size=5)
        assert report.records_stored == 18
        assert report.faults.records_dead_lettered == 2
        rows = system.query(
            "SELECT VALUE d.seq FROM TweetFeed_DeadLetters d"
        )
        assert sorted(rows) == [4, 11]
        errors = system.query(
            "SELECT VALUE d.error FROM TweetFeed_DeadLetters d"
        )
        assert all("AdmParseError" in e for e in errors)

    def test_start_feed_policy_overrides_connect_policy(self):
        system = self._system()
        system.connect_feed("TweetFeed", "Tweets")  # Basic by default
        adapter = GeneratorAdapter(raws_with_malformed(10, bad_ids={3}))
        report = system.start_feed(
            "TweetFeed", adapter, batch_size=5, policy=FeedPolicy.discard()
        )
        assert report.records_stored == 9
        assert report.faults.records_skipped == 1


class TestAcceptanceScenario:
    """ISSUE acceptance: 1% malformed + a mid-run computing crash under
    Spill completes with zero acked-record loss, queryable dead letters,
    and byte-identical fault counters across two identical runs."""

    BAD_IDS = frozenset(i for i in range(1000) if i % 100 == 37)

    def _run_once(self):
        system = AsterixLite(num_nodes=2)
        system.execute(
            """
            CREATE TYPE TweetType AS OPEN { id: int64 };
            CREATE DATASET Tweets(TweetType) PRIMARY KEY id;
            """
        )
        system.create_feed("TweetFeed", {"type-name": "TweetType"})
        system.connect_feed("TweetFeed", "Tweets", policy=FeedPolicy.spill())
        plan = FaultPlan(
            crashes=(CrashAt(at=0.01, target="computing"),), seed=7
        )
        adapter = GeneratorAdapter(
            raws_with_malformed(1000, bad_ids=self.BAD_IDS)
        )
        report = system.start_feed(
            "TweetFeed", adapter, batch_size=100, fault_plan=plan
        )
        return system, report

    def test_zero_acked_loss_and_deterministic_counters(self):
        system, report = self._run_once()
        faults = report.faults
        assert faults.crashes == 1
        assert faults.restarts == 1
        # every well-formed record survives the crash (at-least-once +
        # pk-upsert dedup)
        expected = {i for i in range(1000) if i not in self.BAD_IDS}
        stored = set(system.query("SELECT VALUE t.id FROM Tweets t"))
        assert stored == expected
        # every malformed record is dead-lettered exactly once, replay or no
        dead = system.query("SELECT VALUE d.seq FROM TweetFeed_DeadLetters d")
        assert sorted(dead) == sorted(self.BAD_IDS)
        # determinism: an identical second run produces byte-identical
        # fault counters
        _system2, report2 = self._run_once()
        assert json.dumps(faults.as_dict(), sort_keys=True) == json.dumps(
            report2.faults.as_dict(), sort_keys=True
        )
        assert report.simulated_seconds == report2.simulated_seconds


class TestCrashReplay:
    def test_inflight_batch_replays_after_computing_crash(self):
        catalog, _registry = make_env()
        pipeline = DynamicIngestionPipeline(Cluster(2), catalog)
        # crash inside a computing job's makespan: the un-acked batch must
        # replay after the restart
        plan = FaultPlan(crashes=(CrashAt(at=0.004, target="computing"),))
        feed = FeedDefinition(
            "F", "T", batch_size=16, policy=FeedPolicy.spill(),
            fault_plan=plan,
        )
        raws = [json.dumps({"id": i}) for i in range(64)]
        report = pipeline.run(feed, GeneratorAdapter(raws))
        assert report.faults.crashes == 1
        assert report.faults.records_replayed > 0
        assert sorted(r["id"] for r in catalog["T"].scan()) == list(range(64))
