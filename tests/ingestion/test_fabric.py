"""Multi-tenant feed fabric: lease arbitration, memory governor, fleets."""

import json

import pytest

from repro.core import AsterixLite
from repro.errors import IngestionError
from repro.ingestion import (
    FeedFabric,
    FeedLaunch,
    FeedPolicy,
    FeedSignals,
    GeneratorAdapter,
    MemoryGovernor,
)
from repro.runtime import CrashAt, FaultPlan
from repro.sqlpp.state_cache import StateCache

CONGESTED = FeedSignals(
    occupancy=1.0, backlog_batches=4, producer_blocked=True,
    congested=True, starved=False,
)
QUIET = FeedSignals(
    occupancy=0.0, backlog_batches=0, producer_blocked=False,
    congested=False, starved=True,
)


def elastic(floor=1, cap=4, priority=1, **overrides):
    return FeedPolicy.elastic(
        min_computing_workers=floor, max_computing_workers=cap,
        priority=priority, **overrides,
    )


class _Pool:
    """Stub feed pool: counts grants, always accepts recalls."""

    def __init__(self):
        self.grown = 0
        self.recalled = 0

    def grow(self):
        self.grown += 1

    def recall(self):
        self.recalled += 1
        return True


def enroll(fabric, name, policy, pool=None):
    pool = pool or _Pool()
    fabric.register_feed(name, policy, grow=pool.grow, recall=pool.recall)
    fabric.note_initial(name, policy.min_computing_workers)
    return pool


class TestFabricArbiter:
    def test_validate_rejects_oversubscribed_floors(self):
        fabric = FeedFabric(total_workers=3)
        policies = [("A", elastic(floor=2)), ("B", elastic(floor=2))]
        with pytest.raises(IngestionError):
            fabric.validate(policies)

    def test_note_initial_over_budget_raises(self):
        fabric = FeedFabric(total_workers=2)
        fabric.register_feed("A", elastic(floor=2))
        fabric.register_feed("B", elastic(floor=2))
        fabric.note_initial("A", 2)
        with pytest.raises(IngestionError):
            fabric.note_initial("B", 2)

    def test_single_use_per_run(self):
        fabric = FeedFabric(total_workers=2)
        fabric.bind(runtime=None)
        with pytest.raises(IngestionError):
            fabric.bind(runtime=None)

    def test_acquire_funds_from_spare_then_queues(self):
        fabric = FeedFabric(total_workers=3)
        enroll(fabric, "A", elastic(cap=3))
        enroll(fabric, "B", elastic(cap=3))
        fabric.tick("A", CONGESTED)
        assert fabric.acquire("A") is True  # spare worker funded directly
        assert fabric.spare == 0
        assert fabric.acquire("A") is False  # bid queued, nothing spare
        assert fabric.leases_granted == 1

    def test_acquire_refuses_beyond_cap(self):
        fabric = FeedFabric(total_workers=4)
        enroll(fabric, "A", elastic(cap=2))
        fabric.tick("A", CONGESTED)
        assert fabric.acquire("A") is True  # held 2 == cap
        assert fabric.acquire("A") is False
        assert fabric.total_held == 2  # cap bounds the grant, budget spare

    def test_release_funds_highest_priority_bid_first(self):
        fabric = FeedFabric(total_workers=2)
        pool_a = enroll(fabric, "A", elastic(priority=1))
        pool_b = enroll(fabric, "B", elastic(priority=2))
        fabric.tick("A", CONGESTED)
        fabric.tick("B", CONGESTED)
        assert fabric.acquire("A") is False  # queued first
        assert fabric.acquire("B") is False  # queued second, higher priority
        fabric.release_worker("A")  # A's worker drains at EOF
        assert pool_b.grown == 1  # priority outranks arrival order
        assert pool_a.grown == 0
        assert fabric.total_held == 2

    def test_congestion_cleared_bid_is_dropped(self):
        fabric = FeedFabric(total_workers=2)
        pool_a = enroll(fabric, "A", elastic())
        enroll(fabric, "B", elastic())
        fabric.tick("A", CONGESTED)
        assert fabric.acquire("A") is False
        fabric.tick("A", QUIET)  # backlog drained while queued
        fabric.release_worker("B")
        assert pool_a.grown == 0  # stale bid was not funded
        assert fabric.spare == 1

    def test_recall_targets_lowest_priority_uncongested_tenant(self):
        fabric = FeedFabric(total_workers=3)
        pool_a = enroll(fabric, "A", elastic(priority=1, cap=3))
        pool_b = enroll(fabric, "B", elastic(priority=2, cap=3))
        fabric.tick("A", CONGESTED)
        assert fabric.acquire("A") is True  # A borrows the spare worker
        fabric.tick("A", QUIET)  # ...then goes idle still holding it
        fabric.tick("B", CONGESTED)
        assert fabric.acquire("B") is False  # queued; recall goes out to A
        assert pool_a.recalled == 1
        assert fabric.recalls_issued == 1
        fabric.release_worker("A")  # A retires the recalled worker
        assert pool_b.grown == 1  # freed slot funds B's standing bid
        assert fabric.total_held == 3

    def test_recall_never_victimizes_a_floor_tenant(self):
        fabric = FeedFabric(total_workers=2)
        pool_a = enroll(fabric, "A", elastic())
        enroll(fabric, "B", elastic())
        fabric.tick("A", QUIET)  # A idle but at floor: not a candidate
        fabric.tick("B", CONGESTED)
        assert fabric.acquire("B") is False
        assert pool_a.recalled == 0
        assert fabric.recalls_issued == 0

    def test_deregister_returns_all_held_leases(self):
        fabric = FeedFabric(total_workers=3)
        enroll(fabric, "A", elastic(cap=3))
        pool_b = enroll(fabric, "B", elastic(cap=3))
        fabric.tick("A", CONGESTED)
        assert fabric.acquire("A") is True
        fabric.tick("B", CONGESTED)
        assert fabric.acquire("B") is False  # queued behind A's borrow
        fabric.deregister_feed("A")  # A's run ends wholesale
        assert pool_b.grown == 1  # freed capacity funds B immediately
        assert fabric.total_held == 2

    def test_ledger_never_exceeds_budget(self):
        fabric = FeedFabric(total_workers=3)
        enroll(fabric, "A", elastic(cap=3))
        enroll(fabric, "B", elastic(cap=3))
        fabric.tick("A", CONGESTED)
        fabric.acquire("A")
        fabric.acquire("A")
        fabric.release_worker("A")
        fabric.deregister_feed("A")
        fabric.deregister_feed("B")
        assert fabric.lease_events
        assert all(
            total <= fabric.total_workers
            for _t, _feed, _event, _held, total in fabric.lease_events
        )
        assert fabric.total_held == 0


class TestMemoryGovernor:
    @staticmethod
    def _window(cache, hits, misses, version=1):
        for i in range(hits):
            cache.put(("hot", i), version, {"v": i}, 1, nbytes=64)
            assert cache.get(("hot", i), version) is not None
        for i in range(misses):
            assert cache.get(("cold", i), version) is None

    def test_budgets_track_window_hit_ratio(self):
        governor = MemoryGovernor(total_bytes=1024 * 1024)
        hot, cold = StateCache(label="A.state"), StateCache(label="B.state")
        governor.register("A", hot.kind, hot, 1, 1.0)
        governor.register("B", cold.kind, cold, 1, 1.0)
        self._window(hot, hits=20, misses=0)
        self._window(cold, hits=0, misses=20)
        governor.rebalance(now=1.0)
        tenants = governor.summary()["tenants"]
        assert tenants["A/state"]["budget_bytes"] > tenants["B/state"]["budget_bytes"]

    def test_midrun_hit_ratio_shift_moves_bytes(self):
        governor = MemoryGovernor(total_bytes=1024 * 1024)
        a, b = StateCache(label="A.state"), StateCache(label="B.state")
        governor.register("A", a.kind, a, 1, 1.0)
        governor.register("B", b.kind, b, 1, 1.0)
        self._window(a, hits=20, misses=0)
        self._window(b, hits=0, misses=20)
        governor.rebalance(now=1.0)
        first = {
            key: t["budget_bytes"]
            for key, t in governor.summary()["tenants"].items()
        }
        assert first["A/state"] > first["B/state"]
        # the workload inverts: A goes cold, B goes hot; the EWMA folds
        # each window in at 0.5 weight, so two windows cross the budgets
        for window in (2.0, 3.0):
            self._window(a, hits=0, misses=20, version=int(window))
            self._window(b, hits=20, misses=0, version=int(window))
            governor.rebalance(now=window)
        second = {
            key: t["budget_bytes"]
            for key, t in governor.summary()["tenants"].items()
        }
        assert second["B/state"] > second["A/state"]
        assert governor.grants  # every budget move is a ledger entry

    def test_budgets_quantized_and_within_total(self):
        governor = MemoryGovernor(total_bytes=300_000)
        caches = [StateCache(label=f"F{i}.state") for i in range(3)]
        for i, cache in enumerate(caches):
            governor.register(f"F{i}", cache.kind, cache, 1, 1.0)
        governor.rebalance(now=1.0)
        budgets = [
            t["budget_bytes"] for t in governor.summary()["tenants"].values()
        ]
        assert sum(budgets) <= governor.total_bytes
        # all but the remainder-absorbing top tenant land on grant boundaries
        assert sum(1 for b in budgets if b % 4096 != 0) <= 1

    def test_priority_weighs_cold_budgets(self):
        governor = MemoryGovernor(total_bytes=1024 * 1024)
        a, b = StateCache(label="A.state"), StateCache(label="B.state")
        governor.register("A", a.kind, a, 2, 1.0)
        governor.register("B", b.kind, b, 1, 1.0)
        tenants = governor.summary()["tenants"]
        assert tenants["A/state"]["budget_bytes"] > tenants["B/state"]["budget_bytes"]

    def test_shrink_applies_eviction_pressure(self):
        governor = MemoryGovernor(total_bytes=64 * 4096)
        a, b = StateCache(label="A.state"), StateCache(label="B.state")
        governor.register("A", a.kind, a, 1, 1.0)
        # A fills its whole solo budget...
        for i in range(100):
            a.put(("k", i), 1, {"v": i}, 1, nbytes=2048)
        resident_before = a.current_bytes
        # ...then a hot second tenant arrives and the split shrinks A:
        # the lowest-value tenant absorbs the eviction pressure at once
        governor.register("B", b.kind, b, 1, 1.0)
        self._window(b, hits=20, misses=0)
        governor.rebalance(now=1.0)
        assert a.current_bytes <= resident_before
        assert a.current_bytes <= governor.summary()["tenants"]["A/state"][
            "budget_bytes"
        ]


# --------------------------------------------------------------- fleet runs


def build_fleet(names, words=40):
    system = AsterixLite(num_nodes=2)
    system.execute(
        """
        CREATE TYPE TweetType AS OPEN { id: int64, text: string };
        CREATE TYPE WordType AS OPEN { wid: int64 };
        CREATE DATASET SensitiveWords(WordType) PRIMARY KEY wid;
        """
    )
    system.insert(
        "SensitiveWords",
        [{"wid": i, "country": "US", "word": f"w{i}"} for i in range(words)],
    )
    system.execute(
        """
        CREATE FUNCTION heavyCheck(tweet) {
            LET flag = CASE
                EXISTS(SELECT w FROM SensitiveWords w
                       WHERE tweet.country = w.country
                         AND contains(tweet.text, w.word))
                WHEN true THEN "Red" ELSE "Green" END
            SELECT tweet.*, flag
        };
        """
    )
    for name in names:
        system.execute(
            f"""
            CREATE DATASET Enriched{name}(TweetType) PRIMARY KEY id;
            CREATE FEED {name} WITH {{ "type-name": "TweetType" }};
            CONNECT FEED {name} TO DATASET Enriched{name}
                APPLY FUNCTION heavyCheck;
            """
        )
    return system


def raws(records, tag):
    return [
        json.dumps({"id": i, "text": f"tweet {i} of {tag}", "country": "US"})
        for i in range(records)
    ]


SKEW = {"Heavy": 360, "LightA": 60, "LightB": 60}


def run_fleet(fabric=None, policies=None, fault_plans=None, counts=None):
    counts = counts or SKEW
    system = build_fleet(list(counts))
    policies = policies or {
        name: elastic(cap=4, priority=2 if count == max(counts.values()) else 1)
        for name, count in counts.items()
    }
    launches = [
        FeedLaunch(
            feed=name,
            adapter=GeneratorAdapter(raws(count, name)),
            batch_size=30,
            policy=policies[name],
            fault_plan=(fault_plans or {}).get(name),
        )
        for name, count in counts.items()
    ]
    reports = system.start_feeds(launches, fabric=fabric)
    stored = {
        name: sorted(
            (r["id"], r["flag"])
            for r in system.catalog[f"Enriched{name}"].scan()
        )
        for name in counts
    }
    return reports, stored


class TestFleetParity:
    def test_outputs_byte_identical_fabric_on_off(self):
        fabric = FeedFabric(total_workers=4)
        with_fabric, stored_on = run_fleet(fabric=fabric)
        _, stored_off = run_fleet(fabric=None)
        assert stored_on == stored_off
        assert all(
            len(stored_on[name]) == count for name, count in SKEW.items()
        )
        # the skewed tenant actually borrowed idle tenants' workers
        assert with_fabric["Heavy"].borrowed_workers >= 1
        assert with_fabric["Heavy"].lease_timeline
        assert with_fabric["LightA"].borrowed_workers == 0

    def test_fleet_runs_are_deterministic(self):
        reports_1, stored_1 = run_fleet(fabric=FeedFabric(total_workers=4))
        reports_2, stored_2 = run_fleet(fabric=FeedFabric(total_workers=4))
        assert stored_1 == stored_2
        assert {
            name: report.runtime.makespan_seconds
            for name, report in reports_1.items()
        } == {
            name: report.runtime.makespan_seconds
            for name, report in reports_2.items()
        }

    def test_lease_ledger_invariants(self):
        fabric = FeedFabric(total_workers=4)
        run_fleet(fabric=fabric)
        assert fabric.lease_events
        for _t, _feed, event, held, total in fabric.lease_events:
            assert 0 <= total <= fabric.total_workers
            if event == "recall":
                # a recall victim always keeps its floor (floor=1 here)
                assert held > 1
        assert fabric.peak_total_held <= fabric.total_workers
        assert fabric.total_held == 0  # every lease returned at end of run
        for name in SKEW:
            tenant = fabric.tenant_report(f"feed-{name}")
            assert tenant["leases_returned"] == (
                tenant["floor"] + tenant["leases_acquired"]
            )

    def test_floors_validated_against_budget(self):
        fabric = FeedFabric(total_workers=2)
        with pytest.raises(IngestionError):
            run_fleet(fabric=fabric)  # three floor-1 feeds, budget of two

    def test_percentiles_and_cache_stats_namespaced_per_feed(self):
        fabric = FeedFabric(total_workers=4, memory_bytes=256 * 1024)
        policies = {
            name: elastic(
                cap=4,
                priority=2 if count == max(SKEW.values()) else 1,
                enrichment_memo_bytes=32 * 1024,
            )
            for name, count in SKEW.items()
        }
        system = build_fleet(list(SKEW))
        launches = [
            FeedLaunch(
                feed=name,
                adapter=GeneratorAdapter(raws(count, name)),
                batch_size=30,
                policy=policies[name],
            )
            for name, count in SKEW.items()
        ]
        reports = system.start_feeds(launches, fabric=fabric)
        rows = {name: system.plan_cache_stats(feed=name) for name in SKEW}
        assert all(rows[name]["feed"] == name for name in SKEW)
        # disjoint per-tenant counters: each feed's memo row reflects its
        # own records, not an interleaved singleton
        assert rows["Heavy"]["memo_misses"] == SKEW["Heavy"]
        assert rows["LightA"]["memo_misses"] == SKEW["LightA"]
        # columnar counters too: each feed's vectorized tally covers its
        # own records only (the plan cache itself is registry-shared)
        assert all(
            rows[name]["vectorized_records"] == SKEW[name] for name in SKEW
        )
        for name, report in reports.items():
            assert report.latency_p50 <= report.latency_p95 <= report.latency_p99
            assert report.latency_p99 > 0
            summary = report.latency_summary()
            assert {"p50", "p95", "p99"} <= set(summary)
        # the governor split one budget across the enrolled tenants (the
        # tenants deregister at cleanup; the grant ledger is the artifact)
        granted_feeds = {feed for _t, feed, _k, _b in fabric.governor.grants}
        assert granted_feeds == {f"feed-{name}" for name in SKEW}
        assert reports["Heavy"].governor_grants


class TestFabricCrashRestart:
    def test_borrowing_feed_crash_restart_returns_leases(self):
        plan = FaultPlan(crashes=(CrashAt(at=0.05, target="feed-Heavy.computing"),))
        fabric = FeedFabric(total_workers=4)
        reports, stored = run_fleet(
            fabric=fabric, fault_plans={"Heavy": plan}
        )
        _, stored_clean = run_fleet(fabric=FeedFabric(total_workers=4))
        # the crash is attributed to the heavy feed alone, and replay
        # keeps its output byte-identical to the undisturbed run
        assert reports["Heavy"].faults.crashes >= 1
        assert reports["LightA"].faults.crashes == 0
        assert stored == stored_clean
        # leases survive the restart and drain back at end of run
        assert fabric.total_held == 0
        tenant = fabric.tenant_report("feed-Heavy")
        assert tenant["leases_returned"] == (
            tenant["floor"] + tenant["leases_acquired"]
        )
        assert all(
            total <= fabric.total_workers
            for _t, _f, _e, _h, total in fabric.lease_events
        )
