"""Feed-level matrix for the key-level enrichment memo.

Mirrors the state-cache feed matrix: every mutation channel that can
change what an enrichment should observe — update-client upserts mid-run,
``create_index`` / ``drop_index``, ``load_dataset``, dead-letter replay —
must displace memo entries at the next batch boundary, and enabling the
memo must never change stored outputs (including under a 4-worker
pool).  The external half proves an L2 hit genuinely skips the remote
call (``call_log`` shrinks) while PENDING outcomes are never memoized.
"""

from __future__ import annotations

import hashlib
import json

from repro.bench.reporting import layer_utilization_table
from repro.core.system import AsterixLite
from repro.ingestion import (
    PENDING_FIELD,
    EnricherBinding,
    ExternalEnricher,
    FeedPolicy,
    GeneratorAdapter,
)
from repro.ingestion.updates import ReferenceUpdateClient
from repro.runtime import EnricherOutage, FaultPlan

FEED = "MemoFeed"
REF_RECORDS = 24
COUNTIES = 8
BATCH = 10
MEMO_BYTES = 8 << 20


def build_system() -> AsterixLite:
    system = AsterixLite(num_nodes=2)
    system.execute(
        """
        CREATE TYPE TweetType AS OPEN { id: int64, text: string };
        CREATE DATASET EnrichedTweets(TweetType) PRIMARY KEY id;
        CREATE TYPE RatingType AS OPEN { sid: int64 };
        CREATE DATASET SafetyRatings(RatingType) PRIMARY KEY sid;
        """
    )
    system.insert(
        "SafetyRatings",
        [
            {"sid": i, "county": f"county{i % COUNTIES}", "rating": (7 * i) % 50}
            for i in range(REF_RECORDS)
        ],
    )
    system.catalog["SafetyRatings"].flush_all()
    system.execute(
        """
        CREATE FUNCTION enrichSafety(t) {
            LET ratings = (SELECT VALUE s.rating FROM SafetyRatings s
                           WHERE s.county = t.county)
            SELECT t.*, ratings AS safety
        };
        CREATE FEED MemoFeed WITH { "type-name": "TweetType" };
        CONNECT FEED MemoFeed TO DATASET EnrichedTweets
            APPLY FUNCTION enrichSafety;
        """
    )
    return system


def raw_tweets(count: int, start: int = 0):
    return [
        json.dumps(
            {"id": i, "text": f"t{i}", "county": f"county{i % COUNTIES}"}
        )
        for i in range(start, start + count)
    ]


def memo_policy(**overrides) -> FeedPolicy:
    return FeedPolicy.basic(enrichment_memo_bytes=MEMO_BYTES, **overrides)


def run_feed(system, tweets, policy, update_client=None):
    return system.start_feed(
        FEED,
        adapter=GeneratorAdapter(tweets),
        batch_size=BATCH,
        policy=policy,
        update_client=update_client,
    )


def output_digest(system, dataset="EnrichedTweets") -> str:
    stored = sorted(
        (r["id"], tuple(r.get("safety") or ()))
        for r in system.catalog[dataset].scan()
    )
    return hashlib.sha256(
        json.dumps(stored, sort_keys=True).encode()
    ).hexdigest()


def test_memo_on_matches_memo_off_and_reports_counters():
    on, off = build_system(), build_system()
    report_on = run_feed(on, raw_tweets(50), memo_policy())
    report_off = run_feed(off, raw_tweets(50), FeedPolicy.basic())

    # First batch misses per distinct key; later batches reuse.
    assert report_on.memo_hits > 0
    assert report_on.memo_misses > 0
    assert report_on.memo_bytes > 0
    assert report_off.memo_hits == 0
    assert report_off.memo_misses == 0
    # The counters surface identically on RuntimeMetrics...
    assert report_on.runtime.memo_hits == report_on.memo_hits
    assert report_on.runtime.memo_misses == report_on.memo_misses
    assert report_on.runtime.memo_bytes == report_on.memo_bytes
    # ...on the system-level stats facade (with a hit_ratio convenience)...
    stats = on.plan_cache_stats()
    assert stats["memo_hits"] == report_on.memo_hits
    assert 0.0 < stats["memo_hit_ratio"] <= 1.0
    assert "state_cache_hit_ratio" in stats
    # ...and on the utilization table rendering.
    table = layer_utilization_table(report_on.runtime)
    assert "memo:" in table and "hit ratio" in table
    assert "memo:" not in layer_utilization_table(report_off.runtime)
    # Identical stored outputs; cost is the only thing that changed.
    assert output_digest(on) == output_digest(off)
    assert report_on.simulated_seconds < report_off.simulated_seconds


def test_memo_survives_across_runs_until_reference_changes():
    system = build_system()
    run_feed(system, raw_tweets(30), memo_policy())

    # Second run, nothing changed: every distinct key hits, zero misses.
    second = run_feed(system, raw_tweets(30, start=30), memo_policy())
    assert second.memo_misses == 0
    assert second.memo_hits > 0

    # A committed write between runs displaces the stale entries.
    system.catalog["SafetyRatings"].upsert(
        {"sid": 0, "county": "county0", "rating": 49}
    )
    before = system.registry.enrichment_memo.stats()["version_mismatches"]
    third = run_feed(system, raw_tweets(30, start=60), memo_policy())
    assert third.memo_misses > 0
    assert (
        system.registry.enrichment_memo.stats()["version_mismatches"] > before
    )
    county0 = [
        r
        for r in system.catalog["EnrichedTweets"].scan()
        if r["id"] >= 60 and r["county"] == "county0"
    ]
    assert county0 and all(49 in r["safety"] for r in county0)


def test_update_client_mid_run_invalidates_without_changing_outputs():
    def updates():
        for i in range(3):
            yield {"sid": i, "county": f"county{i}", "rating": 49}

    on, off = build_system(), build_system()
    for system, policy in ((on, memo_policy()), (off, FeedPolicy.basic())):
        client = ReferenceUpdateClient(
            1000.0, updates(), system.catalog["SafetyRatings"].upsert
        )
        run_feed(system, raw_tweets(50), policy, client)
        assert client.exhausted

    # The upserts landed after batch 0: batch 1 re-derives every touched
    # key at the boundary, and stored outputs still match memo-off.
    assert on.registry.enrichment_memo.stats()["version_mismatches"] > 0
    assert output_digest(on) == output_digest(off)


def test_ddl_and_load_dataset_clear_the_memo(tmp_path):
    system = build_system()
    run_feed(system, raw_tweets(30), memo_policy())
    memo = system.registry.enrichment_memo
    assert len(memo) > 0

    system.create_index("by_rating", "SafetyRatings", "rating")
    assert len(memo) == 0

    run_feed(system, raw_tweets(30, start=30), memo_policy())
    assert len(memo) > 0
    system.drop_index("SafetyRatings", "by_rating")
    assert len(memo) == 0

    donor = AsterixLite(num_nodes=1)
    donor.execute(
        """
        CREATE TYPE ExtraType AS OPEN { xid: int64 };
        CREATE DATASET Extra(ExtraType) PRIMARY KEY xid;
        """
    )
    donor.insert("Extra", [{"xid": 1}])
    snapshot = tmp_path / "extra.json"
    donor.save_dataset("Extra", str(snapshot))

    run_feed(system, raw_tweets(30, start=60), memo_policy())
    assert len(memo) > 0
    system.load_dataset(str(snapshot))
    assert len(memo) == 0


def test_replace_function_clears_the_memo():
    system = build_system()
    run_feed(system, raw_tweets(30), memo_policy())
    memo = system.registry.enrichment_memo
    assert len(memo) > 0
    system.registry.replace_sqlpp(
        "CREATE FUNCTION enrichSafety(t) { SELECT t.*, [] AS safety }"
    )
    assert len(memo) == 0


def test_replay_dead_letters_displaces_entries():
    system = build_system()
    system.execute(
        """
        CREATE FEED RatingsFeed WITH { "type-name": "RatingType" };
        CONNECT FEED RatingsFeed TO DATASET SafetyRatings;
        """
    )
    good = json.dumps({"sid": 100, "county": "county0", "rating": 1})
    system.start_feed(
        "RatingsFeed",
        adapter=GeneratorAdapter([good, "{broken json"]),
        batch_size=4,
        policy=FeedPolicy.spill(),
    )
    dl = system.catalog["RatingsFeed_DeadLetters"]
    rows = list(dl.scan())
    assert len(rows) == 1

    run_feed(system, raw_tweets(30), memo_policy())
    rerun = run_feed(system, raw_tweets(30, start=30), memo_policy())
    assert rerun.memo_misses == 0

    repaired = dict(rows[0])
    repaired["raw"] = json.dumps(
        {"sid": 101, "county": "county1", "rating": 2}
    )
    dl.upsert(repaired)
    replay = system.replay_dead_letters(
        "RatingsFeed", batch_size=4, policy=FeedPolicy.spill()
    )
    assert replay.records_stored == 1

    # The replayed upsert bumped the reference version: cold first batch.
    after = run_feed(system, raw_tweets(30, start=60), memo_policy())
    assert after.memo_misses > 0
    county1 = [
        r
        for r in system.catalog["EnrichedTweets"].scan()
        if r["id"] >= 60 and r["county"] == "county1"
    ]
    assert county1 and all(2 in r["safety"] for r in county1)


def test_four_worker_pool_shares_memo_and_outputs_match():
    on, off = build_system(), build_system()
    pooled = dict(min_computing_workers=4, max_computing_workers=4)
    report_on = run_feed(on, raw_tweets(80), memo_policy(**pooled))
    report_off = run_feed(off, raw_tweets(80), FeedPolicy.basic(**pooled))
    assert report_on.peak_computing_workers == 4
    assert report_off.peak_computing_workers == 4
    assert report_on.memo_hits > 0
    assert output_digest(on) == output_digest(off)

    # And the 4-worker memo-on output matches a single-worker run too.
    single = build_system()
    run_feed(single, raw_tweets(80), FeedPolicy.basic())
    assert output_digest(on) == output_digest(single)


# ------------------------------------------------------- external enrichment


def geo_lookup(key):
    return {"user": key, "region": f"r{len(str(key)) % 3}"}


def make_external_system(policy):
    system = AsterixLite(num_nodes=2)
    system.execute(
        """
        CREATE TYPE TweetType AS OPEN { id: int64 };
        CREATE DATASET Tweets(TweetType) PRIMARY KEY id;
        """
    )
    system.create_feed("TweetFeed", {"type-name": "TweetType"})
    enricher = ExternalEnricher("geo", lookup=geo_lookup)
    binding = EnricherBinding(enricher, "user", "user_geo")
    system.connect_feed(
        "TweetFeed", "Tweets", policy=policy, external_enrichers=[binding]
    )
    return system, enricher


def external_raws(n, cardinality=10):
    return [
        json.dumps({"id": i, "user": f"u{i % cardinality}"}) for i in range(n)
    ]


def external_digest(system) -> str:
    stored = sorted(
        (r["id"], json.dumps(r.get("user_geo"), sort_keys=True))
        for r in system.catalog["Tweets"].scan()
    )
    return hashlib.sha256(
        json.dumps(stored, sort_keys=True).encode()
    ).hexdigest()


class TestExternalMemo:
    def _run(self, policy, n=100, fault_plan=None):
        system, enricher = make_external_system(policy)
        report = system.start_feed(
            "TweetFeed",
            GeneratorAdapter(external_raws(n)),
            batch_size=25,
            fault_plan=fault_plan,
        )
        return system, enricher, report

    def test_l2_hit_skips_the_remote_call_entirely(self):
        on_policy = FeedPolicy.spill(enrichment_memo_bytes=MEMO_BYTES)
        sys_on, enricher_on, report_on = self._run(on_policy)
        sys_off, enricher_off, report_off = self._run(FeedPolicy.spill())

        # Without the memo every batch re-requests its distinct keys
        # (4 batches x 10 keys); with it only the cold first batch does.
        assert report_off.external.keys_requested == 40
        assert report_on.external.keys_requested == 10
        assert len(enricher_on.call_log) < len(enricher_off.call_log)
        assert report_on.memo_hits == 30  # 10 keys x 3 warm batches
        # Skipped calls consume no simulated external time either.
        assert report_on.simulated_seconds < report_off.simulated_seconds
        # Stored outputs are byte-identical (the remote lookup is pure).
        assert external_digest(sys_on) == external_digest(sys_off)
        assert report_on.enrichment_completeness == 1.0

    def test_memo_on_repeats_are_byte_identical(self):
        policy = FeedPolicy.spill(enrichment_memo_bytes=MEMO_BYTES)
        first = self._run(policy)
        second = self._run(policy)
        assert external_digest(first[0]) == external_digest(second[0])
        assert first[1].call_log == second[1].call_log
        assert (
            first[2].external.as_dict() == second[2].external.as_dict()
        )

    def test_pending_outcomes_are_never_memoized(self):
        policy = FeedPolicy.spill(enrichment_memo_bytes=MEMO_BYTES)
        plan = FaultPlan(
            enricher_faults=[EnricherOutage("geo", at=0.0, duration=1e9)]
        )
        system, _enricher, report = self._run(policy, n=40, fault_plan=plan)
        assert report.external.records_pending == 40
        # Nothing resolved, so nothing may be memoized.
        assert len(system.registry.enrichment_memo) == 0
        rows = list(system.catalog["Tweets"].scan())
        assert all(r[PENDING_FIELD] == ["geo:user_geo"] for r in rows)

        # The remote recovers: backfill re-probes every pending key (the
        # memo cannot serve them) and warms the memo with the answers.
        backfill = system.backfill_pending("TweetFeed")
        assert backfill.still_pending == 0
        assert backfill.completeness == 1.0
        assert len(system.registry.enrichment_memo) > 0
        rows = list(system.catalog["Tweets"].scan())
        assert all(PENDING_FIELD not in r for r in rows)
