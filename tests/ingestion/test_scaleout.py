"""Scale-out: partitioned intake, sub-batch parallelism, durable restart.

Every configuration here must store output byte-identical to the
single-lane baseline (N=1 intake partitions, K=1 sub-batches, W=1
worker) — parallelism and restarts change the schedule, never the data.
"""

import json

import pytest

from repro.core import AsterixLite
from repro.errors import FeedFailedError, FeedStateError, IngestionError
from repro.ingestion import (
    FeedPolicy,
    FileAdapter,
    GeneratorAdapter,
    QueueAdapter,
)
from repro.runtime import CrashAt, FaultPlan
from repro.storage import CheckpointStore

RECORDS = 240
BATCH = 40


def build_system(words=20):
    """A compute-bound enrichment feed (sensitive-words EXISTS join)."""
    system = AsterixLite(num_nodes=4)
    system.execute(
        """
        CREATE TYPE TweetType AS OPEN { id: int64, text: string };
        CREATE DATASET EnrichedTweets(TweetType) PRIMARY KEY id;
        CREATE TYPE WordType AS OPEN { wid: int64 };
        CREATE DATASET SensitiveWords(WordType) PRIMARY KEY wid;
        """
    )
    system.insert(
        "SensitiveWords",
        [{"wid": i, "country": "US", "word": f"w{i}"} for i in range(words)],
    )
    system.execute(
        """
        CREATE FUNCTION flagTweet(tweet) {
            LET flag = CASE
                EXISTS(SELECT w FROM SensitiveWords w
                       WHERE tweet.country = w.country
                         AND contains(tweet.text, w.word))
                WHEN true THEN "Red" ELSE "Green" END
            SELECT tweet.*, flag
        };
        CREATE FEED TweetFeed WITH { "type-name": "TweetType" };
        CONNECT FEED TweetFeed TO DATASET EnrichedTweets
            APPLY FUNCTION flagTweet;
        """
    )
    return system


def raws(records=RECORDS):
    return [
        json.dumps({"id": i, "text": f"tweet w{i % 40} {i}", "country": "US"})
        for i in range(records)
    ]


def stored_bytes(system):
    """Canonical byte serialization of the enriched dataset."""
    rows = sorted(system.catalog["EnrichedTweets"].scan(), key=lambda r: r["id"])
    return json.dumps(rows, sort_keys=True).encode("utf-8")


def run_feed(adapter, policy=None, fault_plan=None, checkpoint=None, system=None):
    system = system or build_system()
    report = system.start_feed(
        "TweetFeed",
        adapter=adapter,
        batch_size=BATCH,
        policy=policy,
        fault_plan=fault_plan,
        checkpoint=checkpoint,
    )
    return system, report


def tweet_file(tmp_path, records=RECORDS):
    path = tmp_path / "tweets.ndjson"
    path.write_text("\n".join(raws(records)) + "\n", encoding="utf-8")
    return str(path)


def baseline_bytes():
    system, report = run_feed(GeneratorAdapter(raws()))
    assert report.records_stored == RECORDS
    return stored_bytes(system), report


def scaleout_policy(partitions=1, subbatch=0, workers=1, **overrides):
    return FeedPolicy.basic(
        intake_partitions=partitions,
        max_subbatch_records=subbatch,
        min_computing_workers=workers,
        max_computing_workers=workers,
        **overrides,
    )


class TestPartitionedIntake:
    def test_split_file_adapter_matches_single_lane(self, tmp_path):
        expected, _ = baseline_bytes()
        path = tweet_file(tmp_path)
        system, report = run_feed(
            FileAdapter(path), policy=scaleout_policy(partitions=4)
        )
        assert report.intake_partitions == 4
        assert len(report.intake_partition_busy) == 4
        assert all(busy > 0 for busy in report.intake_partition_busy.values())
        assert report.records_stored == RECORDS
        assert stored_bytes(system) == expected

    def test_explicit_adapter_sequence_matches_single_lane(self):
        expected, _ = baseline_bytes()
        stream = raws()
        adapters = [GeneratorAdapter(iter(stream[p::3])) for p in range(3)]
        system, report = run_feed(adapters, policy=scaleout_policy(partitions=3))
        assert report.intake_partitions == 3
        assert stored_bytes(system) == expected

    def test_interleaved_queue_adapters_merge_under_one_cursor(self):
        expected, _ = baseline_bytes()
        queues = [QueueAdapter(), QueueAdapter()]
        # interleave pushes across the two sockets: partition p carries
        # the odd/even halves of the id space in alternating order
        for raw in raws():
            queues[json.loads(raw)["id"] % 2].send(raw)
        for queue in queues:
            queue.end()
        system, report = run_feed(queues, policy=scaleout_policy(partitions=2))
        assert report.intake_partitions == 2
        assert report.records_stored == RECORDS
        assert stored_bytes(system) == expected

    def test_unsplittable_adapter_rejected(self):
        with pytest.raises(IngestionError, match="range-splittable"):
            run_feed(
                GeneratorAdapter(raws()), policy=scaleout_policy(partitions=4)
            )

    def test_adapter_count_must_match_policy(self):
        adapters = [GeneratorAdapter(raws(10)), GeneratorAdapter([])]
        with pytest.raises(IngestionError):
            run_feed(adapters, policy=scaleout_policy(partitions=3))

    def test_static_framework_rejects_partitioned_intake(self):
        system = build_system()
        adapters = [GeneratorAdapter(raws(10)), GeneratorAdapter(raws(10))]
        with pytest.raises(FeedStateError, match="dynamic framework"):
            system.start_feed("TweetFeed", adapters, framework="static")


class TestSubBatchParallelism:
    def test_split_batches_store_identical_output(self):
        expected, _ = baseline_bytes()
        system, report = run_feed(
            GeneratorAdapter(raws()),
            policy=scaleout_policy(subbatch=10, workers=3),
        )
        # 240 records / 40-record batches, each split into ceil(40/10)=4
        assert report.subbatches_dispatched == 24
        assert report.runtime.subbatch_merges == 6
        assert stored_bytes(system) == expected

    def test_partitions_and_subbatches_compose(self, tmp_path):
        expected, _ = baseline_bytes()
        path = tweet_file(tmp_path)
        system, report = run_feed(
            FileAdapter(path),
            policy=scaleout_policy(partitions=4, subbatch=12, workers=3),
        )
        assert report.intake_partitions == 4
        assert report.subbatches_dispatched > 0
        assert stored_bytes(system) == expected

    def test_worker_crash_mid_subbatch_recovers_byte_identical(self):
        expected, _baseline = baseline_bytes()
        # early enough that sub-batches are still in flight on every worker
        plan = FaultPlan(crashes=(CrashAt(at=0.02, target="computing"),))
        system, report = run_feed(
            GeneratorAdapter(raws()),
            policy=scaleout_policy(
                subbatch=10, workers=3, max_restarts=3
            ),
            fault_plan=plan,
        )
        # a layer-targeted crash hits every worker in the pool
        assert report.faults.crashes == 3
        assert report.faults.restarts == 3
        assert report.faults.records_replayed > 0
        assert stored_bytes(system) == expected

    def test_intake_partition_crash_recovers_byte_identical(self, tmp_path):
        expected, _baseline = baseline_bytes()
        path = tweet_file(tmp_path)
        # suffix-match one partition's intake actor while it still streams
        # (each partition's 60-record lane is busy for ~1.5ms of sim time)
        plan = FaultPlan(crashes=(CrashAt(at=0.0008, target="intake.p1"),))
        system, report = run_feed(
            FileAdapter(path),
            policy=scaleout_policy(partitions=4, max_restarts=3),
            fault_plan=plan,
        )
        assert report.faults.crashes == 1
        assert report.records_stored == RECORDS
        assert stored_bytes(system) == expected


class TestDurableRestart:
    def test_uninterrupted_run_commits_and_finalizes_checkpoint(self, tmp_path):
        store = CheckpointStore(str(tmp_path / "ckpt"))
        system, report = run_feed(
            GeneratorAdapter(raws()), checkpoint=store
        )
        assert report.checkpoint_commits > 0
        assert not report.resumed_from_checkpoint
        saved = store.load("TweetFeed")
        assert saved.complete
        assert saved.acked_batches == RECORDS // BATCH
        assert saved.records_stored == RECORDS
        assert saved.cursors[0].acked_seq == RECORDS - 1

    def test_kill_and_resume_is_byte_identical(self, tmp_path):
        # reference: one uninterrupted partitioned run
        path = tweet_file(tmp_path)
        policy = scaleout_policy(partitions=4, subbatch=12, workers=3)
        reference, uninterrupted = run_feed(FileAdapter(path), policy=policy)
        expected = stored_bytes(reference)

        # interrupted run: a zero-budget worker crash kills the process
        # mid-feed, after some batches were acked and checkpointed
        store = CheckpointStore(str(tmp_path / "ckpt"))
        system = build_system()
        plan = FaultPlan(
            crashes=(
                CrashAt(
                    at=uninterrupted.runtime.makespan_seconds * 0.6,
                    target="computing",
                ),
            )
        )
        with pytest.raises(FeedFailedError):
            run_feed(
                FileAdapter(path),
                policy=scaleout_policy(
                    partitions=4, subbatch=12, workers=3, max_restarts=0
                ),
                fault_plan=plan,
                checkpoint=store,
                system=system,
            )
        saved = store.load("TweetFeed")
        assert not saved.complete
        assert 0 < saved.acked_batches < RECORDS // BATCH
        assert saved.intake_partitions == 4

        # restart with FRESH adapters over the same file: acked records
        # are skipped via the durable cursors, the un-acked tail replays,
        # pk-upsert dedupes the overlap
        report = system.resume_run(
            "TweetFeed",
            FileAdapter(path),
            checkpoint=store,
            batch_size=BATCH,
            policy=policy,
        )
        assert report.resumed_from_checkpoint
        assert report.records_ingested < RECORDS  # acked prefix was skipped
        assert stored_bytes(system) == expected
        assert store.load("TweetFeed").complete

    def test_resume_run_requires_checkpoint_store(self):
        system = build_system()
        with pytest.raises(FeedStateError, match="CheckpointStore"):
            system.resume_run("TweetFeed", GeneratorAdapter(raws(10)))

    def test_resume_rejects_partition_count_mismatch(self, tmp_path):
        path = tweet_file(tmp_path)
        store = CheckpointStore(str(tmp_path / "ckpt"))
        system, _report = run_feed(
            FileAdapter(path),
            policy=scaleout_policy(partitions=4),
            checkpoint=store,
        )
        with pytest.raises(IngestionError, match="partition"):
            system.resume_run(
                "TweetFeed",
                FileAdapter(path),
                checkpoint=store,
                batch_size=BATCH,
                policy=scaleout_policy(partitions=2),
            )

    def test_static_framework_rejects_checkpoint(self, tmp_path):
        system = build_system()
        store = CheckpointStore(str(tmp_path / "ckpt"))
        with pytest.raises(FeedStateError, match="dynamic framework"):
            system.start_feed(
                "TweetFeed",
                GeneratorAdapter(raws(10)),
                framework="static",
                checkpoint=store,
            )
