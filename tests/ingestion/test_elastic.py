"""Elastic computing worker pool: speedup, ordering, scaling, recovery."""

import json

import pytest

from repro.core import AsterixLite
from repro.ingestion import FeedPolicy, GeneratorAdapter, QueueAdapter
from repro.runtime import CrashAt, FaultPlan, StallAt


def build_system(words=100):
    """A compute-bound enrichment feed (the sensitive-words EXISTS join)."""
    system = AsterixLite(num_nodes=4)
    system.execute(
        """
        CREATE TYPE TweetType AS OPEN { id: int64, text: string };
        CREATE DATASET EnrichedTweets(TweetType) PRIMARY KEY id;
        CREATE TYPE WordType AS OPEN { wid: int64 };
        CREATE DATASET SensitiveWords(WordType) PRIMARY KEY wid;
        """
    )
    system.insert(
        "SensitiveWords",
        [{"wid": i, "country": "US", "word": f"w{i}"} for i in range(words)],
    )
    system.execute(
        """
        CREATE FUNCTION heavyCheck(tweet) {
            LET flag = CASE
                EXISTS(SELECT w FROM SensitiveWords w
                       WHERE tweet.country = w.country
                         AND contains(tweet.text, w.word))
                WHEN true THEN "Red" ELSE "Green" END
            SELECT tweet.*, flag
        };
        CREATE FEED TweetFeed WITH { "type-name": "TweetType" };
        CONNECT FEED TweetFeed TO DATASET EnrichedTweets
            APPLY FUNCTION heavyCheck;
        """
    )
    return system


def raws(records):
    return [
        json.dumps({"id": i, "text": f"tweet {i}", "country": "US"})
        for i in range(records)
    ]


def run_feed(policy, records=480, batch_size=40, fault_plan=None, adapter=None):
    system = build_system()
    adapter = adapter or GeneratorAdapter(raws(records))
    report = system.start_feed(
        "TweetFeed",
        adapter=adapter,
        batch_size=batch_size,
        policy=policy,
        fault_plan=fault_plan,
    )
    stored = sorted(
        (r["id"], r["flag"]) for r in system.catalog["EnrichedTweets"].scan()
    )
    return report, stored


def static_pool(workers, **overrides):
    return FeedPolicy.spill(
        min_computing_workers=workers, max_computing_workers=workers,
        **overrides,
    )


class TestStaticPool:
    def test_outputs_identical_across_worker_counts(self):
        results = {w: run_feed(static_pool(w)) for w in (1, 2, 4)}
        outputs = {w: stored for w, (_r, stored) in results.items()}
        assert outputs[1] == outputs[2] == outputs[4]
        assert len(outputs[1]) == 480
        # more workers strictly shrink the simulated makespan on a
        # compute-bound UDF
        makespans = {
            w: report.runtime.makespan_seconds
            for w, (report, _s) in results.items()
        }
        assert makespans[4] < makespans[2] < makespans[1]

    def test_four_workers_reach_speedup_floor(self):
        one, _ = run_feed(static_pool(1))
        four, _ = run_feed(static_pool(4))
        speedup = (
            one.runtime.makespan_seconds / four.runtime.makespan_seconds
        )
        assert speedup >= 1.8

    def test_overlap_accounting_separates_busy_and_wall(self):
        report, _ = run_feed(static_pool(4))
        # aggregate busy is the sum of the per-worker shares...
        assert report.computing_seconds == pytest.approx(
            sum(report.computing_worker_busy.values())
        )
        assert len(report.computing_worker_busy) == 4
        # ...and exceeds the wall span when workers overlap
        assert report.computing_wall_seconds < report.computing_seconds
        assert report.computing_concurrency > 1.5
        assert report.peak_computing_workers == 4
        assert report.runtime.peak_workers == 4

    def test_single_worker_keeps_legacy_shape(self):
        report, _ = run_feed(FeedPolicy.spill())
        assert report.peak_computing_workers == 1
        assert report.scale_ups == 0 and report.scale_downs == 0
        assert list(report.computing_worker_busy) == [
            "feed-TweetFeed.computing"
        ]
        # a serialized worker cannot overlap with itself
        assert report.computing_concurrency <= 1.0 + 1e-9

    def test_batch_stats_ordered_by_index_despite_racing_workers(self):
        report, _ = run_feed(static_pool(4))
        indexes = [stats.batch_index for stats in report.batch_stats]
        assert indexes == sorted(indexes)
        assert len(indexes) == 480 // 40


class TestElasticController:
    def test_scales_up_under_compute_congestion(self):
        report, stored = run_feed(FeedPolicy.elastic())
        assert report.scale_ups >= 1
        assert report.peak_computing_workers > 1
        assert len(stored) == 480
        # the events surface in RuntimeMetrics too
        assert report.runtime.scale_ups == report.scale_ups
        sizes = [size for _at, size in report.runtime.worker_pool_timeline]
        assert max(sizes) == report.peak_computing_workers

    def test_scales_up_under_injected_storage_stall(self):
        plan = FaultPlan(
            stalls=(StallAt(at=0.02, target="storage", duration=0.3),)
        )
        report, stored = run_feed(FeedPolicy.elastic(), fault_plan=plan)
        assert report.scale_ups >= 1
        assert len(stored) == 480

    def test_scales_down_when_starved(self):
        # a burst followed by an idle-but-open queue: the pool must grow
        # for the burst and retire workers once the buffer drains
        adapter = QueueAdapter()
        adapter.send_many(raws(480))
        policy = FeedPolicy.elastic(
            adapter_idle_timeout_seconds=2.0, adapter_idle_poll_seconds=0.25
        )
        report, stored = run_feed(policy, adapter=adapter)
        assert report.scale_ups >= 1
        assert report.scale_downs >= 1
        assert len(stored) == 480

    def test_never_scales_beyond_policy_bounds(self):
        policy = FeedPolicy.elastic(max_computing_workers=3)
        report, _ = run_feed(policy)
        assert 1 <= report.peak_computing_workers <= 3

    def test_elastic_beats_single_worker_on_compute_bound(self):
        one, _ = run_feed(static_pool(1))
        elastic, _ = run_feed(FeedPolicy.elastic())
        assert (
            elastic.runtime.makespan_seconds < one.runtime.makespan_seconds
        )

    def test_elastic_run_is_deterministic(self):
        a, stored_a = run_feed(FeedPolicy.elastic())
        b, stored_b = run_feed(FeedPolicy.elastic())
        assert stored_a == stored_b
        assert a.runtime.makespan_seconds == b.runtime.makespan_seconds
        assert a.scale_ups == b.scale_ups
        assert a.runtime.worker_pool_timeline == b.runtime.worker_pool_timeline

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            FeedPolicy(min_computing_workers=0)
        with pytest.raises(ValueError):
            FeedPolicy(min_computing_workers=4, max_computing_workers=2)
        with pytest.raises(ValueError):
            FeedPolicy(elastic_sample_seconds=0.0)
        assert FeedPolicy.elastic().elastic_enabled
        assert not FeedPolicy.spill().elastic_enabled


class TestPoolRecovery:
    def test_worker_pool_crash_replays_without_loss(self):
        plan = FaultPlan(crashes=(CrashAt(at=0.01, target="computing"),))
        report, stored = run_feed(static_pool(4), fault_plan=plan)
        faults = report.faults
        assert faults.crashes == 4  # every pool member took the interrupt
        assert faults.restarts == 4
        assert faults.records_replayed > 0
        # zero acked loss at pool size 4: every input id is stored once
        assert [rid for rid, _flag in stored] == list(range(480))

    def test_elastic_pool_crash_replays_without_loss(self):
        plan = FaultPlan(crashes=(CrashAt(at=0.05, target="computing"),))
        report, stored = run_feed(FeedPolicy.elastic(), fault_plan=plan)
        assert report.faults.crashes >= 1
        assert [rid for rid, _flag in stored] == list(range(480))
