"""Failure paths: a failing UDF or adapter must not leak feed state."""

import json

import pytest

from repro.adm import open_type
from repro.cluster import Cluster
from repro.errors import PartitionHolderError, SqlppEvaluationError
from repro.ingestion import (
    ActiveFeedManager,
    AttachedFunction,
    DynamicIngestionPipeline,
    FeedDefinition,
    GeneratorAdapter,
)
from repro.storage import Dataset
from repro.udf import FunctionRegistry


def make_env():
    target = Dataset("T", open_type("TT", id="int64"), "id",
                     num_partitions=2, validate=False)
    catalog = {"T": target}
    registry = FunctionRegistry(lambda: set(catalog))
    registry.register_sqlpp(
        """
        CREATE FUNCTION explodeOnSeven(t) {
            LET x = 1 / (t.id - 7)
            SELECT t.*, x
        }
        """
    )
    return catalog, registry


class TestFailureCleanup:
    def test_udf_error_propagates(self):
        catalog, registry = make_env()
        cluster = Cluster(2)
        pipeline = DynamicIngestionPipeline(cluster, catalog, registry)
        feed = FeedDefinition(
            "F", "T", batch_size=4,
            functions=[AttachedFunction("explodeOnSeven")],
        )
        raws = [json.dumps({"id": i}) for i in range(10)]
        with pytest.raises(ZeroDivisionError):
            pipeline.run(feed, GeneratorAdapter(raws))

    def test_feed_state_released_after_failure(self):
        catalog, registry = make_env()
        cluster = Cluster(2)
        afm = ActiveFeedManager(cluster)
        pipeline = DynamicIngestionPipeline(cluster, catalog, registry, afm=afm)
        feed = FeedDefinition(
            "F", "T", batch_size=4,
            functions=[AttachedFunction("explodeOnSeven")],
        )
        raws = [json.dumps({"id": i}) for i in range(10)]
        with pytest.raises(ZeroDivisionError):
            pipeline.run(feed, GeneratorAdapter(raws))
        # AFM entry gone, predeployed job undeployed, holders unregistered
        assert afm.active_feeds == {}
        assert cluster.controller.deployed_job_ids() == []
        with pytest.raises(PartitionHolderError):
            cluster.holder_manager.lookup("intake-F", 0)

    def test_feed_restartable_after_failure(self):
        catalog, registry = make_env()
        cluster = Cluster(2)
        afm = ActiveFeedManager(cluster)
        pipeline = DynamicIngestionPipeline(cluster, catalog, registry, afm=afm)
        feed = FeedDefinition(
            "F", "T", batch_size=4,
            functions=[AttachedFunction("explodeOnSeven")],
        )
        with pytest.raises(ZeroDivisionError):
            pipeline.run(
                feed, GeneratorAdapter([json.dumps({"id": 7})])
            )
        # same feed name can start again (no duplicate-registration error)
        ok_raws = [json.dumps({"id": i}) for i in range(3)]
        report = pipeline.run(feed, GeneratorAdapter(ok_raws))
        assert report.records_stored == 3

    def test_records_before_failure_are_durable(self):
        """Batches committed before the failing batch stay stored."""
        catalog, registry = make_env()
        cluster = Cluster(2)
        pipeline = DynamicIngestionPipeline(cluster, catalog, registry)
        feed = FeedDefinition(
            "F", "T", batch_size=2,
            functions=[AttachedFunction("explodeOnSeven")],
        )
        raws = [json.dumps({"id": i}) for i in range(10)]  # fails in batch 4
        with pytest.raises(ZeroDivisionError):
            pipeline.run(feed, GeneratorAdapter(raws))
        stored = sorted(r["id"] for r in catalog["T"].scan())
        assert stored == [0, 1, 2, 3, 4, 5]  # three committed batches

    def test_malformed_json_fails_batch(self):
        catalog, _registry = make_env()
        cluster = Cluster(2)
        pipeline = DynamicIngestionPipeline(cluster, catalog)
        feed = FeedDefinition("F", "T", batch_size=4)
        from repro.errors import AdmParseError

        raws = [json.dumps({"id": 1}), "{not json"]
        with pytest.raises(AdmParseError):
            pipeline.run(feed, GeneratorAdapter(raws))
