"""Multiple feeds and chained UDFs (paper §6.1: feeds run independently)."""

import json

import pytest

from repro import AsterixLite
from repro.errors import IngestionError
from repro.ingestion import ActiveFeedManager, GeneratorAdapter


class TestMultipleFeeds:
    def test_two_feeds_share_one_system(self):
        system = AsterixLite(num_nodes=3)
        system.execute(
            """
            CREATE TYPE T AS OPEN { id: int64 };
            CREATE DATASET A(T) PRIMARY KEY id;
            CREATE DATASET B(T) PRIMARY KEY id;
            CREATE FEED FA WITH { "type-name": "T" };
            CREATE FEED FB WITH { "type-name": "T" };
            CONNECT FEED FA TO DATASET A;
            CONNECT FEED FB TO DATASET B;
            """
        )
        ra = system.start_feed(
            "FA", adapter=GeneratorAdapter(json.dumps({"id": i}) for i in range(30))
        )
        rb = system.start_feed(
            "FB",
            adapter=GeneratorAdapter(json.dumps({"id": i}) for i in range(40)),
        )
        assert ra.records_stored == 30 and rb.records_stored == 40
        assert len(system.catalog["A"]) == 30
        assert len(system.catalog["B"]) == 40

    def test_afm_tracks_concurrent_registrations(self):
        from repro.cluster import Cluster

        cluster = Cluster(2)
        afm = ActiveFeedManager(cluster)
        a = cluster.controller.deploy("a", lambda params: None)
        b = cluster.controller.deploy("b", lambda params: None)
        afm.register_feed("feedA", a)
        afm.register_feed("feedB", b)
        assert set(afm.active_feeds) == {"feedA", "feedB"}
        afm.deregister_feed("feedA")
        assert set(afm.active_feeds) == {"feedB"}

    def test_duplicate_active_feed_rejected(self):
        from repro.cluster import Cluster

        cluster = Cluster(1)
        afm = ActiveFeedManager(cluster)
        afm.register_feed("F", "job#0")
        with pytest.raises(IngestionError, match="already active"):
            afm.register_feed("F", "job#1")

    def test_invoking_inactive_feed_rejected(self):
        from repro.cluster import Cluster

        afm = ActiveFeedManager(Cluster(1))
        with pytest.raises(IngestionError, match="not active"):
            afm.invoke_computing_job("ghost", [])


class TestChainedUdfs:
    def test_apply_function_chain(self):
        system = AsterixLite(num_nodes=2)
        system.execute(
            """
            CREATE TYPE T AS OPEN { id: int64 };
            CREATE DATASET Out(T) PRIMARY KEY id;
            CREATE FUNCTION addOne(t) {
                LET a = 1
                SELECT t.*, a
            };
            CREATE FUNCTION addTwo(t) {
                LET b = 2
                SELECT t.*, b
            };
            CREATE FEED F WITH { "type-name": "T" };
            CONNECT FEED F TO DATASET Out
                APPLY FUNCTION addOne, addTwo;
            """
        )
        system.start_feed(
            "F", adapter=GeneratorAdapter([json.dumps({"id": 1})])
        )
        record = system.catalog["Out"].get(1)
        assert record["a"] == 1 and record["b"] == 2

    def test_chain_order_matters(self):
        system = AsterixLite(num_nodes=2)
        system.execute(
            """
            CREATE TYPE T AS OPEN { id: int64 };
            CREATE DATASET Out(T) PRIMARY KEY id;
            CREATE FUNCTION double_v(t) {
                LET v = t.v * 2
                SELECT t.id, v
            };
            CREATE FUNCTION inc_v(t) {
                LET v = t.v + 1
                SELECT t.id, v
            };
            CREATE FEED F WITH { "type-name": "T" };
            CONNECT FEED F TO DATASET Out APPLY FUNCTION double_v, inc_v;
            """
        )
        system.start_feed(
            "F", adapter=GeneratorAdapter([json.dumps({"id": 1, "v": 5})])
        )
        # (5 * 2) + 1, not (5 + 1) * 2
        assert system.catalog["Out"].get(1)["v"] == 11
