"""Feed-level columnar observability.

A feed over a vectorizable UDF must report how much of the stream rode
the columnar path (``vectorized_batches`` / ``vectorized_records`` /
``vectorized_fraction`` on the run report, mirrored on RuntimeMetrics,
the layer-utilization rendering, and the system stats facade); Java and
unsupported-shape UDFs must fall back to the scalar path and say so.
"""

from __future__ import annotations

import json

from repro.bench.reporting import layer_utilization_table
from repro.core.system import AsterixLite
from repro.ingestion.adapter import GeneratorAdapter
from repro.ingestion.policy import FeedPolicy

FEED = "ColFeed"
BATCH = 10


def build_system(udf_body: str) -> AsterixLite:
    system = AsterixLite(num_nodes=2)
    system.execute(
        """
        CREATE TYPE TweetType AS OPEN { id: int64, text: string };
        CREATE DATASET EnrichedTweets(TweetType) PRIMARY KEY id;
        CREATE TYPE RatingType AS OPEN { sid: int64 };
        CREATE DATASET SafetyRatings(RatingType) PRIMARY KEY sid;
        """
    )
    system.insert(
        "SafetyRatings",
        [
            {"sid": i, "county": f"county{i % 8}", "rating": (7 * i) % 50}
            for i in range(24)
        ],
    )
    system.catalog["SafetyRatings"].flush_all()
    system.execute(
        f"""
        CREATE FUNCTION enrichSafety(t) {{ {udf_body} }};
        CREATE FEED {FEED} WITH {{ "type-name": "TweetType" }};
        CONNECT FEED {FEED} TO DATASET EnrichedTweets
            APPLY FUNCTION enrichSafety;
        """
    )
    return system


VECTORIZABLE_BODY = """
    LET ratings = (SELECT VALUE s.rating FROM SafetyRatings s
                   WHERE s.county = t.county)
    SELECT t.*, ratings AS safety
"""

# Top-level FROM: the whole block keeps the scalar path (UNSUPPORTED).
UNSUPPORTED_BODY = """
    SELECT t.*, s.rating AS rating
    FROM SafetyRatings s WHERE s.county = t.county
"""


def raw_tweets(count: int):
    return [
        json.dumps({"id": i, "text": f"t{i}", "county": f"county{i % 8}"})
        for i in range(count)
    ]


def run_feed(system, count=50):
    return system.start_feed(
        FEED,
        adapter=GeneratorAdapter(raw_tweets(count)),
        batch_size=BATCH,
        policy=FeedPolicy.basic(),
    )


def test_vectorized_feed_reports_counters():
    system = build_system(VECTORIZABLE_BODY)
    report = run_feed(system)

    assert report.records_ingested == 50
    # Each computing job's frame splits into one sub-frame per intake
    # partition (2 nodes here), so 5 jobs -> 10 operator frames.
    assert report.num_computing_jobs == 5
    assert report.vectorized_batches == 10
    assert report.vectorized_records == 50
    assert report.scalar_fallbacks == 0
    assert report.vectorized_fraction == 1.0

    # Mirrored on RuntimeMetrics and rendered by the utilization table.
    assert report.runtime.vectorized_batches == 10
    assert report.runtime.vectorized_records == 50
    assert report.runtime.scalar_fallbacks == 0
    table = layer_utilization_table(report.runtime)
    assert "columnar: 10 vectorized batch(es), 50 record(s)" in table
    assert "columnar" in report.runtime.describe()

    # The system facade exposes the cumulative plan-cache counters.
    stats = system.plan_cache_stats()
    assert stats["vectorized_batches"] >= 10
    assert stats["vectorized_records"] >= 50

    # And the enrichment itself landed.
    stored = {r["id"]: r for r in system.catalog["EnrichedTweets"].scan()}
    assert len(stored) == 50
    assert all("safety" in r for r in stored.values())


def test_unsupported_body_stays_scalar_and_reports_fallbacks():
    system = build_system(UNSUPPORTED_BODY)
    report = run_feed(system)

    assert report.records_ingested == 50
    assert report.vectorized_batches == 0
    assert report.vectorized_records == 0
    assert report.vectorized_fraction == 0.0
    # One whole-frame fallback per operator frame (2 per computing job:
    # one sub-frame per intake partition).
    assert report.num_computing_jobs == 5
    assert report.scalar_fallbacks == 10
    assert "columnar: 0 vectorized batch(es)" in layer_utilization_table(
        report.runtime
    )

    # Scalar results are still stored (the fallback is purely a perf path).
    stored = list(system.catalog["EnrichedTweets"].scan())
    assert len(stored) == 50
    assert all("rating" in r for r in stored)


def test_scalar_and_columnar_feeds_store_identical_records():
    columnar = build_system(VECTORIZABLE_BODY)
    run_feed(columnar)

    # Compare against per-record registry invocation on a twin system
    # with the same batch (generation) boundaries.
    reference = build_system(VECTORIZABLE_BODY)
    from repro.sqlpp import EvaluationContext

    ctx = EvaluationContext(
        reference.catalog, functions=reference.registry, use_plans=True
    )
    expected = {}
    for position, raw in enumerate(raw_tweets(50)):
        if position and position % BATCH == 0:
            ctx.refresh_batch()
        record = json.loads(raw)
        (row,) = reference.registry.invoke("enrichSafety", [record], ctx)
        expected[row["id"]] = row["safety"]

    stored = {
        r["id"]: r.get("safety")
        for r in columnar.catalog["EnrichedTweets"].scan()
    }
    assert stored == expected
