"""The ingestion frameworks: correctness, staleness semantics, lifecycle."""

import json

import pytest

from repro.adm import open_type
from repro.cluster import Cluster
from repro.errors import IngestionError, StreamingJoinError
from repro.ingestion import (
    ActiveFeedManager,
    AttachedFunction,
    ComputingModel,
    DynamicIngestionPipeline,
    FeedDefinition,
    Framework,
    GeneratorAdapter,
    StaticIngestionPipeline,
)
from repro.storage import Dataset
from repro.udf import FunctionRegistry


def make_target(parts=3):
    return Dataset(
        "EnrichedTweets", open_type("T", id="int64"), "id",
        num_partitions=parts, validate=False,
    )


def raw_tweets(count, country="US"):
    return [
        json.dumps({"id": i, "text": f"tweet {i}", "country": country})
        for i in range(count)
    ]


@pytest.fixture
def env():
    """catalog with a SensitiveWords reference dataset + safety-check UDF."""
    words = Dataset("SensitiveWords", open_type("W", wid="int64"), "wid",
                    num_partitions=2, validate=False)
    words.insert({"wid": 1, "country": "US", "word": "bomb"})
    words.flush_all()
    catalog = {"SensitiveWords": words, "EnrichedTweets": make_target()}
    registry = FunctionRegistry(lambda: set(catalog))
    registry.register_sqlpp(
        """
        CREATE FUNCTION tweetSafetyCheck(tweet) {
            LET safety_check_flag = CASE
                EXISTS(SELECT s FROM SensitiveWords s
                       WHERE tweet.country = s.country AND
                             contains(tweet.text, s.word))
                WHEN true THEN "Red" ELSE "Green"
                END
            SELECT tweet.*, safety_check_flag
        }
        """
    )
    return catalog, registry


def dynamic_feed(batch_size=16, functions=(), **kwargs):
    return FeedDefinition(
        "F", "EnrichedTweets", batch_size=batch_size,
        functions=list(functions), **kwargs,
    )


class TestDynamicPipeline:
    def test_exactly_once_no_udf(self, env):
        catalog, registry = env
        pipeline = DynamicIngestionPipeline(Cluster(3), catalog, registry)
        report = pipeline.run(dynamic_feed(), GeneratorAdapter(raw_tweets(101)))
        assert report.records_ingested == 101
        assert report.records_stored == 101
        assert sorted(r["id"] for r in catalog["EnrichedTweets"].scan()) == list(
            range(101)
        )

    def test_partial_final_batch_drained(self, env):
        catalog, registry = env
        pipeline = DynamicIngestionPipeline(Cluster(3), catalog, registry)
        report = pipeline.run(dynamic_feed(batch_size=50),
                              GeneratorAdapter(raw_tweets(70)))
        assert report.records_stored == 70
        assert report.num_computing_jobs == 2

    def test_udf_applied_per_record(self, env):
        catalog, registry = env
        feed = dynamic_feed(functions=[AttachedFunction("tweetSafetyCheck")])
        raws = [
            json.dumps({"id": 0, "text": "a bomb", "country": "US"}),
            json.dumps({"id": 1, "text": "hello", "country": "US"}),
            json.dumps({"id": 2, "text": "a bomb", "country": "FR"}),
        ]
        DynamicIngestionPipeline(Cluster(2), catalog, registry).run(
            feed, GeneratorAdapter(raws)
        )
        flags = {r["id"]: r["safety_check_flag"]
                 for r in catalog["EnrichedTweets"].scan()}
        assert flags == {0: "Red", 1: "Green", 2: "Green"}

    def test_reference_updates_visible_at_batch_boundaries(self, env):
        """The paper's core guarantee: batch k+1 sees updates made during k."""
        catalog, registry = env
        feed = dynamic_feed(
            batch_size=10, functions=[AttachedFunction("tweetSafetyCheck")]
        )
        raws = [
            json.dumps({"id": i, "text": "new-word here", "country": "US"})
            for i in range(30)
        ]

        class InjectingAdapter(GeneratorAdapter):
            """Adds a sensitive word after the first batch is consumed."""

            def __init__(self, raws, words):
                super().__init__(raws)
                self.words = words
                self.count = 0

            def envelopes(self):
                for envelope in super().envelopes():
                    self.count += 1
                    if self.count == 11:
                        self.words.upsert(
                            {"wid": 2, "country": "US", "word": "new-word"}
                        )
                    yield envelope

        DynamicIngestionPipeline(Cluster(2), catalog, registry).run(
            feed, InjectingAdapter(raws, catalog["SensitiveWords"])
        )
        flags = {r["id"]: r["safety_check_flag"]
                 for r in catalog["EnrichedTweets"].scan()}
        assert flags[0] == "Green"  # first batch: word not yet added
        assert flags[29] == "Red"  # later batch: update observed

    def test_computing_jobs_predeployed_and_invoked(self, env):
        catalog, registry = env
        cluster = Cluster(2)
        afm = ActiveFeedManager(cluster)
        pipeline = DynamicIngestionPipeline(cluster, catalog, registry, afm=afm)
        report = pipeline.run(dynamic_feed(batch_size=20),
                              GeneratorAdapter(raw_tweets(100)))
        assert report.num_computing_jobs == 5
        assert afm.jobs_invoked["F"] == 5
        # feed deregistered and job undeployed afterwards
        assert afm.active_feeds == {}
        assert cluster.controller.deployed_job_ids() == []

    def test_batch_stats_recorded(self, env):
        catalog, registry = env
        pipeline = DynamicIngestionPipeline(Cluster(2), catalog, registry)
        report = pipeline.run(dynamic_feed(batch_size=25),
                              GeneratorAdapter(raw_tweets(100)))
        assert len(report.batch_stats) == 4
        assert all(b.records == 25 for b in report.batch_stats)
        assert report.refresh_period > 0
        assert report.refresh_rate > 0

    def test_per_record_model_forces_batch_of_one(self, env):
        catalog, registry = env
        feed = dynamic_feed(
            batch_size=50, functions=[AttachedFunction("tweetSafetyCheck")],
            computing_model=ComputingModel.PER_RECORD,
        )
        report = DynamicIngestionPipeline(Cluster(2), catalog, registry).run(
            feed, GeneratorAdapter(raw_tweets(10))
        )
        assert report.num_computing_jobs == 10

    def test_balanced_intake_spreads_receive_cost(self, env):
        catalog, registry = env
        single = DynamicIngestionPipeline(Cluster(4), catalog, registry).run(
            dynamic_feed(batch_size=64), GeneratorAdapter(raw_tweets(256))
        )
        catalog["EnrichedTweets"] = make_target()
        balanced = DynamicIngestionPipeline(Cluster(4), catalog, registry).run(
            dynamic_feed(batch_size=64, balanced_intake=True),
            GeneratorAdapter(raw_tweets(256)),
        )
        assert balanced.intake_seconds < single.intake_seconds

    def test_no_predeploy_ablation_slower(self, env):
        catalog, registry = env
        fast = DynamicIngestionPipeline(Cluster(3), catalog, registry).run(
            dynamic_feed(batch_size=16), GeneratorAdapter(raw_tweets(128))
        )
        catalog["EnrichedTweets"] = make_target()
        slow = DynamicIngestionPipeline(Cluster(3), catalog, registry).run(
            dynamic_feed(batch_size=16), GeneratorAdapter(raw_tweets(128)),
            predeploy=False,
        )
        assert slow.computing_seconds > fast.computing_seconds
        assert slow.records_stored == 128

    def test_coupled_storage_ablation_slower(self, env):
        catalog, registry = env
        decoupled = DynamicIngestionPipeline(Cluster(3), catalog, registry).run(
            dynamic_feed(batch_size=16), GeneratorAdapter(raw_tweets(128))
        )
        catalog["EnrichedTweets"] = make_target()
        coupled = DynamicIngestionPipeline(Cluster(3), catalog, registry).run(
            dynamic_feed(batch_size=16), GeneratorAdapter(raw_tweets(128)),
            decoupled=False,
        )
        assert coupled.computing_seconds > decoupled.computing_seconds

    def test_round_robin_balances_computing_input(self, env):
        catalog, registry = env
        pipeline = DynamicIngestionPipeline(Cluster(4), catalog, registry)
        report = pipeline.run(dynamic_feed(batch_size=40),
                              GeneratorAdapter(raw_tweets(400)))
        assert report.records_stored == 400

    def test_udf_feed_requires_registry(self, env):
        catalog, _registry = env
        pipeline = DynamicIngestionPipeline(Cluster(2), catalog, registry=None)
        with pytest.raises(IngestionError, match="registry"):
            pipeline.run(
                dynamic_feed(functions=[AttachedFunction("tweetSafetyCheck")]),
                GeneratorAdapter(raw_tweets(5)),
            )


class TestStaticPipeline:
    def test_exactly_once_no_udf(self, env):
        catalog, registry = env
        report = StaticIngestionPipeline(Cluster(3), catalog, registry).run(
            FeedDefinition("S", "EnrichedTweets"), GeneratorAdapter(raw_tweets(77))
        )
        assert report.records_stored == 77
        assert len(catalog["EnrichedTweets"]) == 77

    def test_stateful_sqlpp_rejected(self, env):
        catalog, registry = env
        feed = FeedDefinition(
            "S", "EnrichedTweets",
            functions=[AttachedFunction("tweetSafetyCheck")],
        )
        with pytest.raises(IngestionError, match="stateful"):
            StaticIngestionPipeline(Cluster(2), catalog, registry).run(
                feed, GeneratorAdapter(raw_tweets(5))
            )

    def test_stateless_sqlpp_allowed(self, env):
        catalog, registry = env
        registry.register_sqlpp(
            """
            CREATE FUNCTION stampTweet(t) {
                LET stamped = true
                SELECT t.*, stamped
            }
            """
        )
        feed = FeedDefinition(
            "S", "EnrichedTweets", functions=[AttachedFunction("stampTweet")]
        )
        StaticIngestionPipeline(Cluster(2), catalog, registry).run(
            feed, GeneratorAdapter(raw_tweets(10))
        )
        assert all(r["stamped"] for r in catalog["EnrichedTweets"].scan())

    def test_stream_model_optin_with_small_build_works_but_stale(self, env):
        """§4.3.4 case 1: fits in memory, runs, never sees updates."""
        catalog, registry = env
        feed = FeedDefinition(
            "S", "EnrichedTweets",
            functions=[AttachedFunction("tweetSafetyCheck")],
            computing_model=ComputingModel.STREAM,
        )

        class InjectingAdapter(GeneratorAdapter):
            def __init__(self, raws, words):
                super().__init__(raws)
                self.words = words
                self.count = 0

            def envelopes(self):
                for envelope in super().envelopes():
                    self.count += 1
                    if self.count == 2:
                        self.words.upsert(
                            {"wid": 9, "country": "US", "word": "tweet"}
                        )
                    yield envelope

        StaticIngestionPipeline(Cluster(2), catalog, registry).run(
            feed, InjectingAdapter(raw_tweets(20), catalog["SensitiveWords"])
        )
        flags = {r["id"]: r["safety_check_flag"]
                 for r in catalog["EnrichedTweets"].scan()}
        # every tweet contains "tweet"; the stream model never saw the update
        assert all(flag == "Green" for flag in flags.values())

    def test_stream_model_spill_raises(self, env):
        """§4.3.4 case 2: build side exceeding memory cannot stream."""
        catalog, registry = env
        feed = FeedDefinition(
            "S", "EnrichedTweets",
            functions=[AttachedFunction("tweetSafetyCheck")],
            computing_model=ComputingModel.STREAM,
            stream_memory_budget=0,
        )
        with pytest.raises(StreamingJoinError, match="memory budget"):
            StaticIngestionPipeline(Cluster(2), catalog, registry).run(
                feed, GeneratorAdapter(raw_tweets(5))
            )

    def test_java_udf_stale_resources(self, env):
        """§7.2: static Java enrichment never re-reads resource files."""
        catalog, registry = env
        from repro.udf import JavaUdfDescriptor
        from repro.udf.library import KeywordSafetyCheckJavaUdf

        lines = ["1|US|bomb"]
        registry.register_java(
            JavaUdfDescriptor(
                "udflib",
                "keyword_safety_check",
                lambda: KeywordSafetyCheckJavaUdf(
                    {"keyword_list": lambda: list(lines)}
                ),
                1,
                True,
            )
        )
        feed = FeedDefinition(
            "S", "EnrichedTweets",
            functions=[
                AttachedFunction(
                    "keyword_safety_check", language="java", library="udflib"
                )
            ],
        )

        class InjectingAdapter(GeneratorAdapter):
            def __init__(self, raws):
                super().__init__(raws)
                self.count = 0

            def envelopes(self):
                for envelope in super().envelopes():
                    self.count += 1
                    if self.count == 2:
                        lines.append("2|US|tweet")  # resource file updated
                    yield envelope

        StaticIngestionPipeline(Cluster(2), catalog, registry).run(
            feed, InjectingAdapter(raw_tweets(20))
        )
        flags = [r["safety_check_flag"] for r in catalog["EnrichedTweets"].scan()]
        assert all(flag == "Green" for flag in flags)


class TestThroughputShapes:
    """Coarse sanity on the simulated-performance relationships."""

    def test_larger_batches_fewer_jobs_higher_throughput(self, env):
        catalog, registry = env
        reports = {}
        for batch in (10, 40, 160):
            catalog["EnrichedTweets"] = make_target()
            reports[batch] = DynamicIngestionPipeline(
                Cluster(4), catalog, registry
            ).run(
                dynamic_feed(
                    batch_size=batch,
                    functions=[AttachedFunction("tweetSafetyCheck")],
                ),
                GeneratorAdapter(raw_tweets(320)),
            )
        assert (
            reports[10].num_computing_jobs
            > reports[40].num_computing_jobs
            > reports[160].num_computing_jobs
        )
        assert reports[160].throughput > reports[10].throughput
        assert reports[160].refresh_period > reports[10].refresh_period

    def test_static_faster_than_dynamic_for_stateless_udf(self, env):
        catalog, registry = env
        registry.register_sqlpp(
            "CREATE FUNCTION stamp2(t) { LET s = 1 SELECT t.*, s }"
        )
        fn = [AttachedFunction("stamp2")]
        static = StaticIngestionPipeline(Cluster(4), catalog, registry).run(
            FeedDefinition("S", "EnrichedTweets", functions=fn),
            GeneratorAdapter(raw_tweets(300)),
        )
        catalog["EnrichedTweets"] = make_target()
        dynamic = DynamicIngestionPipeline(Cluster(4), catalog, registry).run(
            dynamic_feed(batch_size=20, functions=fn),
            GeneratorAdapter(raw_tweets(300)),
        )
        assert static.throughput > dynamic.throughput
