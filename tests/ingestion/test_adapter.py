"""Feed adapters."""

import json

import pytest

from repro.errors import FeedStateError
from repro.ingestion import FileAdapter, GeneratorAdapter, QueueAdapter, chunked


class TestGeneratorAdapter:
    def test_wraps_raw_records(self):
        adapter = GeneratorAdapter(['{"id": 1}', '{"id": 2}'])
        got = list(adapter.envelopes())
        assert got == [{"raw": '{"id": 1}'}, {"raw": '{"id": 2}'}]
        assert adapter.received == 2


class TestQueueAdapter:
    def test_send_then_drain(self):
        adapter = QueueAdapter()
        adapter.send_many(["a", "b"])
        adapter.end()
        assert [e["raw"] for e in adapter.envelopes()] == ["a", "b"]

    def test_send_after_end_rejected(self):
        adapter = QueueAdapter()
        adapter.end()
        with pytest.raises(FeedStateError):
            adapter.send("x")

    def test_draining_unended_queue_raises(self):
        adapter = QueueAdapter()
        adapter.send("a")
        stream = adapter.envelopes()
        assert next(stream)["raw"] == "a"
        with pytest.raises(FeedStateError, match="drained before end"):
            next(stream)

    def test_pending_counts(self):
        adapter = QueueAdapter()
        adapter.send_many(["a", "b", "c"])
        assert adapter.pending == 3


class TestFileAdapter:
    def test_replays_ndjson(self, tmp_path):
        path = tmp_path / "data.ndjson"
        path.write_text('{"id": 1}\n\n{"id": 2}\n')
        adapter = FileAdapter(str(path))
        got = [json.loads(e["raw"])["id"] for e in adapter.envelopes()]
        assert got == [1, 2]
        assert adapter.received == 2


class TestChunked:
    def test_chunks(self):
        assert list(chunked(iter(range(7)), 3)) == [[0, 1, 2], [3, 4, 5], [6]]

    def test_bad_size(self):
        with pytest.raises(ValueError):
            list(chunked(iter([]), 0))
