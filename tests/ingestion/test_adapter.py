"""Feed adapters."""

import json

import pytest

from repro.errors import FeedStateError
from repro.ingestion import (
    ADAPTER_IDLE,
    FileAdapter,
    GeneratorAdapter,
    QueueAdapter,
    chunked,
    drain_available,
)


class TestGeneratorAdapter:
    def test_wraps_raw_records_with_provenance(self):
        adapter = GeneratorAdapter(['{"id": 1}', '{"id": 2}'])
        got = list(adapter.envelopes())
        assert got == [
            {"raw": '{"id": 1}', "seq": 0},
            {"raw": '{"id": 2}', "seq": 1},
        ]
        assert adapter.received == 2


class TestQueueAdapter:
    def test_send_then_drain(self):
        adapter = QueueAdapter()
        adapter.send_many(["a", "b"])
        adapter.end()
        assert [e["raw"] for e in adapter.envelopes()] == ["a", "b"]

    def test_send_after_end_rejected(self):
        adapter = QueueAdapter()
        adapter.end()
        with pytest.raises(FeedStateError):
            adapter.send("x")

    def test_empty_but_open_queue_yields_idle_sentinel(self):
        # A queue drained before end() is a *starved* intake, not an
        # error: the stream yields ADAPTER_IDLE so the feed runtime can
        # account idle time and apply the policy's idle timeout.
        adapter = QueueAdapter()
        adapter.send("a")
        stream = adapter.envelopes()
        assert next(stream)["raw"] == "a"
        assert next(stream) is ADAPTER_IDLE
        assert next(stream) is ADAPTER_IDLE
        adapter.send("b")
        assert next(stream)["raw"] == "b"
        adapter.end()
        with pytest.raises(StopIteration):
            next(stream)

    def test_seq_is_continuous_across_idle_gaps(self):
        adapter = QueueAdapter()
        stream = adapter.envelopes()
        adapter.send("a")
        assert next(stream)["seq"] == 0
        assert next(stream) is ADAPTER_IDLE
        adapter.send("b")
        assert next(stream)["seq"] == 1

    def test_pending_counts(self):
        adapter = QueueAdapter()
        adapter.send_many(["a", "b", "c"])
        assert adapter.pending == 3


class TestFileAdapter:
    def test_replays_ndjson(self, tmp_path):
        path = tmp_path / "data.ndjson"
        path.write_text('{"id": 1}\n\n{"id": 2}\n')
        adapter = FileAdapter(str(path))
        got = [json.loads(e["raw"])["id"] for e in adapter.envelopes()]
        assert got == [1, 2]
        assert adapter.received == 2

    def test_seq_is_the_file_line_number(self, tmp_path):
        path = tmp_path / "data.ndjson"
        path.write_text('{"id": 1}\n\n{"id": 2}\n')
        adapter = FileAdapter(str(path))
        assert [e["seq"] for e in adapter.envelopes()] == [1, 3]

    def test_handle_released_after_full_iteration(self, tmp_path):
        path = tmp_path / "data.ndjson"
        path.write_text('{"id": 1}\n')
        adapter = FileAdapter(str(path))
        list(adapter.envelopes())
        assert not adapter.is_open

    def test_close_releases_handle_after_abort(self, tmp_path):
        # A pipeline that dies mid-iteration leaves the generator (and
        # the file handle) open; teardown's close() must release it.
        path = tmp_path / "data.ndjson"
        path.write_text('{"id": 1}\n{"id": 2}\n')
        adapter = FileAdapter(str(path))
        stream = adapter.envelopes()
        next(stream)
        assert adapter.is_open
        adapter.close()
        assert not adapter.is_open
        adapter.close()  # idempotent


class TestResumeCursor:
    def test_file_adapter_tracks_line_and_byte_offset(self, tmp_path):
        path = tmp_path / "data.ndjson"
        path.write_text("".join(f'{{"id": {i}}}\n' for i in range(1, 6)))
        adapter = FileAdapter(str(path))
        assert adapter.resume_position() == (0, 0)
        stream = adapter.envelopes()
        next(stream)
        next(stream)
        # each line is 10 bytes; the cursor points just past line 2
        assert adapter.resume_position() == (2, 20)
        stream.close()

    def test_file_adapter_reopen_seeks_to_cursor(self, tmp_path):
        path = tmp_path / "data.ndjson"
        path.write_text("".join(f'{{"id": {i}}}\n' for i in range(1, 6)))
        adapter = FileAdapter(str(path))
        stream = adapter.envelopes()
        first = [next(stream), next(stream)]
        stream.close()  # the source dies mid-fetch
        rest = list(adapter.envelopes(resume_from=adapter.resume_position()))
        seqs = [e["seq"] for e in first + rest]
        assert seqs == [1, 2, 3, 4, 5]  # no loss, no duplicates
        ids = [json.loads(e["raw"])["id"] for e in first + rest]
        assert ids == [1, 2, 3, 4, 5]

    def test_file_adapter_accepts_int_line_watermark(self, tmp_path):
        # A durable checkpoint may only hold a seq (line) watermark; the
        # adapter accepts it and scan-skips its own range.
        path = tmp_path / "data.ndjson"
        path.write_text("".join(f'{{"id": {i}}}\n' for i in range(1, 6)))
        adapter = FileAdapter(str(path))
        rest = list(adapter.envelopes(resume_from=3))
        assert [e["seq"] for e in rest] == [4, 5]

    def test_file_adapter_blank_lines_keep_line_number_cursor(self, tmp_path):
        path = tmp_path / "data.ndjson"
        path.write_text('{"id": 1}\n\n{"id": 2}\n')
        adapter = FileAdapter(str(path))
        stream = adapter.envelopes()
        next(stream)
        next(stream)  # skips the blank line internally
        assert adapter.resume_position() == (3, 21)
        stream.close()
        assert list(adapter.envelopes(resume_from=3)) == []
        assert list(adapter.envelopes(resume_from=(3, 21))) == []

    def test_queue_adapter_cursor_is_max_delivered_seq(self):
        adapter = QueueAdapter()
        adapter.send_many(["a", "b", "c"])
        stream = adapter.envelopes()
        next(stream)
        assert adapter.resume_position() == 0
        # undrawn records survive in the queue: a re-open continues them
        # with monotonically continuing seq numbers
        adapter.end()
        rest = list(adapter.envelopes(resume_from=adapter.resume_position()))
        assert [e["seq"] for e in rest] == [1, 2]

    def test_queue_adapter_fresh_instance_skips_replayed_prefix(self):
        # Durable restart: a fresh adapter whose producer replays the
        # stream from the start skips everything at or below the cursor.
        adapter = QueueAdapter()
        adapter.send_many(["a", "b", "c"])
        adapter.end()
        rest = list(adapter.envelopes(resume_from=0))
        assert [(e["seq"], e["raw"]) for e in rest] == [(1, "b"), (2, "c")]

    def test_generator_adapter_cursor_is_max_delivered_seq(self):
        adapter = GeneratorAdapter(["a", "b", "c"])
        stream = adapter.envelopes()
        next(stream)
        next(stream)
        assert adapter.resume_position() == 1
        rest = list(adapter.envelopes(resume_from=adapter.resume_position()))
        assert [e["seq"] for e in rest] == [2]

    def test_generator_adapter_fresh_instance_skips_replayed_prefix(self):
        adapter = GeneratorAdapter(["a", "b", "c"])
        rest = list(adapter.envelopes(resume_from=1))
        assert [(e["seq"], e["raw"]) for e in rest] == [(2, "c")]


class TestFileAdapterSplit:
    def test_split_covers_file_without_overlap(self, tmp_path):
        path = tmp_path / "data.ndjson"
        path.write_text("".join(f'{{"id": {i}}}\n' for i in range(1, 11)))
        parts = FileAdapter(str(path)).split(4)
        assert len(parts) == 4
        seqs = []
        for part in parts:
            seqs.extend(e["seq"] for e in part.envelopes())
        assert sorted(seqs) == list(range(1, 11))

    def test_split_partitions_seek_not_scan(self, tmp_path):
        path = tmp_path / "data.ndjson"
        path.write_text("".join(f'{{"id": {i}}}\n' for i in range(1, 9)))
        parts = FileAdapter(str(path)).split(2)
        # the second partition opens at its precomputed byte offset
        assert parts[1].start_offset == 40  # four 10-byte lines
        assert parts[1].start_line == 5
        ids = [json.loads(e["raw"])["id"] for e in parts[1].envelopes()]
        assert ids == [5, 6, 7, 8]

    def test_split_more_partitions_than_lines(self, tmp_path):
        path = tmp_path / "data.ndjson"
        path.write_text('{"id": 1}\n{"id": 2}\n')
        parts = FileAdapter(str(path)).split(4)
        seqs = [e["seq"] for part in parts for e in part.envelopes()]
        assert seqs == [1, 2]

    def test_split_partition_resume_cursor_round_trips(self, tmp_path):
        path = tmp_path / "data.ndjson"
        path.write_text("".join(f'{{"id": {i}}}\n' for i in range(1, 9)))
        part = FileAdapter(str(path)).split(2)[1]
        stream = part.envelopes()
        next(stream)
        stream.close()
        rest = [e["seq"] for e in part.envelopes(resume_from=part.resume_position())]
        assert rest == [6, 7, 8]

    def test_close_idempotent_across_reopens(self, tmp_path):
        path = tmp_path / "data.ndjson"
        path.write_text("".join(f'{{"id": {i}}}\n' for i in range(1, 5)))
        adapter = FileAdapter(str(path))
        for _ in range(3):  # supervised crash/re-open cycles
            stream = adapter.envelopes(resume_from=adapter.resume_position())
            next(stream)
            adapter.close()
            adapter.close()  # double-close is a no-op
            assert not adapter.is_open
        rest = [e["seq"] for e in adapter.envelopes(resume_from=adapter.resume_position())]
        assert rest == [4]


class TestDrainAvailable:
    def test_stops_at_first_idle(self):
        adapter = QueueAdapter()
        adapter.send_many(["a", "b"])
        got = drain_available(adapter)
        assert [e["raw"] for e in got] == ["a", "b"]

    def test_drains_ended_stream_fully(self):
        adapter = QueueAdapter()
        adapter.send("a")
        adapter.end()
        assert len(drain_available(adapter)) == 1


class TestChunked:
    def test_chunks(self):
        assert list(chunked(iter(range(7)), 3)) == [[0, 1, 2], [3, 4, 5], [6]]

    def test_bad_size(self):
        with pytest.raises(ValueError):
            list(chunked(iter([]), 0))
