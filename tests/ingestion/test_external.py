"""External enrichment: resilient batched clients on the simulated clock."""

import json

import pytest

from repro.core import AsterixLite
from repro.errors import ExternalEnrichmentError, IngestionError
from repro.ingestion import (
    PENDING_FIELD,
    CircuitBreaker,
    EnricherBinding,
    EnrichmentCoordinator,
    ExternalEnricher,
    ExternalFailureAction,
    FeedPolicy,
    GeneratorAdapter,
    TokenBucket,
)
from repro.runtime import (
    EnricherFlaky,
    EnricherOutage,
    EnricherSlowdown,
    ExternalMetrics,
    FaultPlan,
)


def geo_lookup(key):
    return {"user": key, "region": f"r{len(str(key)) % 3}"}


def make_system(policy=None, enricher=None, fault_plan=None):
    system = AsterixLite(num_nodes=2)
    system.execute(
        """
        CREATE TYPE TweetType AS OPEN { id: int64 };
        CREATE DATASET Tweets(TweetType) PRIMARY KEY id;
        """
    )
    system.create_feed("TweetFeed", {"type-name": "TweetType"})
    enricher = enricher or ExternalEnricher("geo", lookup=geo_lookup)
    binding = EnricherBinding(enricher, "user", "user_geo")
    system.connect_feed(
        "TweetFeed",
        "Tweets",
        policy=policy or FeedPolicy.spill(),
        external_enrichers=[binding],
    )
    return system, enricher, binding


def raws(n, cardinality=10):
    return [
        json.dumps({"id": i, "user": f"u{i % cardinality}"}) for i in range(n)
    ]


class TestExternalEnricher:
    def test_healthy_call_resolves_every_key(self):
        enricher = ExternalEnricher("geo", lookup=geo_lookup)
        result = enricher.call(["u1", "u2"], now=0.0, deadline=1.0)
        assert result.outcome == "ok"
        assert set(result.results) == {"u1", "u2"}
        assert result.results["u1"]["region"].startswith("r")
        assert 0.0 < result.latency < 1.0

    def test_latency_is_deterministic_per_call_index(self):
        a = ExternalEnricher("geo", seed=7)
        b = ExternalEnricher("geo", seed=7)
        for _ in range(5):
            a.call(["k"], now=0.0, deadline=1.0)
            b.call(["k"], now=0.0, deadline=1.0)
        assert a.call_log == b.call_log
        # a different seed perturbs the jitter stream
        c = ExternalEnricher("geo", seed=8)
        for _ in range(5):
            c.call(["k"], now=0.0, deadline=1.0)
        assert c.call_log != a.call_log

    def test_deadline_turns_slow_call_into_timeout(self):
        enricher = ExternalEnricher("geo", base_latency_seconds=0.5)
        result = enricher.call(["k"], now=0.0, deadline=0.05)
        assert result.outcome == "timeout"
        assert result.latency == pytest.approx(0.05)  # burns the deadline

    def test_outage_modes(self):
        plan = FaultPlan(
            enricher_faults=[
                EnricherOutage("geo", at=0.0, duration=1.0, mode="error"),
                EnricherOutage(
                    "geo",
                    at=2.0,
                    duration=1.0,
                    mode="rate_limit",
                    retry_after_seconds=0.2,
                ),
            ]
        )
        enricher = ExternalEnricher("geo")
        assert enricher.call(["k"], 0.5, 1.0, plan).outcome == "error"
        limited = enricher.call(["k"], 2.5, 1.0, plan)
        assert limited.outcome == "rate_limited"
        assert limited.retry_after == pytest.approx(0.2)
        # outside both windows the enricher is healthy
        assert enricher.call(["k"], 4.0, 1.0, plan).outcome == "ok"

    def test_slowdown_scales_latency(self):
        plan = FaultPlan(
            enricher_faults=[
                EnricherSlowdown("geo", at=0.0, duration=1.0, factor=100.0)
            ]
        )
        enricher = ExternalEnricher("geo", base_latency_seconds=0.005)
        slow = enricher.call(["k"], 0.5, deadline=10.0, fault_plan=plan)
        fast = enricher.call(["k"], 5.0, deadline=10.0, fault_plan=plan)
        assert slow.latency > 50 * fast.latency

    def test_flaky_fails_a_deterministic_subset(self):
        plan = FaultPlan(
            enricher_faults=[EnricherFlaky("geo", rate=0.5, mode="error")]
        )
        outcomes = []
        for run in range(2):
            enricher = ExternalEnricher("geo", seed=3)
            outcomes.append(
                [
                    enricher.call(["k"], 0.0, 1.0, plan).outcome
                    for _ in range(20)
                ]
            )
        assert outcomes[0] == outcomes[1]  # same calls fail on both runs
        assert "error" in outcomes[0] and "ok" in outcomes[0]


class TestCircuitBreaker:
    def _breaker(self, threshold=3, reset=1.0, probes=1):
        return CircuitBreaker(
            "geo", threshold, reset, probes, ExternalMetrics()
        )

    def test_opens_at_threshold_and_fails_fast(self):
        breaker = self._breaker(threshold=3)
        for t in range(3):
            assert breaker.allow(float(t))
            breaker.on_failure(float(t))
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.metrics.breaker_opens == 1
        assert not breaker.allow(2.5)  # inside the cool-off: fail fast

    def test_half_open_probe_success_closes(self):
        breaker = self._breaker(threshold=1, reset=1.0)
        breaker.allow(0.0)
        breaker.on_failure(0.0)
        assert breaker.allow(1.5)  # past the cool-off: probe admitted
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.on_success(1.6)
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.metrics.breaker_half_opens == 1
        assert breaker.metrics.breaker_closes == 1

    def test_half_open_probe_failure_reopens(self):
        breaker = self._breaker(threshold=1, reset=1.0)
        breaker.on_failure(0.0)
        breaker.allow(1.5)
        breaker.on_failure(1.6)
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.metrics.breaker_opens == 2
        assert not breaker.allow(2.0)  # new cool-off starts at the reopen
        assert breaker.allow(2.7)

    def test_probe_budget_bounds_half_open_admissions(self):
        breaker = self._breaker(threshold=1, reset=1.0, probes=2)
        breaker.on_failure(0.0)
        assert breaker.allow(1.5)
        assert breaker.allow(1.5)
        assert not breaker.allow(1.5)  # probe budget exhausted

    def test_zero_threshold_disables(self):
        breaker = self._breaker(threshold=0)
        for t in range(50):
            breaker.on_failure(float(t))
            assert breaker.allow(float(t))
        assert breaker.metrics.breaker_opens == 0

    def test_transitions_are_recorded(self):
        breaker = self._breaker(threshold=1, reset=1.0)
        breaker.on_failure(0.5)
        breaker.allow(2.0)
        breaker.on_success(2.1)
        assert [state for _t, state in breaker.transitions] == [
            "closed",
            "open",
            "half_open",
            "closed",
        ]


class TestTokenBucket:
    def test_burst_then_paced(self):
        bucket = TokenBucket(rate_per_second=10.0, burst=2)
        assert bucket.reserve(0.0) == pytest.approx(0.0)
        assert bucket.reserve(0.0) == pytest.approx(0.0)  # burst capacity
        assert bucket.reserve(0.0) == pytest.approx(0.1)
        assert bucket.reserve(0.0) == pytest.approx(0.2)

    def test_idle_time_refills(self):
        bucket = TokenBucket(rate_per_second=10.0, burst=1)
        bucket.reserve(0.0)
        assert bucket.reserve(0.0) == pytest.approx(0.1)
        assert bucket.reserve(5.0) == pytest.approx(5.0)  # long idle: free


class TestCoordinator:
    def _coordinator(self, policy=None, fault_plan=None, enricher=None):
        enricher = enricher or ExternalEnricher("geo", lookup=geo_lookup)
        binding = EnricherBinding(enricher, "user", "user_geo")
        coordinator = EnrichmentCoordinator(
            [binding],
            policy or FeedPolicy.spill(),
            fault_plan=fault_plan,
            feed_name="F",
        )
        return coordinator, enricher

    def _records(self, n, cardinality):
        return [{"id": i, "user": f"u{i % cardinality}"} for i in range(n)]

    def test_keys_are_deduped_per_batch(self):
        coordinator, enricher = self._coordinator(
            policy=FeedPolicy.spill(external_chunk_size=100)
        )
        records = self._records(60, cardinality=5)
        coordinator.enrich_batch([records], now=0.0)
        assert enricher.calls == 1  # 5 distinct keys -> one chunk
        assert coordinator.metrics.keys_requested == 5
        assert all(r["user_geo"]["user"] == r["user"] for r in records)

    def test_chunking_splits_large_key_sets(self):
        coordinator, enricher = self._coordinator(
            policy=FeedPolicy.spill(external_chunk_size=4)
        )
        coordinator.enrich_batch([self._records(40, cardinality=10)], now=0.0)
        assert enricher.calls == 3  # ceil(10 / 4)

    def test_bounded_concurrency_shortens_fanout(self):
        elapsed = {}
        for lanes in (1, 4):
            coordinator, _ = self._coordinator(
                policy=FeedPolicy.spill(
                    external_chunk_size=2, external_concurrency=lanes
                )
            )
            elapsed[lanes] = coordinator.enrich_batch(
                [self._records(16, cardinality=16)], now=0.0
            )
        assert elapsed[4] < elapsed[1]
        assert elapsed[1] / elapsed[4] > 2.0

    def test_retries_back_off_then_succeed(self):
        # one flaky window long enough that some chunks need a retry
        plan = FaultPlan(
            enricher_faults=[EnricherFlaky("geo", rate=0.4, mode="error")]
        )
        coordinator, _ = self._coordinator(
            policy=FeedPolicy.spill(
                external_chunk_size=1, external_max_attempts=5
            ),
            fault_plan=plan,
        )
        records = self._records(30, cardinality=30)
        coordinator.enrich_batch([records], now=0.0)
        m = coordinator.metrics
        assert m.errors > 0
        assert m.retries > 0
        assert m.backoff_seconds > 0
        assert all(r["user_geo"] is not None for r in records)
        assert coordinator.completeness == 1.0

    def test_retry_budget_exhaustion_marks_pending(self):
        plan = FaultPlan(
            enricher_faults=[EnricherOutage("geo", at=0.0, duration=1e9)]
        )
        coordinator, _ = self._coordinator(
            policy=FeedPolicy.spill(external_breaker_failures=0),
            fault_plan=plan,
        )
        records = self._records(10, cardinality=2)
        coordinator.enrich_batch([records], now=0.0)
        assert all(r["user_geo"] is None for r in records)
        assert all(r[PENDING_FIELD] == ["geo:user_geo"] for r in records)
        assert coordinator.completeness == 0.0

    def test_open_breaker_fails_fast_without_calls(self):
        plan = FaultPlan(
            enricher_faults=[EnricherOutage("geo", at=0.0, duration=1e9)]
        )
        coordinator, enricher = self._coordinator(
            policy=FeedPolicy.spill(
                external_breaker_failures=2,
                external_max_attempts=1,
                external_chunk_size=1,
            ),
            fault_plan=plan,
        )
        coordinator.enrich_batch([self._records(10, cardinality=10)], now=0.0)
        m = coordinator.metrics
        assert m.fail_fast == 8  # 2 real failures open it; 8 chunks skip
        assert enricher.calls == 2

    def test_rate_limiter_paces_calls(self):
        coordinator, enricher = self._coordinator(
            policy=FeedPolicy.spill(
                external_chunk_size=1,
                external_concurrency=1,
                external_rate_limit_per_second=100.0,
                external_rate_limit_burst=1,
            )
        )
        coordinator.enrich_batch([self._records(5, cardinality=5)], now=0.0)
        assert coordinator.metrics.rate_limit_wait_seconds > 0
        starts = [start for start, _o, _l in enricher.call_log]
        gaps = [b - a for a, b in zip(starts, starts[1:])]
        assert all(gap >= 0.01 - 1e-9 for gap in gaps)

    def test_records_without_key_pass_through(self):
        coordinator, enricher = self._coordinator()
        records = [{"id": 1}, {"id": 2, "user": "u1"}]
        coordinator.enrich_batch([records], now=0.0)
        assert "user_geo" not in records[0]
        assert records[1]["user_geo"]["user"] == "u1"
        assert coordinator.completeness == 1.0


class TestFeedIntegration:
    def test_healthy_feed_enriches_every_record(self):
        system, _e, _b = make_system()
        report = system.start_feed(
            "TweetFeed", GeneratorAdapter(raws(100)), batch_size=25
        )
        assert report.records_stored == 100
        assert report.enrichment_completeness == 1.0
        assert report.external.records_enriched == 100
        # dedup across records: 4 batches x 10 distinct keys
        assert report.external.keys_requested == 40
        rows = list(system.catalog["Tweets"].scan())
        assert all(r["user_geo"]["user"] == r["user"] for r in rows)
        assert report.runtime.external is report.external

    def test_external_time_lands_on_the_makespan(self):
        system, _e, _b = make_system()
        baseline_system = AsterixLite(num_nodes=2)
        baseline_system.execute(
            """
            CREATE TYPE TweetType AS OPEN { id: int64 };
            CREATE DATASET Tweets(TweetType) PRIMARY KEY id;
            """
        )
        baseline_system.create_feed("TweetFeed", {"type-name": "TweetType"})
        baseline_system.connect_feed(
            "TweetFeed", "Tweets", policy=FeedPolicy.spill()
        )
        enriched = system.start_feed(
            "TweetFeed", GeneratorAdapter(raws(100)), batch_size=25
        )
        plain = baseline_system.start_feed(
            "TweetFeed", GeneratorAdapter(raws(100)), batch_size=25
        )
        assert enriched.simulated_seconds > plain.simulated_seconds

    def test_hard_down_marks_pending_and_backfills(self):
        system, _e, _b = make_system()
        plan = FaultPlan(
            enricher_faults=[EnricherOutage("geo", at=0.0, duration=1e9)]
        )
        report = system.start_feed(
            "TweetFeed",
            GeneratorAdapter(raws(100)),
            batch_size=25,
            fault_plan=plan,
        )
        # ingestion held: every record stored, enrichment degraded
        assert report.records_stored == 100
        assert report.enrichment_completeness == 0.0
        assert report.external.records_pending == 100
        assert report.external.breaker_opens >= 1
        rows = list(system.catalog["Tweets"].scan())
        assert all(r[PENDING_FIELD] == ["geo:user_geo"] for r in rows)
        assert all(r["user_geo"] is None for r in rows)
        # the remote recovers: the catch-up pass clears every marker
        backfill = system.backfill_pending("TweetFeed")
        assert backfill.scanned == 100
        assert backfill.backfilled == 100
        assert backfill.still_pending == 0
        assert backfill.completeness == 1.0
        rows = list(system.catalog["Tweets"].scan())
        assert all(PENDING_FIELD not in r for r in rows)
        assert all(r["user_geo"]["user"] == r["user"] for r in rows)

    def test_dead_letter_action_routes_records_with_provenance(self):
        policy = FeedPolicy.spill(
            external_on_failure=ExternalFailureAction.DEAD_LETTER
        )
        system, _e, _b = make_system(policy=policy)
        plan = FaultPlan(
            enricher_faults=[EnricherOutage("geo", at=0.0, duration=1e9)]
        )
        report = system.start_feed(
            "TweetFeed",
            GeneratorAdapter(raws(20)),
            batch_size=5,
            fault_plan=plan,
        )
        assert report.records_stored == 0
        assert report.external.records_dead_lettered == 20
        dead = list(system.catalog["TweetFeed_DeadLetters"].scan())
        assert len(dead) == 20
        entry = dead[0]
        assert entry["stage"] == "external"
        assert entry["enrichers"] == ["geo:user_geo"]
        assert "error" in entry["error"] or entry["error"]
        # zero loss: every ingested id is accounted for in the dl dataset
        ids = sorted(json.loads(r["raw"])["id"] for r in dead)
        assert ids == list(range(20))
        # the remote recovers: replay pushes them through the full pipeline
        result = system.replay_dead_letters("TweetFeed", batch_size=5)
        assert result.records_stored == 20
        assert result.still_dead == 0
        rows = list(system.catalog["Tweets"].scan())
        assert len(rows) == 20
        assert all(r["user_geo"]["user"] == r["user"] for r in rows)

    def test_fail_action_escalates(self):
        policy = FeedPolicy.spill(
            external_on_failure=ExternalFailureAction.FAIL
        )
        system, _e, _b = make_system(policy=policy)
        plan = FaultPlan(
            enricher_faults=[EnricherOutage("geo", at=0.0, duration=1e9)]
        )
        with pytest.raises(ExternalEnrichmentError):
            system.start_feed(
                "TweetFeed",
                GeneratorAdapter(raws(20)),
                batch_size=5,
                fault_plan=plan,
            )

    def test_breaker_recovers_within_a_run(self):
        # outage covers the first batches; the breaker opens, half-opens
        # after the cool-off, closes on a healthy probe, and late batches
        # enrich normally
        policy = FeedPolicy.spill(
            external_breaker_failures=2,
            external_breaker_reset_seconds=0.01,
            external_max_attempts=1,
        )
        system, enricher, binding = make_system(policy=policy)
        plan = FaultPlan(
            enricher_faults=[EnricherOutage("geo", at=0.0, duration=0.02)]
        )
        report = system.start_feed(
            "TweetFeed",
            GeneratorAdapter(raws(400)),
            batch_size=25,
            fault_plan=plan,
        )
        external = report.external
        assert external.breaker_opens >= 1
        assert external.breaker_half_opens >= 1
        assert external.breaker_closes >= 1
        assert 0.0 < report.enrichment_completeness < 1.0
        backfill = system.backfill_pending("TweetFeed")
        assert backfill.completeness == 1.0

    def test_static_framework_rejects_external_enrichers(self):
        system, _e, _b = make_system()
        with pytest.raises(IngestionError):
            system.start_feed(
                "TweetFeed",
                GeneratorAdapter(raws(10)),
                framework="static",
            )

    def test_default_off_feed_reports_no_external_metrics(self):
        system = AsterixLite(num_nodes=2)
        system.execute(
            """
            CREATE TYPE TweetType AS OPEN { id: int64 };
            CREATE DATASET Tweets(TweetType) PRIMARY KEY id;
            """
        )
        system.create_feed("TweetFeed", {"type-name": "TweetType"})
        system.connect_feed("TweetFeed", "Tweets", policy=FeedPolicy.spill())
        report = system.start_feed(
            "TweetFeed", GeneratorAdapter(raws(50)), batch_size=25
        )
        assert report.external is None
        assert report.enrichment_completeness == 1.0
        assert report.runtime.external is None

    def test_backfill_without_enrichers_raises(self):
        system = AsterixLite(num_nodes=2)
        system.execute(
            """
            CREATE TYPE TweetType AS OPEN { id: int64 };
            CREATE DATASET Tweets(TweetType) PRIMARY KEY id;
            """
        )
        system.create_feed("TweetFeed", {"type-name": "TweetType"})
        system.connect_feed("TweetFeed", "Tweets")
        with pytest.raises(IngestionError):
            system.backfill_pending("TweetFeed")
