"""Feed-level invalidation matrix for the enrichment-state cache.

Every mutation channel that can change what a UDF should observe —
update-client upserts mid-run, dead-letter replay, ``create_index`` /
``drop_index``, ``load_dataset`` — must force rebuilds at the next batch
boundary, and enabling the cache must never change stored outputs
(including under a 4-worker elastic pool).
"""

from __future__ import annotations

import hashlib
import json

from repro.core.system import AsterixLite
from repro.ingestion.adapter import GeneratorAdapter
from repro.ingestion.policy import FeedPolicy
from repro.ingestion.updates import ReferenceUpdateClient

FEED = "CacheFeed"
REF_RECORDS = 24
COUNTIES = 8
BATCH = 10
CACHE_BYTES = 8 << 20


def build_system() -> AsterixLite:
    system = AsterixLite(num_nodes=2)
    system.execute(
        """
        CREATE TYPE TweetType AS OPEN { id: int64, text: string };
        CREATE DATASET EnrichedTweets(TweetType) PRIMARY KEY id;
        CREATE TYPE RatingType AS OPEN { sid: int64 };
        CREATE DATASET SafetyRatings(RatingType) PRIMARY KEY sid;
        """
    )
    system.insert(
        "SafetyRatings",
        [
            {"sid": i, "county": f"county{i % COUNTIES}", "rating": (7 * i) % 50}
            for i in range(REF_RECORDS)
        ],
    )
    system.catalog["SafetyRatings"].flush_all()
    system.execute(
        """
        CREATE FUNCTION enrichSafety(t) {
            LET ratings = (SELECT VALUE s.rating FROM SafetyRatings s
                           WHERE s.county = t.county)
            SELECT t.*, ratings AS safety
        };
        CREATE FEED CacheFeed WITH { "type-name": "TweetType" };
        CONNECT FEED CacheFeed TO DATASET EnrichedTweets
            APPLY FUNCTION enrichSafety;
        """
    )
    return system


def raw_tweets(count: int, start: int = 0):
    return [
        json.dumps(
            {"id": i, "text": f"t{i}", "county": f"county{i % COUNTIES}"}
        )
        for i in range(start, start + count)
    ]


def cache_policy(**overrides) -> FeedPolicy:
    return FeedPolicy.basic(state_cache_bytes=CACHE_BYTES, **overrides)


def run_feed(system, tweets, policy, update_client=None):
    return system.start_feed(
        FEED,
        adapter=GeneratorAdapter(tweets),
        batch_size=BATCH,
        policy=policy,
        update_client=update_client,
    )


def output_digest(system) -> str:
    stored = sorted(
        (r["id"], tuple(r.get("safety") or ()))
        for r in system.catalog["EnrichedTweets"].scan()
    )
    return hashlib.sha256(
        json.dumps(stored, sort_keys=True).encode()
    ).hexdigest()


def test_cache_on_matches_cache_off_and_reports_counters():
    on, off = build_system(), build_system()
    report_on = run_feed(on, raw_tweets(50), cache_policy())
    report_off = run_feed(off, raw_tweets(50), FeedPolicy.basic())

    # 5 batches: first builds, the other 4 reuse.
    assert report_on.state_cache_hits > 0
    assert report_on.state_cache_misses > 0
    assert report_on.state_cache_bytes > 0
    assert report_off.state_cache_hits == 0
    assert report_off.state_cache_misses == 0
    # The counters surface identically on RuntimeMetrics...
    assert report_on.runtime.state_cache_hits == report_on.state_cache_hits
    assert report_on.runtime.state_cache_misses == report_on.state_cache_misses
    assert report_on.runtime.state_cache_bytes == report_on.state_cache_bytes
    # ...and on the system-level stats facade.
    stats = on.plan_cache_stats()
    assert stats["state_cache_hits"] == report_on.state_cache_hits
    assert stats["state_cache_bytes"] > 0
    # Identical stored outputs; cost is the only thing that changed.
    assert output_digest(on) == output_digest(off)


def test_cache_survives_across_runs_until_reference_changes():
    system = build_system()
    first = run_feed(system, raw_tweets(30), cache_policy())
    assert first.state_cache_misses > 0

    # Second run, nothing changed: every batch (including the first) hits.
    second = run_feed(system, raw_tweets(30, start=30), cache_policy())
    assert second.state_cache_misses == 0
    assert second.state_cache_hits == second.num_computing_jobs

    # A committed write between runs forces a cold first batch.
    system.catalog["SafetyRatings"].upsert(
        {"sid": 0, "county": "county0", "rating": 49}
    )
    before = system.registry.state_cache.stats()["version_mismatches"]
    third = run_feed(system, raw_tweets(30, start=60), cache_policy())
    assert third.state_cache_misses > 0
    assert system.registry.state_cache.stats()["version_mismatches"] > before
    # The rebuild observed the upsert: county0 tweets carry the new rating.
    county0 = [
        r
        for r in system.catalog["EnrichedTweets"].scan()
        if r["id"] >= 60 and r["county"] == "county0"
    ]
    assert county0 and all(49 in r["safety"] for r in county0)


def test_update_client_mid_run_forces_rebuild_without_changing_outputs():
    def updates():
        # Three upserts, all fired right after the first batch (the rate
        # is far above one update per batch makespan), then exhausted.
        for i in range(3):
            yield {"sid": i, "county": f"county{i}", "rating": 49}

    on, off = build_system(), build_system()
    reports = {}
    for label, system, policy in (
        ("on", on, cache_policy()),
        ("off", off, FeedPolicy.basic()),
    ):
        client = ReferenceUpdateClient(
            1000.0, updates(), system.catalog["SafetyRatings"].upsert
        )
        reports[label] = run_feed(system, raw_tweets(50), policy, client)
        assert client.exhausted

    report = reports["on"]
    # Batch 0 builds, batch 1 rebuilds (the upserts landed in between),
    # batches 2..4 reuse.
    assert report.num_computing_jobs == 5
    assert report.state_cache_hits == 3
    assert output_digest(on) == output_digest(off)


def test_ddl_and_load_dataset_clear_the_cache(tmp_path):
    system = build_system()
    run_feed(system, raw_tweets(30), cache_policy())
    cache = system.registry.state_cache
    assert len(cache) > 0

    # Index an unrelated field so the planner keeps using the hash-probe
    # strategy (an index on the probed field would switch it to index
    # lookups and leave nothing to cache).
    system.create_index("by_rating", "SafetyRatings", "rating")
    assert len(cache) == 0

    run_feed(system, raw_tweets(30, start=30), cache_policy())
    assert len(cache) > 0
    system.drop_index("SafetyRatings", "by_rating")
    assert len(cache) == 0

    # load_dataset goes through the same invalidation path.
    donor = AsterixLite(num_nodes=1)
    donor.execute(
        """
        CREATE TYPE ExtraType AS OPEN { xid: int64 };
        CREATE DATASET Extra(ExtraType) PRIMARY KEY xid;
        """
    )
    donor.insert("Extra", [{"xid": 1}])
    snapshot = tmp_path / "extra.json"
    donor.save_dataset("Extra", str(snapshot))

    run_feed(system, raw_tweets(30, start=60), cache_policy())
    assert len(cache) > 0
    system.load_dataset(str(snapshot))
    assert len(cache) == 0


def test_replay_dead_letters_forces_rebuild():
    system = build_system()
    # A ratings-repair feed writing INTO the reference dataset, with a
    # dead-letter policy and one malformed row.
    system.execute(
        """
        CREATE FEED RatingsFeed WITH { "type-name": "RatingType" };
        CONNECT FEED RatingsFeed TO DATASET SafetyRatings;
        """
    )
    good = json.dumps({"sid": 100, "county": "county0", "rating": 1})
    system.start_feed(
        "RatingsFeed",
        adapter=GeneratorAdapter([good, "{broken json"]),
        batch_size=4,
        policy=FeedPolicy.spill(),
    )
    dl = system.catalog["RatingsFeed_DeadLetters"]
    rows = list(dl.scan())
    assert len(rows) == 1

    # Warm the cache; with no further changes a re-run is all hits.
    run_feed(system, raw_tweets(30), cache_policy())
    rerun = run_feed(system, raw_tweets(30, start=30), cache_policy())
    assert rerun.state_cache_misses == 0

    # Repair the dead letter and replay it into SafetyRatings.
    repaired = dict(rows[0])
    repaired["raw"] = json.dumps(
        {"sid": 101, "county": "county1", "rating": 2}
    )
    dl.upsert(repaired)
    replay = system.replay_dead_letters(
        "RatingsFeed", batch_size=4, policy=FeedPolicy.spill()
    )
    assert replay.records_stored == 1

    # The replayed upsert bumped the reference version: cold first batch.
    after = run_feed(system, raw_tweets(30, start=60), cache_policy())
    assert after.state_cache_misses > 0
    county1 = [
        r
        for r in system.catalog["EnrichedTweets"].scan()
        if r["id"] >= 60 and r["county"] == "county1"
    ]
    assert county1 and all(2 in r["safety"] for r in county1)


def test_four_worker_elastic_pool_shares_cache_and_outputs_match():
    on, off = build_system(), build_system()
    pooled = dict(min_computing_workers=4, max_computing_workers=4)
    report_on = run_feed(
        on, raw_tweets(80), cache_policy(**pooled)
    )
    report_off = run_feed(
        off,
        raw_tweets(80),
        FeedPolicy.basic(**pooled),
    )
    assert report_on.peak_computing_workers == 4
    assert report_off.peak_computing_workers == 4
    assert report_on.state_cache_hits > 0
    assert output_digest(on) == output_digest(off)

    # And the 4-worker cache-on output matches a single-worker run too.
    single = build_system()
    run_feed(single, raw_tweets(80), FeedPolicy.basic())
    assert output_digest(on) == output_digest(single)
