"""Function registry: registration, replacement, Java lifecycle."""

import pytest

from repro.errors import UdfError, UdfRegistrationError
from repro.sqlpp.evaluator import EvaluationContext
from repro.udf import FunctionRegistry, JavaUdf, JavaUdfDescriptor


@pytest.fixture
def reg():
    return FunctionRegistry(lambda: {"SensitiveWords"})


class TestSqlppRegistration:
    def test_register_from_source(self, reg):
        udf = reg.register_sqlpp("CREATE FUNCTION f(a) { SELECT VALUE a + 1 }")
        assert udf.name == "f" and udf.arity == 1 and not udf.stateful

    def test_duplicate_rejected(self, reg):
        reg.register_sqlpp("CREATE FUNCTION f(a) { SELECT VALUE a }")
        with pytest.raises(UdfRegistrationError, match="already registered"):
            reg.register_sqlpp("CREATE FUNCTION f(a) { SELECT VALUE a }")

    def test_replace_is_upsert(self, reg):
        reg.register_sqlpp("CREATE FUNCTION f(a) { SELECT VALUE a + 1 }")
        reg.replace_sqlpp("CREATE FUNCTION f(a) { SELECT VALUE a + 2 }")
        ctx = EvaluationContext({}, functions=reg)
        assert reg.invoke("f", [1], ctx) == [3]

    def test_called_names_analyzed_once_per_registration(self, reg, monkeypatch):
        import repro.udf.registry as registry_module

        calls = {"count": 0}
        original = registry_module.uses_unsupported_builtin

        def counting(definition):
            calls["count"] += 1
            return original(definition)

        monkeypatch.setattr(
            registry_module, "uses_unsupported_builtin", counting
        )
        reg.register_sqlpp("CREATE FUNCTION f(a) { SELECT VALUE lower(a) }")
        assert calls["count"] == 1

    def test_prepared_invoker_tracks_replacement(self, reg):
        reg.register_sqlpp("CREATE FUNCTION f(a) { SELECT VALUE a + 1 }")
        prepared = reg.prepared_invoker("f")
        ctx = EvaluationContext({}, functions=reg)
        assert prepared([1], ctx) == [2]
        reg.replace_sqlpp("CREATE FUNCTION f(a) { SELECT VALUE a + 10 }")
        assert prepared([1], ctx) == [11]  # re-resolves on version bump
        with pytest.raises(UdfError, match="expects 1 argument"):
            prepared([1, 2], ctx)

    def test_stateful_classification(self, reg):
        udf = reg.register_sqlpp(
            "CREATE FUNCTION g(t) { SELECT VALUE s FROM SensitiveWords s }"
        )
        assert udf.stateful

    def test_unknown_function_call_rejected_at_registration(self, reg):
        with pytest.raises(UdfRegistrationError, match="unknown function"):
            reg.register_sqlpp("CREATE FUNCTION f(a) { SELECT VALUE frobnicate(a) }")

    def test_udf_calling_registered_udf_allowed(self, reg):
        reg.register_sqlpp("CREATE FUNCTION inner_fn(a) { SELECT VALUE a * 2 }")
        reg.register_sqlpp("CREATE FUNCTION outer_fn(a) { SELECT VALUE inner_fn(a)[0] }")
        ctx = EvaluationContext({}, functions=reg)
        assert reg.invoke("outer_fn", [3], ctx) == [6]

    def test_arity_enforced_at_invoke(self, reg):
        reg.register_sqlpp("CREATE FUNCTION f(a, b) { SELECT VALUE a + b }")
        ctx = EvaluationContext({}, functions=reg)
        with pytest.raises(UdfError, match="expects 2"):
            reg.invoke("f", [1], ctx)

    def test_unknown_invoke_raises(self, reg):
        ctx = EvaluationContext({}, functions=reg)
        with pytest.raises(UdfError, match="unknown function"):
            reg.invoke("ghost", [], ctx)

    def test_names_listing(self, reg):
        reg.register_sqlpp("CREATE FUNCTION zz(a) { SELECT VALUE a }")
        reg.register_sqlpp("CREATE FUNCTION aa(a) { SELECT VALUE a }")
        assert reg.sqlpp_names() == ["aa", "zz"]


class _CountingUdf(JavaUdf):
    required_resources = ("data",)
    instances = 0

    def initialize(self, node_info):
        _CountingUdf.instances += 1
        self.lines = self.read_resource("data")
        super().initialize(node_info)

    def evaluate(self, x):
        return len(self.lines)


class TestJavaLifecycle:
    def make_descriptor(self, lines):
        return JavaUdfDescriptor(
            "lib", "counting", lambda: _CountingUdf({"data": lambda: list(lines)}),
            1, True,
        )

    def test_register_and_invoke(self, reg):
        _CountingUdf.instances = 0
        reg.register_java(self.make_descriptor(["a", "b"]))
        ctx = EvaluationContext({}, functions=reg)
        assert reg.invoke_java("lib", "counting", [None], ctx) == 2

    def test_instance_cached_per_generation(self, reg):
        _CountingUdf.instances = 0
        reg.register_java(self.make_descriptor(["a"]))
        ctx = EvaluationContext({}, functions=reg)
        for _ in range(5):
            reg.invoke_java("lib", "counting", [None], ctx)
        assert _CountingUdf.instances == 1

    def test_refresh_reinitializes(self, reg):
        _CountingUdf.instances = 0
        lines = ["a"]
        reg.register_java(self.make_descriptor(lines))
        ctx = EvaluationContext({}, functions=reg)
        assert reg.invoke_java("lib", "counting", [None], ctx) == 1
        lines.append("b")  # resource file updated
        assert reg.invoke_java("lib", "counting", [None], ctx) == 1  # stale
        ctx.refresh_batch()
        assert reg.invoke_java("lib", "counting", [None], ctx) == 2  # re-read

    def test_duplicate_java_rejected(self, reg):
        reg.register_java(self.make_descriptor([]))
        with pytest.raises(UdfRegistrationError):
            reg.register_java(self.make_descriptor([]))

    def test_java_arity_enforced(self, reg):
        reg.register_java(self.make_descriptor([]))
        ctx = EvaluationContext({}, functions=reg)
        with pytest.raises(UdfError, match="expects 1"):
            reg.invoke_java("lib", "counting", [1, 2], ctx)

    def test_unknown_java_raises(self, reg):
        ctx = EvaluationContext({}, functions=reg)
        with pytest.raises(UdfError, match="unknown java function"):
            reg.invoke_java("lib", "ghost", [], ctx)

    def test_missing_resource_rejected(self):
        with pytest.raises(UdfError, match="requires resource"):
            _CountingUdf({})

    def test_evaluate_before_initialize_rejected(self):
        udf = _CountingUdf({"data": lambda: []})
        with pytest.raises(UdfError, match="before initialize"):
            udf(None)

    def test_initialize_must_call_super(self, reg):
        class Broken(JavaUdf):
            def initialize(self, node_info):
                pass  # forgot super().initialize

            def evaluate(self, x):
                return x

        descriptor = JavaUdfDescriptor("lib", "broken", Broken, 1, False)
        with pytest.raises(UdfError, match="must call"):
            descriptor.instantiate()
