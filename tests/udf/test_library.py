"""The paper UDF library: SQL++ and Java twins agree with brute force."""

import pytest

from repro.adm import Point
from repro.sqlpp import EvaluationContext, Evaluator, parse_expression
from repro.udf import (
    JAVA_UDF_CLASSES,
    SQLPP_FUNCTION_NAMES,
    SQLPP_UDFS,
    FunctionRegistry,
    register_paper_udfs,
)
from repro.udf.library import (
    FuzzySuspectsJavaUdf,
    KeywordSafetyCheckJavaUdf,
    LargestReligionsJavaUdf,
    NearbyMonumentsJavaUdf,
    ReligiousPopulationJavaUdf,
    RemoveSpecialUdf,
    SafetyRatingJavaUdf,
    TweetSafetyCheckJavaUdf,
)


class TestRemoveSpecial:
    def test_strips_non_alpha_and_lowercases(self):
        udf = RemoveSpecialUdf()
        udf.initialize("nc0")
        assert udf("John_Smith!!123") == "johnsmith"

    def test_non_string_returns_none(self):
        udf = RemoveSpecialUdf()
        udf.initialize("nc0")
        assert udf(42) is None


class TestStatelessJavaSafetyCheck:
    def test_red_flag(self):
        udf = TweetSafetyCheckJavaUdf()
        udf.initialize("nc0")
        out = udf({"country": "US", "text": "a bomb"})
        assert out["safety_check_flag"] == "Red"

    def test_green_for_other_country(self):
        udf = TweetSafetyCheckJavaUdf()
        udf.initialize("nc0")
        assert udf({"country": "FR", "text": "a bomb"})["safety_check_flag"] == "Green"

    def test_input_not_mutated(self):
        udf = TweetSafetyCheckJavaUdf()
        udf.initialize("nc0")
        tweet = {"country": "US", "text": "x"}
        udf(tweet)
        assert "safety_check_flag" not in tweet


class TestKeywordSafetyCheck:
    def test_resource_driven_flags(self):
        udf = KeywordSafetyCheckJavaUdf(
            {"keyword_list": lambda: ["1|US|bomb", "2|FR|bombe"]}
        )
        udf.initialize("nc0")
        assert udf({"country": "FR", "text": "une bombe"})["safety_check_flag"] == "Red"
        assert udf({"country": "US", "text": "all quiet"})["safety_check_flag"] == "Green"
        assert udf({"country": "DE", "text": "bomb bombe"})["safety_check_flag"] == "Green"


class TestJavaSqlppTwins:
    """The Java and SQL++ versions of use cases 1-5 agree on results."""

    @pytest.fixture
    def env(self, small_catalog):
        registry = FunctionRegistry(lambda: set(small_catalog))
        resources = {
            "safety_rating": {
                "safety_ratings": lambda: [
                    f"{r['country_code']}|{r['safety_rating']}"
                    for r in small_catalog["SafetyRatings"].scan()
                ]
            },
            "religious_population": {
                "religious_populations": lambda: [
                    f"{r['rid']}|{r['country_name']}|{r['religion_name']}|{r['population']}"
                    for r in small_catalog["ReligiousPopulations"].scan()
                ]
            },
            "largest_religions": {
                "religious_populations": lambda: [
                    f"{r['rid']}|{r['country_name']}|{r['religion_name']}|{r['population']}"
                    for r in small_catalog["ReligiousPopulations"].scan()
                ]
            },
            "fuzzy_suspects": {
                "suspect_names": lambda: [
                    f"{r['sensitiveName']}|{r['religionName']}"
                    for r in small_catalog["SensitiveNamesDataset"].scan()
                ]
            },
            "nearby_monuments": {
                "monuments": lambda: [
                    f"{r['monument_id']}|{r['monument_location'].x}|{r['monument_location'].y}"
                    for r in small_catalog["monumentList"].scan()
                ]
            },
        }
        register_paper_udfs(registry, resources)
        ctx = EvaluationContext(small_catalog, functions=registry)
        return ctx, Evaluator(ctx), registry

    def invoke_both(self, env, sqlpp_fn, java_key, tweet):
        ctx, evaluator, registry = env
        sqlpp_out = evaluator.evaluate_query(
            parse_expression(f"{sqlpp_fn}(t)"), {"t": tweet}
        )[0]
        java_out = registry.invoke_java("udflib", java_key, [tweet], ctx)
        return sqlpp_out, java_out

    def test_safety_rating_twins(self, env, sample_tweet):
        s, j = self.invoke_both(env, "enrichTweetQ1", "safety_rating", sample_tweet)
        assert s["safety_rating"] == j["safety_rating"] == ["3"]

    def test_religious_population_twins(self, env, sample_tweet):
        s, j = self.invoke_both(
            env, "enrichTweetQ2", "religious_population", sample_tweet
        )
        assert s["religious_population"]["sum"] == j["religious_population"]["sum"] == 65

    def test_largest_religions_twins(self, env, sample_tweet):
        s, j = self.invoke_both(
            env, "enrichTweetQ3", "largest_religions", sample_tweet
        )
        assert s["largest_religions"] == j["largest_religions"] == ["B", "C", "A"]

    def test_fuzzy_suspects_twins(self, env, sample_tweet):
        s, j = self.invoke_both(env, "annotateTweetQ4", "fuzzy_suspects", sample_tweet)
        names_s = sorted(x["sensitiveName"] for x in s["related_suspects"])
        names_j = sorted(x["sensitiveName"] for x in j["related_suspects"])
        assert names_s == names_j == ["johnsmith", "johnsmyth"]

    def test_nearby_monuments_twins(self, env, sample_tweet):
        s, j = self.invoke_both(
            env, "enrichTweetQ5", "nearby_monuments", sample_tweet
        )
        assert sorted(s["nearby_monuments"]) == sorted(j["nearby_monuments"])


class TestRegistration:
    def test_register_all_without_resources_skips_resource_udfs(self, small_catalog):
        registry = FunctionRegistry(lambda: set(small_catalog))
        register_paper_udfs(registry)
        for key in SQLPP_FUNCTION_NAMES.values():
            assert registry.has(key)
        assert registry.has_java("testlib", "removeSpecial")
        assert not registry.has_java("udflib", "safety_rating")

    def test_all_sqlpp_udfs_stateful_except_udf1(self, small_catalog):
        registry = FunctionRegistry(lambda: set(small_catalog))
        register_paper_udfs(registry)
        assert not registry.get("USTweetSafetyCheck").stateful
        for key, name in SQLPP_FUNCTION_NAMES.items():
            if key == "us_tweet_safety_check":
                continue
            assert registry.get(name).stateful, name
