"""Workload generators: determinism, sizes, field domains."""

import json

import pytest

from repro.adm import Point, Rectangle, record_size_bytes
from repro.workloads import PaperWorkload, TweetGenerator, WorkloadScale


class TestTweetGenerator:
    def test_deterministic_under_seed(self):
        a = list(TweetGenerator(seed=1).records(20))
        b = list(TweetGenerator(seed=1).records(20))
        assert a == b

    def test_different_seeds_differ(self):
        a = list(TweetGenerator(seed=1).records(20))
        b = list(TweetGenerator(seed=2).records(20))
        assert a != b

    def test_record_size_near_450_bytes(self):
        sizes = [record_size_bytes(r) for r in TweetGenerator().records(50)]
        assert all(430 <= s <= 500 for s in sizes), (min(sizes), max(sizes))

    def test_ids_sequential(self):
        ids = [r["id"] for r in TweetGenerator().records(10)]
        assert ids == list(range(10))

    def test_fields_present(self):
        record = next(iter(TweetGenerator().records(1)))
        for field in ("text", "country", "latitude", "longitude", "created_at"):
            assert field in record
        assert "screen_name" in record["user"]

    def test_raw_json_parses(self):
        for raw in TweetGenerator().raw_json(10):
            record = json.loads(raw)
            assert "id" in record

    def test_country_domain(self):
        gen = TweetGenerator(num_countries=10)
        countries = {r["country"] for r in gen.records(200)}
        assert countries <= {f"C{i:04d}" for i in range(10)}

    def test_person_names_alphabetic(self):
        gen = TweetGenerator()
        for i in [0, 5, 12345]:
            assert gen.person_name(i).isalpha()

    def test_sensitive_fraction_controls_keywords(self):
        gen = TweetGenerator(sensitive_fraction=0.0)
        assert not any("bomb" in r["text"] for r in gen.records(100))


class TestReferenceGenerators:
    @pytest.fixture(scope="class")
    def workload(self):
        return PaperWorkload(
            scale=WorkloadScale(reference_scale=0.001), num_partitions=2
        )

    def test_scaled_sizes(self, workload):
        assert len(list(workload.safety_ratings())) == 500
        assert len(list(workload.monuments())) == 500
        assert len(list(workload.district_areas())) == 500

    def test_floors_applied(self, workload):
        assert len(list(workload.sensitive_names())) == 50
        assert len(list(workload.attack_events())) == 50

    def test_explicit_size_override(self, workload):
        assert len(list(workload.safety_ratings(size=7))) == 7

    def test_safety_rating_keys_unique(self, workload):
        codes = [r["country_code"] for r in workload.safety_ratings()]
        assert len(codes) == len(set(codes))

    def test_country_domain_overlaps_tweets(self, workload):
        tweet_countries = {
            workload.tweet_generator.country(i) for i in range(200)
        }
        rating_codes = {r["country_code"] for r in workload.safety_ratings()}
        assert tweet_countries <= rating_codes

    def test_district_grid_tiles_world(self, workload):
        districts = list(workload.district_areas())
        point = Point(50.0, 50.0)
        covering = [
            d for d in districts if d["district_area"].contains_point(point)
        ]
        assert len(covering) >= 1

    def test_average_incomes_one_per_district(self, workload):
        districts = list(workload.district_areas())
        incomes = list(workload.average_incomes())
        assert {d["district_area_id"] for d in districts} == {
            i["district_area_id"] for i in incomes
        }

    def test_generators_deterministic(self, workload):
        again = PaperWorkload(
            scale=WorkloadScale(reference_scale=0.001), num_partitions=2
        )
        assert list(workload.monuments()) == list(again.monuments())


class TestCatalogBuilding:
    @pytest.fixture(scope="class")
    def workload(self):
        return PaperWorkload(
            scale=WorkloadScale(reference_scale=0.001), num_partitions=3
        )

    def test_build_requested_datasets_only(self, workload):
        catalog = workload.build_catalog(["SafetyRatings", "monumentList"])
        assert set(catalog) == {"SafetyRatings", "monumentList"}

    def test_spatial_indexes_created(self, workload):
        catalog = workload.build_catalog(["monumentList", "DistrictAreas"])
        from repro.storage import IndexKind

        assert catalog["monumentList"].index_on("monument_location", IndexKind.RTREE)
        assert catalog["DistrictAreas"].index_on("district_area", IndexKind.RTREE)

    def test_datasets_flushed_after_load(self, workload):
        catalog = workload.build_catalog(["SafetyRatings"])
        assert not catalog["SafetyRatings"].update_activity

    def test_update_stream_overwrites_existing_keys(self, workload):
        catalog = workload.build_catalog(["SafetyRatings"])
        ds = catalog["SafetyRatings"]
        stream = workload.update_stream("SafetyRatings")
        before = len(ds)
        for _ in range(10):
            ds.upsert(next(stream))
        assert len(ds) == before  # upserts, not inserts

    def test_java_resources_reflect_current_data(self, workload):
        catalog = workload.build_catalog(["SafetyRatings"])
        resources = workload.java_resources(catalog)
        provider = resources["safety_rating"]["safety_ratings"]
        lines_before = provider()
        record = next(iter(catalog["SafetyRatings"].scan()))
        updated = dict(record)
        updated["safety_rating"] = "changed!"
        catalog["SafetyRatings"].upsert(updated)
        lines_after = provider()
        assert lines_before != lines_after
