"""Cluster controller: deploy, invoke, cache coherence, errors."""

import pytest

from repro.cluster import Cluster
from repro.errors import HyracksError
from repro.hyracks import JobSpecification, OneToOne, OperatorDescriptor
from repro.hyracks.operators import CollectSink, ListSource


def make_builder(out):
    def builder(params):
        spec = JobSpecification("param-job")
        src = spec.add_operator(
            OperatorDescriptor("src", lambda ctx: ListSource(ctx, params), 2)
        )
        sink = spec.add_operator(
            OperatorDescriptor("sink", lambda ctx: CollectSink(ctx, out), 1)
        )
        spec.connect(src, sink, OneToOne())
        return spec

    return builder


class TestPredeploy:
    def test_deploy_caches_on_all_nodes(self):
        cluster = Cluster(4)
        job_id = cluster.controller.deploy("j", make_builder([]))
        assert all(node.has_job(job_id) for node in cluster.nodes)

    def test_invoke_runs_with_parameter(self):
        cluster = Cluster(2)
        out = []
        job_id = cluster.controller.deploy("j", make_builder(out))
        cluster.controller.invoke(job_id, [{"v": 1}, {"v": 2}])
        assert sorted(r["v"] for r in out) == [1, 2]

    def test_invoke_uses_predeployed_startup(self):
        cluster = Cluster(3)
        out = []
        job_id = cluster.controller.deploy("j", make_builder(out))
        result = cluster.controller.invoke(job_id, [{"v": 1}])
        assert result.startup_seconds == cluster.cost_model.job_startup(3, True)

    def test_invoke_unknown_job_raises(self):
        cluster = Cluster(1)
        with pytest.raises(HyracksError, match="no predeployed job"):
            cluster.controller.invoke("nope#0", [])

    def test_undeploy_evicts(self):
        cluster = Cluster(2)
        job_id = cluster.controller.deploy("j", make_builder([]))
        cluster.controller.undeploy(job_id)
        assert not any(node.has_job(job_id) for node in cluster.nodes)
        with pytest.raises(HyracksError):
            cluster.controller.invoke(job_id, [])

    def test_invocations_counted_per_node(self):
        cluster = Cluster(2)
        out = []
        job_id = cluster.controller.deploy("j", make_builder(out))
        cluster.controller.invoke(job_id, [{"v": 1}])
        cluster.controller.invoke(job_id, [{"v": 2}])
        assert all(node.invocations[job_id] == 2 for node in cluster.nodes)

    def test_deploy_charges_compile_and_distribution(self):
        cluster = Cluster(8)
        before = cluster.controller.simulated_deploy_seconds
        cluster.controller.deploy("j", make_builder([]))
        delta = cluster.controller.simulated_deploy_seconds - before
        cost = cluster.cost_model
        assert delta == pytest.approx(
            cost.job_compile + cost.job_distribute_per_node * 8
        )

    def test_job_ids_unique(self):
        cluster = Cluster(1)
        a = cluster.controller.deploy("j", make_builder([]))
        b = cluster.controller.deploy("j", make_builder([]))
        assert a != b
        assert cluster.controller.deployed_job_ids() == sorted([a, b])


class TestCluster:
    def test_cc_colocated_with_node0(self):
        cluster = Cluster(3)
        assert cluster.nodes[0].is_cc
        assert not cluster.nodes[1].is_cc

    def test_size_validation(self):
        with pytest.raises(ValueError):
            Cluster(0)

    def test_run_job_full_startup(self):
        cluster = Cluster(2)
        out = []
        result = cluster.controller.run_job(make_builder(out)([{"v": 9}]))
        assert out == [{"v": 9}]
        assert result.startup_seconds == cluster.cost_model.job_startup(2, False)
