"""R-tree structure and spatial search correctness."""

import random

import pytest

from repro.adm import Circle, Point, Rectangle
from repro.storage import RTree
from repro.storage.rtree import mbr_of


@pytest.fixture
def points():
    rnd = random.Random(5)
    return [(Point(rnd.uniform(0, 100), rnd.uniform(0, 100)), i) for i in range(400)]


@pytest.fixture
def loaded(points):
    tree = RTree(max_entries=8)
    for p, pk in points:
        tree.insert(p, pk)
    return tree


def brute_force(points, query_mbr):
    return sorted(pk for p, pk in points if query_mbr.contains_point(p))


class TestSearch:
    def test_matches_brute_force_rectangle(self, loaded, points):
        query = Rectangle(20, 20, 40, 40)
        got = sorted(pk for _v, pk in loaded.search(query))
        assert got == brute_force(points, query)

    def test_circle_query_uses_mbr(self, loaded, points):
        query = Circle(Point(50, 50), 10)
        got = sorted(pk for _v, pk in loaded.search(query))
        assert got == brute_force(points, query.mbr)

    def test_point_query(self, loaded, points):
        target, pk = points[7]
        got = [p for _v, p in loaded.search(target)]
        assert pk in got

    def test_empty_region(self, loaded):
        assert list(loaded.search(Rectangle(200, 200, 300, 300))) == []

    def test_search_counts_probes_and_nodes(self, loaded):
        before_probes, before_nodes = loaded.probes, loaded.nodes_visited
        list(loaded.search(Rectangle(0, 0, 100, 100)))
        assert loaded.probes == before_probes + 1
        assert loaded.nodes_visited > before_nodes


class TestStructure:
    def test_invariants_after_bulk_insert(self, loaded):
        loaded.check_invariants()
        assert len(loaded) == 400

    def test_invariants_during_incremental_insert(self):
        tree = RTree(max_entries=4)
        rnd = random.Random(11)
        for i in range(60):
            tree.insert(Point(rnd.uniform(0, 10), rnd.uniform(0, 10)), i)
            tree.check_invariants()

    def test_rectangle_entries(self):
        tree = RTree(max_entries=4)
        rects = [Rectangle(i, i, i + 2, i + 2) for i in range(20)]
        for i, r in enumerate(rects):
            tree.insert(r, i)
        got = sorted(pk for _v, pk in tree.search(Rectangle(5, 5, 6, 6)))
        expected = sorted(
            i for i, r in enumerate(rects) if r.intersects(Rectangle(5, 5, 6, 6))
        )
        assert got == expected

    def test_min_entries_enforced(self):
        with pytest.raises(ValueError):
            RTree(max_entries=3)


class TestDelete:
    def test_delete_removes_entry(self, loaded, points):
        p, pk = points[0]
        assert loaded.delete(p, pk)
        assert pk not in [x for _v, x in loaded.search(p)]
        loaded.check_invariants()

    def test_delete_absent_returns_false(self, loaded):
        assert not loaded.delete(Point(-5, -5), 999999)

    def test_mass_delete_keeps_correctness(self, loaded, points):
        for p, pk in points[:200]:
            assert loaded.delete(p, pk)
        loaded.check_invariants()
        assert len(loaded) == 200
        query = Rectangle(0, 0, 100, 100)
        got = sorted(pk for _v, pk in loaded.search(query))
        assert got == brute_force(points[200:], query)

    def test_delete_then_reinsert(self, loaded, points):
        p, pk = points[3]
        loaded.delete(p, pk)
        loaded.insert(p, pk)
        assert pk in [x for _v, x in loaded.search(p)]
        loaded.check_invariants()


class TestMbrOf:
    def test_point(self):
        m = mbr_of(Point(1, 2))
        assert (m.x1, m.y1, m.x2, m.y2) == (1, 2, 1, 2)

    def test_circle(self):
        m = mbr_of(Circle(Point(0, 0), 1))
        assert (m.x1, m.y1, m.x2, m.y2) == (-1, -1, 1, 1)

    def test_non_spatial_raises(self):
        with pytest.raises(TypeError):
            mbr_of("nope")
