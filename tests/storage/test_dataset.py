"""Partitioned datasets: routing, indexes, listeners, observability."""

import pytest

from repro.adm import Point, open_type
from repro.errors import DuplicateKeyError, IndexError_, KeyNotFoundError
from repro.storage import Dataset, IndexKind
from repro.storage.dataset import hash_partition


@pytest.fixture
def dataset():
    t = open_type("T", id="int64")
    ds = Dataset("D", t, "id", num_partitions=4, memtable_budget=8)
    for i in range(100):
        ds.insert({"id": i, "value": i * 2, "loc": Point(float(i % 10), 0.0)})
    return ds


class TestPartitioning:
    def test_records_land_on_hash_partition(self, dataset):
        for pid in range(4):
            for key, _record in dataset.partitions[pid].scan():
                assert hash_partition(key, 4) == pid

    def test_hash_partition_deterministic(self):
        assert hash_partition("abc", 7) == hash_partition("abc", 7)

    def test_hash_partition_spreads(self):
        counts = [0] * 4
        for i in range(1000):
            counts[hash_partition(i, 4)] += 1
        assert min(counts) > 150

    def test_scan_covers_all(self, dataset):
        assert len(list(dataset.scan())) == 100

    def test_partition_count_validation(self):
        with pytest.raises(ValueError):
            Dataset("X", open_type("T", id="int64"), "id", num_partitions=0)


class TestWrites:
    def test_duplicate_insert_rejected(self, dataset):
        with pytest.raises(DuplicateKeyError):
            dataset.insert({"id": 5})

    def test_upsert_replaces(self, dataset):
        dataset.upsert({"id": 5, "value": -1})
        assert dataset.get(5)["value"] == -1

    def test_delete(self, dataset):
        dataset.delete(5)
        assert dataset.get(5) is None
        with pytest.raises(KeyNotFoundError):
            dataset.delete(5)

    def test_validation_enforced(self):
        t = open_type("T", id="int64")
        ds = Dataset("V", t, "id", validate=True)
        from repro.errors import AdmTypeError

        with pytest.raises(AdmTypeError):
            ds.insert({"id": "nope"})

    def test_insert_many_counts(self, dataset):
        assert dataset.insert_many({"id": 200 + i} for i in range(5)) == 5

    def test_version_bumps_on_writes(self, dataset):
        v = dataset.version
        dataset.upsert({"id": 1, "value": 0})
        dataset.delete(2)
        assert dataset.version == v + 2

    def test_update_listener_fires(self, dataset):
        events = []
        dataset.add_update_listener(lambda op, key: events.append((op, key)))
        dataset.upsert({"id": 1})
        dataset.delete(3)
        assert events == [("upsert", 1), ("delete", 3)]


class TestSecondaryIndexes:
    def test_btree_index_bulk_loaded(self, dataset):
        dataset.create_index("by_value", "value", IndexKind.BTREE)
        got = sorted(r["id"] for r in dataset.index_probe_equal("by_value", 10))
        assert got == [5]

    def test_btree_index_maintained_on_writes(self, dataset):
        dataset.create_index("by_value", "value", IndexKind.BTREE)
        dataset.upsert({"id": 5, "value": 777})
        assert [r["id"] for r in dataset.index_probe_equal("by_value", 777)] == [5]
        assert list(dataset.index_probe_equal("by_value", 10)) == []
        dataset.delete(5)
        assert list(dataset.index_probe_equal("by_value", 777)) == []

    def test_rtree_index_probe(self, dataset):
        dataset.create_index("by_loc", "loc", IndexKind.RTREE)
        got = {r["id"] for r in dataset.index_probe_spatial("by_loc", Point(3.0, 0.0))}
        assert got == {i for i in range(100) if i % 10 == 3}

    def test_duplicate_index_name_rejected(self, dataset):
        dataset.create_index("i1", "value", IndexKind.BTREE)
        with pytest.raises(IndexError_):
            dataset.create_index("i1", "value", IndexKind.BTREE)

    def test_index_on_lookup(self, dataset):
        dataset.create_index("i1", "value", IndexKind.BTREE)
        dataset.create_index("i2", "loc", IndexKind.RTREE)
        assert dataset.index_on("value") == "i1"
        assert dataset.index_on("loc", IndexKind.RTREE) == "i2"
        assert dataset.index_on("loc", IndexKind.BTREE) is None
        assert dataset.index_on("other") is None

    def test_records_without_indexed_field_skipped(self):
        ds = Dataset("S", open_type("T", id="int64"), "id", validate=False)
        ds.create_index("by_x", "x", IndexKind.BTREE)
        ds.insert({"id": 1})  # no 'x'
        ds.insert({"id": 2, "x": 9})
        assert [r["id"] for r in ds.index_probe_equal("by_x", 9)] == [2]


class TestObservability:
    def test_update_activity_and_flush_all(self, dataset):
        assert dataset.update_activity  # fresh writes in memtables
        dataset.flush_all()
        assert not dataset.update_activity
        dataset.upsert({"id": 1})
        assert dataset.update_activity

    def test_storage_stats_aggregated(self, dataset):
        stats = dataset.storage_stats()
        assert stats["inserts"] == 100

    def test_read_amplification_positive(self, dataset):
        assert dataset.read_amplification >= 0
