"""LSM tree behaviour: writes, reads, flush/merge, WAL, observability."""

import pytest

from repro.errors import DuplicateKeyError, KeyNotFoundError
from repro.storage import LSMTree
from repro.storage.memtable import TOMBSTONE


class TestBasicOps:
    def test_insert_get(self):
        tree = LSMTree()
        tree.insert(1, {"id": 1})
        assert tree.get(1) == {"id": 1}

    def test_get_absent_returns_none(self):
        assert LSMTree().get(99) is None

    def test_insert_duplicate_raises(self):
        tree = LSMTree()
        tree.insert(1, {"id": 1})
        with pytest.raises(DuplicateKeyError):
            tree.insert(1, {"id": 1, "v": 2})

    def test_upsert_replaces(self):
        tree = LSMTree()
        tree.upsert(1, {"v": "a"})
        tree.upsert(1, {"v": "b"})
        assert tree.get(1) == {"v": "b"}

    def test_delete(self):
        tree = LSMTree()
        tree.insert(1, {"v": 1})
        tree.delete(1)
        assert tree.get(1) is None

    def test_delete_absent_raises(self):
        with pytest.raises(KeyNotFoundError):
            LSMTree().delete(1)

    def test_len_counts_live_records(self):
        tree = LSMTree(memtable_budget=4)
        for i in range(10):
            tree.upsert(i, {"i": i})
        tree.delete(3)
        assert len(tree) == 9

    def test_contains(self):
        tree = LSMTree()
        tree.insert("k", 1)
        assert tree.contains("k")
        assert not tree.contains("x")

    @pytest.mark.parametrize("budget", [0, -5])
    def test_bad_budget_rejected(self, budget):
        with pytest.raises(ValueError):
            LSMTree(memtable_budget=budget)


class TestFlushAndMerge:
    def test_flush_on_budget(self):
        tree = LSMTree(memtable_budget=4, merge_fanin=100)
        for i in range(9):
            tree.insert(i, i)
        assert tree.stats.flushes == 2
        assert tree.component_count == 2
        for i in range(9):
            assert tree.get(i) == i

    def test_newer_component_shadows_older(self):
        tree = LSMTree(memtable_budget=2, merge_fanin=100)
        tree.upsert(1, "old")
        tree.upsert(2, "x")  # triggers flush
        tree.upsert(1, "new")
        tree.upsert(3, "y")  # second flush
        assert tree.get(1) == "new"

    def test_tombstone_shadows_older_component(self):
        tree = LSMTree(memtable_budget=2, merge_fanin=100)
        tree.insert(1, "v")
        tree.insert(2, "w")  # flush
        tree.delete(1)
        tree.insert(4, "z")  # flush tombstone
        assert tree.get(1) is None
        assert 1 not in dict(tree.scan())

    def test_merge_policy_bounds_components(self):
        tree = LSMTree(memtable_budget=2, merge_fanin=3)
        for i in range(30):
            tree.upsert(i, i)
        assert tree.component_count < 3
        assert tree.stats.merges >= 1
        assert len(tree) == 30

    def test_merge_drops_tombstones(self):
        tree = LSMTree(memtable_budget=2, merge_fanin=2)
        tree.insert(1, "a")
        tree.insert(2, "b")
        tree.delete(1)
        tree.insert(3, "c")  # flush + merge
        tree.flush()
        tree.merge_all()
        total_entries = sum(len(c) for c in tree._components)
        assert total_entries == len(tree)

    def test_explicit_flush_empty_is_noop(self):
        tree = LSMTree()
        tree.flush()
        assert tree.stats.flushes == 0


class TestScans:
    def test_scan_sorted_and_deduplicated(self):
        tree = LSMTree(memtable_budget=3, merge_fanin=100)
        for i in [5, 3, 8, 1, 9, 3, 5]:
            tree.upsert(i, f"v{i}")
        keys = [k for k, _ in tree.scan()]
        assert keys == sorted(set(keys))

    def test_range_scan_bounds(self):
        tree = LSMTree(memtable_budget=4)
        for i in range(20):
            tree.upsert(i, i)
        assert [k for k, _ in tree.range_scan(5, 8)] == [5, 6, 7, 8]
        assert [k for k, _ in tree.range_scan(5, 8, include_low=False)] == [6, 7, 8]
        assert [k for k, _ in tree.range_scan(5, 8, include_high=False)] == [5, 6, 7]

    def test_range_scan_open_ends(self):
        tree = LSMTree()
        for i in range(5):
            tree.insert(i, i)
        assert [k for k, _ in tree.range_scan(high=2)] == [0, 1, 2]
        assert [k for k, _ in tree.range_scan(low=3)] == [3, 4]

    def test_scan_merges_memtable_and_components(self):
        tree = LSMTree(memtable_budget=3, merge_fanin=100)
        for i in range(7):
            tree.upsert(i, "disk")
        tree.upsert(1, "mem")
        scanned = dict(tree.scan())
        assert scanned[1] == "mem"
        assert len(scanned) == 7


class TestObservability:
    def test_in_memory_component_activity(self):
        tree = LSMTree(memtable_budget=100)
        assert not tree.in_memory_component_active
        tree.upsert(1, 1)
        assert tree.in_memory_component_active
        tree.flush()
        assert not tree.in_memory_component_active

    def test_read_amplification_grows_with_components(self):
        tree = LSMTree(memtable_budget=2, merge_fanin=100)
        base = tree.read_amplification
        for i in range(8):
            tree.upsert(i, i)
        assert tree.read_amplification > base

    def test_stats_counters(self):
        tree = LSMTree()
        tree.insert(1, 1)
        tree.upsert(2, 2)
        tree.delete(1)
        tree.get(2)
        stats = tree.stats.snapshot()
        assert stats["inserts"] == 1
        assert stats["upserts"] == 1
        assert stats["deletes"] == 1
        assert stats["wal_appends"] == 3


class TestWalRecovery:
    def test_replay_reconstructs_state(self):
        tree = LSMTree(memtable_budget=3)
        for i in range(10):
            tree.upsert(i, {"v": i})
        tree.delete(4)
        tree.upsert(2, {"v": "updated"})
        recovered = tree.recover_from_wal()
        assert dict(recovered.scan()) == dict(tree.scan())

    def test_replay_of_empty_tree(self):
        assert dict(LSMTree().recover_from_wal().scan()) == {}
