"""Durable run checkpoints: atomic commit, round-trip, versioning."""

import json
import os

import pytest

from repro.errors import StorageError
from repro.storage.checkpoint import (
    FORMAT_VERSION,
    CheckpointStore,
    PartitionCursor,
    RunCheckpoint,
)


class TestCheckpointStore:
    def test_load_returns_none_before_any_commit(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        assert store.load("feed") is None

    def test_round_trips_partition_cursors(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        original = RunCheckpoint(
            feed="tweets",
            intake_partitions=3,
            cursors={
                0: PartitionCursor(acked_seq=41, resume=41),
                1: PartitionCursor(acked_seq=12, resume=(5, 120)),
                2: PartitionCursor(acked_seq=-1, resume=None),
            },
            acked_batches=7,
            records_stored=126,
        )
        store.commit(original)
        loaded = store.load("tweets")
        assert loaded.feed == "tweets"
        assert loaded.intake_partitions == 3
        assert loaded.acked_batches == 7
        assert loaded.records_stored == 126
        assert not loaded.complete
        assert loaded.cursors[0] == PartitionCursor(acked_seq=41, resume=41)
        # file-adapter cursors survive as (line, byte offset) tuples
        assert loaded.cursors[1] == PartitionCursor(acked_seq=12, resume=(5, 120))
        assert loaded.cursors[2] == PartitionCursor(acked_seq=-1, resume=None)

    def test_commit_overwrites_atomically(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        path = store.commit(RunCheckpoint(feed="f", acked_batches=1))
        store.commit(RunCheckpoint(feed="f", acked_batches=2, complete=True))
        assert store.commits == 2
        # no stray temp file left behind; only the published document
        assert sorted(os.listdir(tmp_path)) == ["f.ckpt.json"]
        loaded = store.load("f")
        assert loaded.acked_batches == 2
        assert loaded.complete
        assert path == store.path_for("f")

    def test_stores_are_per_feed(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.commit(RunCheckpoint(feed="a", acked_batches=3))
        store.commit(RunCheckpoint(feed="b", acked_batches=9))
        assert store.load("a").acked_batches == 3
        assert store.load("b").acked_batches == 9

    def test_clear_removes_checkpoint_and_is_idempotent(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.commit(RunCheckpoint(feed="f"))
        store.clear("f")
        assert store.load("f") is None
        store.clear("f")  # no-op on a missing file

    def test_rejects_unknown_format_version(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.commit(RunCheckpoint(feed="f"))
        path = store.path_for("f")
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        payload["format_version"] = FORMAT_VERSION + 1
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        with pytest.raises(StorageError, match="format version"):
            store.load("f")

    def test_rejects_malformed_json(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        with open(store.path_for("f"), "w", encoding="utf-8") as handle:
            handle.write("{truncated")
        with pytest.raises(StorageError, match="malformed"):
            store.load("f")
