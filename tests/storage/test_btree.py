"""B+-tree structure and posting-list behaviour."""

import random

import pytest

from repro.storage import BPlusTree


@pytest.fixture
def loaded():
    tree = BPlusTree(order=8)
    rnd = random.Random(0)
    keys = list(range(300))
    rnd.shuffle(keys)
    for k in keys:
        tree.insert(k, f"pk{k}")
    return tree


class TestInsertSearch:
    def test_point_search(self, loaded):
        assert loaded.search(150) == {"pk150"}

    def test_absent_key(self, loaded):
        assert loaded.search(9999) == set()

    def test_duplicate_posting_idempotent(self):
        tree = BPlusTree()
        tree.insert("a", 1)
        tree.insert("a", 1)
        assert len(tree) == 1
        assert tree.search("a") == {1}

    def test_multiple_postings_per_key(self):
        tree = BPlusTree()
        tree.insert("k", 1)
        tree.insert("k", 2)
        assert tree.search("k") == {1, 2}
        assert len(tree) == 2

    def test_splits_grow_height(self, loaded):
        assert loaded.height >= 2
        loaded.check_invariants()

    def test_string_keys(self):
        tree = BPlusTree(order=4)
        for word in ["delta", "alpha", "echo", "bravo", "charlie"]:
            tree.insert(word, word.upper())
        assert list(tree.keys()) == sorted(
            ["delta", "alpha", "echo", "bravo", "charlie"]
        )

    def test_min_order_enforced(self):
        with pytest.raises(ValueError):
            BPlusTree(order=2)


class TestRangeSearch:
    def test_inclusive_range(self, loaded):
        got = [k for k, _ in loaded.range_search(10, 15)]
        assert got == [10, 11, 12, 13, 14, 15]

    def test_exclusive_bounds(self, loaded):
        got = [k for k, _ in loaded.range_search(10, 15, include_low=False,
                                                 include_high=False)]
        assert got == [11, 12, 13, 14]

    def test_open_ended(self, loaded):
        assert [k for k, _ in loaded.range_search(high=3)] == [0, 1, 2, 3]
        assert [k for k, _ in loaded.range_search(low=297)] == [297, 298, 299]

    def test_full_scan_sorted(self, loaded):
        keys = list(loaded.keys())
        assert keys == sorted(keys)
        assert len(keys) == 300

    def test_range_returns_postings(self):
        tree = BPlusTree()
        tree.insert(5, "a")
        tree.insert(5, "b")
        [(key, postings)] = list(tree.range_search(5, 5))
        assert key == 5 and postings == {"a", "b"}


class TestDelete:
    def test_delete_posting(self, loaded):
        assert loaded.delete(150, "pk150")
        assert loaded.search(150) == set()
        loaded.check_invariants()

    def test_delete_absent_returns_false(self, loaded):
        assert not loaded.delete(150, "nope")
        assert not loaded.delete(98765, "pk")

    def test_delete_one_of_many_postings(self):
        tree = BPlusTree()
        tree.insert("k", 1)
        tree.insert("k", 2)
        tree.delete("k", 1)
        assert tree.search("k") == {2}

    def test_mass_delete_then_reinsert(self, loaded):
        for k in range(0, 300, 2):
            assert loaded.delete(k, f"pk{k}")
        loaded.check_invariants()
        assert len(loaded) == 150
        for k in range(0, 300, 2):
            loaded.insert(k, f"pk{k}")
        loaded.check_invariants()
        assert len(loaded) == 300
