"""Immutable sorted-run components and merging."""

import pytest

from repro.storage import SortedRunComponent, merge_components
from repro.storage.memtable import TOMBSTONE, MemTable


class TestSortedRun:
    def test_binary_search_get(self):
        comp = SortedRunComponent([(i, f"v{i}") for i in range(0, 100, 2)])
        assert comp.get(42) == "v42"
        assert comp.get(43) is None

    def test_min_max_keys(self):
        comp = SortedRunComponent([(3, "a"), (7, "b")])
        assert comp.min_key == 3 and comp.max_key == 7

    def test_unsorted_entries_rejected(self):
        with pytest.raises(ValueError):
            SortedRunComponent([(2, "a"), (1, "b")])

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ValueError):
            SortedRunComponent([(1, "a"), (1, "b")])

    def test_range_scan(self):
        comp = SortedRunComponent([(i, i) for i in range(10)])
        assert [k for k, _ in comp.range_scan(3, 6)] == [3, 4, 5, 6]
        assert [k for k, _ in comp.range_scan(3, 6, include_low=False)] == [4, 5, 6]

    def test_component_ids_unique(self):
        a = SortedRunComponent([])
        b = SortedRunComponent([])
        assert a.component_id != b.component_id


class TestMerge:
    def test_newest_wins(self):
        newest = SortedRunComponent([(1, "new")])
        oldest = SortedRunComponent([(1, "old"), (2, "keep")])
        merged = merge_components([newest, oldest], drop_tombstones=False)
        assert merged.get(1) == "new"
        assert merged.get(2) == "keep"

    def test_tombstones_dropped_at_bottom(self):
        newest = SortedRunComponent([(1, TOMBSTONE)])
        oldest = SortedRunComponent([(1, "old")])
        merged = merge_components([newest, oldest], drop_tombstones=True)
        assert merged.get(1) is None
        assert len(merged) == 0

    def test_tombstones_kept_mid_level(self):
        newest = SortedRunComponent([(1, TOMBSTONE)])
        oldest = SortedRunComponent([(2, "b")])
        merged = merge_components([newest, oldest], drop_tombstones=False)
        assert merged.get(1) is TOMBSTONE

    def test_merge_level_increments(self):
        a = SortedRunComponent([(1, "a")], level=0)
        b = SortedRunComponent([(2, "b")], level=1)
        merged = merge_components([a, b], drop_tombstones=True)
        assert merged.level == 2


class TestMemTable:
    def test_budget_flag(self):
        mem = MemTable(entry_budget=2)
        assert not mem.is_full
        mem.put(1, "a", 0)
        mem.put(2, "b", 1)
        assert mem.is_full

    def test_sorted_entries(self):
        mem = MemTable()
        for k in [3, 1, 2]:
            mem.put(k, f"v{k}", k)
        assert [k for k, _ in mem.sorted_entries()] == [1, 2, 3]

    def test_delete_records_tombstone(self):
        mem = MemTable()
        mem.delete(1, 0)
        assert mem.get(1) is TOMBSTONE

    def test_lsn_tracking(self):
        mem = MemTable()
        mem.put(1, "a", 5)
        mem.put(2, "b", 9)
        assert mem.min_lsn == 5 and mem.max_lsn == 9
