"""Dataset snapshots: save/load round-trips."""

import pytest

from repro.adm import DateTime, Point, Rectangle, make_type
from repro.errors import StorageError
from repro.storage import Dataset, IndexKind
from repro.storage.persistence import load_dataset, save_dataset


@pytest.fixture
def dataset():
    t = make_type(
        "EventType",
        {"id": "int64", "when": "datetime", "where": "point", "tags": "[string]?"},
    )
    ds = Dataset("Events", t, "id", num_partitions=3)
    for i in range(50):
        ds.insert(
            {
                "id": i,
                "when": DateTime(1_500_000_000_000 + i * 1000),
                "where": Point(float(i % 10), float(i % 7)),
                "tags": [f"t{i % 3}"],
                "extra": {"nested": i},
            }
        )
    ds.create_index("by_where", "where", IndexKind.RTREE)
    return ds


class TestRoundTrip:
    def test_record_count_preserved(self, dataset, tmp_path):
        path = str(tmp_path / "events.adm")
        assert save_dataset(dataset, path) == 50
        loaded = load_dataset(path)
        assert len(loaded) == 50

    def test_extended_values_roundtrip(self, dataset, tmp_path):
        path = str(tmp_path / "events.adm")
        save_dataset(dataset, path)
        loaded = load_dataset(path)
        original = dataset.get(7)
        restored = loaded.get(7)
        assert restored == original
        assert isinstance(restored["when"], DateTime)
        assert isinstance(restored["where"], Point)

    def test_metadata_preserved(self, dataset, tmp_path):
        path = str(tmp_path / "events.adm")
        save_dataset(dataset, path)
        loaded = load_dataset(path)
        assert loaded.name == "Events"
        assert loaded.primary_key == "id"
        assert loaded.num_partitions == 3
        assert loaded.datatype.is_open

    def test_indexes_rebuilt(self, dataset, tmp_path):
        path = str(tmp_path / "events.adm")
        save_dataset(dataset, path)
        loaded = load_dataset(path)
        assert loaded.index_on("where", IndexKind.RTREE) == "by_where"
        got = sorted(
            r["id"] for r in loaded.index_probe_spatial("by_where", Point(3.0, 3.0))
        )
        expected = sorted(
            r["id"] for r in dataset.index_probe_spatial("by_where", Point(3.0, 3.0))
        )
        assert got == expected

    def test_repartition_on_load(self, dataset, tmp_path):
        path = str(tmp_path / "events.adm")
        save_dataset(dataset, path)
        loaded = load_dataset(path, num_partitions=5)
        assert loaded.num_partitions == 5
        assert len(loaded) == 50
        assert loaded.get(42) == dataset.get(42)

    def test_loaded_dataset_quiescent(self, dataset, tmp_path):
        path = str(tmp_path / "events.adm")
        save_dataset(dataset, path)
        assert not load_dataset(path).update_activity

    def test_snapshot_includes_memtable_contents(self, dataset, tmp_path):
        dataset.upsert({"id": 999, "when": DateTime(0), "where": Point(0, 0)})
        path = str(tmp_path / "events.adm")
        save_dataset(dataset, path)
        assert load_dataset(path).get(999) is not None


class TestErrors:
    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.adm"
        path.write_text("")
        with pytest.raises(StorageError, match="empty snapshot"):
            load_dataset(str(path))

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.adm"
        path.write_text("not json\n")
        with pytest.raises(StorageError, match="malformed snapshot header"):
            load_dataset(str(path))

    def test_unknown_version_rejected(self, tmp_path):
        import json

        path = tmp_path / "future.adm"
        path.write_text(json.dumps({"format_version": 99}) + "\n")
        with pytest.raises(StorageError, match="unsupported snapshot format"):
            load_dataset(str(path))

    def test_no_tmp_file_left_behind(self, dataset, tmp_path):
        path = str(tmp_path / "events.adm")
        save_dataset(dataset, path)
        assert not (tmp_path / "events.adm.tmp").exists()


class TestFacadeIntegration:
    def test_save_and_load_through_system(self, tmp_path):
        from repro import AsterixLite

        a = AsterixLite(num_nodes=2)
        a.execute(
            "CREATE TYPE T AS OPEN { id: int64 };"
            "CREATE DATASET D(T) PRIMARY KEY id;"
        )
        a.insert("D", [{"id": i, "v": i * 2} for i in range(20)])
        path = str(tmp_path / "d.adm")
        assert a.save_dataset("D", path) == 20

        b = AsterixLite(num_nodes=3)
        b.load_dataset(path)
        assert b.query("SELECT VALUE count(d) FROM D d")[0] == 20
        assert b.query("SELECT VALUE d.v FROM D d WHERE d.id = 3") == [6]

    def test_load_conflicting_name_rejected(self, tmp_path):
        from repro import AsterixLite
        from repro.errors import SqlppAnalysisError

        a = AsterixLite(num_nodes=1)
        a.execute(
            "CREATE TYPE T AS OPEN { id: int64 };"
            "CREATE DATASET D(T) PRIMARY KEY id;"
        )
        path = str(tmp_path / "d.adm")
        a.save_dataset("D", path)
        import pytest as _pytest

        with _pytest.raises(SqlppAnalysisError, match="already exists"):
            a.load_dataset(path)
