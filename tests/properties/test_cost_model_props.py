"""Properties of the simulated-time model."""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adm import open_type
from repro.cluster import Cluster
from repro.hyracks.cost import CostModel, WorkMeter
from repro.ingestion import DynamicIngestionPipeline, FeedDefinition, GeneratorAdapter
from repro.storage import Dataset


class TestCostModelProperties:
    @given(st.integers(1, 64))
    @settings(max_examples=50)
    def test_startup_monotone_in_nodes(self, nodes):
        cost = CostModel()
        assert cost.job_startup(nodes + 1, True) > cost.job_startup(nodes, True)
        assert cost.job_startup(nodes + 1, False) > cost.job_startup(nodes, False)
        assert cost.udf_job_overhead(nodes + 1) > cost.udf_job_overhead(nodes)

    @given(
        st.lists(
            st.sampled_from(list(WorkMeter._COUNTERS)), min_size=1, max_size=8
        ),
        st.integers(1, 1000),
    )
    @settings(max_examples=80)
    def test_charge_monotone_in_counters(self, counters, amount):
        cost = CostModel()
        meter = WorkMeter()
        base = meter.charge(cost)
        for name in counters:
            setattr(meter, name, getattr(meter, name) + amount)
        assert meter.charge(cost) > base

    @given(st.floats(1.0, 1000.0), st.integers(0, 500))
    @settings(max_examples=80)
    def test_scale_never_decreases_charge(self, scale, scanned):
        cost = CostModel()
        unscaled = WorkMeter()
        unscaled.records_scanned = scanned
        scaled = WorkMeter(scale=scale)
        scaled.records_scanned = scanned
        assert scaled.charge(cost) >= unscaled.charge(cost)


class TestSimulatedTimeProperties:
    @given(
        st.integers(min_value=20, max_value=120),
        st.integers(min_value=5, max_value=60),
    )
    @settings(max_examples=15, deadline=None)
    def test_simulated_time_positive_and_scales_with_volume(self, count, batch):
        def run(n_records):
            target = Dataset(
                "T", open_type("TT", id="int64"), "id",
                num_partitions=2, validate=False,
            )
            feed = FeedDefinition("F", "T", batch_size=batch)
            report = DynamicIngestionPipeline(Cluster(2), {"T": target}).run(
                feed,
                GeneratorAdapter(json.dumps({"id": i}) for i in range(n_records)),
            )
            return report.simulated_seconds

        small = run(count)
        large = run(count * 3)
        assert 0 < small < large
