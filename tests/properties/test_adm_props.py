"""Property-based tests for the ADM value layer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adm import (
    Circle,
    DateTime,
    Duration,
    Point,
    Rectangle,
    make_type,
    parse_json,
    serialize,
    spatial_intersect,
)

epoch_millis = st.integers(min_value=0, max_value=4_102_444_800_000)  # ..2100


class TestDateTimeProperties:
    @given(epoch_millis)
    @settings(max_examples=200)
    def test_components_roundtrip(self, millis):
        dt = DateTime(millis)
        year, month, day, hour, minute, second, ms = dt.components()
        rebuilt = DateTime.of(year, month, day, hour, minute, second, ms)
        assert rebuilt.epoch_millis == millis

    @given(epoch_millis)
    @settings(max_examples=200)
    def test_isoformat_parse_roundtrip(self, millis):
        dt = DateTime(millis)
        assert DateTime.parse(dt.isoformat()) == dt

    @given(epoch_millis, st.integers(0, 48))
    @settings(max_examples=200)
    def test_add_months_ordering(self, millis, months):
        dt = DateTime(millis)
        later = dt.add(Duration(months, 0))
        if months:
            assert later > dt
        else:
            assert later == dt

    @given(epoch_millis, st.integers(-10**9, 10**9))
    @settings(max_examples=200)
    def test_millis_addition_exact(self, base, delta):
        dt = DateTime(base)
        assert dt.add(Duration(0, delta)).epoch_millis == base + delta


coords = st.floats(-1000, 1000, allow_nan=False, allow_infinity=False)


class TestGeometryProperties:
    @given(coords, coords, coords, coords)
    @settings(max_examples=200)
    def test_rectangle_always_normalized(self, x1, y1, x2, y2):
        r = Rectangle(x1, y1, x2, y2)
        assert r.x1 <= r.x2 and r.y1 <= r.y2

    @given(coords, coords, coords, coords)
    @settings(max_examples=200)
    def test_rectangle_contains_its_corners(self, x1, y1, x2, y2):
        r = Rectangle(x1, y1, x2, y2)
        assert r.contains_point(Point(r.x1, r.y1))
        assert r.contains_point(Point(r.x2, r.y2))

    @given(coords, coords, st.floats(0.001, 100, allow_nan=False), coords, coords)
    @settings(max_examples=200)
    def test_circle_mbr_covers_circle_hits(self, cx, cy, radius, px, py):
        # Tolerance: hypot() can round a distance down to exactly r for a
        # point a few ulps outside the box, so test against an inflated MBR.
        circle = Circle(Point(cx, cy), radius)
        p = Point(px, py)
        if circle.contains_point(p):
            mbr = circle.mbr
            eps = 1e-9 * (1.0 + abs(cx) + abs(cy) + radius)
            inflated = Rectangle(
                mbr.x1 - eps, mbr.y1 - eps, mbr.x2 + eps, mbr.y2 + eps
            )
            assert inflated.contains_point(p)

    @given(coords, coords, coords, coords, coords, coords, st.floats(0.001, 50))
    @settings(max_examples=200)
    def test_spatial_intersect_symmetric(self, x1, y1, x2, y2, cx, cy, radius):
        shapes = [
            Point(x1, y1),
            Rectangle(x1, y1, x2, y2),
            Circle(Point(cx, cy), radius),
        ]
        for a in shapes:
            for b in shapes:
                assert spatial_intersect(a, b) == spatial_intersect(b, a)


json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**62), max_value=2**62),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
)
json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=12,
)


class TestSerializationProperties:
    @given(st.dictionaries(st.text(min_size=1, max_size=10), json_values, max_size=6))
    @settings(max_examples=150)
    def test_serialize_parse_roundtrip(self, record):
        assert parse_json(serialize(record)) == record
