"""Property-based tests for the secondary index structures."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adm import Point, Rectangle
from repro.storage import BPlusTree, RTree

postings = st.lists(
    st.tuples(st.integers(min_value=0, max_value=200), st.integers(0, 20)),
    max_size=300,
)


class TestBTreeProperties:
    @given(postings)
    @settings(max_examples=60)
    def test_search_matches_model(self, entries):
        tree = BPlusTree(order=4)
        model = {}
        for key, pk in entries:
            tree.insert(key, pk)
            model.setdefault(key, set()).add(pk)
        tree.check_invariants()
        for key, pks in model.items():
            assert tree.search(key) == pks
        assert len(tree) == sum(len(v) for v in model.values())

    @given(postings, st.integers(0, 200), st.integers(0, 200))
    @settings(max_examples=60)
    def test_range_matches_model(self, entries, low, high):
        if low > high:
            low, high = high, low
        tree = BPlusTree(order=4)
        model = {}
        for key, pk in entries:
            tree.insert(key, pk)
            model.setdefault(key, set()).add(pk)
        got = dict(tree.range_search(low, high))
        expected = {k: v for k, v in model.items() if low <= k <= high}
        assert got == expected

    @given(postings, postings)
    @settings(max_examples=60)
    def test_insert_delete_roundtrip(self, inserted, deleted):
        tree = BPlusTree(order=4)
        model = {}
        for key, pk in inserted:
            tree.insert(key, pk)
            model.setdefault(key, set()).add(pk)
        for key, pk in deleted:
            expected = pk in model.get(key, set())
            assert tree.delete(key, pk) == expected
            if expected:
                model[key].discard(pk)
                if not model[key]:
                    del model[key]
        tree.check_invariants()
        for key, pks in model.items():
            assert tree.search(key) == pks


coords = st.floats(min_value=0, max_value=100, allow_nan=False, width=32)
points = st.tuples(coords, coords)


class TestRTreeProperties:
    @given(st.lists(points, max_size=200), points, points)
    @settings(max_examples=50)
    def test_search_matches_brute_force(self, raw_points, corner_a, corner_b):
        tree = RTree(max_entries=4)
        entries = []
        for i, (x, y) in enumerate(raw_points):
            p = Point(x, y)
            tree.insert(p, i)
            entries.append((p, i))
        tree.check_invariants()
        query = Rectangle(corner_a[0], corner_a[1], corner_b[0], corner_b[1])
        got = sorted(pk for _v, pk in tree.search(query))
        expected = sorted(pk for p, pk in entries if query.contains_point(p))
        assert got == expected

    @given(st.lists(points, min_size=1, max_size=120), st.data())
    @settings(max_examples=50)
    def test_delete_preserves_invariants(self, raw_points, data):
        tree = RTree(max_entries=4)
        entries = []
        for i, (x, y) in enumerate(raw_points):
            p = Point(x, y)
            tree.insert(p, i)
            entries.append((p, i))
        to_delete = data.draw(
            st.lists(st.sampled_from(entries), unique=True)
        )
        for p, pk in to_delete:
            assert tree.delete(p, pk)
        tree.check_invariants()
        remaining = [e for e in entries if e not in to_delete]
        assert len(tree) == len(remaining)
        world = Rectangle(0, 0, 100, 100)
        got = sorted(pk for _v, pk in tree.search(world))
        assert got == sorted(pk for _p, pk in remaining)
