"""Property-based tests for SQL++ evaluation against Python models."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sqlpp import EvaluationContext, Evaluator, parse_expression
from repro.sqlpp.functions import edit_distance

rows = st.lists(
    st.fixed_dictionaries(
        {"k": st.integers(0, 5), "v": st.integers(-100, 100)}
    ),
    max_size=40,
)


def run(text, bindings):
    return Evaluator(EvaluationContext({})).evaluate_query(
        parse_expression(text), bindings
    )


class TestSelectProperties:
    @given(rows)
    @settings(max_examples=60)
    def test_where_filter_model(self, data):
        got = run("SELECT VALUE r.v FROM data r WHERE r.v > 0", {"data": data})
        assert got == [r["v"] for r in data if r["v"] > 0]

    @given(rows)
    @settings(max_examples=60)
    def test_order_by_model(self, data):
        got = run("SELECT VALUE r.v FROM data r ORDER BY r.v", {"data": data})
        assert got == sorted(r["v"] for r in data)

    @given(rows, st.integers(0, 10))
    @settings(max_examples=60)
    def test_limit_model(self, data, limit):
        got = run(
            f"SELECT VALUE r.v FROM data r ORDER BY r.v LIMIT {limit}",
            {"data": data},
        )
        assert got == sorted(r["v"] for r in data)[:limit]

    @given(rows)
    @settings(max_examples=60)
    def test_group_by_count_model(self, data):
        got = run(
            "SELECT r.k AS k, count(*) AS n FROM data r GROUP BY r.k",
            {"data": data},
        )
        model = {}
        for r in data:
            model[r["k"]] = model.get(r["k"], 0) + 1
        assert {g["k"]: g["n"] for g in got} == model

    @given(rows)
    @settings(max_examples=60)
    def test_group_by_sum_model(self, data):
        got = run(
            "SELECT r.k AS k, sum(r.v) AS s FROM data r GROUP BY r.k",
            {"data": data},
        )
        model = {}
        for r in data:
            model[r["k"]] = model.get(r["k"], 0) + r["v"]
        assert {g["k"]: g["s"] for g in got} == model

    @given(rows)
    @settings(max_examples=60)
    def test_implicit_aggregate_model(self, data):
        got = run("SELECT count(*) AS n, sum(r.v) AS s FROM data r", {"data": data})
        expected_sum = sum(r["v"] for r in data) if data else None
        assert got == [{"n": len(data), "s": expected_sum}]

    @given(rows)
    @settings(max_examples=60)
    def test_distinct_model(self, data):
        got = run("SELECT DISTINCT VALUE r.v FROM data r", {"data": data})
        seen, expected = set(), []
        for r in data:
            if r["v"] not in seen:
                seen.add(r["v"])
                expected.append(r["v"])
        assert got == expected


words = st.text(alphabet="abcdef", max_size=12)


class TestEditDistanceProperties:
    @given(words, words)
    @settings(max_examples=100)
    def test_symmetric(self, a, b):
        assert edit_distance(a, b) == edit_distance(b, a)

    @given(words)
    @settings(max_examples=100)
    def test_identity(self, a):
        assert edit_distance(a, a) == 0

    @given(words, words)
    @settings(max_examples=100)
    def test_bounded_by_longer_length(self, a, b):
        d = edit_distance(a, b)
        assert abs(len(a) - len(b)) <= d <= max(len(a), len(b))

    @given(words, words, words)
    @settings(max_examples=60)
    def test_triangle_inequality(self, a, b, c):
        assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c)
