"""Property-based tests on runtime/pipeline invariants."""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adm import open_type
from repro.cluster import Cluster
from repro.hyracks import Frame
from repro.hyracks.connectors import RoundRobin
from repro.hyracks.partition_holder import PassivePartitionHolder
from repro.ingestion import DynamicIngestionPipeline, FeedDefinition, GeneratorAdapter
from repro.storage import Dataset
from repro.storage.dataset import hash_partition


class TestRoundRobinProperty:
    @given(
        st.integers(min_value=1, max_value=500),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=60)
    def test_balance_within_one(self, record_count, fanout):
        strategy = RoundRobin()
        counts = [0] * fanout
        for i in range(record_count):
            [target] = strategy.route({"i": i}, 0, fanout)
            counts[target] += 1
        assert max(counts) - min(counts) <= 1


class TestHashPartitionProperty:
    @given(st.lists(st.integers(), min_size=1), st.integers(1, 16))
    @settings(max_examples=60)
    def test_deterministic_and_in_range(self, record_keys, partitions):
        for key in record_keys:
            p = hash_partition(key, partitions)
            assert 0 <= p < partitions
            assert p == hash_partition(key, partitions)


class TestHolderProperty:
    @given(st.lists(st.lists(st.integers(), min_size=1, max_size=10), max_size=40),
           st.integers(1, 7))
    @settings(max_examples=60)
    def test_fifo_no_loss_any_poll_pattern(self, frames, poll_size):
        holder = PassivePartitionHolder("h", 0, capacity_frames=1000)
        flattened = []
        for frame_records in frames:
            records = [{"v": v} for v in frame_records]
            holder.offer(Frame(records))
            flattened.extend(records)
        holder.end()
        drained = []
        while not holder.drained:
            drained.extend(holder.poll_batch(poll_size))
        assert drained == flattened


class TestFeedExactlyOnceProperty:
    @given(
        st.integers(min_value=0, max_value=120),
        st.integers(min_value=1, max_value=50),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=25, deadline=None)
    def test_every_record_stored_exactly_once(self, count, batch, nodes):
        target = Dataset(
            "T", open_type("TT", id="int64"), "id",
            num_partitions=nodes, validate=False,
        )
        catalog = {"T": target}
        raws = [json.dumps({"id": i}) for i in range(count)]
        feed = FeedDefinition("F", "T", batch_size=batch)
        report = DynamicIngestionPipeline(Cluster(nodes), catalog).run(
            feed, GeneratorAdapter(raws)
        )
        assert report.records_ingested == count
        assert report.records_stored == count
        assert sorted(r["id"] for r in target.scan()) == list(range(count))
