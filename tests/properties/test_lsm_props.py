"""Property-based tests: the LSM tree behaves like a dict."""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.storage import LSMTree

keys = st.integers(min_value=0, max_value=50)
values = st.integers()


class LSMComparison(RuleBasedStateMachine):
    """Drive an LSM tree and a model dict with the same operations."""

    def __init__(self):
        super().__init__()
        self.tree = LSMTree(memtable_budget=4, merge_fanin=3)
        self.model = {}

    @rule(key=keys, value=values)
    def upsert(self, key, value):
        self.tree.upsert(key, value)
        self.model[key] = value

    @rule(key=keys)
    def delete(self, key):
        if key in self.model:
            self.tree.delete(key)
            del self.model[key]
        else:
            assert self.tree.get(key) is None

    @rule(key=keys)
    def lookup(self, key):
        assert self.tree.get(key) == self.model.get(key)

    @rule()
    def flush(self):
        self.tree.flush()

    @rule()
    def merge(self):
        self.tree.merge_all()

    @invariant()
    def scan_matches_model(self):
        assert dict(self.tree.scan()) == self.model

    @invariant()
    def length_matches(self):
        assert len(self.tree) == len(self.model)


TestLSMComparison = LSMComparison.TestCase
TestLSMComparison.settings = settings(max_examples=40, stateful_step_count=30)


@given(st.lists(st.tuples(keys, values)))
def test_scan_is_sorted_and_unique(operations):
    tree = LSMTree(memtable_budget=3, merge_fanin=3)
    for key, value in operations:
        tree.upsert(key, value)
    scanned_keys = [k for k, _ in tree.scan()]
    assert scanned_keys == sorted(set(scanned_keys))


@given(
    st.lists(st.tuples(keys, values), min_size=1),
    st.integers(min_value=0, max_value=50),
    st.integers(min_value=0, max_value=50),
)
def test_range_scan_agrees_with_full_scan(operations, low, high):
    if low > high:
        low, high = high, low
    tree = LSMTree(memtable_budget=4)
    for key, value in operations:
        tree.upsert(key, value)
    full = {k: v for k, v in tree.scan() if low <= k <= high}
    ranged = dict(tree.range_scan(low, high))
    assert ranged == full


@given(st.lists(st.tuples(keys, st.sampled_from(["upsert", "delete"]), values)))
def test_wal_replay_equivalence(operations):
    tree = LSMTree(memtable_budget=4)
    for key, op, value in operations:
        if op == "upsert":
            tree.upsert(key, value)
        elif tree.contains(key):
            tree.delete(key)
    recovered = tree.recover_from_wal()
    assert dict(recovered.scan()) == dict(tree.scan())


@given(
    st.lists(st.tuples(keys, values), min_size=1),
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=2, max_value=5),
)
def test_flush_merge_equivalence_across_configs(operations, budget, fanin):
    """Logical contents are independent of flush/merge configuration."""
    reference = {}
    tree = LSMTree(memtable_budget=budget, merge_fanin=fanin)
    for key, value in operations:
        tree.upsert(key, value)
        reference[key] = value
    assert dict(tree.scan()) == reference
    tree.flush()
    tree.merge_all()
    assert dict(tree.scan()) == reference


@given(st.lists(st.tuples(keys, values), min_size=1))
def test_get_after_merge_matches_before(operations):
    tree = LSMTree(memtable_budget=2, merge_fanin=100)
    for key, value in operations:
        tree.upsert(key, value)
    before = {key: tree.get(key) for key, _ in operations}
    tree.flush()
    tree.merge_all()
    assert {key: tree.get(key) for key, _ in operations} == before
