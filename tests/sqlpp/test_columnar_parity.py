"""Columnar vs. scalar parity over the nine paper UDFs.

The batch kernels are a pure wall-clock optimization on top of the plan
layer: for every UDF, every enriched record AND every WorkMeter counter
(on all three meters) must be identical between one batch-invoker call
per batch and the record-at-a-time scalar invoker — including the
aggregated per-batch charges, which must sum to exactly the per-record
totals.  The expected per-batch fallback column counts are pinned so a
supported construct silently dropping out of the vector subset fails
loudly.
"""

from __future__ import annotations

import pytest

from repro.hyracks.cost import WorkMeter
from repro.ingestion.feed import AttachedFunction
from repro.ingestion.udf_operator import make_batch_invoker, make_invoker
from repro.sqlpp import EvaluationContext

#: fn -> LET columns expected to fall back per batch (everything else
#: vectorizes).  Q4: edit_distance; Q5/Q5Naive: spatial_intersect; Q6/Q7:
#: spatial LETs; Q8: spatial probe.
EXPECTED_FALLBACK_LETS = {
    "enrichTweetQ1": 0,
    "enrichTweetQ2": 0,
    "enrichTweetQ3": 0,
    "annotateTweetQ4": 1,
    "enrichTweetQ5": 1,
    "enrichTweetQ5Naive": 1,
    "enrichTweetQ6": 2,
    "enrichTweetQ7": 3,
    "enrichTweetQ8": 1,
}

#: batches of 3 + 2 records with a refresh (generation bump) in between
SPLIT = 3


def _tweet_sample(sample_tweet):
    """A fixed mini-stream exercising hits, misses, and absent fields."""
    variants = [
        {},
        {"country": "FR", "latitude": 8.4, "longitude": 8.9},
        {"country": "DE", "user": {"screen_name": "jon_smyth", "name": "name3"}},
        {"country": "Atlantis", "latitude": 55.0, "longitude": 55.0},
        {"latitude": 0.2, "longitude": 9.7, "user": {"screen_name": "x", "name": "y"}},
    ]
    return [
        dict(sample_tweet, id=index, **overrides)
        for index, overrides in enumerate(variants)
    ]


def _run_scalar(catalog, registry, fn_name, tweets):
    ctx = EvaluationContext(catalog, functions=registry, use_plans=True)
    invoker = make_invoker([AttachedFunction(fn_name)], registry)
    out = []
    for position, tweet in enumerate(tweets):
        if position == SPLIT:
            ctx.refresh_batch()
        out.extend(invoker(tweet, ctx))
    return out, ctx


def _run_batched(catalog, registry, fn_name, tweets):
    ctx = EvaluationContext(catalog, functions=registry, use_plans=True)
    invoker = make_batch_invoker([AttachedFunction(fn_name)], registry)
    assert invoker is not None
    out = []
    for batch in (tweets[:SPLIT], tweets[SPLIT:]):
        if out:
            ctx.refresh_batch()
        rows = invoker(batch, ctx)
        assert rows is not None, f"{fn_name}: batch declined vectorization"
        out.extend(rows)
    return out, ctx


@pytest.mark.parametrize("fn_name", sorted(EXPECTED_FALLBACK_LETS))
def test_columnar_matches_scalar(small_catalog, registry, sample_tweet, fn_name):
    tweets = _tweet_sample(sample_tweet)
    batched, batch_ctx = _run_batched(small_catalog, registry, fn_name, tweets)
    scalar, scalar_ctx = _run_scalar(small_catalog, registry, fn_name, tweets)

    assert batched == scalar

    # Aggregated per-batch charging sums to exactly the per-record totals,
    # on the node-local, shared, and replicated meters alike.
    for batch_meter, scalar_meter in (
        (batch_ctx.meter, scalar_ctx.meter),
        (batch_ctx.shared_meter, scalar_ctx.shared_meter),
        (batch_ctx.replicated_meter, scalar_ctx.replicated_meter),
    ):
        for counter in WorkMeter._COUNTERS:
            assert getattr(batch_meter, counter) == getattr(
                scalar_meter, counter
            ), f"{fn_name}: {counter} diverged"


@pytest.mark.parametrize("fn_name", sorted(EXPECTED_FALLBACK_LETS))
def test_vectorization_counters(small_catalog, registry, sample_tweet, fn_name):
    tweets = _tweet_sample(sample_tweet)
    _out, ctx = _run_batched(small_catalog, registry, fn_name, tweets)
    cache = ctx.plan_cache
    assert cache.vectorized_batches == 2
    assert cache.vectorized_records == len(tweets)
    # One fallback per fallen-back column per batch.
    assert cache.scalar_fallbacks == 2 * EXPECTED_FALLBACK_LETS[fn_name]
    stats = cache.stats()
    for key in ("vectorized_batches", "vectorized_records", "scalar_fallbacks"):
        assert stats[key] == getattr(cache, key)
