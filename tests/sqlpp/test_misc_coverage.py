"""Remaining builtin/evaluator/utility behaviours."""

import pytest

from repro.adm import DateTime, Duration
from repro.adm.values import MISSING
from repro.errors import SqlppEvaluationError
from repro.sqlpp import EvaluationContext, Evaluator, parse_expression


def run(text, bindings=None):
    return Evaluator(EvaluationContext({})).evaluate_query(
        parse_expression(text), bindings or {}
    )


class TestRemainingBuiltins:
    def test_string_concat(self):
        assert run('string_concat(["a", "b", "c"])') == "abc"

    def test_to_bigint(self):
        assert run('to_bigint("42")') == 42

    def test_if_missing_or_null(self):
        assert run("if_missing_or_null(null, x.nope, 9)", {"x": {}}) == 9

    def test_array_agg(self):
        got = run("SELECT VALUE array_agg(r.v) FROM [{'v': 1}, {'v': 2}] r")
        assert got == [[1, 2]]

    def test_len_alias(self):
        assert run("len([1, 2, 3])") == 3

    def test_substring_without_length(self):
        assert run('substring("hello", 2)') == "llo"


class TestArithmeticEdges:
    def test_datetime_minus_duration(self):
        got = run(
            'd - duration("P1M")',
            {"d": DateTime.parse("2019-03-15T00:00:00Z")},
        )
        assert got.isoformat().startswith("2019-02-15")

    def test_duration_plus_datetime_commutes(self):
        d = DateTime.parse("2019-01-01T00:00:00Z")
        a = run('duration("P2M") + d', {"d": d})
        b = run('d + duration("P2M")', {"d": d})
        assert a == b

    def test_unary_minus_propagates_unknowns(self):
        assert run("-x", {"x": None}) is None
        assert run("-x.nope", {"x": {}}) is MISSING

    def test_not_propagates_unknowns(self):
        assert run("NOT x", {"x": None}) is None
        assert run("NOT x.nope", {"x": {}}) is MISSING

    def test_membership_non_array_rejected(self):
        with pytest.raises(SqlppEvaluationError, match="array"):
            run("1 IN 5")

    def test_membership_null_array(self):
        assert run("1 IN x", {"x": None}) is None

    def test_comparison_type_error_message(self):
        with pytest.raises(SqlppEvaluationError, match="cannot combine"):
            run('1 < "a"')


class TestRuntimeMisc:
    def test_job_result_empty_busy(self):
        from repro.hyracks.executor import JobResult

        result = JobResult("j", 1.0, {}, 0.5)
        assert result.critical_node_seconds == 0.0

    def test_node_repr(self):
        from repro.cluster import NodeController

        assert "CC+NC" in repr(NodeController(0, is_cc=True))
        assert "(NC)" in repr(NodeController(1))

    def test_cluster_repr(self):
        from repro.cluster import Cluster

        assert "3 nodes" in repr(Cluster(3))

    def test_duration_serializes(self):
        from repro.adm import serialize

        assert serialize({"d": Duration(2, 0)}) == '{"d":"P2M"}'

    def test_frame_repr(self):
        from repro.hyracks import Frame

        assert "2 records" in repr(Frame([{}, {}]))
