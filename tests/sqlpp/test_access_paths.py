"""Access-path selection and the Model-2 visibility semantics (§4.3/§5.1).

These are the load-bearing semantics of the paper: batch-cached hash
accesses freeze reference data for one context generation; live index
probes see mid-batch updates; uncorrelated subqueries cache per batch.
"""

import pytest

from repro.adm import Point, open_type
from repro.sqlpp import EvaluationContext, Evaluator, parse_expression
from repro.storage import Dataset, IndexKind
from repro.udf import FunctionRegistry, register_paper_udfs


def build(catalog, registry=None):
    ctx = EvaluationContext(catalog, functions=registry)
    return ctx, Evaluator(ctx)


@pytest.fixture
def ratings():
    ds = Dataset(
        "SafetyRatings", open_type("T"), "country_code", num_partitions=2,
        validate=False,
    )
    ds.insert({"country_code": "US", "safety_rating": "3"})
    ds.insert({"country_code": "FR", "safety_rating": "5"})
    ds.flush_all()
    return ds


QUERY = (
    "SELECT VALUE s.safety_rating FROM SafetyRatings s "
    "WHERE t.country = s.country_code"
)


class TestHashAccess:
    def test_correlated_equality_uses_hash_cache(self, ratings):
        ctx, ev = build({"SafetyRatings": ratings})
        expr = parse_expression(QUERY)
        assert ev.evaluate_query(expr, {"t": {"country": "US"}}) == ["3"]
        assert ("hash", "SafetyRatings", "country_code") in ctx.batch_cache
        assert ctx.shared_meter.hash_builds == 2
        assert ctx.meter.hash_probes == 1

    def test_build_happens_once_per_generation(self, ratings):
        ctx, ev = build({"SafetyRatings": ratings})
        expr = parse_expression(QUERY)
        for _ in range(5):
            ev.evaluate_query(expr, {"t": {"country": "US"}})
        assert ctx.shared_meter.hash_builds == 2  # one build
        assert ctx.meter.hash_probes == 5

    def test_updates_invisible_within_generation(self, ratings):
        ctx, ev = build({"SafetyRatings": ratings})
        expr = parse_expression(QUERY)
        assert ev.evaluate_query(expr, {"t": {"country": "US"}}) == ["3"]
        ratings.upsert({"country_code": "US", "safety_rating": "1"})
        assert ev.evaluate_query(expr, {"t": {"country": "US"}}) == ["3"]

    def test_refresh_makes_updates_visible(self, ratings):
        ctx, ev = build({"SafetyRatings": ratings})
        expr = parse_expression(QUERY)
        ev.evaluate_query(expr, {"t": {"country": "US"}})
        ratings.upsert({"country_code": "US", "safety_rating": "1"})
        ctx.refresh_batch()
        assert ev.evaluate_query(expr, {"t": {"country": "US"}}) == ["1"]
        assert ctx.generation == 1

    def test_equality_probe_on_missing_value_empty(self, ratings):
        ctx, ev = build({"SafetyRatings": ratings})
        expr = parse_expression(QUERY)
        assert ev.evaluate_query(expr, {"t": {}}) == []

    def test_update_activity_penalizes_build(self, ratings):
        # a burst of updates leaves the in-memory component active and
        # under pressure; the batch scan pays a penalty proportional to it
        for i in range(200):
            ratings.upsert({"country_code": f"Z{i:03d}", "safety_rating": "4"})
        ctx, ev = build({"SafetyRatings": ratings})
        ev.evaluate_query(parse_expression(QUERY), {"t": {"country": "US"}})
        assert ctx.shared_meter.penalized_reads > 0

    def test_quiescent_build_not_penalized(self, ratings):
        ctx, ev = build({"SafetyRatings": ratings})
        ev.evaluate_query(parse_expression(QUERY), {"t": {"country": "US"}})
        assert ctx.shared_meter.penalized_reads == 0

    def test_index_probe_penalty_exceeds_scan_penalty(self, ratings):
        from repro.sqlpp.evaluator import Evaluator as Ev

        for i in range(200):
            ratings.upsert({"country_code": f"Z{i:03d}", "safety_rating": "4"})
        scan_units = Ev._penalty_units(ratings, 100, index_probe=False)
        probe_units = Ev._penalty_units(ratings, 100, index_probe=True)
        assert probe_units > scan_units > 0

    def test_btree_index_preferred_when_present(self, ratings):
        ratings.create_index("by_code", "country_code", IndexKind.BTREE)
        ctx, ev = build({"SafetyRatings": ratings})
        assert ev.evaluate_query(
            parse_expression(QUERY), {"t": {"country": "FR"}}
        ) == ["5"]
        assert ctx.meter.btree_probes == 1
        assert ctx.shared_meter.hash_builds == 0

    def test_btree_probe_sees_midbatch_updates(self, ratings):
        ratings.create_index("by_code", "country_code", IndexKind.BTREE)
        ctx, ev = build({"SafetyRatings": ratings})
        expr = parse_expression(QUERY)
        ev.evaluate_query(expr, {"t": {"country": "US"}})
        ratings.upsert({"country_code": "US", "safety_rating": "9"})
        assert ev.evaluate_query(expr, {"t": {"country": "US"}}) == ["9"]


@pytest.fixture
def monuments():
    ds = Dataset(
        "monumentList", open_type("T"), "monument_id", num_partitions=2,
        validate=False,
    )
    for i in range(10):
        ds.insert({"monument_id": f"m{i}", "monument_location": Point(float(i), float(i))})
    ds.flush_all()
    ds.create_index("loc", "monument_location", IndexKind.RTREE)
    return ds


SPATIAL_QUERY = (
    "SELECT VALUE m.monument_id FROM monumentList m "
    "WHERE spatial_intersect(m.monument_location, "
    "create_circle(create_point(t.latitude, t.longitude), 1.5))"
)


class TestSpatialAccess:
    def test_rtree_probe_used(self, monuments):
        ctx, ev = build({"monumentList": monuments})
        got = ev.evaluate_query(
            parse_expression(SPATIAL_QUERY), {"t": {"latitude": 3.0, "longitude": 3.0}}
        )
        assert sorted(got) == ["m2", "m3", "m4"]
        assert ctx.meter.rtree_nodes_visited > 0
        assert ("scan", "monumentList") not in ctx.batch_cache

    def test_rtree_sees_midbatch_inserts(self, monuments):
        ctx, ev = build({"monumentList": monuments})
        expr = parse_expression(SPATIAL_QUERY)
        bindings = {"t": {"latitude": 3.0, "longitude": 3.0}}
        ev.evaluate_query(expr, bindings)
        monuments.insert({"monument_id": "mNew", "monument_location": Point(3.1, 3.1)})
        assert "mNew" in ev.evaluate_query(expr, bindings)

    def test_no_index_hint_forces_scan(self, monuments):
        ctx, ev = build({"monumentList": monuments})
        naive = SPATIAL_QUERY.replace(
            "FROM monumentList m", "FROM monumentList /*+ no-index */ m"
        )
        got = ev.evaluate_query(
            parse_expression(naive), {"t": {"latitude": 3.0, "longitude": 3.0}}
        )
        assert sorted(got) == ["m2", "m3", "m4"]
        assert ctx.meter.rtree_nodes_visited == 0
        assert ("scan", "monumentList") in ctx.batch_cache

    def test_flipped_circle_pattern_probes_index(self, monuments):
        # spatial_intersect(create_point(outer), create_circle(m.field, R))
        query = (
            "SELECT VALUE m.monument_id FROM monumentList m "
            "WHERE spatial_intersect(create_point(t.latitude, t.longitude), "
            "create_circle(m.monument_location, 1.5))"
        )
        ctx, ev = build({"monumentList": monuments})
        got = ev.evaluate_query(
            parse_expression(query), {"t": {"latitude": 3.0, "longitude": 3.0}}
        )
        assert sorted(got) == ["m2", "m3", "m4"]
        assert ctx.meter.rtree_nodes_visited > 0


class TestUncorrelatedCaching:
    def test_closed_subquery_cached_per_generation(self, ratings):
        ctx, ev = build({"SafetyRatings": ratings})
        expr = parse_expression(
            'SELECT VALUE t.country IN '
            "(SELECT VALUE s.country_code FROM SafetyRatings s)"
        )
        assert ev.evaluate_query(expr, {"t": {"country": "US"}}) == [True]
        ratings.insert({"country_code": "JP", "safety_rating": "2"})
        # cached: JP invisible this generation
        assert ev.evaluate_query(expr, {"t": {"country": "JP"}}) == [False]
        ctx.refresh_batch()
        assert ev.evaluate_query(expr, {"t": {"country": "JP"}}) == [True]


class TestJoinOrdering:
    def test_correlated_term_evaluated_first(self):
        """Figure 39 pattern: districts must be probed before facilities."""
        districts = Dataset("D", open_type("T"), "id", validate=False)
        from repro.adm import Rectangle

        for i in range(4):
            districts.insert({"id": f"d{i}", "area": Rectangle(i * 10, 0, i * 10 + 10, 10)})
        districts.flush_all()
        districts.create_index("area_idx", "area", IndexKind.RTREE)
        facilities = Dataset("F", open_type("T"), "id", validate=False)
        for i in range(40):
            facilities.insert({"id": f"f{i}", "loc": Point(i % 40, 5.0)})
        facilities.flush_all()
        facilities.create_index("loc_idx", "loc", IndexKind.RTREE)
        ctx, ev = build({"D": districts, "F": facilities})
        query = (
            "SELECT VALUE f.id FROM F f, D d "
            "WHERE spatial_intersect(f.loc, d.area) "
            "AND spatial_intersect(create_point(t.x, t.y), d.area)"
        )
        got = ev.evaluate_query(parse_expression(query), {"t": {"x": 15.0, "y": 5.0}})
        assert sorted(got) == sorted(f"f{i}" for i in range(10, 21))
        # both accesses went through R-trees — no full scans cached
        assert ("scan", "F") not in ctx.batch_cache
        assert ("scan", "D") not in ctx.batch_cache


class TestPaperUdfRegression:
    """All eight UDFs against the shared small catalog (vs brute force)."""

    def test_q6_suspicious_names_counts(self, small_catalog, registry, sample_tweet):
        ctx = EvaluationContext(small_catalog, functions=registry)
        got = Evaluator(ctx).evaluate_query(
            parse_expression("enrichTweetQ6(t)"), {"t": sample_tweet}
        )[0]
        from math import hypot

        expected = {}
        for rec in small_catalog["Facilities"].scan():
            p = rec["facility_location"]
            if hypot(p.x - 3.0, p.y - 3.2) <= 3.0:
                expected[rec["facility_type"]] = expected.get(rec["facility_type"], 0) + 1
        assert {
            d["FacilityType"]: d["Cnt"] for d in got["nearby_facilities"]
        } == expected
        assert len(got["nearby_religious_buildings"]) <= 3

    def test_q7_tweet_context(self, small_catalog, registry, sample_tweet):
        ctx = EvaluationContext(small_catalog, functions=registry)
        got = Evaluator(ctx).evaluate_query(
            parse_expression("enrichTweetQ7(t)"), {"t": sample_tweet}
        )[0]
        point = Point(3.0, 3.2)
        districts = [
            d
            for d in small_catalog["DistrictAreas"].scan()
            if d["district_area"].contains_point(point)
        ]
        expected_eth = {}
        for d in districts:
            for p in small_catalog["Persons"].scan():
                if d["district_area"].contains_point(p["location"]):
                    expected_eth[p["ethnicity"]] = expected_eth.get(p["ethnicity"], 0) + 1
        assert {
            d["ethnicity"]: d["EthnicityPopulation"] for d in got["ethnicity_dist"]
        } == expected_eth

    def test_q8_worrisome_tweets(self, small_catalog, registry, sample_tweet):
        from math import hypot

        from repro.adm import Duration

        ctx = EvaluationContext(small_catalog, functions=registry)
        got = Evaluator(ctx).evaluate_query(
            parse_expression("enrichTweetQ8(t)"), {"t": sample_tweet}
        )[0]
        expected = {}
        created = sample_tweet["created_at"]
        for b in small_catalog["ReligiousBuildings"].scan():
            loc = b["building_location"]
            if hypot(loc.x - 3.0, loc.y - 3.2) <= 3.0:
                for a in small_catalog["AttackEvents"].scan():
                    if (
                        b["religion_name"] == a["related_religion"]
                        and created > a["attack_datetime"]
                        and created < a["attack_datetime"].add(Duration.parse("P2M"))
                    ):
                        expected[b["religion_name"]] = (
                            expected.get(b["religion_name"], 0) + 1
                        )
        assert {
            d["religion"]: d["attack_num"] for d in got["nearby_religious_attacks"]
        } == expected
