"""The cross-batch enrichment-state cache (version-keyed build reuse)."""

from __future__ import annotations

import pytest

from repro.sqlpp import EvaluationContext
from repro.sqlpp.state_cache import (
    ENTRY_OVERHEAD_BYTES,
    RECORD_ESTIMATE_BYTES,
    StateCache,
    dataset_version_key,
    estimate_payload_bytes,
    estimate_record_bytes,
)


def entry_bytes(records: int) -> int:
    return ENTRY_OVERHEAD_BYTES + RECORD_ESTIMATE_BYTES * records


def payload_entry_bytes(value) -> int:
    """What ``put`` charges when no explicit ``nbytes`` is given."""
    return ENTRY_OVERHEAD_BYTES + estimate_payload_bytes(value)


class TestStateCacheUnit:
    def test_hit_requires_matching_version(self):
        cache = StateCache(budget_bytes=1 << 20)
        cache.put(("hash", "R", "f"), 3, {"a": [1]}, records=1)
        assert cache.get(("hash", "R", "f"), 3).value == {"a": [1]}
        assert cache.get(("hash", "R", "f"), 4) is None  # stale version
        assert cache.get(("hash", "Q", "f"), 3) is None  # absent key
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 2
        assert stats["version_mismatches"] == 1

    def test_put_replaces_stale_entry(self):
        cache = StateCache(budget_bytes=1 << 20)
        cache.put(("scan", "R"), 1, ["old"], records=1)
        cache.put(("scan", "R"), 2, ["new"], records=1)
        assert len(cache) == 1
        assert cache.get(("scan", "R"), 2).value == ["new"]
        assert cache.current_bytes == payload_entry_bytes(["new"])

    def test_lru_eviction_by_bytes(self):
        size = payload_entry_bytes("a")  # one-char payloads weigh the same
        budget = size * 2  # room for two such entries
        cache = StateCache(budget_bytes=budget)
        cache.put(("scan", "A"), 1, "a", records=10)
        cache.put(("scan", "B"), 1, "b", records=10)
        cache.get(("scan", "A"), 1)  # touch A: B becomes LRU
        cache.put(("scan", "C"), 1, "c", records=10)
        assert ("scan", "A") in cache
        assert ("scan", "B") not in cache
        assert ("scan", "C") in cache
        assert cache.stats()["evictions"] == 1
        assert cache.current_bytes <= budget

    def test_oversized_entry_not_admitted(self):
        cache = StateCache(budget_bytes=payload_entry_bytes("a" * 64))
        cache.put(("scan", "A"), 1, "a", records=5)
        cache.put(("scan", "BIG"), 1, "x" * 4096, records=1)
        # The oversized entry is rejected without flushing the cache.
        assert ("scan", "BIG") not in cache
        assert ("scan", "A") in cache
        assert cache.stats()["evictions"] == 0

    def test_configure_shrink_evicts_immediately(self):
        size = payload_entry_bytes("A")
        cache = StateCache(budget_bytes=size * 4)
        for name in "ABCD":
            cache.put(("scan", name), 1, name, records=10)
        cache.configure(size)
        assert len(cache) == 1
        assert cache.current_bytes <= size

    def test_clear_counts_invalidation(self):
        cache = StateCache(budget_bytes=1 << 20)
        cache.put(("scan", "A"), 1, "a", records=1)
        cache.clear()
        cache.clear()  # empty clear is not counted
        assert len(cache) == 0
        assert cache.current_bytes == 0
        assert cache.stats()["invalidations"] == 1

    def test_eviction_never_invalidates_a_pinned_value(self):
        """A batch that installed the value into its batch cache keeps a
        strong reference, so eviction only drops the cache's own ref."""
        table = {"k": ["v"]}
        cache = StateCache(budget_bytes=payload_entry_bytes(table))
        cache.put(("hash", "R", "f"), 1, table, records=10)
        pinned = cache.get(("hash", "R", "f"), 1).value
        cache.put(("hash", "S", "f"), 1, {"o": []}, records=10)  # evicts R
        assert ("hash", "R", "f") not in cache
        assert pinned is table and pinned["k"] == ["v"]

    def test_estimate_record_bytes(self):
        assert estimate_record_bytes(0) == ENTRY_OVERHEAD_BYTES
        assert estimate_record_bytes(4) == entry_bytes(4)
        assert estimate_record_bytes(-3) == ENTRY_OVERHEAD_BYTES

    def test_payload_sizer_tracks_actual_weight(self):
        """Ten fat documents must weigh far more than ten bare ints —
        the regression the legacy row-count estimate could not see."""
        fat = [{"body": "x" * 1024, "tags": ["a", "b", "c"]} for _ in range(10)]
        thin = list(range(10))
        assert estimate_payload_bytes(fat) > 20 * estimate_payload_bytes(thin)
        # Nesting is walked, not flat-priced.
        assert estimate_payload_bytes({"a": [1, 2]}) > estimate_payload_bytes(
            {"a": []}
        )
        # Scalars and strings scale with content.
        assert estimate_payload_bytes("x" * 100) > estimate_payload_bytes("x")

    def test_eviction_order_tracks_entry_weight(self):
        """LRU budgeting uses per-entry payload weight: admitting one heavy
        entry evicts as many light LRU entries as its weight displaces."""
        light = {"v": 1}
        heavy = [{"doc": "y" * 512} for _ in range(8)]
        light_size = payload_entry_bytes(light)
        heavy_size = payload_entry_bytes(heavy)
        assert heavy_size > 3 * light_size
        budget = heavy_size + 2 * light_size
        cache = StateCache(budget_bytes=budget)
        for name in "ABCD":  # 4 light entries, all fit
            cache.put(("scan", name), 1, dict(light), records=1)
        assert len(cache) == 4
        cache.put(("scan", "HEAVY"), 1, heavy, records=8)
        # The heavy entry displaced exactly the LRU tail its weight needs:
        # A and B go, C and D stay.
        assert ("scan", "A") not in cache
        assert ("scan", "B") not in cache
        assert ("scan", "C") in cache
        assert ("scan", "D") in cache
        assert ("scan", "HEAVY") in cache
        assert cache.current_bytes <= budget
        assert cache.stats()["evictions"] == 2

    def test_hit_ratio_in_stats(self):
        cache = StateCache(budget_bytes=1 << 20)
        assert cache.hit_ratio == 0.0  # no lookups yet
        cache.put(("scan", "R"), 1, ["r"], records=1)
        cache.get(("scan", "R"), 1)  # hit
        cache.get(("scan", "R"), 2)  # stale -> miss
        cache.get(("scan", "Q"), 1)  # absent -> miss
        stats = cache.stats()
        assert stats["hit_ratio"] == pytest.approx(1 / 3)
        assert cache.hit_ratio == pytest.approx(1 / 3)

    def test_dataset_version_key_sorted_and_filtered(self):
        class FakeDs:
            def __init__(self, version):
                self.version = version

        catalog = {"B": FakeDs(7), "A": FakeDs(2)}
        key = dataset_version_key(catalog, {"B", "A", "Missing"})
        assert key == (("A", 2), ("B", 7))


@pytest.fixture
def cached_ctx(small_catalog, registry):
    ctx = EvaluationContext(small_catalog, functions=registry)
    ctx.state_cache = StateCache(budget_bytes=8 << 20)
    return ctx


class TestEvaluatorIntegration:
    def _invoke(self, registry, ctx, tweet):
        return registry.invoke("enrichTweetQ1", [tweet], ctx)

    def test_hash_build_reused_across_batches(
        self, cached_ctx, registry, sample_tweet
    ):
        ctx = cached_ctx
        self._invoke(registry, ctx, sample_tweet)
        builds_first = ctx.shared_meter.hash_builds
        assert builds_first > 0
        assert ctx.shared_meter.state_cache_hits == 0

        ctx.refresh_batch()
        ctx.shared_meter.reset()
        out = self._invoke(registry, ctx, sample_tweet)
        # Second batch: the build table (and its scan) come from the
        # cache — no rebuild charges, explicit reuse charges instead.
        assert ctx.shared_meter.hash_builds == 0
        assert ctx.shared_meter.records_scanned == 0
        assert ctx.shared_meter.state_cache_hits > 0
        assert ctx.shared_meter.state_cache_reused_records > 0
        assert out == self._fresh_output(registry, ctx, sample_tweet)

    def _fresh_output(self, registry, ctx, tweet):
        fresh = EvaluationContext(ctx.catalog, functions=registry)
        return registry.invoke("enrichTweetQ1", [tweet], fresh)

    def test_version_bump_forces_rebuild(
        self, cached_ctx, registry, sample_tweet
    ):
        ctx = cached_ctx
        self._invoke(registry, ctx, sample_tweet)
        ratings = ctx.catalog["SafetyRatings"]
        ratings.upsert(
            {"country_code": sample_tweet["country"], "safety_rating": "1"}
        )
        ctx.refresh_batch()
        ctx.shared_meter.reset()
        out = self._invoke(registry, ctx, sample_tweet)
        assert ctx.shared_meter.hash_builds > 0  # rebuilt, not reused
        assert ctx.state_cache.stats()["version_mismatches"] >= 1
        # The rebuild observes the update — same freshness as baseline.
        assert out[0]["safety_rating"] == ["1"]

    def test_stale_within_batch_semantics_preserved(
        self, cached_ctx, registry, sample_tweet
    ):
        """An update *inside* a batch stays invisible until the next
        batch boundary, exactly like the per-batch-rebuild baseline."""
        ctx = cached_ctx
        before = self._invoke(registry, ctx, sample_tweet)
        ctx.catalog["SafetyRatings"].upsert(
            {"country_code": sample_tweet["country"], "safety_rating": "1"}
        )
        within = self._invoke(registry, ctx, sample_tweet)
        assert within == before  # stale within the batch
        ctx.refresh_batch()
        after = self._invoke(registry, ctx, sample_tweet)
        assert after[0]["safety_rating"] == ["1"]

    def test_interpreted_path_uses_cache_too(
        self, small_catalog, registry, sample_tweet
    ):
        ctx = EvaluationContext(
            small_catalog, functions=registry, use_plans=False
        )
        ctx.state_cache = StateCache(budget_bytes=8 << 20)
        planned_ctx = EvaluationContext(small_catalog, functions=registry)
        planned_ctx.state_cache = StateCache(budget_bytes=8 << 20)
        for c in (ctx, planned_ctx):
            registry.invoke("enrichTweetQ1", [sample_tweet], c)
            c.refresh_batch()
            c.shared_meter.reset()
        out_interp = registry.invoke("enrichTweetQ1", [sample_tweet], ctx)
        out_planned = registry.invoke(
            "enrichTweetQ1", [sample_tweet], planned_ctx
        )
        assert out_interp == out_planned
        assert ctx.shared_meter.state_cache_hits > 0
        assert (
            ctx.shared_meter.state_cache_hits
            == planned_ctx.shared_meter.state_cache_hits
        )

    def test_no_cache_attached_means_no_counters(
        self, small_catalog, registry, sample_tweet
    ):
        ctx = EvaluationContext(small_catalog, functions=registry)
        assert ctx.state_cache is None
        registry.invoke("enrichTweetQ1", [sample_tweet], ctx)
        ctx.refresh_batch()
        registry.invoke("enrichTweetQ1", [sample_tweet], ctx)
        assert ctx.shared_meter.state_cache_hits == 0
        assert ctx.shared_meter.state_cache_reused_records == 0

    def test_registry_invalidate_plans_clears_cache(self, registry):
        registry.state_cache.put(("scan", "R"), 1, [], records=0)
        registry.invalidate_plans()
        assert len(registry.state_cache) == 0

    def test_replace_sqlpp_clears_cache(self, registry):
        registry.state_cache.put(("scan", "R"), 1, [], records=0)
        registry.replace_sqlpp(
            "CREATE FUNCTION enrichTweetQ1(t) { SELECT t.* }"
        )
        assert len(registry.state_cache) == 0
