"""Evaluator corner cases beyond the main suite."""

import pytest

from repro.adm import open_type
from repro.adm.values import MISSING
from repro.errors import SqlppEvaluationError
from repro.sqlpp import EvaluationContext, Evaluator, parse_expression
from repro.storage import Dataset


def run(text, bindings=None, catalog=None):
    evaluator = Evaluator(EvaluationContext(catalog or {}))
    return evaluator.evaluate_query(parse_expression(text), bindings or {})


class TestOrderByOutputAliases:
    """SQL++ ORDER BY resolves SELECT output fields (post-projection)."""

    ROWS = "[{'c': 'x', 'v': 3}, {'c': 'y', 'v': 1}, {'c': 'z', 'v': 2}]"

    def test_order_by_projection_alias(self):
        got = run(f"SELECT r.c AS name, r.v AS val FROM {self.ROWS} r ORDER BY val")
        assert [g["name"] for g in got] == ["y", "z", "x"]

    def test_order_by_aggregate_alias(self):
        rows = "[{'k': 'a'}, {'k': 'b'}, {'k': 'a'}]"
        got = run(
            f"SELECT r.k AS k, count(*) AS n FROM {rows} r GROUP BY r.k ORDER BY n DESC"
        )
        assert got == [{"k": "a", "n": 2}, {"k": "b", "n": 1}]

    def test_underlying_var_still_visible(self):
        got = run(f"SELECT r.c AS name FROM {self.ROWS} r ORDER BY r.v DESC")
        assert [g["name"] for g in got] == ["x", "z", "y"]

    def test_sort_stability_on_ties(self):
        rows = "[{'k': 1, 'i': 0}, {'k': 1, 'i': 1}, {'k': 1, 'i': 2}]"
        got = run(f"SELECT VALUE r.i FROM {rows} r ORDER BY r.k")
        assert got == [0, 1, 2]  # input order preserved for equal keys


class TestMixedTypeOrdering:
    def test_missing_null_sort_first(self):
        rows = "[{'v': 2}, {}, {'v': null}, {'v': 1}]"
        got = run(f"SELECT VALUE r.v FROM {rows} r ORDER BY r.v")
        assert got[0] is MISSING
        assert got[1] is None
        assert got[2:] == [1, 2]

    def test_mixed_numbers_and_strings(self):
        rows = "[{'v': 'b'}, {'v': 2}, {'v': 'a'}, {'v': 1}]"
        got = run(f"SELECT VALUE r.v FROM {rows} r ORDER BY r.v")
        assert got == [1, 2, "a", "b"]  # numbers before strings


class TestNestedScoping:
    def test_inner_from_shadows_outer_var(self):
        got = run(
            "SELECT VALUE (SELECT VALUE x FROM [10, 20] x) FROM [1] x"
        )
        assert got == [[10, 20]]

    def test_let_shadows_parameterish_binding(self):
        got = run("LET x = 5 SELECT VALUE x", {"x": 1})
        assert got == [5]

    def test_deeply_nested_subqueries(self):
        got = run(
            "SELECT VALUE (SELECT VALUE (SELECT VALUE z + y FROM [100] z) "
            "FROM [10] y) FROM [1] x"
        )
        assert got == [[[110]]]


class TestGroupEdgeCases:
    def test_group_key_with_missing_values(self):
        rows = "[{'k': 'a'}, {}, {'k': 'a'}, {}]"
        got = run(f"SELECT count(*) AS n FROM {rows} r GROUP BY r.k")
        assert sorted(g["n"] for g in got) == [2, 2]

    def test_multi_key_grouping(self):
        rows = "[{'a': 1, 'b': 1}, {'a': 1, 'b': 2}, {'a': 1, 'b': 1}]"
        got = run(
            f"SELECT r.a AS a, r.b AS b, count(*) AS n FROM {rows} r "
            "GROUP BY r.a, r.b"
        )
        assert sorted((g["a"], g["b"], g["n"]) for g in got) == [
            (1, 1, 2),
            (1, 2, 1),
        ]

    def test_aggregate_inside_case_in_group(self):
        rows = "[{'k': 'a', 'v': 5}, {'k': 'a', 'v': 10}]"
        got = run(
            f"SELECT VALUE CASE WHEN sum(r.v) > 10 THEN 'big' ELSE 'small' END "
            f"FROM {rows} r GROUP BY r.k"
        )
        assert got == ["big"]


class TestDatasetEdgeCases:
    def test_two_scans_of_same_dataset(self):
        ds = Dataset("D", open_type("T", id="int64"), "id", validate=False)
        for i in range(3):
            ds.insert({"id": i})
        got = run(
            "SELECT VALUE [a.id, b.id] FROM D a, D b WHERE a.id = b.id",
            catalog={"D": ds},
        )
        assert sorted(got) == [[0, 0], [1, 1], [2, 2]]

    def test_scan_cache_shared_between_aliases(self):
        ds = Dataset("D", open_type("T", id="int64"), "id", validate=False)
        ds.insert({"id": 1})
        ctx = EvaluationContext({"D": ds})
        Evaluator(ctx).evaluate_query(
            parse_expression("SELECT VALUE [a.id, b.id] FROM D a, D b")
        )
        # one scan cache entry, shared by both FROM aliases
        assert ctx.shared_meter.records_scanned == 1

    def test_empty_dataset(self):
        ds = Dataset("D", open_type("T", id="int64"), "id", validate=False)
        assert run("SELECT VALUE d FROM D d", catalog={"D": ds}) == []
        assert run("SELECT count(*) AS n FROM D d", catalog={"D": ds}) == [
            {"n": 0}
        ]
