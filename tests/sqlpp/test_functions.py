"""Built-in function library."""

import pytest

from repro.adm import Circle, DateTime, Duration, Point, Rectangle
from repro.adm.values import MISSING
from repro.hyracks.cost import WorkMeter
from repro.sqlpp import parse_expression
from repro.sqlpp.evaluator import EvaluationContext, Evaluator
from repro.sqlpp.functions import BUILTINS, edit_distance


def run(text, bindings=None):
    return Evaluator(EvaluationContext({})).evaluate_query(
        parse_expression(text), bindings or {}
    )


class TestStringFunctions:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ('contains("hello world", "world")', True),
            ('contains("hello", "x")', False),
            ('lower("ABC")', "abc"),
            ('upper("abc")', "ABC"),
            ('trim("  x  ")', "x"),
            ('length("abcd")', 4),
            ('starts_with("abc", "ab")', True),
            ('ends_with("abc", "bc")', True),
            ('substring("hello", 1, 3)', "ell"),
            ('replace("a-b", "-", "+")', "a+b"),
            ('split("a,b", ",")', ["a", "b"]),
            ("to_string(42)", "42"),
        ],
    )
    def test_functions(self, text, expected):
        assert run(text) == expected

    def test_missing_propagates(self):
        assert run("lower(x.nope)", {"x": {}}) is MISSING

    def test_null_propagates(self):
        assert run("lower(x)", {"x": None}) is None


class TestEditDistance:
    @pytest.mark.parametrize(
        "a,b,d",
        [
            ("", "", 0),
            ("abc", "abc", 0),
            ("abc", "abd", 1),
            ("kitten", "sitting", 3),
            ("", "abc", 3),
            ("ab", "ba", 2),
        ],
    )
    def test_distances(self, a, b, d):
        assert edit_distance(a, b) == d

    def test_symmetry(self):
        assert edit_distance("short", "a longer string") == edit_distance(
            "a longer string", "short"
        )

    def test_meter_counts_cells(self):
        meter = WorkMeter()
        edit_distance("abcd", "xyz", meter)
        assert meter.edit_distance_cells == 5 * 4

    def test_via_sqlpp(self):
        assert run('edit_distance("abc", "abd")') == 1


class TestNumericAndNullHandling:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("abs(-3)", 3),
            ("round(2.6)", 3),
            ("floor(2.9)", 2),
            ("ceil(2.1)", 3),
            ("sqrt(9)", 3.0),
            ("is_missing(x.nope)", True),
            ("is_null(null)", True),
            ("is_unknown(null)", True),
            ("coalesce(null, 2)", 2),
            ("if_missing(x.nope, 7)", 7),
        ],
    )
    def test_functions(self, text, expected):
        assert run(text, {"x": {}}) == expected


class TestArrayFunctions:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("array_count([1, 2])", 2),
            ("array_sum([1, 2, 3])", 6),
            ("array_min([3, 1])", 1),
            ("array_max([3, 1])", 3),
            ("array_avg([2, 4])", 3.0),
            ("array_contains([1, 2], 2)", True),
            ("array_distinct([1, 1, 2])", [1, 2]),
            ("array_flatten([[1], [2, 3]])", [1, 2, 3]),
        ],
    )
    def test_functions(self, text, expected):
        assert run(text) == expected

    def test_non_array_rejected(self):
        from repro.errors import SqlppEvaluationError

        with pytest.raises(SqlppEvaluationError):
            run("array_sum(5)")


class TestSpatialFunctions:
    def test_create_point(self):
        assert run("create_point(1.5, 2.5)") == Point(1.5, 2.5)

    def test_create_circle(self):
        assert run("create_circle(create_point(0, 0), 2)") == Circle(Point(0, 0), 2)

    def test_create_rectangle(self):
        got = run("create_rectangle(create_point(0, 0), create_point(2, 3))")
        assert got == Rectangle(0, 0, 2, 3)

    def test_spatial_intersect_and_meter(self):
        ctx = EvaluationContext({})
        result = Evaluator(ctx).evaluate_query(
            parse_expression(
                "spatial_intersect(create_point(1, 1), "
                "create_circle(create_point(0, 0), 2))"
            )
        )
        assert result is True
        assert ctx.meter.spatial_tests == 1

    def test_spatial_distance(self):
        assert run("spatial_distance(create_point(0, 0), create_point(3, 4))") == 5.0

    def test_get_x_y(self):
        assert run("get_x(create_point(4, 5))") == 4
        assert run("get_y(create_point(4, 5))") == 5


class TestTemporalFunctions:
    def test_datetime_constructor(self):
        assert run('datetime("2019-01-01T00:00:00Z")') == DateTime.parse(
            "2019-01-01T00:00:00Z"
        )

    def test_duration_constructor(self):
        assert run('duration("P2M")') == Duration(2, 0)

    def test_get_year(self):
        assert run('get_year(datetime("2019-06-01T00:00:00Z"))') == 2019

    def test_datetime_comparison_via_sqlpp(self):
        got = run(
            't1 < t2 + duration("P2M")',
            {
                "t1": DateTime.parse("2019-03-15T00:00:00Z"),
                "t2": DateTime.parse("2019-02-01T00:00:00Z"),
            },
        )
        assert got is True


class TestRegistry:
    def test_lookup_case_insensitive(self):
        assert BUILTINS.lookup("CONTAINS") is BUILTINS.lookup("contains")

    def test_contains_protocol(self):
        assert "contains" in BUILTINS
        assert "no_such_fn" not in BUILTINS

    def test_names_sorted(self):
        names = BUILTINS.names()
        assert names == sorted(names)
