"""Columnar kernel compilation: supported subset and fallback triggers.

Every construct outside the vectorizable subset must either fail kernel
compilation for the whole block (:class:`Unsupported`, surfaced as the
``UNSUPPORTED`` sentinel through :func:`kernel_for`), fall back for just
that column (``fallback_lets``), or abort at run time
(:class:`KernelFallback`) — never silently produce different results.
"""

from __future__ import annotations

import pytest

from repro.ingestion.feed import AttachedFunction
from repro.ingestion.udf_operator import make_batch_invoker
from repro.sqlpp import EvaluationContext, Evaluator, parse_function
from repro.sqlpp.columnar import (
    UNSUPPORTED,
    KernelFallback,
    Unsupported,
    compile_block_kernel,
    kernel_for,
)
from repro.storage import IndexKind


def _compile(ctx, source):
    definition = parse_function(source)
    plan = ctx.plan_cache.plan_for(
        definition.body, frozenset(definition.params), ctx.catalog
    )
    return compile_block_kernel(plan, tuple(definition.params), ctx), plan


def _ctx(small_catalog, registry):
    return EvaluationContext(small_catalog, functions=registry, use_plans=True)


# ------------------------------------------------------- whole-block shapes


WHOLE_BLOCK_UNSUPPORTED = [
    (
        "non_unary",
        "CREATE FUNCTION f(a, b) { SELECT a.*, b AS other }",
        "unary",
    ),
    (
        "top_level_from",
        """CREATE FUNCTION f(t) {
            SELECT VALUE s.safety_rating FROM SafetyRatings s
            WHERE s.country_code = t.country
        }""",
        "FROM",
    ),
    (
        "top_level_distinct",
        "CREATE FUNCTION f(t) { SELECT DISTINCT t.country AS c }",
        "GROUP/ORDER/DISTINCT",
    ),
]


@pytest.mark.parametrize(
    "source,match",
    [(source, match) for _key, source, match in WHOLE_BLOCK_UNSUPPORTED],
    ids=[key for key, _source, _match in WHOLE_BLOCK_UNSUPPORTED],
)
def test_whole_block_shapes_stay_scalar(small_catalog, registry, source, match):
    ctx = _ctx(small_catalog, registry)
    with pytest.raises(Unsupported, match=match):
        _compile(ctx, source)


def test_kernel_for_caches_unsupported_sentinel(small_catalog, registry):
    ctx = _ctx(small_catalog, registry)
    definition = parse_function(WHOLE_BLOCK_UNSUPPORTED[1][1])
    plan = ctx.plan_cache.plan_for(
        definition.body, frozenset(definition.params), ctx.catalog
    )
    params = tuple(definition.params)
    assert kernel_for(plan, params, ctx, registry.version) is UNSUPPORTED
    # Cached on the plan: the second lookup returns without recompiling.
    assert plan.batch_kernel == (registry.version, UNSUPPORTED)
    assert kernel_for(plan, params, ctx, registry.version) is UNSUPPORTED


def test_registry_version_bump_recompiles_kernel(small_catalog, registry):
    ctx = _ctx(small_catalog, registry)
    kernel, plan = _compile(
        ctx,
        "CREATEFN".replace(
            "CREATEFN",
            "CREATE FUNCTION f(t) { LET x = lower(t.text) SELECT t.*, x }",
        ),
    )
    params = ("t",)
    first = kernel_for(plan, params, ctx, registry.version)
    assert first is kernel_for(plan, params, ctx, registry.version)
    registry.register_sqlpp(
        "CREATE FUNCTION unrelatedBump(q) { SELECT q.* }"
    )
    second = kernel_for(plan, params, ctx, registry.version)
    assert second is not first  # version moved, kernel recompiled


# ----------------------------------------------------- per-column fallbacks


PER_COLUMN_FALLBACKS = [
    (
        "java_library_call",
        "LET x = udflib#remove_special(t.text)",
    ),
    (
        "metered_builtin",
        'LET x = edit_distance(t.text, "abc")',
    ),
    (
        "registry_function",
        "LET x = enrichTweetQ1(t)",
    ),
    (
        "unknown_function",
        "LET x = no_such_function(t.text)",
    ),
    (
        "zero_argument_call",
        "LET x = coalesce()",
    ),
    (
        "unknown_column",
        "LET x = unbound_name",
    ),
    (
        "subquery_in_conditional_position",
        """LET x = t.id > 100 OR EXISTS (
            SELECT VALUE s FROM SafetyRatings s
            WHERE s.country_code = t.country)""",
    ),
    (
        "multi_conjunct_probe_where",
        """LET x = (SELECT VALUE s.safety_rating FROM SafetyRatings s
            WHERE s.country_code = t.country AND s.safety_rating = "3")""",
    ),
    (
        "inner_lets",
        """LET x = (SELECT VALUE r FROM SafetyRatings s
            LET r = s.safety_rating
            WHERE s.country_code = t.country)""",
    ),
    (
        "inner_distinct",
        """LET x = (SELECT DISTINCT VALUE s.safety_rating
            FROM SafetyRatings s WHERE s.country_code = t.country)""",
    ),
    (
        "explicit_group_by",
        """LET x = (SELECT s.country_code AS c, count(*) AS n
            FROM SafetyRatings s WHERE s.country_code = t.country
            GROUP BY s.country_code)""",
    ),
    (
        "multi_key_order_by",
        """LET x = (SELECT VALUE s.population FROM ReligiousPopulations s
            WHERE s.country_name = t.country
            ORDER BY s.population DESC, s.religion_name)""",
    ),
    (
        "order_by_over_named_projections",
        """LET x = (SELECT s.safety_rating AS r FROM SafetyRatings s
            WHERE s.country_code = t.country ORDER BY s.safety_rating)""",
    ),
    (
        "non_literal_limit",
        """LET x = (SELECT VALUE s.safety_rating FROM SafetyRatings s
            WHERE s.country_code = t.country LIMIT t.id)""",
    ),
    (
        "star_projection_over_match",
        """LET x = (SELECT s.* FROM SafetyRatings s
            WHERE s.country_code = t.country)""",
    ),
]


@pytest.mark.parametrize(
    "let_clause",
    [clause for _key, clause in PER_COLUMN_FALLBACKS],
    ids=[key for key, _clause in PER_COLUMN_FALLBACKS],
)
def test_unsupported_construct_falls_back_per_column(
    small_catalog, registry, let_clause
):
    ctx = _ctx(small_catalog, registry)
    kernel, _plan = _compile(
        ctx,
        "CREATE FUNCTION f(t) { "
        + let_clause
        + ", supported = lower(t.text) SELECT t.*, x, supported }",
    )
    # Exactly the offending LET fell back; the rest stays vectorized.
    assert kernel.fallback_lets == 1
    by_var = {var: vectorized for var, vectorized, _fn in kernel.steps}
    assert by_var["x"] is False
    assert by_var["supported"] is True


# ------------------------------------------------------- runtime fallbacks


def test_dict_rows_under_order_by_abort_at_runtime(
    small_catalog, registry, sample_tweet
):
    ctx = _ctx(small_catalog, registry)
    kernel, _plan = _compile(
        ctx,
        """CREATE FUNCTION f(t) {
            LET x = (SELECT VALUE s FROM SafetyRatings s
                     WHERE s.country_code = t.country
                     ORDER BY s.safety_rating)
            SELECT t.*, x
        }""",
    )
    assert kernel.fallback_lets == 0  # compiles: rows might not be dicts
    with pytest.raises(KernelFallback, match="dict rows under ORDER BY"):
        kernel.run(Evaluator(ctx), [dict(sample_tweet)])


def test_btree_index_created_after_compile_aborts_at_runtime(
    small_catalog, registry, sample_tweet
):
    ctx = _ctx(small_catalog, registry)
    kernel, _plan = _compile(
        ctx,
        """CREATE FUNCTION f(t) {
            LET x = (SELECT VALUE s.safety_rating FROM SafetyRatings s
                     WHERE s.country_code = t.country)
            SELECT t.*, x
        }""",
    )
    rows = kernel.run(Evaluator(ctx), [dict(sample_tweet)])
    assert rows and rows[0]["x"] == ["3"]

    # The scalar path would now probe the B-tree per record with different
    # charges, so the compiled hash-probe kernel must refuse the batch.
    small_catalog["SafetyRatings"].create_index(
        "by_cc", "country_code", IndexKind.BTREE
    )
    with pytest.raises(KernelFallback, match="B-tree"):
        kernel.run(Evaluator(ctx), [dict(sample_tweet)])


# --------------------------------------------------------- batch invoker


def test_batch_invoker_declines_java_functions(registry):
    attached = [
        AttachedFunction("enrichTweetQ1"),
        AttachedFunction("remove_special", language="java", library="udflib"),
    ]
    assert make_batch_invoker(attached, registry) is None
    assert make_batch_invoker([], registry) is None


def test_batch_invoker_requires_plans(small_catalog, registry, sample_tweet):
    invoker = make_batch_invoker([AttachedFunction("enrichTweetQ1")], registry)
    assert invoker is not None
    ctx = EvaluationContext(small_catalog, functions=registry, use_plans=False)
    assert invoker([dict(sample_tweet)], ctx) is None


def test_batch_invoker_counts_unsupported_bodies(
    small_catalog, registry, sample_tweet
):
    registry.register_sqlpp(
        """CREATE FUNCTION colUnsupported(t) {
            SELECT VALUE s.safety_rating FROM SafetyRatings s
            WHERE s.country_code = t.country
        }"""
    )
    ctx = _ctx(small_catalog, registry)
    invoker = make_batch_invoker([AttachedFunction("colUnsupported")], registry)
    before = ctx.plan_cache.scalar_fallbacks
    assert invoker([dict(sample_tweet)], ctx) is None
    assert ctx.plan_cache.scalar_fallbacks == before + 1
    assert ctx.plan_cache.vectorized_batches == 0
