"""The key-level enrichment memo: canonical keys + cross-batch reuse."""

from __future__ import annotations

import pytest

from repro.sqlpp import EvaluationContext
from repro.sqlpp.memo import (
    EXTERNAL_VERSION_KEY,
    EnrichmentMemo,
    canonical_probe_key,
)
from repro.storage import IndexKind


class TestCanonicalProbeKey:
    def test_scalars_pass_through(self):
        for value in (None, "us", 7, 2.5, True, b"raw"):
            assert canonical_probe_key(value) == value

    def test_numeric_collapse_matches_dict_key_equality(self):
        # 1, 1.0, True are one dict key in a hash-probe table; the memo
        # must collapse them identically or hits would depend on spelling.
        assert canonical_probe_key(1) == canonical_probe_key(1.0)
        assert canonical_probe_key(1) == canonical_probe_key(True)

    def test_dict_field_order_invariant(self):
        a = canonical_probe_key({"lat": 1.0, "lon": 2.0})
        b = canonical_probe_key({"lon": 2.0, "lat": 1.0})
        assert a == b
        assert isinstance(hash(a), int)

    def test_list_and_tuple_values_canonicalize_equal(self):
        assert canonical_probe_key([1, "a"]) == canonical_probe_key((1, "a"))
        assert isinstance(hash(canonical_probe_key([1, "a"])), int)

    def test_nested_values(self):
        a = canonical_probe_key({"k": [{"x": 1, "y": [2]}], "t": "s"})
        b = canonical_probe_key({"t": "s", "k": [{"y": [2], "x": 1}]})
        assert a == b

    def test_array_never_collides_with_string(self):
        assert canonical_probe_key(["a"]) != canonical_probe_key("a")
        assert canonical_probe_key([]) != canonical_probe_key("")
        assert canonical_probe_key({}) != canonical_probe_key("")

    def test_unhashable_opaque_fallback(self):
        class Blob:
            __hash__ = None

            def __repr__(self):
                return "Blob()"

        key = canonical_probe_key(Blob())
        assert isinstance(hash(key), int)
        assert key == canonical_probe_key(Blob())


class TestEnrichmentMemoUnit:
    def test_version_guarded_like_state_cache(self):
        memo = EnrichmentMemo(budget_bytes=1 << 20)
        memo.put(("probe", 1, "us"), (("R", 3),), ["ok"], 1)
        assert memo.get(("probe", 1, "us"), (("R", 3),)).value == ["ok"]
        assert memo.get(("probe", 1, "us"), (("R", 4),)) is None
        assert memo.stats()["version_mismatches"] == 1

    def test_external_version_key_is_constant(self):
        memo = EnrichmentMemo(budget_bytes=1 << 20)
        memo.put(("external", "geo:loc", "1.2.3.4"), EXTERNAL_VERSION_KEY, {"c": "US"}, 1)
        assert (
            memo.get(("external", "geo:loc", "1.2.3.4"), EXTERNAL_VERSION_KEY).value
            == {"c": "US"}
        )

    def test_hit_ratio(self):
        memo = EnrichmentMemo(budget_bytes=1 << 20)
        memo.put(("probe", 1, "us"), (("R", 3),), ["ok"], 1)
        memo.get(("probe", 1, "us"), (("R", 3),))
        memo.get(("probe", 1, "fr"), (("R", 3),))
        assert memo.stats()["hit_ratio"] == pytest.approx(0.5)


@pytest.fixture
def memo_ctx(small_catalog, registry):
    ctx = EvaluationContext(small_catalog, functions=registry)
    ctx.memo = EnrichmentMemo(budget_bytes=8 << 20)
    return ctx


class TestScalarEvaluatorMemo:
    def _invoke(self, registry, ctx, tweet):
        return registry.invoke("enrichTweetQ1", [tweet], ctx)

    def _fresh_output(self, registry, ctx, tweet):
        fresh = EvaluationContext(ctx.catalog, functions=registry)
        return registry.invoke("enrichTweetQ1", [tweet], fresh)

    def test_correlated_result_reused_across_batches(
        self, memo_ctx, registry, sample_tweet
    ):
        ctx = memo_ctx
        self._invoke(registry, ctx, sample_tweet)
        assert ctx.meter.memo_hits == 0  # cold first batch
        ctx.refresh_batch()
        ctx.meter.reset()
        ctx.shared_meter.reset()
        out = self._invoke(registry, ctx, sample_tweet)
        # Second batch: the whole correlated subquery is skipped — no
        # scan, no build (shared_meter), no probe (per-record meter);
        # explicit memo charges instead.
        assert ctx.meter.memo_hits > 0
        assert ctx.meter.memo_reused_records > 0
        assert ctx.shared_meter.hash_builds == 0
        assert ctx.shared_meter.records_scanned == 0
        assert ctx.meter.hash_probes == 0
        assert out == self._fresh_output(registry, ctx, sample_tweet)

    def test_distinct_keys_do_not_share_entries(
        self, memo_ctx, registry, sample_tweet
    ):
        ctx = memo_ctx
        us = dict(sample_tweet)
        fr = dict(sample_tweet, country="FR")
        out_us = self._invoke(registry, ctx, us)
        out_fr = self._invoke(registry, ctx, fr)
        ctx.refresh_batch()
        assert self._invoke(registry, ctx, us) == out_us
        assert self._invoke(registry, ctx, fr) == out_fr
        assert out_us[0]["safety_rating"] != out_fr[0]["safety_rating"]

    def test_version_bump_invalidates_at_batch_boundary(
        self, memo_ctx, registry, sample_tweet
    ):
        ctx = memo_ctx
        self._invoke(registry, ctx, sample_tweet)
        ctx.catalog["SafetyRatings"].upsert(
            {"country_code": sample_tweet["country"], "safety_rating": "1"}
        )
        ctx.refresh_batch()
        ctx.meter.reset()
        out = self._invoke(registry, ctx, sample_tweet)
        assert ctx.meter.memo_hits == 0  # stale entry displaced
        assert out[0]["safety_rating"] == ["1"]
        assert ctx.memo.stats()["version_mismatches"] >= 1

    def test_live_index_on_dep_bypasses_memo(
        self, memo_ctx, registry, sample_tweet
    ):
        """A B-tree on the probed field keeps per-probe freshness — the
        memo must step aside rather than mask live index lookups."""
        ctx = memo_ctx
        ctx.catalog["SafetyRatings"].create_index(
            "sr_cc", "country_code", IndexKind.BTREE
        )
        self._invoke(registry, ctx, sample_tweet)
        ctx.refresh_batch()
        ctx.meter.reset()
        self._invoke(registry, ctx, sample_tweet)
        assert ctx.meter.memo_hits == 0
        assert len(ctx.memo) == 0

    def test_no_memo_attached_means_no_counters(
        self, small_catalog, registry, sample_tweet
    ):
        ctx = EvaluationContext(small_catalog, functions=registry)
        assert ctx.memo is None
        self._invoke(registry, ctx, sample_tweet)
        ctx.refresh_batch()
        self._invoke(registry, ctx, sample_tweet)
        assert ctx.meter.memo_hits == 0
        assert ctx.meter.memo_reused_records == 0

    def test_registry_clears_cover_the_memo(self, registry):
        registry.enrichment_memo.configure(1 << 20)
        registry.enrichment_memo.put(("probe", 1, "us"), (("R", 1),), [], 0)
        registry.invalidate_plans()
        assert len(registry.enrichment_memo) == 0
        registry.enrichment_memo.put(("probe", 1, "us"), (("R", 1),), [], 0)
        registry.replace_sqlpp(
            "CREATE FUNCTION enrichTweetQ1(t) { SELECT t.* }"
        )
        assert len(registry.enrichment_memo) == 0
