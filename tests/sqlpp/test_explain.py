"""EXPLAIN: physical-plan descriptions."""

import pytest

from repro import AsterixLite


@pytest.fixture
def system():
    s = AsterixLite(num_nodes=3)
    s.execute(
        "CREATE TYPE T AS OPEN { id: int64 };"
        "CREATE DATASET Tweets(T) PRIMARY KEY id;"
    )
    return s


class TestExplain:
    def test_scan_plan(self, system):
        plan = system.explain("SELECT VALUE t.id FROM Tweets t")
        assert plan.startswith("hyracks:")
        assert "scan Tweets (3 partitions)" in plan
        assert plan.endswith("project value")

    def test_filter_group_plan(self, system):
        plan = system.explain(
            "SELECT t.country AS c, count(*) AS n FROM Tweets t "
            "WHERE t.id > 5 GROUP BY t.country"
        )
        assert "filter" in plan
        assert "hash group-by (1 key(s))" in plan

    def test_order_limit_plan(self, system):
        plan = system.explain(
            "SELECT VALUE t.id FROM Tweets t ORDER BY t.id LIMIT 3"
        )
        assert "sort (1 key(s))" in plan
        assert "limit" in plan

    def test_join_falls_to_interpreter(self, system):
        plan = system.explain(
            "SELECT VALUE [a.id, b.id] FROM Tweets a, Tweets b WHERE a.id = b.id"
        )
        assert plan.startswith("interpreter:")
        assert "join over [Tweets, Tweets]" in plan

    def test_let_assign_shown(self, system):
        plan = system.explain(
            "SELECT VALUE y FROM Tweets t LET y = t.id * 2"
        )
        assert "assign y" in plan

    def test_array_source(self, system):
        plan = system.explain("SELECT VALUE x FROM [1, 2] x")
        assert plan.startswith("interpreter:")

    def test_explain_rejects_ddl(self, system):
        from repro.errors import SqlppAnalysisError

        with pytest.raises(SqlppAnalysisError):
            system.explain("CREATE TYPE X AS OPEN { id: int64 }")

    def test_plan_matches_execution_strategy(self, system):
        from repro.sqlpp.parser import parse_expression

        compiled = system._compiler.compile(
            parse_expression("SELECT VALUE t FROM Tweets t")
        )
        assert compiled.plan.split(":")[0] == compiled.strategy
