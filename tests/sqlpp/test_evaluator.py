"""Expression and SELECT evaluation semantics."""

import pytest

from repro.adm import DateTime, Duration, open_type
from repro.adm.values import MISSING
from repro.errors import SqlppAnalysisError, SqlppEvaluationError
from repro.sqlpp import EvaluationContext, Evaluator, parse_expression
from repro.storage import Dataset


def make_eval(catalog=None, registry=None):
    return Evaluator(EvaluationContext(catalog or {}, functions=registry))


def run(text, bindings=None, catalog=None, registry=None):
    return make_eval(catalog, registry).evaluate_query(
        parse_expression(text), bindings or {}
    )


class TestScalarExpressions:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("1 + 2 * 3", 7),
            ("10 / 4", 2.5),
            ("10 % 3", 1),
            ("-(2 + 3)", -5),
            ('"a" + "b"', "ab"),
            ("1 < 2", True),
            ("2 <= 2", True),
            ('"a" != "b"', True),
            ("true AND false", False),
            ("true OR false", True),
            ("NOT false", True),
            ("2 IN [1, 2, 3]", True),
            ("5 NOT IN [1, 2]", True),
            ("[1, 2, 3][1]", 2),
            ("[1, 2, 3][-1]", 3),
            ('{"a": 1}.a', 1),
        ],
    )
    def test_expressions(self, text, expected):
        assert run(text) == expected

    def test_out_of_range_index_is_missing(self):
        assert run("[1][5]") is MISSING

    def test_field_of_non_object_is_missing(self):
        assert run("x.field", {"x": 42}) is MISSING

    def test_absent_field_is_missing(self):
        assert run("x.nope", {"x": {"a": 1}}) is MISSING

    def test_missing_propagates_through_comparison(self):
        assert run("x.nope = 1", {"x": {}}) is MISSING

    def test_null_propagates(self):
        assert run("x + 1", {"x": None}) is None

    def test_and_treats_unknown_as_false(self):
        assert run("x.nope AND true", {"x": {}}) is False

    def test_string_plus_number_raises(self):
        with pytest.raises(SqlppEvaluationError):
            run('"a" + 1')

    def test_unresolved_variable_raises(self):
        with pytest.raises(SqlppAnalysisError, match="unresolved variable"):
            run("nope")

    def test_datetime_plus_duration(self):
        bindings = {
            "t": DateTime.parse("2019-03-01T00:00:00Z"),
            "d": Duration.parse("P2M"),
        }
        result = run("t + d", bindings)
        assert result.isoformat().startswith("2019-05-01")

    def test_case_with_operand(self):
        assert run('CASE 1 = 1 WHEN true THEN "yes" ELSE "no" END') == "yes"

    def test_searched_case_first_match(self):
        assert run("CASE WHEN false THEN 1 WHEN true THEN 2 ELSE 3 END") == 2

    def test_case_no_match_yields_null(self):
        assert run("CASE 5 WHEN 1 THEN 1 END") is None

    def test_object_constructor_drops_missing(self):
        assert run('{"a": 1, "b": x.nope}', {"x": {}}) == {"a": 1}


class TestSelectWithoutFrom:
    def test_select_value(self):
        assert run("SELECT VALUE 1 + 1") == [2]

    def test_let_select_star_merge(self):
        result = run(
            'LET flag = "Red" SELECT t.*, flag',
            {"t": {"id": 1, "text": "x"}},
        )
        assert result == [{"id": 1, "text": "x", "flag": "Red"}]

    def test_where_false_gives_empty(self):
        assert run("SELECT VALUE 1 FROM [1] x WHERE false") == []


class TestSelectFrom:
    def test_iterate_array(self):
        assert run("SELECT VALUE x * 2 FROM [1, 2, 3] x") == [2, 4, 6]

    def test_where_filters(self):
        assert run("SELECT VALUE x FROM [1, 2, 3, 4] x WHERE x % 2 = 0") == [2, 4]

    def test_cross_product(self):
        got = run("SELECT a, b FROM [1, 2] a, [10, 20] b")
        assert len(got) == 4

    def test_join_condition(self):
        got = run(
            "SELECT a, b FROM [1, 2, 3] a, [2, 3, 4] b WHERE a = b"
        )
        assert got == [{"a": 2, "b": 2}, {"a": 3, "b": 3}]

    def test_order_by(self):
        got = run("SELECT VALUE x FROM [3, 1, 2] x ORDER BY x")
        assert got == [1, 2, 3]

    def test_order_by_desc(self):
        got = run("SELECT VALUE x FROM [3, 1, 2] x ORDER BY x DESC")
        assert got == [3, 2, 1]

    def test_limit(self):
        assert run("SELECT VALUE x FROM [5, 4, 3, 2, 1] x ORDER BY x LIMIT 2") == [1, 2]

    def test_limit_validation(self):
        with pytest.raises(SqlppEvaluationError):
            run("SELECT VALUE x FROM [1] x LIMIT -1")

    def test_distinct(self):
        assert run("SELECT DISTINCT VALUE x FROM [1, 2, 1, 3, 2] x") == [1, 2, 3]

    def test_projection_default_aliases(self):
        got = run("SELECT t.a, t.b FROM [{'a': 1, 'b': 2}] t")
        assert got == [{"a": 1, "b": 2}]

    def test_missing_projection_omitted(self):
        got = run("SELECT t.a, t.nope FROM [{'a': 1}] t")
        assert got == [{"a": 1}]

    def test_let_after_from_visible_in_where(self):
        got = run(
            "SELECT VALUE y FROM [1, 2, 3] x LET y = x * 10 WHERE y > 15"
        )
        assert got == [20, 30]

    def test_from_missing_source_is_empty(self):
        assert run("SELECT VALUE x FROM t.nope x", {"t": {}}) == []

    def test_non_iterable_source_raises(self):
        with pytest.raises(SqlppEvaluationError, match="not iterable"):
            run("SELECT VALUE x FROM t.num x", {"t": {"num": 5}})


class TestAggregation:
    ROWS = "[{'c': 'US', 'v': 1}, {'c': 'US', 'v': 3}, {'c': 'FR', 'v': 5}]"

    def test_implicit_single_group(self):
        got = run(f"SELECT sum(r.v) FROM {self.ROWS} r")
        assert got == [{"sum": 9}]

    def test_implicit_group_empty_input(self):
        got = run("SELECT count(*) AS n FROM [] r")
        assert got == [{"n": 0}]

    def test_group_by_counts(self):
        got = run(
            f"SELECT r.c AS c, count(*) AS n FROM {self.ROWS} r GROUP BY r.c"
        )
        assert sorted((g["c"], g["n"]) for g in got) == [("FR", 1), ("US", 2)]

    def test_group_key_reference_without_alias(self):
        got = run(f"SELECT r.c, sum(r.v) AS total FROM {self.ROWS} r GROUP BY r.c")
        assert sorted((g["c"], g["total"]) for g in got) == [("FR", 5), ("US", 4)]

    def test_group_by_alias_binding(self):
        got = run(
            f"SELECT cc, count(*) AS n FROM {self.ROWS} r GROUP BY r.c AS cc"
        )
        assert {g["cc"] for g in got} == {"US", "FR"}

    def test_order_by_aggregate(self):
        got = run(
            f"SELECT VALUE r.c FROM {self.ROWS} r GROUP BY r.c ORDER BY count(r) DESC"
        )
        assert got == ["US", "FR"]

    def test_aggregates_avg_min_max(self):
        got = run(
            f"SELECT avg(r.v) AS a, min(r.v) AS lo, max(r.v) AS hi FROM {self.ROWS} r"
        )
        assert got == [{"a": 3.0, "lo": 1, "hi": 5}]

    def test_count_ignores_null_and_missing(self):
        got = run("SELECT count(r.v) AS n FROM [{'v': 1}, {'v': null}, {}] r")
        assert got == [{"n": 1}]

    def test_sum_over_empty_group_is_null(self):
        got = run("SELECT sum(r.v) AS s FROM [] r")
        assert got == [{"s": None}]

    def test_array_form_outside_group(self):
        assert run("sum([1, 2, 3])") == 6
        assert run("count([1, 2])") == 2

    def test_array_form_requires_array(self):
        with pytest.raises(SqlppEvaluationError):
            run("sum(5)")


class TestSubqueries:
    def test_subquery_yields_array(self):
        got = run("LET xs = (SELECT VALUE y FROM [1, 2] y) SELECT VALUE xs")
        assert got == [[1, 2]]

    def test_exists(self):
        assert run("EXISTS(SELECT VALUE x FROM [1] x)") is True
        assert run("EXISTS(SELECT VALUE x FROM [] x)") is False

    def test_in_subquery(self):
        got = run("SELECT VALUE 2 IN (SELECT VALUE x FROM [1, 2] x)")
        assert got == [True]

    def test_correlated_subquery(self):
        got = run(
            "SELECT VALUE (SELECT VALUE y FROM [1, 2, 3] y WHERE y > x)"
            " FROM [1, 2] x"
        )
        assert got == [[2, 3], [3]]


class TestDatasetAccess:
    def test_from_dataset(self):
        ds = Dataset("D", open_type("T", id="int64"), "id")
        for i in range(5):
            ds.insert({"id": i})
        got = run("SELECT VALUE d.id FROM D d", catalog={"D": ds})
        assert sorted(got) == [0, 1, 2, 3, 4]

    def test_dataset_shadowed_by_binding(self):
        ds = Dataset("D", open_type("T", id="int64"), "id")
        ds.insert({"id": 1})
        got = run("SELECT VALUE d FROM D d", {"D": [9]}, catalog={"D": ds})
        assert got == [9]
