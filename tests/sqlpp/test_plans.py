"""Plan-layer tests: compile-once caching, invalidation, token stability.

The tentpole guarantee: per-record evaluation of an attached UDF performs
ZERO structural analysis (free_vars / split_conjuncts / join ordering)
after the first record of a feed, and plans are dropped the instant a
``replace_sqlpp`` UPSERT or a DDL change could make them stale.
"""

from __future__ import annotations

import gc

import pytest

import repro.sqlpp.evaluator as evaluator_module
import repro.sqlpp.plans as plans_module
from repro.core.system import AsterixLite
from repro.errors import IndexError_
from repro.ingestion.feed import AttachedFunction
from repro.ingestion.udf_operator import make_invoker
from repro.sqlpp import EvaluationContext, Evaluator, parse_function
from repro.sqlpp.plans import PlanCache
from repro.storage import IndexKind


def _counting(target, counter, key):
    def wrapper(*args, **kwargs):
        counter[key] += 1
        return target(*args, **kwargs)

    return wrapper


def test_zero_per_record_analysis_after_warmup(
    small_catalog, registry, sample_tweet, monkeypatch
):
    """After the first record, the hot loop never re-analyzes the AST."""
    ctx = EvaluationContext(small_catalog, functions=registry)
    invoker = make_invoker(
        [AttachedFunction("enrichTweetQ1"), AttachedFunction("enrichTweetQ5")],
        registry,
    )
    invoker(sample_tweet, ctx)  # warm-up: plans are built here

    counter = {"free_vars": 0, "split_conjuncts": 0, "order_terms": 0}
    monkeypatch.setattr(
        plans_module,
        "free_vars",
        _counting(plans_module.free_vars, counter, "free_vars"),
    )
    monkeypatch.setattr(
        evaluator_module,
        "free_vars",
        _counting(evaluator_module.free_vars, counter, "free_vars"),
    )
    monkeypatch.setattr(
        plans_module,
        "split_conjuncts",
        _counting(plans_module.split_conjuncts, counter, "split_conjuncts"),
    )
    monkeypatch.setattr(
        evaluator_module,
        "split_conjuncts",
        _counting(evaluator_module.split_conjuncts, counter, "split_conjuncts"),
    )
    monkeypatch.setattr(
        plans_module,
        "order_terms",
        _counting(plans_module.order_terms, counter, "order_terms"),
    )
    monkeypatch.setattr(
        Evaluator,
        "_order_terms",
        _counting(Evaluator._order_terms, counter, "order_terms"),
    )

    for batch in range(3):
        for i in range(10):
            tweet = dict(sample_tweet, id=100 * batch + i)
            invoker(tweet, ctx)
        ctx.refresh_batch()  # new generation must NOT trigger replanning

    assert counter == {"free_vars": 0, "split_conjuncts": 0, "order_terms": 0}


def test_plan_cache_reports_hits_after_first_record(
    small_catalog, registry, sample_tweet
):
    ctx = EvaluationContext(small_catalog, functions=registry)
    invoker = make_invoker([AttachedFunction("enrichTweetQ1")], registry)
    assert ctx.plan_cache is registry.plan_cache

    invoker(sample_tweet, ctx)
    first = registry.plan_cache.stats()
    assert first["plans"] > 0
    assert first["misses"] == first["plans"]

    invoker(dict(sample_tweet, id=2), ctx)
    second = registry.plan_cache.stats()
    assert second["plans"] == first["plans"]  # nothing new compiled
    assert second["hits"] > first["hits"]


def test_replace_sqlpp_mid_feed_uses_new_body_next_batch(
    small_catalog, registry, sample_tweet
):
    """§3.2 instant updates: an UPSERT drops stale plans immediately."""
    ctx = EvaluationContext(small_catalog, functions=registry)
    invoker = make_invoker([AttachedFunction("enrichTweetQ1")], registry)

    before = invoker(sample_tweet, ctx)
    assert before[0]["safety_rating"] == ["3"]  # US rating from the catalog

    registry.replace_sqlpp(
        parse_function(
            """
            CREATE FUNCTION enrichTweetQ1(t) {
                LET safety_rating = "patched"
                SELECT t.*, safety_rating
            }
            """
        )
    )
    assert registry.plan_cache.stats()["invalidations"] >= 1

    ctx.refresh_batch()  # next batch of the running feed
    after = invoker(dict(sample_tweet, id=2), ctx)
    assert after[0]["safety_rating"] == "patched"


def test_dropped_and_recreated_index_flips_access_path(
    small_catalog, registry, sample_tweet
):
    """Physical access is decided per batch, not baked into the plan."""
    dataset = small_catalog["SafetyRatings"]
    invoker = make_invoker([AttachedFunction("enrichTweetQ1")], registry)

    def run_batch(ctx):
        ctx.refresh_batch()
        invoker(dict(sample_tweet, id=ctx.generation), ctx)
        return ctx

    ctx = EvaluationContext(small_catalog, functions=registry)
    run_batch(ctx)
    assert ctx.meter.hash_probes > 0  # no index yet: batch hash join
    assert ctx.meter.btree_probes == 0

    dataset.create_index("sr_cc", "country_code", IndexKind.BTREE)
    before = ctx.meter.btree_probes
    run_batch(ctx)
    assert ctx.meter.btree_probes > before  # flipped to live B-tree probes

    dataset.drop_index("sr_cc")
    hash_before = ctx.meter.hash_probes
    run_batch(ctx)
    assert ctx.meter.hash_probes > hash_before  # back to the hash build

    # the flip needed no replanning: index choice is consulted at runtime
    assert registry.plan_cache.stats()["invalidations"] == 0


def test_plan_tokens_survive_gc_and_invalidation():
    """Tokens are monotonic — never recycled, even after id() reuse."""
    cache = PlanCache()

    def make_block():
        return parse_function(
            "CREATE FUNCTION f(t) { SELECT VALUE t.x FROM [t] t }"
        ).body

    block = make_block()
    token = cache.token_for(block)
    assert cache.token_for(block) == token  # stable across calls

    del block
    gc.collect()
    fresh_tokens = {cache.token_for(make_block()) for _ in range(5)}
    assert token not in fresh_tokens  # id() reuse cannot collide

    cache.invalidate()
    after = cache.token_for(make_block())
    assert after > token  # the counter is never reset


def test_dataset_drop_index_unknown_name():
    system = AsterixLite(num_nodes=1)
    system.execute(
        """
        CREATE TYPE RT AS OPEN { rid: int64 };
        CREATE DATASET Ref(RT) PRIMARY KEY rid;
        """
    )
    with pytest.raises(IndexError_):
        system.drop_index("Ref", "nope")


def test_system_ddl_invalidates_and_exposes_stats(sample_tweet):
    system = AsterixLite(num_nodes=1)
    system.execute(
        """
        CREATE TYPE RT AS OPEN { country_code: string };
        CREATE DATASET Ratings(RT) PRIMARY KEY country_code;
        """
    )
    system.insert("Ratings", [{"country_code": "US", "safety_rating": "3"}])
    system.create_function(
        """
        CREATE FUNCTION rate(t) {
            LET r = (SELECT VALUE s.safety_rating FROM Ratings s
                     WHERE s.country_code = t.country)[0]
            SELECT t.*, r
        }
        """
    )
    ctx = system.evaluation_context()
    out = system.registry.invoke("rate", [sample_tweet], ctx)
    assert out[0]["r"] == "3"

    stats = system.plan_cache_stats()
    assert stats["plans"] > 0

    invalidations = stats["invalidations"]
    system.create_index("r_cc", "Ratings", "country_code")
    assert system.plan_cache_stats()["invalidations"] > invalidations
    system.drop_index("Ratings", "r_cc")
    assert system.plan_cache_stats()["plans"] == 0  # dropped, will replan
