"""Semantic analysis: free variables, statefulness, conjuncts, paths."""

import pytest

from repro.sqlpp import free_vars, is_stateful, parse_expression, split_conjuncts
from repro.sqlpp.analysis import (
    contains_aggregate,
    dataset_references,
    field_path_of,
    references_only,
)
from repro.sqlpp.parser import parse_function
from repro.udf.library import SQLPP_UDFS


class TestFreeVars:
    def test_simple_var(self):
        assert free_vars(parse_expression("x + y")) == {"x", "y"}

    def test_bound_excluded(self):
        assert free_vars(parse_expression("x + y"), {"x"}) == {"y"}

    def test_from_binds(self):
        e = parse_expression("SELECT VALUE t.x FROM D t")
        assert free_vars(e) == {"D"}

    def test_let_binds_sequentially(self):
        e = parse_expression("LET a = b, c = a SELECT VALUE c")
        assert free_vars(e) == {"b"}

    def test_subquery_scoping(self):
        e = parse_expression(
            "SELECT VALUE (SELECT VALUE s.w FROM S s WHERE s.c = t.c) FROM T t"
        )
        assert free_vars(e) == {"S", "T"}

    def test_group_alias_binds_order_by(self):
        e = parse_expression(
            "SELECT VALUE cc FROM D d GROUP BY d.c AS cc ORDER BY cc"
        )
        assert free_vars(e) == {"D"}

    def test_function_args_counted(self):
        assert free_vars(parse_expression("f(x, g(y))")) == {"x", "y"}

    def test_case_branches_counted(self):
        e = parse_expression("CASE a WHEN b THEN c ELSE d END")
        assert free_vars(e) == {"a", "b", "c", "d"}


class TestStatefulness:
    def test_stateless_udf(self):
        fn = parse_function(SQLPP_UDFS["us_tweet_safety_check"])
        assert not is_stateful(fn, {"SensitiveWords", "SafetyRatings"})

    @pytest.mark.parametrize(
        "key",
        [
            "tweet_safety_check",
            "safety_rating",
            "religious_population",
            "largest_religions",
            "fuzzy_suspects",
            "nearby_monuments",
            "suspicious_names",
            "tweet_context",
            "worrisome_tweets",
            "high_risk_tweet_check",
        ],
    )
    def test_stateful_udfs(self, key):
        fn = parse_function(SQLPP_UDFS[key])
        catalog = {
            "SensitiveWords",
            "SafetyRatings",
            "ReligiousPopulations",
            "SensitiveNamesDataset",
            "monumentList",
            "Facilities",
            "ReligiousBuildings",
            "SuspiciousNames",
            "AverageIncomes",
            "DistrictAreas",
            "Persons",
            "AttackEvents",
        }
        assert is_stateful(fn, catalog)

    def test_dataset_references(self):
        fn = parse_function(SQLPP_UDFS["tweet_context"])
        refs = dataset_references(
            fn.body, {"AverageIncomes", "DistrictAreas", "Facilities", "Persons", "Other"}
        )
        assert refs == {"AverageIncomes", "DistrictAreas", "Facilities", "Persons"}


class TestConjuncts:
    def test_flattens_nested_ands(self):
        e = parse_expression("a AND b AND (c AND d)")
        assert len(split_conjuncts(e)) == 4

    def test_or_not_split(self):
        e = parse_expression("a OR b")
        assert len(split_conjuncts(e)) == 1

    def test_none(self):
        assert split_conjuncts(None) == []


class TestPathMatching:
    def test_field_path_of_simple(self):
        assert field_path_of(parse_expression("m.loc"), "m") == "loc"

    def test_field_path_of_nested(self):
        assert field_path_of(parse_expression("t.user.name"), "t") == "user.name"

    def test_field_path_wrong_root(self):
        assert field_path_of(parse_expression("x.loc"), "m") is None

    def test_bare_var_is_not_a_path(self):
        assert field_path_of(parse_expression("m"), "m") is None

    def test_references_only(self):
        e = parse_expression("a.x + b.y")
        assert references_only(e, {"a", "b"})
        assert not references_only(e, {"a"})


class TestAggregateDetection:
    def test_top_level_aggregate(self):
        assert contains_aggregate(parse_expression("sum(r.v)"))

    def test_nested_in_subquery_not_counted(self):
        e = parse_expression("(SELECT sum(r.v) FROM D r)")
        assert not contains_aggregate(e)

    def test_inside_case(self):
        e = parse_expression("CASE WHEN count(*) > 1 THEN 1 ELSE 0 END")
        assert contains_aggregate(e)

    def test_plain_call_not_aggregate(self):
        assert not contains_aggregate(parse_expression('contains(t.x, "a")'))
