"""Planned vs. interpreted parity over the eight paper UDFs.

The plan layer is a pure wall-clock optimization: for every UDF, every
enriched record AND every WorkMeter counter (on all three meters) must be
identical between ``use_plans=True`` and ``use_plans=False``.
"""

from __future__ import annotations

import pytest

from repro.hyracks.cost import WorkMeter
from repro.sqlpp import EvaluationContext

PAPER_UDFS = [
    "enrichTweetQ1",
    "enrichTweetQ2",
    "enrichTweetQ3",
    "annotateTweetQ4",
    "enrichTweetQ5",
    "enrichTweetQ5Naive",
    "enrichTweetQ6",
    "enrichTweetQ7",
    "enrichTweetQ8",
]


def _tweet_sample(sample_tweet):
    """A fixed mini-stream exercising hits, misses, and absent fields."""
    variants = [
        {},
        {"country": "FR", "latitude": 8.4, "longitude": 8.9},
        {"country": "DE", "user": {"screen_name": "jon_smyth", "name": "name3"}},
        {"country": "Atlantis", "latitude": 55.0, "longitude": 55.0},
        {"latitude": 0.2, "longitude": 9.7, "user": {"screen_name": "x", "name": "y"}},
    ]
    return [
        dict(sample_tweet, id=index, **overrides)
        for index, overrides in enumerate(variants)
    ]


def _run(catalog, registry, fn_name, tweets, use_plans):
    ctx = EvaluationContext(catalog, functions=registry, use_plans=use_plans)
    outputs = []
    for position, tweet in enumerate(tweets):
        if position == 3:  # cross a batch boundary mid-stream
            ctx.refresh_batch()
        outputs.append(registry.invoke(fn_name, [tweet], ctx))
    return outputs, ctx


@pytest.mark.parametrize("fn_name", PAPER_UDFS)
def test_planned_matches_interpreted(
    small_catalog, registry, sample_tweet, fn_name
):
    tweets = _tweet_sample(sample_tweet)
    planned, planned_ctx = _run(small_catalog, registry, fn_name, tweets, True)
    interpreted, interp_ctx = _run(small_catalog, registry, fn_name, tweets, False)

    assert planned == interpreted

    for planned_meter, interp_meter in (
        (planned_ctx.meter, interp_ctx.meter),
        (planned_ctx.shared_meter, interp_ctx.shared_meter),
        (planned_ctx.replicated_meter, interp_ctx.replicated_meter),
    ):
        for counter in WorkMeter._COUNTERS:
            assert getattr(planned_meter, counter) == getattr(
                interp_meter, counter
            ), f"{fn_name}: {counter} diverged"
