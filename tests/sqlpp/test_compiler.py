"""Query compiler: hyracks-vs-interpreter differential tests."""

import pytest

from repro.adm import open_type
from repro.cluster import Cluster
from repro.sqlpp.compiler import QueryCompiler, run_insert
from repro.sqlpp.evaluator import EvaluationContext, Evaluator
from repro.sqlpp.parser import parse_expression
from repro.storage import Dataset


@pytest.fixture
def setup():
    catalog = {}
    ds = Dataset("Tweets", open_type("T", id="int64"), "id", num_partitions=3,
                 validate=False)
    def country_of(i):
        # skewed group sizes (30/22/15/13/10) so ORDER BY count() has no ties
        for bucket, threshold in enumerate([30, 52, 67, 80, 90]):
            if i < threshold:
                return f"C{bucket}"

    for i in range(90):
        ds.insert(
            {"id": i, "country": country_of(i), "score": i % 7, "text": f"t{i}"}
        )
    catalog["Tweets"] = ds
    cluster = Cluster(3)
    return cluster, catalog, QueryCompiler(cluster, catalog)


def interpret(catalog, text):
    result = Evaluator(EvaluationContext(catalog)).evaluate_query(
        parse_expression(text)
    )
    return result if isinstance(result, list) else [result]


def canonical(rows):
    return sorted(repr(r) for r in rows)


DIFFERENTIAL_QUERIES = [
    "SELECT VALUE t.id FROM Tweets t",
    "SELECT VALUE t.id FROM Tweets t WHERE t.score > 3",
    "SELECT t.id, t.country FROM Tweets t WHERE t.country = 'C2'",
    "SELECT t.country AS country, count(*) AS num FROM Tweets t GROUP BY t.country",
    "SELECT t.country, sum(t.score) AS total FROM Tweets t GROUP BY t.country",
    "SELECT VALUE t.id FROM Tweets t ORDER BY t.id DESC LIMIT 5",
    "SELECT VALUE t.country FROM Tweets t GROUP BY t.country ORDER BY count(t) DESC LIMIT 2",
    "SELECT VALUE y FROM Tweets t LET y = t.score * 10 WHERE y >= 40 ORDER BY y LIMIT 7",
]


class TestDifferential:
    @pytest.mark.parametrize("query", DIFFERENTIAL_QUERIES)
    def test_hyracks_matches_interpreter(self, setup, query):
        cluster, catalog, compiler = setup
        compiled = compiler.compile(parse_expression(query))
        got = compiled.execute()
        expected = interpret(catalog, query)
        if "ORDER BY" in query:
            assert got == expected
        else:
            assert canonical(got) == canonical(expected)


class TestStrategySelection:
    def test_single_dataset_select_compiles_to_hyracks(self, setup):
        _cluster, _catalog, compiler = setup
        compiled = compiler.compile(
            parse_expression("SELECT VALUE t.id FROM Tweets t")
        )
        assert compiled.strategy == "hyracks"

    def test_grouped_compiles_to_hyracks(self, setup):
        _c, _cat, compiler = setup
        compiled = compiler.compile(
            parse_expression(
                "SELECT t.country, count(*) AS n FROM Tweets t GROUP BY t.country"
            )
        )
        assert compiled.strategy == "hyracks"

    def test_join_falls_back_to_interpreter(self, setup):
        _c, _cat, compiler = setup
        compiled = compiler.compile(
            parse_expression("SELECT VALUE [a.id, b.id] FROM Tweets a, Tweets b "
                             "WHERE a.id = b.id AND a.id < 3")
        )
        assert compiled.strategy == "interpreter"
        assert len(compiled.execute()) == 3

    def test_global_aggregate_falls_back(self, setup):
        _c, _cat, compiler = setup
        compiled = compiler.compile(
            parse_expression("SELECT count(*) AS n FROM Tweets t")
        )
        assert compiled.strategy == "interpreter"
        assert compiled.execute() == [{"n": 90}]

    def test_array_source_falls_back(self, setup):
        _c, _cat, compiler = setup
        compiled = compiler.compile(parse_expression("SELECT VALUE x FROM [1, 2] x"))
        assert compiled.strategy == "interpreter"
        assert compiled.execute() == [1, 2]


class TestRunInsert:
    def test_insert_job_routes_and_counts(self, setup):
        cluster, catalog, _compiler = setup
        target = Dataset("Out", open_type("T", id="int64"), "id", num_partitions=3,
                         validate=False)
        catalog["Out"] = target
        result = run_insert(cluster, catalog, "Out", [{"id": i} for i in range(20)])
        assert result.records_out == 20
        assert len(target) == 20

    def test_unknown_dataset_rejected(self, setup):
        cluster, catalog, _compiler = setup
        from repro.errors import SqlppAnalysisError

        with pytest.raises(SqlppAnalysisError):
            run_insert(cluster, catalog, "Nope", [])
