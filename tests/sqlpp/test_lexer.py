"""Tokenizer behaviour."""

import pytest

from repro.errors import SqlppSyntaxError
from repro.sqlpp.lexer import tokenize


def kinds(text):
    return [(t.kind, t.text) for t in tokenize(text)[:-1]]  # drop EOF


class TestBasics:
    def test_keywords_case_insensitive(self):
        assert kinds("SELECT select SeLeCt") == [("keyword", "select")] * 3

    def test_identifiers(self):
        assert kinds("Tweets t_1")[0] == ("ident", "Tweets")

    def test_numbers(self):
        assert kinds("42 3.14 1e5") == [
            ("number", "42"),
            ("number", "3.14"),
            ("number", "1e5"),
        ]

    def test_number_then_path_dot(self):
        # "(...)[0].x" style: dot after int must not merge into the number
        toks = kinds("1.x")
        assert toks == [("number", "1"), ("punct", "."), ("ident", "x")]

    def test_strings_both_quotes(self):
        assert kinds('"abc" \'def\'') == [("string", "abc"), ("string", "def")]

    def test_string_escapes(self):
        assert kinds(r'"a\"b\n"') == [("string", 'a"b\n')]

    def test_unterminated_string(self):
        with pytest.raises(SqlppSyntaxError, match="unterminated string"):
            tokenize('"abc')

    def test_multi_char_punct(self):
        assert kinds("<= >= !=") == [
            ("punct", "<="),
            ("punct", ">="),
            ("punct", "!="),
        ]

    def test_line_comments_skipped(self):
        assert kinds("a -- comment\n b") == [("ident", "a"), ("ident", "b")]

    def test_block_comments_skipped(self):
        assert kinds("a /* x \n y */ b") == [("ident", "a"), ("ident", "b")]

    def test_hint_comment_tokenized(self):
        toks = kinds("FROM m /*+ no-index */")
        assert ("hint", "no-index") in toks

    def test_unterminated_comment(self):
        with pytest.raises(SqlppSyntaxError):
            tokenize("/* never ends")

    def test_backtick_identifiers(self):
        assert kinds("`select`") == [("ident", "select")]

    def test_unexpected_character(self):
        with pytest.raises(SqlppSyntaxError, match="unexpected character"):
            tokenize("a @ b")

    def test_positions_tracked(self):
        tok = tokenize("a\n  b")[1]
        assert (tok.line, tok.column) == (2, 3)

    def test_library_call_tokens(self):
        assert kinds("testlib#removeSpecial") == [
            ("ident", "testlib"),
            ("punct", "#"),
            ("ident", "removeSpecial"),
        ]
