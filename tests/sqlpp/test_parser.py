"""Parser: expressions, select blocks, statements, the paper's queries."""

import pytest

from repro.errors import SqlppSyntaxError
from repro.sqlpp.ast import (
    BinaryOp,
    Call,
    CaseExpr,
    Exists,
    FieldAccess,
    IndexAccess,
    Literal,
    ObjectConstructor,
    SelectBlock,
    Star,
    Subquery,
    UnaryOp,
    VarRef,
)
from repro.sqlpp.parser import (
    parse_expression,
    parse_function,
    parse_statement,
    parse_statements,
)
from repro.sqlpp.statements import (
    ConnectFeed,
    CreateDataset,
    CreateFeed,
    CreateIndex,
    CreateType,
    InsertStatement,
    QueryStatement,
    StartFeed,
)
from repro.udf.library import SQLPP_UDFS


class TestExpressions:
    def test_precedence_and_over_or(self):
        e = parse_expression("a OR b AND c")
        assert isinstance(e, BinaryOp) and e.op == "or"
        assert isinstance(e.right, BinaryOp) and e.right.op == "and"

    def test_precedence_arithmetic(self):
        e = parse_expression("1 + 2 * 3")
        assert e.op == "+" and e.right.op == "*"

    def test_comparison(self):
        e = parse_expression("a.x <= 5")
        assert e.op == "<=" and isinstance(e.left, FieldAccess)

    def test_not_unary(self):
        e = parse_expression("NOT a")
        assert isinstance(e, UnaryOp) and e.op == "not"

    def test_negative_number(self):
        e = parse_expression("-5")
        assert isinstance(e, UnaryOp) and e.operand == Literal(5)

    def test_path_chain(self):
        e = parse_expression("x.user.screen_name")
        assert isinstance(e, FieldAccess) and e.field == "screen_name"
        assert e.base.field == "user"

    def test_index_access(self):
        e = parse_expression("arr[0]")
        assert isinstance(e, IndexAccess) and e.index == Literal(0)

    def test_subquery_index_access(self):
        e = parse_expression("(SELECT VALUE x FROM D x)[0]")
        assert isinstance(e, IndexAccess) and isinstance(e.base, Subquery)

    def test_function_call(self):
        e = parse_expression('contains(t.text, "bomb")')
        assert isinstance(e, Call) and e.name == "contains" and len(e.args) == 2

    def test_library_call(self):
        e = parse_expression("testlib#removeSpecial(x)")
        assert e.library == "testlib" and e.name == "removeSpecial"
        assert e.qualified_name == "testlib#removeSpecial"

    def test_count_star(self):
        e = parse_expression("count(*)")
        assert isinstance(e.args[0], Star)

    def test_in_operator(self):
        e = parse_expression("a IN [1, 2]")
        assert e.op == "in"

    def test_not_in(self):
        e = parse_expression("a NOT IN [1]")
        assert e.op == "not_in"

    def test_exists(self):
        e = parse_expression("EXISTS(SELECT VALUE 1)")
        assert isinstance(e, Exists)

    def test_case_with_operand(self):
        e = parse_expression('CASE x WHEN true THEN "a" ELSE "b" END')
        assert isinstance(e, CaseExpr) and e.operand is not None

    def test_searched_case(self):
        e = parse_expression("CASE WHEN x > 1 THEN 1 WHEN x > 0 THEN 2 END")
        assert e.operand is None and len(e.whens) == 2 and e.default is None

    def test_case_requires_when(self):
        with pytest.raises(SqlppSyntaxError):
            parse_expression("CASE x END")

    def test_object_constructor(self):
        e = parse_expression('{"id": 1, "nested": {"a": true}}')
        assert isinstance(e, ObjectConstructor)
        assert e.fields[0][0] == "id"

    def test_missing_and_null_literals(self):
        from repro.sqlpp.ast import MissingLiteral

        assert parse_expression("null") == Literal(None)
        assert isinstance(parse_expression("missing"), MissingLiteral)

    def test_trailing_input_rejected(self):
        with pytest.raises(SqlppSyntaxError, match="trailing"):
            parse_expression("1 2")


class TestSelectBlocks:
    def test_select_value(self):
        block = parse_expression("SELECT VALUE t.x FROM D t")
        assert isinstance(block, SelectBlock)
        assert block.select_value is not None
        assert block.from_terms[0].var == "t"

    def test_projection_aliases(self):
        block = parse_expression(
            "SELECT f.ft FacilityType, count(*) AS Cnt FROM F f"
        )
        assert block.projections[0].alias == "FacilityType"
        assert block.projections[1].alias == "Cnt"

    def test_star_projection(self):
        block = parse_expression("SELECT t.*, flag FROM D t")
        assert isinstance(block.projections[0].expr, Star)
        assert isinstance(block.projections[1].expr, VarRef)

    def test_from_comma_join(self):
        block = parse_expression("SELECT a.x FROM A a, B b WHERE a.k = b.k")
        assert [t.var for t in block.from_terms] == ["a", "b"]

    def test_let_before_select(self):
        block = parse_expression("LET y = 1 SELECT VALUE y")
        assert block.lets[0].var == "y"

    def test_let_after_from(self):
        block = parse_expression("SELECT VALUE y FROM D t LET y = t.x + 1")
        assert block.post_lets[0].var == "y"

    def test_multiple_lets_comma(self):
        block = parse_expression("LET a = 1, b = 2 SELECT VALUE a + b")
        assert [l.var for l in block.lets] == ["a", "b"]

    def test_group_by_with_alias(self):
        block = parse_expression(
            "SELECT ethnicity, count(*) AS n FROM P p GROUP BY p.ethnicity AS ethnicity"
        )
        assert block.group_keys[0].alias == "ethnicity"

    def test_order_by_desc_and_limit(self):
        block = parse_expression(
            "SELECT VALUE r.n FROM R r ORDER BY r.population DESC, r.n LIMIT 3"
        )
        assert block.order_items[0].descending
        assert not block.order_items[1].descending
        assert block.limit == Literal(3)

    def test_distinct(self):
        block = parse_expression("SELECT DISTINCT t.x FROM D t")
        assert block.distinct

    def test_from_hint_captured(self):
        block = parse_expression(
            "SELECT VALUE m.id FROM monumentList /*+ no-index */ m"
        )
        assert "no-index" in block.from_terms[0].hints

    def test_where_clause(self):
        block = parse_expression("SELECT VALUE t FROM D t WHERE t.x = 1 AND t.y = 2")
        assert isinstance(block.where, BinaryOp)

    def test_from_without_variable_defaults_to_name(self):
        block = parse_expression("SELECT VALUE Tweets FROM Tweets WHERE true")
        assert block.from_terms[0].var == "Tweets"


class TestFunctions:
    def test_parse_function_definition(self):
        fn = parse_function(
            "CREATE FUNCTION f(a, b) { SELECT VALUE a + b }"
        )
        assert fn.name == "f" and fn.params == ["a", "b"]

    @pytest.mark.parametrize("key", sorted(SQLPP_UDFS))
    def test_all_paper_udfs_parse(self, key):
        fn = parse_function(SQLPP_UDFS[key])
        assert fn.name and len(fn.params) == 1


class TestStatements:
    def test_create_type(self):
        stmt = parse_statement(
            "CREATE TYPE TweetType AS OPEN { id: int64, text: string }"
        )
        assert isinstance(stmt, CreateType)
        assert stmt.fields == {"id": "int64", "text": "string"}
        assert stmt.is_open

    def test_create_closed_type(self):
        stmt = parse_statement("CREATE TYPE T AS CLOSED { id: int64 }")
        assert not stmt.is_open

    def test_create_dataset(self):
        stmt = parse_statement("CREATE DATASET Tweets(TweetType) PRIMARY KEY id")
        assert isinstance(stmt, CreateDataset)
        assert (stmt.name, stmt.type_name, stmt.primary_key) == (
            "Tweets",
            "TweetType",
            "id",
        )

    def test_create_index(self):
        stmt = parse_statement(
            "CREATE INDEX monLoc ON monumentList(monument_location) TYPE RTREE"
        )
        assert isinstance(stmt, CreateIndex) and stmt.index_type == "rtree"

    def test_create_feed(self):
        stmt = parse_statement(
            'CREATE FEED TweetFeed WITH { "type-name": "TweetType", "format": "JSON" }'
        )
        assert isinstance(stmt, CreateFeed)
        assert stmt.config["type-name"] == "TweetType"

    def test_connect_feed_with_function(self):
        stmt = parse_statement(
            "CONNECT FEED TweetFeed TO DATASET EnrichedTweets "
            "APPLY FUNCTION USTweetSafetyCheck"
        )
        assert isinstance(stmt, ConnectFeed)
        assert stmt.apply_functions == ["USTweetSafetyCheck"]

    def test_start_feed(self):
        assert isinstance(parse_statement("START FEED TweetFeed"), StartFeed)

    def test_insert_statement(self):
        stmt = parse_statement(
            'INSERT INTO Tweets ([{"id": 0, "text": "Let there be light"}])'
        )
        assert isinstance(stmt, InsertStatement) and not stmt.upsert

    def test_upsert_statement(self):
        stmt = parse_statement("UPSERT INTO D (SELECT VALUE t FROM S t)")
        assert stmt.upsert

    def test_query_statement(self):
        stmt = parse_statement("SELECT VALUE 1")
        assert isinstance(stmt, QueryStatement)

    def test_multiple_statements(self):
        stmts = parse_statements(
            "CREATE TYPE T AS OPEN { id: int64 };"
            "CREATE DATASET D(T) PRIMARY KEY id;"
        )
        assert len(stmts) == 2

    def test_paper_figure_9_analytical_query(self):
        stmt = parse_statement(
            """
            SELECT tweet.country Country, count(tweet) Num
            FROM Tweets tweet
            LET enrichedTweet = tweetSafetyCheck(tweet)[0]
            WHERE enrichedTweet.safety_check_flag = "Red"
            GROUP BY tweet.country
            """
        )
        block = stmt.query
        assert block.post_lets[0].var == "enrichedTweet"
        assert len(block.group_keys) == 1

    def test_bad_statement_rejected(self):
        with pytest.raises(SqlppSyntaxError):
            parse_statement("DROP DATASET D")
