"""Facade-level statement handling and error paths."""

import pytest

from repro import AsterixLite
from repro.errors import FeedStateError, SqlppAnalysisError, SqlppSyntaxError


@pytest.fixture
def system():
    s = AsterixLite(num_nodes=2)
    s.execute(
        "CREATE TYPE T AS OPEN { id: int64 };"
        "CREATE DATASET D(T) PRIMARY KEY id;"
    )
    return s


class TestFacadeErrors:
    def test_query_requires_single_select(self, system):
        with pytest.raises(SqlppAnalysisError, match="exactly one SELECT"):
            system.query("CREATE TYPE X AS OPEN { id: int64 }")

    def test_unknown_dataset_query(self, system):
        with pytest.raises(SqlppAnalysisError, match="unresolved variable"):
            system.query("SELECT VALUE x FROM Nope x")

    def test_insert_into_unknown_dataset(self, system):
        with pytest.raises(SqlppAnalysisError, match="unknown dataset"):
            system.insert("Nope", [{"id": 1}])

    def test_syntax_error_has_location(self, system):
        with pytest.raises(SqlppSyntaxError) as info:
            system.execute("SELECT FROM WHERE")
        assert info.value.line is not None

    def test_duplicate_feed_rejected(self, system):
        system.create_feed("F")
        with pytest.raises(FeedStateError):
            system.create_feed("F")

    def test_connect_unknown_feed(self, system):
        with pytest.raises(FeedStateError, match="unknown feed"):
            system.connect_feed("Ghost", "D")

    def test_connect_unknown_dataset(self, system):
        system.create_feed("F")
        with pytest.raises(SqlppAnalysisError, match="unknown dataset"):
            system.connect_feed("F", "Ghost")


class TestFacadeBehaviour:
    def test_upsert_via_facade(self, system):
        system.insert("D", [{"id": 1, "v": "a"}])
        system.upsert("D", [{"id": 1, "v": "b"}])
        assert system.catalog["D"].get(1)["v"] == "b"

    def test_execute_returns_last_result(self, system):
        result = system.execute(
            "INSERT INTO D ([{'id': 9}]); SELECT VALUE d.id FROM D d"
        )
        assert result == [9]

    def test_programmatic_type_fields(self, system):
        system.create_type("Geo", {"id": "int64", "loc": "point?"})
        system.create_dataset("Places", "Geo", "id")
        from repro.adm import Point

        system.insert("Places", [{"id": 1, "loc": Point(1, 2)}])
        assert len(system.catalog["Places"]) == 1

    def test_create_index_through_execute(self, system):
        system.insert("D", [{"id": 1, "score": 10}])
        system.execute("CREATE INDEX byScore ON D(score) TYPE BTREE")
        got = list(system.catalog["D"].index_probe_equal("byScore", 10))
        assert [r["id"] for r in got] == [1]

    def test_evaluator_helper(self, system):
        system.insert("D", [{"id": 1}])
        evaluator = system.evaluator()
        from repro.sqlpp import parse_expression

        assert evaluator.evaluate_query(
            parse_expression("SELECT VALUE d.id FROM D d")
        ) == [1]

    def test_multi_statement_script(self, system):
        system.execute(
            """
            CREATE TYPE U AS OPEN { uid: int64 };
            CREATE DATASET Users(U) PRIMARY KEY uid;
            INSERT INTO Users ([{"uid": 1}, {"uid": 2}]);
            """
        )
        assert len(system.catalog["Users"]) == 2

    def test_default_partitions_match_nodes(self):
        s = AsterixLite(num_nodes=4)
        s.execute("CREATE TYPE T AS OPEN { id: int64 };")
        ds = s.create_dataset("D", "T", "id")
        assert ds.num_partitions == 4


class TestDeleteStatement:
    @pytest.fixture
    def loaded(self, system):
        system.insert("D", [{"id": i, "v": i % 3} for i in range(30)])
        return system

    def test_delete_where(self, loaded):
        assert loaded.execute("DELETE FROM D d WHERE d.v = 1") == 10
        assert len(loaded.catalog["D"]) == 20
        assert loaded.query("SELECT VALUE count(d) FROM D d WHERE d.v = 1") == [0]

    def test_delete_all(self, loaded):
        assert loaded.execute("DELETE FROM D") == 30
        assert len(loaded.catalog["D"]) == 0

    def test_delete_nothing_matches(self, loaded):
        assert loaded.execute("DELETE FROM D d WHERE d.v = 99") == 0
        assert len(loaded.catalog["D"]) == 30

    def test_delete_maintains_indexes(self, loaded):
        loaded.execute("CREATE INDEX byV ON D(v)")
        loaded.execute("DELETE FROM D d WHERE d.v = 0")
        assert list(loaded.catalog["D"].index_probe_equal("byV", 0)) == []
        assert len(list(loaded.catalog["D"].index_probe_equal("byV", 1))) == 10

    def test_delete_unknown_dataset(self, system):
        with pytest.raises(SqlppAnalysisError, match="unknown dataset"):
            system.execute("DELETE FROM Nope")
