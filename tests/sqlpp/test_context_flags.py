"""EvaluationContext knobs: allow_index, generations, cluster_nodes."""

import pytest

from repro.adm import Point, open_type
from repro.sqlpp import EvaluationContext, Evaluator, parse_expression
from repro.storage import Dataset, IndexKind


@pytest.fixture
def monuments():
    ds = Dataset("monumentList", open_type("T"), "monument_id",
                 num_partitions=2, validate=False)
    for i in range(12):
        ds.insert({"monument_id": f"m{i}", "monument_location": Point(float(i), 0.0)})
    ds.flush_all()
    ds.create_index("loc", "monument_location", IndexKind.RTREE)
    return ds


QUERY = (
    "SELECT VALUE m.monument_id FROM monumentList m "
    "WHERE spatial_intersect(m.monument_location, "
    "create_circle(create_point(t.x, t.y), 1.5))"
)


class TestAllowIndex:
    def test_allow_index_false_forces_scan(self, monuments):
        ctx = EvaluationContext({"monumentList": monuments}, allow_index=False)
        got = Evaluator(ctx).evaluate_query(
            parse_expression(QUERY), {"t": {"x": 5.0, "y": 0.0}}
        )
        assert sorted(got) == ["m4", "m5", "m6"]
        assert ctx.meter.rtree_nodes_visited == 0
        assert ("scan", "monumentList") in ctx.batch_cache

    def test_allow_index_true_probes(self, monuments):
        ctx = EvaluationContext({"monumentList": monuments}, allow_index=True)
        got = Evaluator(ctx).evaluate_query(
            parse_expression(QUERY), {"t": {"x": 5.0, "y": 0.0}}
        )
        assert sorted(got) == ["m4", "m5", "m6"]
        assert ctx.meter.rtree_nodes_visited > 0

    def test_both_plans_agree_on_results(self, monuments):
        for x in (0.0, 3.3, 11.0, 50.0):
            results = []
            for allow in (True, False):
                ctx = EvaluationContext(
                    {"monumentList": monuments}, allow_index=allow
                )
                results.append(
                    sorted(
                        Evaluator(ctx).evaluate_query(
                            parse_expression(QUERY), {"t": {"x": x, "y": 0.0}}
                        )
                    )
                )
            assert results[0] == results[1], x


class TestGenerations:
    def test_generation_counter(self, monuments):
        ctx = EvaluationContext({"monumentList": monuments})
        assert ctx.generation == 0
        ctx.refresh_batch()
        ctx.refresh_batch()
        assert ctx.generation == 2

    def test_refresh_clears_all_cache_kinds(self, monuments):
        ctx = EvaluationContext({"monumentList": monuments}, allow_index=False)
        Evaluator(ctx).evaluate_query(
            parse_expression(QUERY), {"t": {"x": 1.0, "y": 0.0}}
        )
        assert ctx.batch_cache
        ctx.refresh_batch()
        assert not ctx.batch_cache

    def test_broadcast_uses_cluster_nodes(self, monuments):
        small = EvaluationContext({"monumentList": monuments})
        small.cluster_nodes = 2
        big = EvaluationContext({"monumentList": monuments})
        big.cluster_nodes = 24
        for ctx in (small, big):
            Evaluator(ctx).evaluate_query(
                parse_expression(QUERY), {"t": {"x": 5.0, "y": 0.0}}
            )
        assert big.meter.broadcast_records > small.meter.broadcast_records
