"""The paper's appendix DDL (Figures 32-40) parses and executes verbatim."""

import pytest

from repro import AsterixLite

APPENDIX_DDL = """
CREATE TYPE SafetyRatingType AS open {
    country_code : string,
    safety_rating: string
};
CREATE DATASET SafetyRatings(SafetyRatingType)
    PRIMARY KEY country_code;

CREATE TYPE ReligiousPopulationType AS open {
    rid : string,
    country_name : string,
    religion_name : string,
    population: int
};
CREATE DATASET ReligiousPopulations
    (ReligiousPopulationType) PRIMARY KEY rid;

CREATE TYPE monumentType AS open {
    monument_id: string,
    monument_location: point
};
CREATE DATASET monumentList(monumentType)
    PRIMARY KEY monument_id;

CREATE TYPE ReligiousBuildingType AS open {
    religious_building_id : string,
    religion_name : string,
    building_location : point,
    registered_believer: int
};
CREATE DATASET ReligiousBuildings(ReligiousBuildingType) PRIMARY KEY religious_building_id;

CREATE TYPE FacilityType AS open {
    facility_id: string,
    facility_location: point,
    facility_type: string
};
CREATE DATASET Facilities(FacilityType) PRIMARY KEY facility_id;

CREATE TYPE SuspiciousNamesType AS open {
    suspicious_name_id: string,
    suspicious_name: string,
    religion_name: string,
    threat_level: int
};
CREATE DATASET SuspiciousNames(SuspiciousNamesType) PRIMARY KEY suspicious_name_id;

CREATE TYPE DistrictAreaType AS open {
    district_area_id : string,
    district_area : rectangle
};
CREATE DATASET DistrictAreas(DistrictAreaType) PRIMARY KEY district_area_id;

CREATE TYPE AverageIncomeType AS open {
    district_area_id: string,
    average_income: double
};
CREATE DATASET AverageIncomes(AverageIncomeType) PRIMARY KEY district_area_id;

CREATE TYPE PersonType AS open {
    person_id: string,
    ethnicity: string,
    location: point
};
CREATE DATASET Persons(PersonType) PRIMARY KEY person_id;

CREATE TYPE AttackEventsType AS open {
    attack_record_id: string,
    attack_datetime: datetime,
    attack_location: point,
    related_religion: string
};
CREATE DATASET AttackEvents(AttackEventsType) PRIMARY KEY attack_record_id;
"""


class TestAppendixDdl:
    def test_all_appendix_statements_execute(self):
        system = AsterixLite(num_nodes=2)
        system.execute(APPENDIX_DDL)
        expected = {
            "SafetyRatings",
            "ReligiousPopulations",
            "monumentList",
            "ReligiousBuildings",
            "Facilities",
            "SuspiciousNames",
            "DistrictAreas",
            "AverageIncomes",
            "Persons",
            "AttackEvents",
        }
        assert expected <= set(system.catalog)

    def test_appendix_types_validate_generated_records(self):
        """The workload generators conform to the appendix datatypes."""
        from repro.workloads import PaperWorkload, WorkloadScale

        system = AsterixLite(num_nodes=2)
        system.execute(APPENDIX_DDL)
        workload = PaperWorkload(
            scale=WorkloadScale(reference_scale=0.0005), num_partitions=2
        )
        checks = [
            ("SafetyRatings", workload.safety_ratings(size=20)),
            ("ReligiousPopulations", workload.religious_populations(size=20)),
            ("monumentList", workload.monuments(size=20)),
            ("ReligiousBuildings", workload.religious_buildings(size=20)),
            ("Facilities", workload.facilities(size=20)),
            ("SuspiciousNames", workload.suspicious_names(size=20)),
            ("DistrictAreas", workload.district_areas()),
            ("AverageIncomes", workload.average_incomes()),
            ("Persons", workload.persons(size=20)),
            ("AttackEvents", workload.attack_events(size=20)),
        ]
        for name, records in checks:
            datatype = system.catalog[name].datatype
            for record in records:
                datatype.validate(record)

    def test_figure_37_index_ddl(self):
        system = AsterixLite(num_nodes=2)
        system.execute(APPENDIX_DDL)
        system.execute(
            "CREATE INDEX monumentLocIdx ON monumentList(monument_location) "
            "TYPE RTREE"
        )
        from repro.storage import IndexKind

        assert (
            system.catalog["monumentList"].index_on(
                "monument_location", IndexKind.RTREE
            )
            == "monumentLocIdx"
        )
