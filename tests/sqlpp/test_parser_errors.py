"""Parser error reporting: every malformed input names its problem."""

import pytest

from repro.errors import SqlppSyntaxError
from repro.sqlpp.parser import parse_expression, parse_statement


@pytest.mark.parametrize(
    "source,fragment",
    [
        ("SELECT", "expected an expression"),
        ("SELECT VALUE", "expected an expression"),
        ("SELECT VALUE x FROM", "expected an expression"),
        ("CASE x THEN 1 END", "WHEN"),
        ("CASE x WHEN 1 END", "expected then"),
        ("EXISTS SELECT VALUE 1", "expected '('"),
        ("{'a' 1}", "expected ':'"),
        ("[1, 2", "expected ']'"),
        ("f(1, ", "expected an expression"),
        ("a.", "field name"),
        ("x[1", "expected ']'"),
        ("(1 + 2", "expected ')'"),
        ("SELECT VALUE x FROM [1] x GROUP", "expected by"),
        ("SELECT VALUE x FROM [1] x ORDER LIMIT 1", "expected by"),
    ],
)
def test_expression_errors(source, fragment):
    with pytest.raises(SqlppSyntaxError) as info:
        parse_expression(source)
    assert fragment.lower() in str(info.value).lower()


@pytest.mark.parametrize(
    "source,fragment",
    [
        ("CREATE", "expected TYPE, DATASET, INDEX, FUNCTION, or FEED"),
        ("CREATE TYPE T { id: int64 }", "expected as"),
        ("CREATE DATASET D(T)", "expected primary"),
        ("CREATE DATASET D(T) PRIMARY id", "expected key"),
        ("CREATE FUNCTION f { 1 }", "expected '('"),
        ("CONNECT FEED F DATASET D", "expected to"),
        ("START F", "expected feed"),
        ("INSERT D (SELECT VALUE 1)", "expected into"),
        ('CREATE FEED F WITH { "a": f(1) }', "literals"),
    ],
)
def test_statement_errors(source, fragment):
    with pytest.raises(SqlppSyntaxError) as info:
        parse_statement(source)
    assert fragment.lower() in str(info.value).lower()


def test_error_location_points_at_token():
    with pytest.raises(SqlppSyntaxError) as info:
        parse_expression("1 +\n    SELECT")
    # SELECT (keyword) cannot start an operand of '+' at line 2
    assert info.value.line == 2


def test_found_token_quoted_in_message():
    with pytest.raises(SqlppSyntaxError, match="found"):
        parse_expression("a. .")
