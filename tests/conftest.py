"""Shared fixtures: a small catalog + registry mirroring the paper setup."""

from __future__ import annotations

import random

import pytest

from repro.adm import DateTime, Point, Rectangle, open_type
from repro.storage import Dataset, IndexKind
from repro.sqlpp import EvaluationContext, Evaluator
from repro.udf import FunctionRegistry, register_paper_udfs


def load(dataset: Dataset, records) -> Dataset:
    for record in records:
        dataset.insert(record)
    dataset.flush_all()
    return dataset


@pytest.fixture
def small_catalog():
    """Tiny versions of every reference dataset the paper UDFs touch."""
    rnd = random.Random(123)
    catalog = {}

    def mk(name, pk, records, parts=2):
        ds = Dataset(
            name, open_type(f"{name}T"), pk, num_partitions=parts, validate=False
        )
        catalog[name] = load(ds, records)
        return ds

    mk(
        "SensitiveWords",
        "wid",
        [
            {"wid": 1, "country": "US", "word": "bomb"},
            {"wid": 2, "country": "US", "word": "attack"},
            {"wid": 3, "country": "FR", "word": "bombe"},
        ],
    )
    mk(
        "SafetyRatings",
        "country_code",
        [
            {"country_code": "US", "safety_rating": "3"},
            {"country_code": "FR", "safety_rating": "5"},
            {"country_code": "DE", "safety_rating": "4"},
        ],
    )
    mk(
        "ReligiousPopulations",
        "rid",
        [
            {"rid": "r1", "country_name": "US", "religion_name": "A", "population": 10},
            {"rid": "r2", "country_name": "US", "religion_name": "B", "population": 30},
            {"rid": "r3", "country_name": "US", "religion_name": "C", "population": 20},
            {"rid": "r4", "country_name": "US", "religion_name": "D", "population": 5},
            {"rid": "r5", "country_name": "FR", "religion_name": "A", "population": 7},
        ],
    )
    mk(
        "SensitiveNamesDataset",
        "sid",
        [
            {"sid": 1, "sensitiveName": "johnsmith", "religionName": "A"},
            {"sid": 2, "sensitiveName": "johnsmyth", "religionName": "B"},
            {"sid": 3, "sensitiveName": "zzzzzzzzzz", "religionName": "C"},
        ],
    )
    monuments = mk(
        "monumentList",
        "monument_id",
        [
            {"monument_id": f"m{i}", "monument_location": Point(float(i), float(i))}
            for i in range(10)
        ],
    )
    monuments.create_index("mon_loc", "monument_location", IndexKind.RTREE)
    facilities = mk(
        "Facilities",
        "facility_id",
        [
            {
                "facility_id": f"f{i}",
                "facility_location": Point(rnd.uniform(0, 10), rnd.uniform(0, 10)),
                "facility_type": rnd.choice(["school", "hospital", "mall"]),
            }
            for i in range(60)
        ],
    )
    facilities.create_index("fac_loc", "facility_location", IndexKind.RTREE)
    buildings = mk(
        "ReligiousBuildings",
        "religious_building_id",
        [
            {
                "religious_building_id": f"rb{i}",
                "religion_name": f"rel{i % 4}",
                "building_location": Point(rnd.uniform(0, 10), rnd.uniform(0, 10)),
                "registered_believer": rnd.randint(10, 1000),
            }
            for i in range(30)
        ],
    )
    buildings.create_index("rb_loc", "building_location", IndexKind.RTREE)
    mk(
        "SuspiciousNames",
        "suspicious_name_id",
        [
            {
                "suspicious_name_id": f"s{i}",
                "suspicious_name": f"name{i}",
                "religion_name": f"rel{i % 4}",
                "threat_level": i % 5,
            }
            for i in range(20)
        ],
    )
    districts = []
    for i in range(5):
        for j in range(5):
            districts.append(
                {
                    "district_area_id": f"d{i}_{j}",
                    "district_area": Rectangle(i * 2, j * 2, i * 2 + 2, j * 2 + 2),
                }
            )
    da = mk("DistrictAreas", "district_area_id", districts)
    da.create_index("da_area", "district_area", IndexKind.RTREE)
    mk(
        "AverageIncomes",
        "district_area_id",
        [
            {"district_area_id": d["district_area_id"], "average_income": 1000.0 + i}
            for i, d in enumerate(districts)
        ],
    )
    persons = mk(
        "Persons",
        "person_id",
        [
            {
                "person_id": f"p{i}",
                "ethnicity": f"eth{i % 3}",
                "location": Point(rnd.uniform(0, 10), rnd.uniform(0, 10)),
            }
            for i in range(120)
        ],
    )
    persons.create_index("p_loc", "location", IndexKind.RTREE)
    base = DateTime.parse("2019-03-01T00:00:00Z")
    mk(
        "AttackEvents",
        "attack_record_id",
        [
            {
                "attack_record_id": f"a{i}",
                "attack_datetime": DateTime(base.epoch_millis - i * 86_400_000),
                "attack_location": Point(rnd.uniform(0, 10), rnd.uniform(0, 10)),
                "related_religion": f"rel{i % 4}",
            }
            for i in range(20)
        ],
    )
    return catalog


@pytest.fixture
def registry(small_catalog):
    reg = FunctionRegistry(lambda: set(small_catalog))
    register_paper_udfs(reg)
    return reg


@pytest.fixture
def evaluator(small_catalog, registry):
    return Evaluator(EvaluationContext(small_catalog, functions=registry))


@pytest.fixture
def sample_tweet():
    return {
        "id": 1,
        "text": "a bomb threat",
        "country": "US",
        "latitude": 3.0,
        "longitude": 3.2,
        "created_at": DateTime.parse("2019-03-15T12:00:00Z"),
        "user": {"screen_name": "John_Smith!!", "name": "name7"},
    }
