"""Unit tests for sort/group-by helpers and the remaining small operators."""

import pytest

from repro.hyracks import Frame, JobSpecification, LocalJobRunner, OneToOne, OperatorDescriptor
from repro.hyracks.operators import (
    CallbackSink,
    CollectSink,
    ListSource,
    UnionAllOperator,
    collect_aggregator,
    count_aggregator,
    sum_aggregator,
)
from repro.hyracks.operators.sort_group import Aggregator


class TestAggregators:
    def test_count(self):
        agg = count_aggregator("n")
        acc = agg.init()
        for record in [{}, {}, {}]:
            acc = agg.step(acc, record)
        assert agg.final(acc) == 3

    def test_sum_skips_none(self):
        agg = sum_aggregator("s", lambda r: r.get("v"))
        acc = agg.init()
        for record in [{"v": 1}, {"v": None}, {"v": 4}]:
            acc = agg.step(acc, record)
        assert agg.final(acc) == 5

    def test_collect(self):
        agg = collect_aggregator("items", lambda r: r["v"])
        acc = agg.init()
        for record in [{"v": "a"}, {"v": "b"}]:
            acc = agg.step(acc, record)
        assert agg.final(acc) == ["a", "b"]

    def test_custom_final(self):
        agg = Aggregator("avg", lambda: (0, 0),
                         lambda acc, r: (acc[0] + r["v"], acc[1] + 1),
                         lambda acc: acc[0] / acc[1] if acc[1] else None)
        acc = agg.init()
        for record in [{"v": 2}, {"v": 4}]:
            acc = agg.step(acc, record)
        assert agg.final(acc) == 3


class TestUnionAll:
    def test_merges_two_sources(self):
        spec = JobSpecification("u")
        out = []
        a = spec.add_operator(
            OperatorDescriptor("a", lambda c: ListSource(c, [{"s": "a"}] * 3), 1)
        )
        b = spec.add_operator(
            OperatorDescriptor("b", lambda c: ListSource(c, [{"s": "b"}] * 2), 1)
        )
        union = spec.add_operator(
            OperatorDescriptor("union", lambda c: UnionAllOperator(c), 1)
        )
        sink = spec.add_operator(
            OperatorDescriptor("sink", lambda c: CollectSink(c, out), 1)
        )
        spec.connect(a, union, OneToOne())
        spec.connect(b, union, OneToOne())
        spec.connect(union, sink, OneToOne())
        LocalJobRunner(1).execute(spec)
        assert sorted(r["s"] for r in out) == ["a", "a", "a", "b", "b"]


class TestCallbackSink:
    def test_reports_partition(self):
        received = []

        def callback(partition, frame):
            received.append((partition, len(frame)))

        spec = JobSpecification("cb")
        src = spec.add_operator(
            OperatorDescriptor(
                "src", lambda c: ListSource(c, [{"i": i} for i in range(10)]), 2
            )
        )
        sink = spec.add_operator(
            OperatorDescriptor("sink", lambda c: CallbackSink(c, callback), 2)
        )
        spec.connect(src, sink, OneToOne())
        LocalJobRunner(2).execute(spec)
        assert sum(count for _p, count in received) == 10
        assert {p for p, _c in received} == {0, 1}
