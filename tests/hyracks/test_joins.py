"""Join operators: hash join (incl. spill semantics), index NLJ, naive NLJ."""

import pytest

from repro.adm import Point, open_type
from repro.errors import StreamingJoinError
from repro.hyracks import (
    JobSpecification,
    LocalJobRunner,
    OneToOne,
    OperatorDescriptor,
)
from repro.hyracks.operators import (
    CollectSink,
    HashJoinOperator,
    IndexNestedLoopJoinOperator,
    ListSource,
    NestedLoopJoinOperator,
)
from repro.storage import Dataset, IndexKind

BUILD = [{"code": f"C{i}", "rating": i % 5} for i in range(50)]
PROBE = [{"id": i, "code": f"C{i % 60}"} for i in range(200)]


def combine(record, matches):
    out = dict(record)
    out["ratings"] = [m["rating"] for m in matches]
    return out


def run_join(make_join, probe=PROBE, nodes=1):
    spec = JobSpecification("j")
    out = []
    src = spec.add_operator(
        OperatorDescriptor("src", lambda ctx: ListSource(ctx, probe), nodes)
    )
    join = spec.add_operator(OperatorDescriptor("join", make_join, nodes))
    sink = spec.add_operator(
        OperatorDescriptor("sink", lambda ctx: CollectSink(ctx, out), 1)
    )
    spec.connect(src, join, OneToOne())
    spec.connect(join, sink, OneToOne())
    LocalJobRunner(nodes).execute(spec)
    return out


def expected_join(probe=PROBE, build=BUILD):
    table = {}
    for b in build:
        table.setdefault(b["code"], []).append(b)
    return {
        r["id"]: sorted(m["rating"] for m in table.get(r["code"], []))
        for r in probe
    }


class TestHashJoin:
    def test_in_memory_join_matches_reference(self):
        out = run_join(
            lambda ctx: HashJoinOperator(
                ctx,
                lambda p: BUILD,
                lambda b: b["code"],
                lambda r: r["code"],
                combine,
            )
        )
        got = {r["id"]: sorted(r["ratings"]) for r in out}
        assert got == expected_join()

    def test_unmatched_probe_kept_by_default(self):
        out = run_join(
            lambda ctx: HashJoinOperator(
                ctx, lambda p: BUILD, lambda b: b["code"], lambda r: r["code"], combine
            )
        )
        unmatched = [r for r in out if r["code"] == "C55"]
        assert unmatched and all(r["ratings"] == [] for r in unmatched)

    def test_inner_join_drops_unmatched(self):
        out = run_join(
            lambda ctx: HashJoinOperator(
                ctx,
                lambda p: BUILD,
                lambda b: b["code"],
                lambda r: r["code"],
                combine,
                keep_unmatched_probe=False,
            )
        )
        assert all(r["ratings"] for r in out)

    def test_spill_produces_identical_results(self):
        spilled = run_join(
            lambda ctx: HashJoinOperator(
                ctx,
                lambda p: BUILD,
                lambda b: b["code"],
                lambda r: r["code"],
                combine,
                memory_budget_records=10,
            )
        )
        got = {r["id"]: sorted(r["ratings"]) for r in spilled}
        assert got == expected_join()

    def test_spill_flag_set(self):
        captured = []

        def make(ctx):
            join = HashJoinOperator(
                ctx,
                lambda p: BUILD,
                lambda b: b["code"],
                lambda r: r["code"],
                combine,
                memory_budget_records=10,
            )
            captured.append(join)
            return join

        run_join(make)
        assert captured[0].spilled

    def test_unbounded_probe_with_spill_raises(self):
        """Paper §4.3.4 case 2: spilling + infinite feed is impossible."""
        with pytest.raises(StreamingJoinError):
            run_join(
                lambda ctx: HashJoinOperator(
                    ctx,
                    lambda p: BUILD,
                    lambda b: b["code"],
                    lambda r: r["code"],
                    combine,
                    memory_budget_records=10,
                    unbounded_probe=True,
                )
            )

    def test_unbounded_probe_fits_memory_ok(self):
        """Paper §4.3.4 case 1: small build side streams fine."""
        out = run_join(
            lambda ctx: HashJoinOperator(
                ctx,
                lambda p: BUILD,
                lambda b: b["code"],
                lambda r: r["code"],
                combine,
                memory_budget_records=10_000,
                unbounded_probe=True,
            )
        )
        assert len(out) == len(PROBE)


class TestIndexNestedLoopJoin:
    @pytest.fixture
    def monuments(self):
        ds = Dataset(
            "M", open_type("MT", monument_id="string"), "monument_id",
            num_partitions=2, validate=False,
        )
        for i in range(20):
            ds.insert(
                {"monument_id": f"m{i}", "monument_location": Point(float(i), 0.0)}
            )
        ds.flush_all()
        ds.create_index("loc", "monument_location", IndexKind.RTREE)
        return ds

    def test_probes_live_index(self, monuments):
        def probe(ds, record):
            from repro.adm import Circle

            return ds.index_probe_spatial(
                "loc", Circle(Point(record["x"], 0.0), 1.5)
            )

        def combine_ids(record, matches):
            out = dict(record)
            out["near"] = sorted(m["monument_id"] for m in matches)
            return out

        probe_records = [{"id": 1, "x": 5.0}]
        out = run_join(
            lambda ctx: IndexNestedLoopJoinOperator(ctx, monuments, probe, combine_ids),
            probe=probe_records,
        )
        assert out[0]["near"] == ["m4", "m5", "m6"]

    def test_update_activity_charges_penalty(self, monuments):
        def probe(ds, record):
            return ds.index_probe_spatial("loc", Point(record["x"], 0.0))

        def run_once():
            spec = JobSpecification("p")
            src = spec.add_operator(
                OperatorDescriptor(
                    "src", lambda ctx: ListSource(ctx, [{"id": 1, "x": 5.0}] * 50), 1
                )
            )
            join = spec.add_operator(
                OperatorDescriptor(
                    "join",
                    lambda ctx: IndexNestedLoopJoinOperator(
                        ctx, monuments, probe, lambda r, m: r
                    ),
                    1,
                )
            )
            sink = spec.add_operator(
                OperatorDescriptor("s", lambda ctx: CollectSink(ctx, []), 1)
            )
            spec.connect(src, join, OneToOne())
            spec.connect(join, sink, OneToOne())
            return LocalJobRunner(1).execute(spec).per_operator_busy["join"]

        quiet = run_once()
        monuments.upsert(
            {"monument_id": "m0", "monument_location": Point(0.0, 0.0)}
        )
        active = run_once()
        assert active > quiet


class TestNestedLoopJoin:
    def test_matches_reference(self):
        out = run_join(
            lambda ctx: NestedLoopJoinOperator(
                ctx,
                lambda p: BUILD,
                lambda probe, build: probe["code"] == build["code"],
                combine,
            )
        )
        got = {r["id"]: sorted(r["ratings"]) for r in out}
        assert got == expected_join()
