"""Executor behaviour: results, routing, cost accounting, placement."""

import pytest

from repro.adm import open_type
from repro.errors import JobSpecificationError
from repro.hyracks import (
    Broadcast,
    HashPartition,
    JobSpecification,
    LocalJobRunner,
    OneToOne,
    OperatorDescriptor,
    RoundRobin,
)
from repro.hyracks.operators import (
    AssignOperator,
    CollectSink,
    DatasetWriteSink,
    FilterOperator,
    HashGroupByOperator,
    ListSource,
    NullSink,
    SortOperator,
    count_aggregator,
    sum_aggregator,
)
from repro.storage import Dataset
from repro.storage.dataset import hash_partition

RECORDS = [{"id": i, "country": "US" if i % 3 else "CA"} for i in range(120)]


def build_simple(runner_nodes=3, source_partitions=3):
    spec = JobSpecification("t")
    out = []
    src = spec.add_operator(
        OperatorDescriptor(
            "src", lambda ctx: ListSource(ctx, RECORDS), source_partitions
        )
    )
    sink = spec.add_operator(
        OperatorDescriptor("sink", lambda ctx: CollectSink(ctx, out), 1)
    )
    spec.connect(src, sink, OneToOne())
    return spec, out


class TestExecution:
    def test_all_records_delivered(self):
        spec, out = build_simple()
        LocalJobRunner(3).execute(spec)
        assert sorted(r["id"] for r in out) == list(range(120))

    def test_filter_group_pipeline(self):
        spec = JobSpecification("q")
        out = []
        src = spec.add_operator(
            OperatorDescriptor("src", lambda ctx: ListSource(ctx, RECORDS), 3)
        )
        flt = spec.add_operator(
            OperatorDescriptor(
                "flt", lambda ctx: FilterOperator(ctx, lambda r: r["id"] < 60), 3
            )
        )
        gby = spec.add_operator(
            OperatorDescriptor(
                "gby",
                lambda ctx: HashGroupByOperator(
                    ctx,
                    lambda r: (r["country"],),
                    ["country"],
                    [count_aggregator("num"), sum_aggregator("total", lambda r: r["id"])],
                ),
                2,
            )
        )
        sink = spec.add_operator(
            OperatorDescriptor("sink", lambda ctx: CollectSink(ctx, out), 1)
        )
        spec.connect(src, flt, OneToOne())
        spec.connect(flt, gby, HashPartition(lambda r: r["country"]))
        spec.connect(gby, sink, OneToOne())
        LocalJobRunner(3).execute(spec)
        got = {r["country"]: (r["num"], r["total"]) for r in out}
        us = [r for r in RECORDS if r["id"] < 60 and r["country"] == "US"]
        ca = [r for r in RECORDS if r["id"] < 60 and r["country"] == "CA"]
        assert got["US"] == (len(us), sum(r["id"] for r in us))
        assert got["CA"] == (len(ca), sum(r["id"] for r in ca))

    def test_sort_operator_global_order(self):
        spec = JobSpecification("s")
        out = []
        src = spec.add_operator(
            OperatorDescriptor("src", lambda ctx: ListSource(ctx, RECORDS), 3)
        )
        srt = spec.add_operator(
            OperatorDescriptor(
                "sort",
                lambda ctx: SortOperator(ctx, lambda r: -r["id"]),
                1,
            )
        )
        sink = spec.add_operator(
            OperatorDescriptor("sink", lambda ctx: CollectSink(ctx, out), 1)
        )
        spec.connect(src, srt, OneToOne())
        spec.connect(srt, sink, OneToOne())
        LocalJobRunner(3).execute(spec)
        assert [r["id"] for r in out] == sorted(
            (r["id"] for r in RECORDS), reverse=True
        )

    def test_non_source_root_rejected(self):
        spec = JobSpecification("bad")
        spec.add_operator(OperatorDescriptor("x", lambda ctx: NullSink(ctx), 1))
        with pytest.raises(JobSpecificationError, match="not a source"):
            LocalJobRunner(1).execute(spec)

    def test_broadcast_duplicates(self):
        spec = JobSpecification("b")
        out = []
        src = spec.add_operator(
            OperatorDescriptor("src", lambda ctx: ListSource(ctx, RECORDS[:10]), 1)
        )
        sink = spec.add_operator(
            OperatorDescriptor("sink", lambda ctx: CollectSink(ctx, out), 3)
        )
        spec.connect(src, sink, Broadcast())
        LocalJobRunner(3).execute(spec)
        assert len(out) == 30

    def test_round_robin_balances(self):
        spec = JobSpecification("rr")
        sinks = []

        def make_sink(ctx):
            sink = NullSink(ctx)
            sinks.append(sink)
            return sink

        src = spec.add_operator(
            OperatorDescriptor("src", lambda ctx: ListSource(ctx, RECORDS), 1)
        )
        sink = spec.add_operator(OperatorDescriptor("sink", make_sink, 4))
        spec.connect(src, sink, RoundRobin())
        LocalJobRunner(4).execute(spec)
        assert sorted(s.seen for s in sinks) == [30, 30, 30, 30]


class TestCostAccounting:
    def test_makespan_includes_startup(self):
        spec, _out = build_simple()
        runner = LocalJobRunner(3)
        result = runner.execute(spec)
        assert result.startup_seconds == runner.cost_model.job_startup(3, False)
        assert result.makespan_seconds > result.startup_seconds

    def test_predeployed_startup_cheaper(self):
        spec1, _ = build_simple()
        spec2, _ = build_simple()
        runner = LocalJobRunner(3)
        full = runner.execute(spec1, predeployed=False)
        pre = runner.execute(spec2, predeployed=True)
        assert pre.startup_seconds < full.startup_seconds

    def test_cross_node_transfer_charged(self):
        # single-partition source on node 0 feeding 3 nodes round-robin:
        # node 0 pays transfer for 2/3 of records
        spec = JobSpecification("x")
        src = spec.add_operator(
            OperatorDescriptor("src", lambda ctx: ListSource(ctx, RECORDS), 1)
        )
        sink = spec.add_operator(
            OperatorDescriptor("sink", lambda ctx: NullSink(ctx), 3)
        )
        spec.connect(src, sink, RoundRobin())
        runner = LocalJobRunner(3)
        result = runner.execute(spec)
        expected = 80 * runner.cost_model.transfer_per_record
        assert result.node_busy_seconds[0] == pytest.approx(expected, rel=0.01)

    def test_extra_node_busy_included(self):
        spec, _ = build_simple()
        runner = LocalJobRunner(3)
        base = runner.execute(build_simple()[0]).makespan_seconds
        loaded = runner.execute(spec, extra_node_busy={0: 1.0}).makespan_seconds
        assert loaded == pytest.approx(base + 1.0, rel=0.01)

    def test_per_operator_busy_reported(self):
        spec, _ = build_simple()
        result = LocalJobRunner(3).execute(spec)
        assert "src" in result.per_operator_busy
        assert "sink" in result.per_operator_busy

    def test_explicit_placement_respected(self):
        spec = JobSpecification("p")
        src = spec.add_operator(
            OperatorDescriptor(
                "src",
                lambda ctx: ListSource(ctx, RECORDS, per_record_cost=1e-3),
                partitions=1,
                nodes=[2],
            )
        )
        sink = spec.add_operator(
            OperatorDescriptor("sink", lambda ctx: NullSink(ctx), 1, nodes=[2])
        )
        spec.connect(src, sink, OneToOne())
        result = LocalJobRunner(3).execute(spec)
        assert result.node_busy_seconds[2] > 0
        assert result.node_busy_seconds[0] == 0

    def test_num_nodes_validation(self):
        with pytest.raises(ValueError):
            LocalJobRunner(0)


class TestDatasetWrite:
    def test_write_sink_routes_by_primary_key(self):
        ds = Dataset("D", open_type("T", id="int64"), "id", num_partitions=3)
        spec = JobSpecification("w")
        src = spec.add_operator(
            OperatorDescriptor("src", lambda ctx: ListSource(ctx, RECORDS), 3)
        )
        sink = spec.add_operator(
            OperatorDescriptor(
                "store", lambda ctx: DatasetWriteSink(ctx, ds, "insert"), 3
            )
        )
        spec.connect(src, sink, HashPartition(lambda r: r["id"]))
        result = LocalJobRunner(3).execute(spec)
        assert result.records_out == 120
        assert len(ds) == 120
        for pid in range(3):
            for key, _r in ds.partitions[pid].scan():
                assert hash_partition(key, 3) == pid

    def test_write_mode_validated(self):
        ds = Dataset("D", open_type("T", id="int64"), "id")
        from repro.hyracks.job import OperatorContext

        ctx = OperatorContext(0, 1, 0, LocalJobRunner(1))
        with pytest.raises(ValueError):
            DatasetWriteSink(ctx, ds, "replace")
