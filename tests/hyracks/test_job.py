"""Job specification validation and topology."""

import pytest

from repro.errors import JobSpecificationError
from repro.hyracks import (
    JobSpecification,
    OneToOne,
    Operator,
    OperatorDescriptor,
    SourceOperator,
)
from repro.hyracks.operators import ListSource, NullSink


def op(name, partitions=1, nodes=None):
    return OperatorDescriptor(name, lambda ctx: NullSink(ctx), partitions, nodes)


class TestSpecification:
    def test_operator_ids_assigned(self):
        spec = JobSpecification()
        a = spec.add_operator(op("a"))
        b = spec.add_operator(op("b"))
        assert (a.op_id, b.op_id) == (0, 1)

    def test_connect_requires_added_operators(self):
        spec = JobSpecification()
        a = spec.add_operator(op("a"))
        stray = op("stray")
        with pytest.raises(JobSpecificationError):
            spec.connect(a, stray, OneToOne())

    def test_empty_job_invalid(self):
        with pytest.raises(JobSpecificationError, match="no operators"):
            JobSpecification().validate()

    def test_cycle_detected(self):
        spec = JobSpecification()
        a = spec.add_operator(op("a"))
        b = spec.add_operator(op("b"))
        spec.connect(a, b, OneToOne())
        spec.connect(b, a, OneToOne())
        with pytest.raises(JobSpecificationError):
            spec.validate()

    def test_self_loop_detected(self):
        spec = JobSpecification()
        a = spec.add_operator(op("a"))
        b = spec.add_operator(op("b"))
        spec.connect(a, b, OneToOne())
        spec.connect(b, b, OneToOne())
        with pytest.raises(JobSpecificationError):
            spec.validate()

    def test_topological_order(self):
        spec = JobSpecification()
        a = spec.add_operator(op("a"))
        b = spec.add_operator(op("b"))
        c = spec.add_operator(op("c"))
        spec.connect(a, b, OneToOne())
        spec.connect(b, c, OneToOne())
        assert [x.name for x in spec.topological_order()] == ["a", "b", "c"]

    def test_sources_identified(self):
        spec = JobSpecification()
        a = spec.add_operator(op("a"))
        b = spec.add_operator(op("b"))
        spec.connect(a, b, OneToOne())
        assert [s.name for s in spec.sources()] == ["a"]

    def test_partition_count_validated(self):
        with pytest.raises(JobSpecificationError):
            OperatorDescriptor("x", lambda ctx: None, partitions=0)

    def test_placement_length_validated(self):
        with pytest.raises(JobSpecificationError):
            OperatorDescriptor("x", lambda ctx: None, partitions=2, nodes=[0])

    def test_inbound_outbound(self):
        spec = JobSpecification()
        a = spec.add_operator(op("a"))
        b = spec.add_operator(op("b"))
        spec.connect(a, b, OneToOne())
        assert len(spec.outbound(a)) == 1
        assert len(spec.inbound(b)) == 1
        assert spec.inbound(a) == []
