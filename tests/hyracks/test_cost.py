"""The cost model and work meter."""

import pytest

from repro.hyracks.cost import DEFAULT_COST_MODEL, CostModel, WorkMeter


class TestCostModel:
    def test_predeployed_startup_cheaper_everywhere(self):
        cost = CostModel()
        for nodes in (1, 6, 24):
            assert cost.job_startup(nodes, True) < cost.job_startup(nodes, False)

    def test_startup_grows_with_nodes(self):
        cost = CostModel()
        assert cost.job_startup(24, True) > cost.job_startup(6, True)
        assert cost.job_startup(24, False) > cost.job_startup(6, False)

    def test_compile_cost_is_the_predeploy_gap(self):
        cost = CostModel()
        gap = cost.job_startup(6, False) - cost.job_startup(6, True)
        assert gap == pytest.approx(
            cost.job_compile + cost.job_distribute_per_node * 6
        )

    def test_default_model_is_shared_instance(self):
        assert DEFAULT_COST_MODEL.parse_per_record > 0


class TestWorkMeter:
    def test_charge_zero_when_empty(self):
        assert WorkMeter().charge(CostModel()) == 0.0

    def test_counters_priced(self):
        cost = CostModel()
        meter = WorkMeter()
        meter.records_scanned = 100
        meter.hash_probes = 10
        expected = 100 * cost.scan_per_record + 10 * cost.hash_probe_per_record
        assert meter.charge(cost) == pytest.approx(expected)

    def test_reset_clears_counters_keeps_scale(self):
        meter = WorkMeter(scale=50.0)
        meter.records_scanned = 10
        meter.reset()
        assert meter.records_scanned == 0
        assert meter.scale == 50.0

    def test_scale_applies_to_reference_counters_only(self):
        cost = CostModel()
        scaled = WorkMeter(scale=100.0)
        scaled.records_scanned = 10  # reference-cardinality-driven
        scaled.hash_probes = 10  # per-record, unscaled
        unscaled = WorkMeter()
        unscaled.records_scanned = 10
        unscaled.hash_probes = 10
        delta = scaled.charge(cost) - unscaled.charge(cost)
        assert delta == pytest.approx(99 * 10 * cost.scan_per_record)

    def test_sort_cost_nlogn(self):
        cost = CostModel()
        small = WorkMeter()
        small.sort_items = 100
        big = WorkMeter()
        big.sort_items = 200
        # super-linear: doubling items more than doubles cost
        assert big.charge(cost) > 2 * small.charge(cost)

    def test_single_sort_item_charged(self):
        meter = WorkMeter()
        meter.sort_items = 1
        assert meter.charge(CostModel()) > 0

    def test_penalty_priced_by_lsm_constants(self):
        cost = CostModel()
        meter = WorkMeter()
        meter.penalized_reads = 1000
        expected = 1000 * cost.lsm_component_read * (cost.lsm_active_penalty - 1.0)
        assert meter.charge(cost) == pytest.approx(expected)

    def test_broadcast_and_java_ops_priced(self):
        cost = CostModel()
        meter = WorkMeter()
        meter.broadcast_records = 10
        meter.java_ops = 1000
        expected = (
            10 * cost.inlj_broadcast_per_record + 1000 * cost.java_op_cost
        )
        assert meter.charge(cost) == pytest.approx(expected)

    def test_every_counter_is_priced(self):
        """Incrementing any counter must increase the charge."""
        cost = CostModel()
        for name in WorkMeter._COUNTERS:
            meter = WorkMeter()
            setattr(meter, name, 10)
            assert meter.charge(cost) > 0, name
