"""Individual operator behaviour (outside full job runs)."""

import pytest

from repro.adm import open_type
from repro.hyracks import Frame, JobSpecification, LocalJobRunner, OneToOne, OperatorDescriptor
from repro.hyracks.frame import frames_of
from repro.hyracks.job import OperatorContext
from repro.hyracks.operators import (
    AssignOperator,
    CallbackSource,
    CollectSink,
    DatasetScanSource,
    FilterOperator,
    LimitOperator,
    ListSource,
    ParseOperator,
    ProjectOperator,
)
from repro.storage import Dataset


def run_pipeline(records, middle_factory, nodes=2, source_partitions=2):
    spec = JobSpecification("p")
    out = []
    src = spec.add_operator(
        OperatorDescriptor("src", lambda ctx: ListSource(ctx, records), source_partitions)
    )
    mid = spec.add_operator(OperatorDescriptor("mid", middle_factory, source_partitions))
    sink = spec.add_operator(
        OperatorDescriptor("sink", lambda ctx: CollectSink(ctx, out), 1)
    )
    spec.connect(src, mid, OneToOne())
    spec.connect(mid, sink, OneToOne())
    LocalJobRunner(nodes).execute(spec)
    return out


class TestFrames:
    def test_frames_of_packs(self):
        frames = list(frames_of(({"i": i} for i in range(10)), capacity=4))
        assert [len(f) for f in frames] == [4, 4, 2]

    def test_frames_of_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            list(frames_of([], capacity=0))

    def test_frame_iterates_records(self):
        frame = Frame([{"a": 1}])
        assert list(frame) == [{"a": 1}]
        assert len(frame) == 1


class TestBasicOperators:
    def test_assign_maps(self):
        out = run_pipeline(
            [{"v": i} for i in range(10)],
            lambda ctx: AssignOperator(ctx, lambda r: {"v": r["v"] * 2}),
        )
        assert sorted(r["v"] for r in out) == [i * 2 for i in range(10)]

    def test_assign_can_drop_and_unnest(self):
        def fn(record):
            if record["v"] == 0:
                return None
            return [{"v": record["v"]}, {"v": -record["v"]}]

        out = run_pipeline([{"v": i} for i in range(3)], lambda ctx: AssignOperator(ctx, fn))
        assert sorted(r["v"] for r in out) == [-2, -1, 1, 2]

    def test_filter(self):
        out = run_pipeline(
            [{"v": i} for i in range(10)],
            lambda ctx: FilterOperator(ctx, lambda r: r["v"] % 2 == 0),
        )
        assert sorted(r["v"] for r in out) == [0, 2, 4, 6, 8]

    def test_project(self):
        out = run_pipeline(
            [{"a": 1, "b": 2, "c": 3}],
            lambda ctx: ProjectOperator(ctx, ["a", "c", "zz"]),
            source_partitions=1,
        )
        assert out == [{"a": 1, "c": 3}]

    def test_limit_is_global_across_partitions(self):
        out = run_pipeline(
            [{"v": i} for i in range(100)],
            lambda ctx: LimitOperator(ctx, 7),
            nodes=4,
            source_partitions=4,
        )
        assert len(out) == 7

    def test_parse_operator_envelopes(self):
        out = run_pipeline(
            [{"raw": '{"id": 1, "x": 2}'}, {"raw": '{"id": 2}'}],
            lambda ctx: ParseOperator(ctx),
            source_partitions=1,
        )
        assert sorted(r["id"] for r in out) == [1, 2]

    def test_parse_operator_passthrough_for_parsed(self):
        out = run_pipeline(
            [{"id": 5, "already": "parsed"}],
            lambda ctx: ParseOperator(ctx),
            source_partitions=1,
        )
        assert out == [{"id": 5, "already": "parsed"}]

    def test_parse_operator_coerces_with_datatype(self):
        from repro.adm import DateTime, make_type

        t = make_type("T", {"ts": "datetime"})
        out = run_pipeline(
            [{"raw": '{"ts": "2019-01-01T00:00:00Z"}'}],
            lambda ctx: ParseOperator(ctx, t),
            source_partitions=1,
        )
        assert out[0]["ts"] == DateTime.parse("2019-01-01T00:00:00Z")


class TestSources:
    def test_list_source_partitions_records(self):
        records = [{"i": i} for i in range(10)]
        out = run_pipeline(records, lambda ctx: AssignOperator(ctx, lambda r: r))
        assert sorted(r["i"] for r in out) == list(range(10))

    def test_list_source_explicit_partition_lists(self):
        spec = JobSpecification("x")
        out = []
        lists = [[{"p": 0}], [{"p": 1}, {"p": 11}]]
        src = spec.add_operator(
            OperatorDescriptor(
                "src", lambda ctx: ListSource(ctx, partition_lists=lists), 2
            )
        )
        sink = spec.add_operator(
            OperatorDescriptor("sink", lambda ctx: CollectSink(ctx, out), 1)
        )
        spec.connect(src, sink, OneToOne())
        LocalJobRunner(2).execute(spec)
        assert sorted(r["p"] for r in out) == [0, 1, 11]

    def test_callback_source(self):
        spec = JobSpecification("cb")
        out = []
        src = spec.add_operator(
            OperatorDescriptor(
                "src",
                lambda ctx: CallbackSource(ctx, lambda p: [{"partition": p}]),
                3,
            )
        )
        sink = spec.add_operator(
            OperatorDescriptor("sink", lambda ctx: CollectSink(ctx, out), 1)
        )
        spec.connect(src, sink, OneToOne())
        LocalJobRunner(3).execute(spec)
        assert sorted(r["partition"] for r in out) == [0, 1, 2]

    def test_dataset_scan_source(self):
        ds = Dataset("D", open_type("T", id="int64"), "id", num_partitions=2)
        for i in range(20):
            ds.insert({"id": i})
        spec = JobSpecification("scan")
        out = []
        src = spec.add_operator(
            OperatorDescriptor("scan", lambda ctx: DatasetScanSource(ctx, ds), 2)
        )
        sink = spec.add_operator(
            OperatorDescriptor("sink", lambda ctx: CollectSink(ctx, out), 1)
        )
        spec.connect(src, sink, OneToOne())
        LocalJobRunner(2).execute(spec)
        assert sorted(r["id"] for r in out) == list(range(20))

    def test_dataset_scan_more_partitions_than_storage(self):
        ds = Dataset("D", open_type("T", id="int64"), "id", num_partitions=2)
        for i in range(10):
            ds.insert({"id": i})
        spec = JobSpecification("scan")
        out = []
        src = spec.add_operator(
            OperatorDescriptor("scan", lambda ctx: DatasetScanSource(ctx, ds), 4)
        )
        sink = spec.add_operator(
            OperatorDescriptor("sink", lambda ctx: CollectSink(ctx, out), 1)
        )
        spec.connect(src, sink, OneToOne())
        LocalJobRunner(4).execute(spec)
        assert sorted(r["id"] for r in out) == list(range(10))
