"""Routing strategies and connector runtime mechanics."""

import pytest

from repro.hyracks import Frame
from repro.hyracks.connectors import (
    Broadcast,
    ConnectorRuntime,
    FanOutWriter,
    HashPartition,
    OneToOne,
    RoundRobin,
)


class TestStrategies:
    def test_one_to_one_maps_partition(self):
        strategy = OneToOne()
        assert strategy.route({}, 2, 4) == [2]
        assert strategy.route({}, 5, 4) == [1]  # wraps

    def test_round_robin_rotates_per_producer(self):
        strategy = RoundRobin()
        targets = [strategy.route({}, 0, 3)[0] for _ in range(6)]
        assert targets == [0, 1, 2, 0, 1, 2]

    def test_round_robin_producers_independent(self):
        strategy = RoundRobin()
        a = [strategy.route({}, 0, 2)[0] for _ in range(3)]
        b = [strategy.route({}, 1, 2)[0] for _ in range(3)]
        assert a == [0, 1, 0]
        assert b == [1, 0, 1]

    def test_hash_partition_stable(self):
        strategy = HashPartition(lambda r: r["k"])
        first = strategy.route({"k": "x"}, 0, 8)
        assert strategy.route({"k": "x"}, 3, 8) == first

    def test_broadcast_hits_all(self):
        assert Broadcast().route({}, 0, 3) == [0, 1, 2]


class _Collector:
    def __init__(self):
        self.frames = []
        self.opened = 0
        self.closed = 0

    def open(self):
        self.opened += 1

    def next_frame(self, frame):
        self.frames.append(frame)

    def close(self):
        self.closed += 1

    def records(self):
        return [r for f in self.frames for r in f]


def make_runtime(consumers, strategy=None, producers=1, frame_capacity=4):
    charges = []
    runtime = ConnectorRuntime(
        strategy=strategy or RoundRobin(),
        consumers=consumers,
        producer_nodes=[0] * producers,
        consumer_nodes=list(range(len(consumers))),
        charge=lambda node, sec: charges.append((node, sec)),
        transfer_cost=1e-6,
        frame_capacity=frame_capacity,
    )
    return runtime, charges


class TestConnectorRuntime:
    def test_open_close_pair_once(self):
        consumers = [_Collector(), _Collector()]
        runtime, _ = make_runtime(consumers, producers=2)
        w0 = runtime.writer_for_producer(0)
        w1 = runtime.writer_for_producer(1)
        w0.open()
        w1.open()
        w0.close()
        assert consumers[0].closed == 0  # still one producer open
        w1.close()
        assert all(c.opened == 1 and c.closed == 1 for c in consumers)

    def test_frames_flushed_at_capacity(self):
        consumers = [_Collector()]
        runtime, _ = make_runtime(consumers, strategy=OneToOne(), frame_capacity=2)
        writer = runtime.writer_for_producer(0)
        writer.open()
        writer.next_frame(Frame([{"i": 0}, {"i": 1}, {"i": 2}]))
        assert len(consumers[0].frames) == 1  # first two flushed
        writer.close()
        assert len(consumers[0].records()) == 3

    def test_remaining_buffers_flushed_on_close(self):
        consumers = [_Collector()]
        runtime, _ = make_runtime(consumers, strategy=OneToOne(), frame_capacity=100)
        writer = runtime.writer_for_producer(0)
        writer.open()
        writer.next_frame(Frame([{"i": 0}]))
        assert consumers[0].frames == []
        writer.close()
        assert len(consumers[0].records()) == 1

    def test_cross_node_transfer_charged(self):
        consumers = [_Collector(), _Collector()]
        runtime, charges = make_runtime(consumers, strategy=Broadcast())
        writer = runtime.writer_for_producer(0)
        writer.open()
        writer.next_frame(Frame([{"i": 0}]))
        writer.close()
        # producer on node 0; consumer 0 co-located, consumer 1 remote
        assert charges == [(0, 1e-6)]

    def test_fanout_writer_duplicates(self):
        a, b = _Collector(), _Collector()
        fan = FanOutWriter([a, b])
        fan.open()
        fan.next_frame(Frame([{"i": 1}]))
        fan.close()
        assert a.records() == b.records() == [{"i": 1}]
        assert a.opened == b.opened == 1
