"""Partition holders: bounded queues, EOF, FIFO, registry."""

import pytest

from repro.errors import PartitionHolderError
from repro.hyracks import (
    ActivePartitionHolder,
    Frame,
    PartitionHolderManager,
    PassivePartitionHolder,
)


class TestPassiveHolder:
    def test_fifo_order_preserved(self):
        holder = PassivePartitionHolder("h", 0)
        holder.offer(Frame([{"id": 1}, {"id": 2}]))
        holder.offer(Frame([{"id": 3}]))
        assert [r["id"] for r in holder.poll_batch(10)] == [1, 2, 3]

    def test_partial_frame_split(self):
        holder = PassivePartitionHolder("h", 0)
        holder.offer(Frame([{"id": i} for i in range(5)]))
        first = holder.poll_batch(2)
        second = holder.poll_batch(10)
        assert [r["id"] for r in first] == [0, 1]
        assert [r["id"] for r in second] == [2, 3, 4]

    def test_backpressure_when_full(self):
        holder = PassivePartitionHolder("h", 0, capacity_frames=2)
        assert holder.offer(Frame([{}]))
        assert holder.offer(Frame([{}]))
        assert not holder.offer(Frame([{}]))
        assert holder.rejected == 1

    def test_poll_frees_capacity(self):
        holder = PassivePartitionHolder("h", 0, capacity_frames=1)
        holder.offer(Frame([{}]))
        holder.poll_batch(10)
        assert holder.offer(Frame([{}]))

    def test_no_frames_dropped(self):
        holder = PassivePartitionHolder("h", 0, capacity_frames=100)
        for i in range(50):
            holder.offer(Frame([{"id": i}]))
        got = holder.poll_batch(1000)
        assert [r["id"] for r in got] == list(range(50))

    def test_eof_protocol(self):
        holder = PassivePartitionHolder("h", 0)
        holder.offer(Frame([{}]))
        holder.end()
        assert holder.eof
        assert not holder.drained
        holder.poll_batch(10)
        assert holder.drained

    def test_offer_after_eof_raises(self):
        holder = PassivePartitionHolder("h", 0)
        holder.end()
        with pytest.raises(PartitionHolderError):
            holder.offer(Frame([{}]))

    def test_high_water_tracked(self):
        holder = PassivePartitionHolder("h", 0, capacity_frames=10)
        for _ in range(7):
            holder.offer(Frame([{}]))
        holder.poll_batch(100)
        assert holder.high_water == 7

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            PassivePartitionHolder("h", 0, capacity_frames=0)

    def test_queued_records(self):
        holder = PassivePartitionHolder("h", 0)
        holder.offer(Frame([{}, {}]))
        holder.offer(Frame([{}]))
        assert holder.queued_records == 3

    def test_rejected_counts_every_failed_offer(self):
        holder = PassivePartitionHolder("h", 0, capacity_frames=1)
        holder.offer(Frame([{}]))
        for _ in range(3):
            assert not holder.offer(Frame([{}]))
        assert holder.rejected == 3
        assert holder.offered == 1

    def test_blocked_time_metered(self):
        holder = PassivePartitionHolder("h", 0)
        holder.note_blocked(0.25)
        holder.note_blocked(0.5)
        assert holder.blocked_seconds == pytest.approx(0.75)
        with pytest.raises(ValueError):
            holder.note_blocked(-1.0)

    def test_poll_batch_splits_across_frames_fifo(self):
        holder = PassivePartitionHolder("h", 0)
        holder.offer(Frame([{"id": 0}, {"id": 1}, {"id": 2}]))
        holder.offer(Frame([{"id": 3}, {"id": 4}]))
        assert [r["id"] for r in holder.poll_batch(4)] == [0, 1, 2, 3]
        assert [r["id"] for r in holder.poll_batch(4)] == [4]
        assert holder.pulled_records == 5


class _Recorder:
    def __init__(self):
        self.opened = False
        self.closed = False
        self.frames = []

    def open(self):
        self.opened = True

    def next_frame(self, frame):
        self.frames.append(frame)

    def close(self):
        self.closed = True


class TestActiveHolder:
    def test_pushes_downstream(self):
        rec = _Recorder()
        holder = ActivePartitionHolder("s", 0, rec)
        holder.push(Frame([{"id": 1}]))
        holder.push(Frame([{"id": 2}]))
        holder.close()
        assert rec.opened and rec.closed
        assert holder.received == 2
        assert len(rec.frames) == 2

    def test_open_idempotent(self):
        rec = _Recorder()
        holder = ActivePartitionHolder("s", 0, rec)
        holder.open()
        holder.open()
        holder.push(Frame([{}]))
        assert holder.received == 1


class TestManager:
    def test_register_lookup(self):
        mgr = PartitionHolderManager()
        holder = PassivePartitionHolder("intake", 2)
        mgr.register(holder)
        assert mgr.lookup("intake", 2) is holder

    def test_duplicate_registration_rejected(self):
        mgr = PartitionHolderManager()
        mgr.register(PassivePartitionHolder("h", 0))
        with pytest.raises(PartitionHolderError):
            mgr.register(PassivePartitionHolder("h", 0))

    def test_unknown_lookup_raises(self):
        with pytest.raises(PartitionHolderError):
            PartitionHolderManager().lookup("nope", 0)

    def test_unregister_all_partitions(self):
        mgr = PartitionHolderManager()
        for p in range(3):
            mgr.register(PassivePartitionHolder("h", p))
        mgr.unregister("h")
        with pytest.raises(PartitionHolderError):
            mgr.lookup("h", 1)

    def test_holders_for_sorted(self):
        mgr = PartitionHolderManager()
        for p in [2, 0, 1]:
            mgr.register(PassivePartitionHolder("h", p))
        assert [h.partition for h in mgr.holders_for("h")] == [0, 1, 2]
