"""End-to-end backpressure: a tiny intake buffer must block the intake layer."""

import json

import pytest

from repro.adm import open_type
from repro.cluster import Cluster
from repro.ingestion import DynamicIngestionPipeline, FeedDefinition, GeneratorAdapter
from repro.storage import Dataset


def make_catalog(parts=2):
    return {
        "EnrichedTweets": Dataset(
            "EnrichedTweets", open_type("T", id="int64"), "id",
            num_partitions=parts, validate=False,
        )
    }


def raw_tweets(count):
    return [json.dumps({"id": i, "text": f"tweet {i}"}) for i in range(count)]


class TestBlockedIntake:
    def test_tiny_holder_blocks_intake_and_meters_it(self):
        """With one-frame holders the intake layer must spend time blocked,
        the run must record stalls, and no record may be lost."""
        catalog = make_catalog()
        feed = FeedDefinition(
            "F", "EnrichedTweets", batch_size=32, intake_holder_capacity=1
        )
        report = DynamicIngestionPipeline(Cluster(2), catalog, None).run(
            feed, GeneratorAdapter(raw_tweets(200))
        )
        assert report.records_stored == 200
        assert report.stalls > 0
        metrics = report.runtime
        assert metrics is not None
        assert metrics.layer("intake").blocked > 0.0
        assert metrics.stall_count >= report.stalls
        assert metrics.total_rejected_offers > 0

    def test_roomy_holder_never_blocks(self):
        catalog = make_catalog()
        feed = FeedDefinition(
            "F", "EnrichedTweets", batch_size=32, intake_holder_capacity=64
        )
        report = DynamicIngestionPipeline(Cluster(2), catalog, None).run(
            feed, GeneratorAdapter(raw_tweets(200))
        )
        assert report.records_stored == 200
        assert report.stalls == 0
        assert report.runtime.layer("intake").blocked == 0.0

    def test_backpressure_throttles_throughput(self):
        fast = DynamicIngestionPipeline(Cluster(2), make_catalog(), None).run(
            FeedDefinition("F", "EnrichedTweets", batch_size=32),
            GeneratorAdapter(raw_tweets(200)),
        )
        slow = DynamicIngestionPipeline(Cluster(2), make_catalog(), None).run(
            FeedDefinition(
                "F", "EnrichedTweets", batch_size=32, intake_holder_capacity=1
            ),
            GeneratorAdapter(raw_tweets(200)),
        )
        assert slow.throughput <= fast.throughput
        assert slow.num_computing_jobs >= fast.num_computing_jobs

    def test_holder_high_water_respects_capacity(self):
        catalog = make_catalog()
        feed = FeedDefinition(
            "F", "EnrichedTweets", batch_size=32, intake_holder_capacity=2
        )
        report = DynamicIngestionPipeline(Cluster(2), catalog, None).run(
            feed, GeneratorAdapter(raw_tweets(200))
        )
        intake_holders = [
            h for h in report.runtime.holders if h.kind == "passive"
        ]
        assert intake_holders
        assert all(h.high_water <= 2 for h in intake_holders)
        assert report.runtime.holder_high_water <= 2
