"""Deterministic fault injection: crashes, stalls, channel failures."""

import json

import pytest

from repro.errors import InjectedCrash
from repro.hyracks import Frame, PassivePartitionHolder
from repro.runtime import (
    BLOCKED,
    Advance,
    AdapterFailAt,
    Channel,
    ChannelSendFailure,
    CrashAt,
    FaultPlan,
    HolderDisconnect,
    IntakeBuffer,
    Runtime,
    StallAt,
    Wait,
)


class TestFaultPlan:
    def test_target_matches_layer_name_or_suffix(self):
        plan = FaultPlan(crashes=(CrashAt(at=1.0, target="computing"),))
        assert plan.crashes_for("feed-F.computing", "computing")
        assert plan.crashes_for("computing", "other")  # exact process name
        assert plan.crashes_for("feed-F.computing", "other")  # suffix
        assert not plan.crashes_for("feed-F.intake", "intake")

    def test_negative_times_rejected(self):
        with pytest.raises(ValueError):
            CrashAt(at=-1.0, target="x")
        with pytest.raises(ValueError):
            StallAt(at=0.0, target="x", duration=-1.0)

    def test_empty_plan(self):
        assert FaultPlan().empty
        assert not FaultPlan(crashes=(CrashAt(at=0.0, target="x"),)).empty

    def test_generated_plan_is_seed_determined(self):
        a = FaultPlan.generated(seed=7, horizon_seconds=2.0, num_stalls=2)
        b = FaultPlan.generated(seed=7, horizon_seconds=2.0, num_stalls=2)
        c = FaultPlan.generated(seed=8, horizon_seconds=2.0, num_stalls=2)
        assert a.crashes == b.crashes and a.stalls == b.stalls
        assert a.crashes != c.crashes or a.stalls != c.stalls

    def test_disconnect_window_is_half_open(self):
        plan = FaultPlan(
            disconnects=(
                HolderDisconnect(
                    holder_id="intake-F", partition=0, at=1.0, duration=2.0
                ),
            )
        )
        assert plan.holder_disconnected_until("intake-F", 0, 0.5) is None
        assert plan.holder_disconnected_until("intake-F", 0, 1.0) == 3.0
        assert plan.holder_disconnected_until("intake-F", 0, 2.9) == 3.0
        assert plan.holder_disconnected_until("intake-F", 0, 3.0) is None
        assert plan.holder_disconnected_until("intake-F", 1, 1.5) is None


class TestInjectedCrash:
    def test_crash_delivered_at_scheduled_sim_time(self):
        plan = FaultPlan(crashes=(CrashAt(at=1.5, target="worker"),))
        runtime = Runtime(fault_plan=plan)
        seen = []

        def worker():
            try:
                while True:
                    yield Advance(1.0)
            except InjectedCrash as crash:
                seen.append((runtime.clock.now, crash.fault))

        runtime.spawn("worker", worker())
        runtime.run()
        assert seen == [(1.5, plan.crashes[0])]
        assert runtime.injected_crashes == 1

    def test_uncaught_crash_propagates_to_the_run(self):
        # Without a supervisor (or an in-body handler) an injected crash is
        # fatal, exactly like any other process exception.
        plan = FaultPlan(crashes=(CrashAt(at=0.5, target="worker"),))
        runtime = Runtime(fault_plan=plan)

        def worker():
            while True:
                yield Advance(1.0)

        runtime.spawn("worker", worker())
        with pytest.raises(InjectedCrash):
            runtime.run()

    def test_crash_cancels_pending_resume(self):
        # The worker is mid-Advance when the crash fires; its stale resume
        # entry must not re-enter the generator after the crash unwinds it.
        plan = FaultPlan(crashes=(CrashAt(at=0.5, target="worker"),))
        runtime = Runtime(fault_plan=plan)
        steps = []

        def worker():
            steps.append("start")
            try:
                yield Advance(2.0)
            except InjectedCrash:
                return
            steps.append("resumed")  # must never happen

        runtime.spawn("worker", worker())
        runtime.run()
        assert steps == ["start"]

    def test_crash_cancels_pending_signal_wait(self):
        plan = FaultPlan(crashes=(CrashAt(at=1.0, target="waiter"),))
        runtime = Runtime(fault_plan=plan)
        ready = runtime.signal("ready")
        resumed = []

        def waiter():
            try:
                yield Wait(ready)
            except InjectedCrash:
                return
            resumed.append(runtime.clock.now)  # must never happen

        def notifier():
            yield Advance(2.0)
            ready.notify_all()

        runtime.spawn("waiter", waiter())
        runtime.spawn("notifier", notifier())
        runtime.run()
        assert resumed == []

    def test_late_spawned_process_skips_past_crashes(self):
        # an elastic worker spawned after a scheduled crash time must not
        # receive an interrupt dated before it existed
        plan = FaultPlan(crashes=(CrashAt(at=0.5, target="worker"),))
        runtime = Runtime(fault_plan=plan)
        crashed = []

        def early():
            try:
                yield Advance(2.0)
            except InjectedCrash:
                crashed.append("early")

        def late():
            try:
                yield Advance(1.0)
            except InjectedCrash:
                crashed.append("late")

        def spawner():
            yield Advance(1.0)  # well past the crash schedule
            runtime.spawn("late.worker", late())

        runtime.spawn("early.worker", early())
        runtime.spawn("spawner", spawner())
        runtime.run()
        assert crashed == ["early"]
        assert runtime.injected_crashes == 1

    def test_crash_scheduled_after_process_ends_is_ignored(self):
        plan = FaultPlan(crashes=(CrashAt(at=5.0, target="worker"),))
        runtime = Runtime(fault_plan=plan)

        def worker():
            yield Advance(1.0)

        runtime.spawn("worker", worker())
        # the stale interrupt entry is discarded without advancing the clock
        assert runtime.run() == pytest.approx(1.0)
        assert runtime.injected_crashes == 0


class TestInjectedStall:
    def test_stall_delays_resume_and_accounts_blocked(self):
        plan = FaultPlan(stalls=(StallAt(at=1.0, target="worker", duration=2.0),))
        runtime = Runtime(fault_plan=plan)
        resumes = []

        def worker():
            yield Advance(1.0)
            resumes.append(runtime.clock.now)
            yield Advance(1.0)

        process = runtime.spawn("worker", worker())
        assert runtime.run() == pytest.approx(4.0)
        assert resumes == [3.0]  # resume at t=1.0 delayed by the 2.0s stall
        assert process.totals[BLOCKED] == pytest.approx(2.0)
        assert runtime.injected_stall_seconds == pytest.approx(2.0)

    def test_stall_fires_once(self):
        plan = FaultPlan(stalls=(StallAt(at=0.0, target="worker", duration=1.0),))
        runtime = Runtime(fault_plan=plan)

        def worker():
            for _ in range(3):
                yield Advance(1.0)

        runtime.spawn("worker", worker())
        assert runtime.run() == pytest.approx(4.0)  # 3 busy + 1 stall


class TestChannelSendFailure:
    def test_failed_put_retries_and_succeeds(self):
        plan = FaultPlan(
            channel_failures=(
                ChannelSendFailure(channel="work", put_index=1, retry_seconds=0.5),
            )
        )
        runtime = Runtime(fault_plan=plan)
        channel = Channel(runtime, capacity=4, name="work")
        got = []

        def producer():
            for i in range(3):
                yield from channel.put(i)
            channel.end()

        def consumer():
            while True:
                item = yield from channel.get()
                if item is None:
                    break
                got.append(item)

        producer_proc = runtime.spawn("p", producer())
        runtime.spawn("c", consumer())
        runtime.run()
        assert got == [0, 1, 2]  # at-least-once: nothing lost
        assert channel.send_failures == 1
        assert producer_proc.totals[BLOCKED] == pytest.approx(0.5)

    def test_unrelated_channel_unaffected(self):
        plan = FaultPlan(
            channel_failures=(ChannelSendFailure(channel="other", put_index=0),)
        )
        runtime = Runtime(fault_plan=plan)
        channel = Channel(runtime, capacity=4, name="work")

        def producer():
            yield from channel.put("a")
            channel.end()

        runtime.spawn("p", producer())
        runtime.run()
        assert channel.send_failures == 0


class TestHolderDisconnect:
    def test_producer_waits_out_disconnect(self):
        plan = FaultPlan(
            disconnects=(
                HolderDisconnect(
                    holder_id="intake-test", partition=0, at=0.0, duration=1.5
                ),
            )
        )
        runtime = Runtime(fault_plan=plan)
        holders = [PassivePartitionHolder("intake-test", p, 8) for p in range(2)]
        buffer = IntakeBuffer(runtime, holders)
        deposits = []

        def producer():
            yield from buffer.put(0, Frame([{"id": 0}]))
            deposits.append(runtime.clock.now)
            buffer.end()

        def consumer():
            while True:
                batch = yield from buffer.collect(batch_size=4)
                if batch is None:
                    break

        producer_proc = runtime.spawn("p", producer())
        runtime.spawn("c", consumer())
        runtime.run()
        assert deposits == [1.5]  # deposit waited for the reconnect
        assert producer_proc.totals[BLOCKED] == pytest.approx(1.5)
        assert holders[0].disconnects == 1
        assert holders[0].disconnected_seconds == pytest.approx(1.5)
        assert holders[1].disconnects == 0


class TestAdapterFailure:
    def test_negative_cursor_rejected(self):
        with pytest.raises(ValueError):
            AdapterFailAt(after_records=-1)

    def test_plan_carries_adapter_failures(self):
        fault = AdapterFailAt(after_records=10)
        plan = FaultPlan(adapter_failures=(fault,))
        assert not plan.empty
        assert plan.adapter_failures_indexed() == [(0, fault)]
        assert FaultPlan().adapter_failures_indexed() == []

    def _run_feed(self, adapter, plan, records):
        from repro.core import AsterixLite
        from repro.ingestion import FeedPolicy

        system = AsterixLite(num_nodes=2)
        system.execute(
            """
            CREATE TYPE TweetType AS OPEN { id: int64 };
            CREATE DATASET Tweets(TweetType) PRIMARY KEY id;
            """
        )
        system.create_feed("TweetFeed", {"type-name": "TweetType"})
        system.connect_feed("TweetFeed", "Tweets", policy=FeedPolicy.spill())
        report = system.start_feed(
            "TweetFeed", adapter, batch_size=25, fault_plan=plan
        )
        stored = sorted(r["id"] for r in system.catalog["Tweets"].scan())
        return report, stored

    def test_file_adapter_killed_mid_fetch_resumes_with_no_loss(self, tmp_path):
        from repro.ingestion import FileAdapter

        path = tmp_path / "tweets.json"
        path.write_text(
            "".join(json.dumps({"id": i}) + "\n" for i in range(200))
        )
        plan = FaultPlan(adapter_failures=(AdapterFailAt(after_records=70),))
        report, stored = self._run_feed(FileAdapter(str(path)), plan, 200)
        assert report.faults.adapter_crashes == 1
        assert report.faults.adapter_reopens == 1
        assert report.faults.restarts == 1  # the intake actor came back
        # the re-opened source continued at the cursor: no loss, no dupes
        assert stored == list(range(200))
        assert report.records_ingested == 200

    def test_generator_adapter_resumes_from_live_iterator(self):
        from repro.ingestion import GeneratorAdapter

        plan = FaultPlan(adapter_failures=(AdapterFailAt(after_records=30),))
        adapter = GeneratorAdapter(
            json.dumps({"id": i}) for i in range(100)
        )
        report, stored = self._run_feed(adapter, plan, 100)
        assert report.faults.adapter_crashes == 1
        assert report.faults.adapter_reopens == 1
        assert stored == list(range(100))

    def test_each_adapter_failure_fires_once(self, tmp_path):
        from repro.ingestion import FileAdapter

        path = tmp_path / "tweets.json"
        path.write_text(
            "".join(json.dumps({"id": i}) + "\n" for i in range(150))
        )
        plan = FaultPlan(
            adapter_failures=(
                AdapterFailAt(after_records=40),
                AdapterFailAt(after_records=90),
            )
        )
        report, stored = self._run_feed(FileAdapter(str(path)), plan, 150)
        assert report.faults.adapter_crashes == 2
        assert report.faults.adapter_reopens == 2
        assert stored == list(range(150))


class TestDeterminism:
    def test_identical_plan_replays_identically(self):
        plan = FaultPlan(
            crashes=(CrashAt(at=1.3, target="b"),),
            stalls=(StallAt(at=0.6, target="a", duration=0.4),),
        )

        def run_once():
            runtime = Runtime(fault_plan=plan)
            log = []

            def worker(name, seconds):
                try:
                    for step in range(4):
                        log.append((name, step, runtime.clock.now))
                        yield Advance(seconds)
                except InjectedCrash:
                    log.append((name, "crash", runtime.clock.now))

            runtime.spawn("a", worker("a", 0.7))
            runtime.spawn("b", worker("b", 1.1))
            runtime.run()
            return log, runtime.injected_crashes, runtime.injected_stall_seconds

        assert run_once() == run_once()
