"""The discrete-event kernel: scheduling order, accounting, deadlocks."""

import pytest

from repro.errors import DeadlockError, SchedulingError
from repro.runtime import (
    BLOCKED,
    BUSY,
    IDLE,
    Advance,
    Clock,
    Runtime,
    Wait,
)


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now == 0.0

    def test_advances_forward(self):
        clock = Clock()
        clock.advance_to(1.5)
        assert clock.now == 1.5

    def test_cannot_run_backwards(self):
        clock = Clock(start=2.0)
        with pytest.raises(SchedulingError):
            clock.advance_to(1.0)


class TestEffects:
    def test_negative_advance_rejected(self):
        with pytest.raises(SchedulingError):
            Advance(-0.1)

    def test_unknown_state_rejected(self):
        with pytest.raises(SchedulingError):
            Advance(1.0, state="sleeping")

    def test_non_effect_yield_rejected(self):
        runtime = Runtime()

        def bad():
            yield "not an effect"

        runtime.spawn("bad", bad())
        with pytest.raises(SchedulingError, match="expected Advance or Wait"):
            runtime.run()


class TestScheduling:
    def test_single_process_elapsed(self):
        runtime = Runtime()

        def work():
            yield Advance(1.0)
            yield Advance(2.0)

        runtime.spawn("w", work())
        assert runtime.run() == pytest.approx(3.0)

    def test_concurrent_processes_overlap(self):
        runtime = Runtime()

        def worker(seconds):
            yield Advance(seconds)

        runtime.spawn("fast", worker(1.0))
        runtime.spawn("slow", worker(5.0))
        assert runtime.run() == pytest.approx(5.0)

    def test_same_time_ties_run_fifo(self):
        runtime = Runtime()
        order = []

        def step(name):
            order.append(f"{name}:a")
            yield Advance(1.0)
            order.append(f"{name}:b")

        runtime.spawn("first", step("first"))
        runtime.spawn("second", step("second"))
        runtime.run()
        assert order == ["first:a", "second:a", "first:b", "second:b"]

    def test_signal_wakes_waiter_at_notify_time(self):
        runtime = Runtime()
        ready = runtime.signal("ready")
        seen = []

        def producer():
            yield Advance(2.0)
            ready.notify_all()

        def consumer():
            yield Wait(ready)
            seen.append(runtime.clock.now)

        runtime.spawn("p", producer())
        runtime.spawn("c", consumer())
        runtime.run()
        assert seen == [2.0]

    def test_busy_idle_blocked_accounted(self):
        runtime = Runtime()
        ready = runtime.signal("ready")

        def producer():
            yield Advance(3.0)
            ready.notify_all()

        def consumer():
            yield Wait(ready, state=BLOCKED)
            yield Advance(1.0)

        runtime.spawn("p", producer())
        consumer_proc = runtime.spawn("c", consumer())
        runtime.run()
        assert consumer_proc.totals[BLOCKED] == pytest.approx(3.0)
        assert consumer_proc.totals[BUSY] == pytest.approx(1.0)
        assert consumer_proc.totals[IDLE] == 0.0

    def test_timeline_merges_adjacent_same_state(self):
        runtime = Runtime()

        def work():
            yield Advance(1.0)
            yield Advance(1.0)
            yield Advance(2.0, state=IDLE)

        process = runtime.spawn("w", work())
        runtime.run()
        assert process.timeline == [(BUSY, 0.0, 2.0), (IDLE, 2.0, 4.0)]

    def test_deadlock_detected_and_named(self):
        runtime = Runtime()
        never = runtime.signal("never")

        def stuck():
            yield Wait(never)

        runtime.spawn("stuck-one", stuck())
        with pytest.raises(DeadlockError, match="stuck-one"):
            runtime.run()

    def test_process_exception_propagates(self):
        runtime = Runtime()

        def boom():
            yield Advance(1.0)
            raise RuntimeError("kaboom")

        runtime.spawn("b", boom())
        with pytest.raises(RuntimeError, match="kaboom"):
            runtime.run()

    def test_shared_clock_offsets_epoch(self):
        clock = Clock()
        first = Runtime(clock)

        def work():
            yield Advance(2.0)

        first.spawn("w", work())
        assert first.run() == pytest.approx(2.0)
        second = Runtime(clock)
        second.spawn("w", work())
        # elapsed is relative to each runtime's epoch on the shared axis
        assert second.run() == pytest.approx(2.0)
        assert clock.now == pytest.approx(4.0)

    def test_side_effect_order_is_deterministic(self):
        def run_once():
            runtime = Runtime()
            order = []

            def worker(name, seconds):
                for step in range(3):
                    order.append((name, step, runtime.clock.now))
                    yield Advance(seconds)

            runtime.spawn("a", worker("a", 0.7))
            runtime.spawn("b", worker("b", 1.1))
            runtime.spawn("c", worker("c", 0.7))
            runtime.run()
            return order

        assert run_once() == run_once()
