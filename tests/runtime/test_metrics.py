"""RuntimeMetrics assembly: layer aggregation, holder stats, histograms."""

import pytest

from repro.hyracks import ActivePartitionHolder, Frame, PassivePartitionHolder
from repro.runtime import (
    BLOCKED,
    BUSY,
    IDLE,
    Advance,
    LayerTimes,
    Runtime,
    RuntimeMetrics,
    Wait,
)


class _Sink:
    def open(self):
        pass

    def next_frame(self, frame):
        pass

    def close(self):
        pass


def run_two_layer_runtime():
    """Two intake processes plus one computing process, known totals."""
    runtime = Runtime()
    done = runtime.signal("done")

    def intake(seconds):
        yield Advance(seconds)
        yield Advance(1.0, state=IDLE)

    def computing():
        yield Wait(done, state=BLOCKED)

    runtime.spawn("intake-0", intake(2.0), layer="intake")
    runtime.spawn("intake-1", intake(3.0), layer="intake")

    def finisher():
        yield Advance(4.0)
        done.notify_all()

    runtime.spawn("computing-0", computing(), layer="computing")
    runtime.spawn("finisher", finisher(), layer="computing")
    runtime.run()
    return runtime


class TestFromRuntime:
    def test_layers_aggregate_across_processes(self):
        runtime = run_two_layer_runtime()
        metrics = RuntimeMetrics.from_runtime(runtime)
        intake = metrics.layer("intake")
        assert intake.busy == pytest.approx(5.0)  # 2.0 + 3.0
        assert intake.idle == pytest.approx(2.0)  # 1.0 + 1.0
        computing = metrics.layer("computing")
        assert computing.blocked == pytest.approx(4.0)
        assert computing.busy == pytest.approx(4.0)  # the finisher

    def test_per_process_totals_and_timelines_kept(self):
        runtime = run_two_layer_runtime()
        metrics = RuntimeMetrics.from_runtime(runtime)
        assert metrics.processes["intake-0"].busy == pytest.approx(2.0)
        assert metrics.timelines["intake-0"] == [
            (BUSY, 0.0, 2.0),
            (IDLE, 2.0, 3.0),
        ]
        assert metrics.timelines["computing-0"][0][0] == BLOCKED

    def test_makespan_and_fill_drain(self):
        runtime = run_two_layer_runtime()
        metrics = RuntimeMetrics.from_runtime(runtime, steady_state_seconds=3.0)
        assert metrics.makespan_seconds == pytest.approx(4.0)
        assert metrics.fill_drain_seconds == pytest.approx(1.0)

    def test_unknown_layer_is_zeroed(self):
        metrics = RuntimeMetrics.from_runtime(run_two_layer_runtime())
        missing = metrics.layer("storage")
        assert (missing.busy, missing.idle, missing.blocked) == (0.0, 0.0, 0.0)

    def test_holder_stats_captured(self):
        passive = PassivePartitionHolder("intake-x", 0, capacity_frames=1)
        passive.offer(Frame([{}]))
        passive.offer(Frame([{}]))  # rejected
        passive.note_blocked(0.5)
        active = ActivePartitionHolder("storage-x", 1, _Sink())
        active.push(Frame([{}, {}]))
        metrics = RuntimeMetrics.from_runtime(
            Runtime(), holders=[passive, active]
        )
        by_id = {h.holder_id: h for h in metrics.holders}
        assert by_id["intake-x"].kind == "passive"
        assert by_id["intake-x"].high_water == 1
        assert by_id["intake-x"].rejected == 1
        assert by_id["intake-x"].blocked_seconds == pytest.approx(0.5)
        assert by_id["storage-x"].kind == "active"
        assert by_id["storage-x"].received == 2
        assert metrics.holder_high_water == 1
        assert metrics.total_rejected_offers == 1


class TestLayerTimes:
    def test_total_and_utilization(self):
        times = LayerTimes(busy=3.0, idle=1.0, blocked=2.0)
        assert times.total == pytest.approx(6.0)
        assert times.utilization(10.0) == pytest.approx(0.3)
        assert times.utilization(0.0) == 0.0


class TestLatencyHistogram:
    def make(self, latencies):
        return RuntimeMetrics(
            makespan_seconds=1.0,
            fill_drain_seconds=0.0,
            batch_latencies_seconds=latencies,
        )

    def test_empty_latencies_empty_histogram(self):
        assert self.make([]).latency_histogram() == []

    def test_linear_bins_cover_range(self):
        hist = self.make([0.5, 1.5, 2.5, 3.5]).latency_histogram(bins=4)
        assert [upper for upper, _ in hist] == [0.875, 1.75, 2.625, 3.5]
        assert sum(count for _, count in hist) == 4
        assert hist[-1][1] == 1  # the max lands in the last bin

    def test_all_zero_latencies_collapse(self):
        assert self.make([0.0, 0.0]).latency_histogram() == [(0.0, 2)]

    def test_bins_validated(self):
        with pytest.raises(ValueError):
            self.make([1.0]).latency_histogram(bins=0)

    def test_deterministic(self):
        metrics = self.make([0.2, 0.4, 0.4, 0.9])
        assert metrics.latency_histogram() == metrics.latency_histogram()


class TestDescribe:
    def test_mentions_every_layer(self):
        metrics = RuntimeMetrics.from_runtime(run_two_layer_runtime())
        text = metrics.describe()
        assert "intake" in text
        assert "computing" in text
        assert "stall" in text
