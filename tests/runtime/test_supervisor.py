"""Supervised recovery: restarts, backoff, budgets, replayed state."""

import pytest

from repro.errors import FeedFailedError
from repro.runtime import (
    BLOCKED,
    Advance,
    CrashAt,
    FaultPlan,
    RestartPolicy,
    Runtime,
    Supervisor,
)


class TestRestartPolicy:
    def test_backoff_grows_exponentially_and_caps(self):
        policy = RestartPolicy(
            max_restarts=10,
            backoff_initial_seconds=0.1,
            backoff_multiplier=2.0,
            backoff_max_seconds=0.5,
        )
        assert policy.backoff_at(1) == pytest.approx(0.1)
        assert policy.backoff_at(2) == pytest.approx(0.2)
        assert policy.backoff_at(3) == pytest.approx(0.4)
        assert policy.backoff_at(4) == pytest.approx(0.5)  # capped
        assert policy.backoff_at(9) == pytest.approx(0.5)


class TestSupervisor:
    def test_crashed_actor_restarts_and_completes(self):
        plan = FaultPlan(crashes=(CrashAt(at=1.5, target="worker"),))
        runtime = Runtime(fault_plan=plan)
        supervisor = Supervisor(runtime, RestartPolicy(backoff_initial_seconds=0.25))
        # Un-acked work lives in closure state: the restarted body resumes
        # from the last acked step instead of starting over.
        state = {"next_step": 0, "log": []}

        def body_factory():
            while state["next_step"] < 5:
                state["log"].append((state["next_step"], runtime.clock.now))
                yield Advance(0.5)
                state["next_step"] += 1

        process = supervisor.spawn("worker", body_factory)
        runtime.run()
        assert state["next_step"] == 5
        stats = supervisor.stats["worker"]
        assert stats.crashes == 1 and stats.restarts == 1
        assert stats.backoff_seconds == pytest.approx(0.25)
        assert not stats.gave_up
        # step 2's Advance ends exactly at the crash (t=1.5); the crash
        # fires first (it was scheduled earlier), so step 2 was never acked
        # and replays after the 0.25s backoff
        steps = [s for s, _ in state["log"]]
        assert steps == [0, 1, 2, 2, 3, 4]
        assert process.crashes_received == 1
        assert process.totals[BLOCKED] == pytest.approx(0.25)

    def test_budget_exhausted_escalates(self):
        plan = FaultPlan(
            crashes=(
                CrashAt(at=0.2, target="worker"),
                CrashAt(at=0.4, target="worker"),
            )
        )
        runtime = Runtime(fault_plan=plan)
        supervisor = Supervisor(
            runtime, RestartPolicy(max_restarts=1, backoff_initial_seconds=0.01)
        )

        def body_factory():
            while True:
                yield Advance(0.1)

        supervisor.spawn("worker", body_factory)
        with pytest.raises(FeedFailedError, match="restart budget"):
            runtime.run()
        assert supervisor.stats["worker"].gave_up
        assert supervisor.stats["worker"].crashes == 2

    def test_crash_during_backoff_absorbed_as_another_attempt(self):
        # Second crash lands at t=0.3, while the actor is still waiting out
        # the 1.0s backoff from the first crash at t=0.2.
        plan = FaultPlan(
            crashes=(
                CrashAt(at=0.2, target="worker"),
                CrashAt(at=0.3, target="worker"),
            )
        )
        runtime = Runtime(fault_plan=plan)
        supervisor = Supervisor(
            runtime, RestartPolicy(max_restarts=3, backoff_initial_seconds=1.0)
        )
        done = []

        def body_factory():
            while runtime.clock.now < 3.0:
                yield Advance(0.1)
            done.append(True)

        supervisor.spawn("worker", body_factory)
        runtime.run()
        assert done == [True]
        assert supervisor.stats["worker"].crashes == 2
        assert supervisor.stats["worker"].restarts == 2

    def test_per_actor_policy_override(self):
        plan = FaultPlan(crashes=(CrashAt(at=0.05, target="fragile"),))
        runtime = Runtime(fault_plan=plan)
        supervisor = Supervisor(runtime, RestartPolicy(max_restarts=5))

        def body_factory():
            while True:
                yield Advance(0.1)

        supervisor.spawn(
            "fragile", body_factory, restart_policy=RestartPolicy(max_restarts=0)
        )
        with pytest.raises(FeedFailedError):
            runtime.run()

    def test_totals_aggregate_across_actors(self):
        plan = FaultPlan(
            crashes=(CrashAt(at=0.15, target="a"), CrashAt(at=0.25, target="b"))
        )
        runtime = Runtime(fault_plan=plan)
        supervisor = Supervisor(
            runtime, RestartPolicy(backoff_initial_seconds=0.1)
        )
        progress = {"a": 0, "b": 0}

        def make_body(name):
            def body():
                while progress[name] < 4:
                    yield Advance(0.1)
                    progress[name] += 1

            return body

        supervisor.spawn("a", make_body("a"))
        supervisor.spawn("b", make_body("b"))
        runtime.run()
        assert supervisor.total_crashes == 2
        assert supervisor.total_restarts == 2
        assert supervisor.total_backoff_seconds == pytest.approx(0.2)


class TestReplayDeterminism:
    def test_same_seeded_plan_same_recovery_trace(self):
        def run_once():
            plan = FaultPlan.generated(
                seed=42, horizon_seconds=1.0, crash_targets=("worker",)
            )
            runtime = Runtime(fault_plan=plan)
            supervisor = Supervisor(
                runtime, RestartPolicy(backoff_initial_seconds=0.05)
            )
            state = {"next": 0, "trace": []}

            def body_factory():
                while state["next"] < 20:
                    state["trace"].append((state["next"], runtime.clock.now))
                    yield Advance(0.1)
                    state["next"] += 1

            supervisor.spawn("worker", body_factory)
            elapsed = runtime.run()
            stats = supervisor.stats["worker"]
            return state["trace"], elapsed, stats.crashes, stats.restarts

        assert run_once() == run_once()


class TestPerActorRestartBudgets:
    """Each actor consumes only its own restart budget (not a shared pool)."""

    def test_two_concurrently_crashing_actors_have_independent_budgets(self):
        # Both actors crash twice; a shared budget of 2 would be exhausted
        # by their combined 4 attempts, but per-actor accounting lets both
        # recover and finish.
        plan = FaultPlan(
            crashes=(
                CrashAt(at=0.15, target="a"),
                CrashAt(at=0.17, target="b"),
                CrashAt(at=0.45, target="a"),
                CrashAt(at=0.47, target="b"),
            )
        )
        runtime = Runtime(fault_plan=plan)
        supervisor = Supervisor(
            runtime, RestartPolicy(max_restarts=2, backoff_initial_seconds=0.01)
        )
        progress = {"a": 0, "b": 0}

        def make_body(name):
            def body():
                while progress[name] < 8:
                    yield Advance(0.1)
                    progress[name] += 1

            return body

        supervisor.spawn("a", make_body("a"))
        supervisor.spawn("b", make_body("b"))
        runtime.run()
        assert progress == {"a": 8, "b": 8}
        for name in ("a", "b"):
            stats = supervisor.stats[name]
            assert stats.crashes == 2
            assert stats.restarts == 2
            assert not stats.gave_up

    def test_one_actor_exhausting_its_budget_does_not_charge_the_other(self):
        # "a" crashes three times against a budget of 2 and escalates;
        # "b" crashes once and must still have budget left when it does.
        plan = FaultPlan(
            crashes=(
                CrashAt(at=0.12, target="a"),
                CrashAt(at=0.14, target="b"),
                CrashAt(at=0.32, target="a"),
                CrashAt(at=0.52, target="a"),
            )
        )
        runtime = Runtime(fault_plan=plan)
        supervisor = Supervisor(
            runtime, RestartPolicy(max_restarts=2, backoff_initial_seconds=0.01)
        )

        def body_factory():
            while True:
                yield Advance(0.1)

        supervisor.spawn("a", body_factory)
        supervisor.spawn("b", body_factory)
        with pytest.raises(FeedFailedError, match="restart budget"):
            runtime.run()
        assert supervisor.stats["a"].gave_up
        assert supervisor.stats["a"].crashes == 3
        assert not supervisor.stats["b"].gave_up
        assert supervisor.stats["b"].crashes == 1
        assert supervisor.stats["b"].restarts == 1
