"""Enricher fault plans and byte-identical external enrichment replays."""

import json

import pytest

from repro.core import AsterixLite
from repro.ingestion import (
    EnricherBinding,
    EnrichmentCoordinator,
    ExternalEnricher,
    FeedPolicy,
    GeneratorAdapter,
)
from repro.runtime import (
    EnricherFlaky,
    EnricherOutage,
    EnricherSlowdown,
    FaultPlan,
)


class TestEnricherFaultPlan:
    def test_validation(self):
        with pytest.raises(ValueError):
            EnricherOutage("geo", at=-1.0, duration=1.0)
        with pytest.raises(ValueError):
            EnricherOutage("geo", at=0.0, duration=1.0, mode="explode")
        with pytest.raises(ValueError):
            EnricherSlowdown("geo", at=0.0, duration=1.0, factor=0.0)
        with pytest.raises(ValueError):
            EnricherFlaky("geo", rate=1.5)

    def test_enricher_faults_count_against_empty(self):
        assert FaultPlan().empty
        plan = FaultPlan(
            enricher_faults=[EnricherOutage("geo", at=0.0, duration=1.0)]
        )
        assert not plan.empty

    def test_outage_window_is_half_open_and_name_scoped(self):
        outage = EnricherOutage("geo", at=1.0, duration=2.0)
        plan = FaultPlan(enricher_faults=[outage])
        assert plan.enricher_outage("geo", 0.9) is None
        assert plan.enricher_outage("geo", 1.0) is outage
        assert plan.enricher_outage("geo", 2.9) is outage
        assert plan.enricher_outage("geo", 3.0) is None
        assert plan.enricher_outage("ip", 1.5) is None

    def test_earliest_listed_outage_wins_on_overlap(self):
        first = EnricherOutage("geo", at=0.0, duration=5.0, mode="error")
        second = EnricherOutage("geo", at=1.0, duration=5.0, mode="timeout")
        plan = FaultPlan(enricher_faults=[first, second])
        assert plan.enricher_outage("geo", 2.0) is first

    def test_overlapping_slowdowns_compound(self):
        plan = FaultPlan(
            enricher_faults=[
                EnricherSlowdown("geo", at=0.0, duration=2.0, factor=3.0),
                EnricherSlowdown("geo", at=1.0, duration=2.0, factor=4.0),
            ]
        )
        assert plan.enricher_latency_factor("geo", 0.5) == pytest.approx(3.0)
        assert plan.enricher_latency_factor("geo", 1.5) == pytest.approx(12.0)
        assert plan.enricher_latency_factor("geo", 2.5) == pytest.approx(4.0)
        assert plan.enricher_latency_factor("geo", 9.0) == pytest.approx(1.0)

    def test_flaky_defaults_to_an_unbounded_window(self):
        flaky = EnricherFlaky("geo", rate=0.3)
        plan = FaultPlan(enricher_faults=[flaky])
        assert plan.enricher_flaky("geo", 0.0) is flaky
        assert plan.enricher_flaky("geo", 1e12) is flaky
        assert plan.enricher_flaky("other", 0.0) is None


def chaos_plan():
    return FaultPlan(
        enricher_faults=[
            EnricherOutage("geo", at=0.0, duration=0.02, mode="error"),
            EnricherSlowdown("geo", at=0.03, duration=0.02, factor=20.0),
            EnricherFlaky("geo", rate=0.3, mode="timeout", at=0.05),
        ]
    )


class TestCoordinatorDeterminism:
    def _run_once(self):
        enricher = ExternalEnricher("geo", seed=11)
        coordinator = EnrichmentCoordinator(
            [EnricherBinding(enricher, "user", "user_geo")],
            FeedPolicy.spill(
                external_chunk_size=2,
                external_breaker_failures=2,
                external_breaker_reset_seconds=0.01,
                external_max_attempts=2,
            ),
            fault_plan=chaos_plan(),
            feed_name="F",
        )
        elapsed = []
        for batch in range(6):
            records = [
                {"id": batch * 20 + i, "user": f"u{i % 7}"} for i in range(20)
            ]
            elapsed.append(
                coordinator.enrich_batch([records], now=batch * 0.012)
            )
        return {
            "call_log": enricher.call_log,
            "transitions": coordinator.breaker_transitions,
            "metrics": coordinator.finalize().as_dict(),
            "elapsed": elapsed,
            "completeness": coordinator.completeness,
        }

    def test_identical_runs_replay_byte_identically(self):
        a, b = self._run_once(), self._run_once()
        assert json.dumps(a, sort_keys=True, default=str) == json.dumps(
            b, sort_keys=True, default=str
        )
        # the run actually exercised the stack it claims to replay
        assert a["metrics"]["retries"] > 0
        assert a["metrics"]["breaker_opens"] >= 1
        assert {s for _t, s in a["transitions"]["geo"]} >= {"closed", "open"}

    def test_enricher_seed_perturbs_the_schedule(self):
        def with_seed(seed):
            enricher = ExternalEnricher("geo", seed=seed)
            coordinator = EnrichmentCoordinator(
                [EnricherBinding(enricher, "user", "user_geo")],
                FeedPolicy.spill(external_chunk_size=1),
                fault_plan=FaultPlan(
                    enricher_faults=[EnricherFlaky("geo", rate=0.5)]
                ),
            )
            records = [{"id": i, "user": f"u{i}"} for i in range(20)]
            coordinator.enrich_batch([records], now=0.0)
            return enricher.call_log

        assert with_seed(1) == with_seed(1)
        assert with_seed(1) != with_seed(2)


class TestFeedDeterminism:
    def _run_feed(self):
        system = AsterixLite(num_nodes=2)
        system.execute(
            """
            CREATE TYPE TweetType AS OPEN { id: int64 };
            CREATE DATASET Tweets(TweetType) PRIMARY KEY id;
            """
        )
        system.create_feed("TweetFeed", {"type-name": "TweetType"})
        enricher = ExternalEnricher("geo", seed=5)
        system.connect_feed(
            "TweetFeed",
            "Tweets",
            policy=FeedPolicy.spill(
                external_breaker_failures=2,
                external_breaker_reset_seconds=0.01,
                external_max_attempts=2,
            ),
            external_enrichers=[EnricherBinding(enricher, "user", "user_geo")],
        )
        raws = [
            json.dumps({"id": i, "user": f"u{i % 9}"}) for i in range(200)
        ]
        report = system.start_feed(
            "TweetFeed",
            GeneratorAdapter(raws),
            batch_size=25,
            fault_plan=chaos_plan(),
        )
        rows = [
            json.dumps(r, sort_keys=True, default=str)
            for r in system.catalog["Tweets"].scan()
        ]
        return {
            "external": report.external.as_dict(),
            "faults": report.faults.as_dict(),
            "simulated_seconds": report.simulated_seconds,
            "completeness": report.enrichment_completeness,
            "stored": rows,
            "call_log": enricher.call_log,
        }

    def test_feed_runs_with_identical_plans_are_byte_identical(self):
        a, b = self._run_feed(), self._run_feed()
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
        # chaos really happened and ingestion still held every record
        assert a["external"]["errors"] > 0
        assert len(a["stored"]) == 200
