"""Bounded channels and the intake buffer: blocking, EOF, drain rules."""

import pytest

from repro.errors import PartitionHolderError
from repro.hyracks import Frame, PassivePartitionHolder
from repro.runtime import (
    CANCELLED,
    Advance,
    Channel,
    IntakeBuffer,
    Runtime,
    Sequencer,
)


def drain(generator):
    """Run a no-effect generator to completion; returns its return value."""
    try:
        while True:
            next(generator)
    except StopIteration as stop:
        return stop.value


class TestChannel:
    def test_put_get_fifo(self):
        runtime = Runtime()
        channel = Channel(runtime, capacity=4)
        got = []

        def producer():
            for i in range(3):
                yield from channel.put(i)
            channel.end()

        def consumer():
            while True:
                item = yield from channel.get()
                if item is None:
                    break
                got.append(item)

        runtime.spawn("p", producer())
        runtime.spawn("c", consumer())
        runtime.run()
        assert got == [0, 1, 2]

    def test_put_blocks_when_full(self):
        runtime = Runtime()
        channel = Channel(runtime, capacity=1)
        drained_at = []

        def producer():
            yield from channel.put("a")
            yield from channel.put("b")  # blocks until the consumer drains
            channel.end()

        def consumer():
            yield Advance(5.0)
            while True:
                item = yield from channel.get()
                if item is None:
                    break
                drained_at.append((item, runtime.clock.now))

        runtime.spawn("p", producer())
        runtime.spawn("c", consumer())
        runtime.run()
        assert channel.stalls == 1
        assert channel.high_water == 1
        assert [item for item, _ in drained_at] == ["a", "b"]

    def test_get_returns_none_at_eof(self):
        runtime = Runtime()
        channel = Channel(runtime, capacity=2)
        results = []

        def consumer():
            results.append((yield from channel.get()))

        channel.end()
        runtime.spawn("c", consumer())
        runtime.run()
        assert results == [None]

    def test_put_after_end_raises(self):
        runtime = Runtime()
        channel = Channel(runtime, capacity=2)
        channel.end()

        def producer():
            yield from channel.put("x")

        runtime.spawn("p", producer())
        with pytest.raises(PartitionHolderError):
            runtime.run()

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            Channel(Runtime(), capacity=0)


def make_buffer(runtime, partitions=2, capacity_frames=2):
    holders = [
        PassivePartitionHolder("intake-test", p, capacity_frames)
        for p in range(partitions)
    ]
    return IntakeBuffer(runtime, holders), holders


class TestIntakeBuffer:
    def test_put_blocks_and_meters_backpressure(self):
        runtime = Runtime()
        buffer, holders = make_buffer(runtime, partitions=1, capacity_frames=1)
        batches = []

        def producer():
            yield from buffer.put(0, Frame([{"id": 0}]))
            yield from buffer.put(0, Frame([{"id": 1}]))  # holder full: blocks
            buffer.end()

        def consumer():
            yield Advance(2.0)  # producer is stuck for these 2 seconds
            while True:
                batch = yield from buffer.collect(batch_size=4)
                if batch is None:
                    break
                batches.append(batch)

        runtime.spawn("p", producer())
        runtime.spawn("c", consumer())
        runtime.run()
        assert buffer.stalls == 1
        assert holders[0].rejected >= 1
        assert holders[0].blocked_seconds == pytest.approx(2.0)
        assert sum(len(p) for batch in batches for p in batch) == 2

    def test_collect_balances_across_partitions(self):
        runtime = Runtime()
        buffer, _holders = make_buffer(runtime, partitions=2, capacity_frames=8)
        batches = []

        def producer():
            for i in range(8):
                yield from buffer.put(i % 2, Frame([{"id": i}]))
            buffer.end()

        def consumer():
            while True:
                batch = yield from buffer.collect(batch_size=8)
                if batch is None:
                    break
                batches.append(batch)

        runtime.spawn("p", producer())
        runtime.spawn("c", consumer())
        runtime.run()
        assert len(batches) == 1
        assert [len(p) for p in batches[0]] == [4, 4]

    def test_smaller_buffer_than_batch_drains_not_deadlocks(self):
        """A bounded buffer below batch size must throttle, not deadlock."""
        runtime = Runtime()
        buffer, _holders = make_buffer(runtime, partitions=1, capacity_frames=1)
        collected = []

        def producer():
            for i in range(6):
                yield from buffer.put(0, Frame([{"id": i}]))
            buffer.end()

        def consumer():
            while True:
                batch = yield from buffer.collect(batch_size=100)
                if batch is None:
                    break
                collected.extend(r["id"] for p in batch for r in p)
                yield Advance(1.0)

        runtime.spawn("p", producer())
        runtime.spawn("c", consumer())
        runtime.run()  # would raise DeadlockError if the drain rule failed
        assert collected == list(range(6))

    def test_partial_final_batch_after_eof(self):
        runtime = Runtime()
        buffer, _holders = make_buffer(runtime, partitions=2, capacity_frames=8)
        sizes = []

        def producer():
            for i in range(5):
                yield from buffer.put(i % 2, Frame([{"id": i}]))
            buffer.end()

        def consumer():
            while True:
                batch = yield from buffer.collect(batch_size=4)
                if batch is None:
                    break
                sizes.append(sum(len(p) for p in batch))

        runtime.spawn("p", producer())
        runtime.spawn("c", consumer())
        runtime.run()
        assert sizes == [4, 1]

    def test_collect_on_empty_ended_buffer_returns_none(self):
        runtime = Runtime()
        buffer, _holders = make_buffer(runtime)
        results = []

        def consumer():
            results.append((yield from buffer.collect(batch_size=4)))

        buffer.end()
        runtime.spawn("c", consumer())
        runtime.run()
        assert results == [None]

    def test_collect_cancel_returns_sentinel_before_waiting(self):
        runtime = Runtime()
        buffer, _holders = make_buffer(runtime)
        results = []

        def consumer():
            results.append(
                (yield from buffer.collect(batch_size=4, cancel=lambda: True))
            )

        runtime.spawn("c", consumer())
        runtime.run()
        assert results == [CANCELLED]

    def test_kick_wakes_idle_collector_to_see_cancel(self):
        # an idle collector blocked on an empty buffer must notice a
        # shrink token once kicked — the elastic scale-down handshake
        runtime = Runtime()
        buffer, _holders = make_buffer(runtime)
        flag = {"cancel": False}
        results = []

        def consumer():
            results.append(
                (
                    yield from buffer.collect(
                        batch_size=4, cancel=lambda: flag["cancel"]
                    )
                )
            )

        def controller():
            yield Advance(1.0)
            flag["cancel"] = True
            buffer.kick()

        runtime.spawn("c", consumer())
        runtime.spawn("ctl", controller())
        runtime.run()
        assert results == [CANCELLED]
        assert runtime.clock.now == pytest.approx(1.0)

    def test_occupancy_counts_queued_frames(self):
        runtime = Runtime()
        buffer, _holders = make_buffer(runtime, partitions=2, capacity_frames=2)
        assert buffer.occupancy == 0.0

        def producer():
            yield from buffer.put(0, Frame([{"id": 0}]))
            yield from buffer.put(1, Frame([{"id": 1}]))
            buffer.end()

        runtime.spawn("p", producer())
        runtime.run()
        assert buffer.queued_frames == 2
        assert buffer.capacity_frames == 4
        assert buffer.occupancy == pytest.approx(0.5)


class TestSequencer:
    def test_in_order_batches_release_immediately(self):
        released = []
        sequencer = Sequencer(released.append)
        assert drain(sequencer.put(0, "a")) == [(0, None)]
        assert drain(sequencer.put(1, "b")) == [(1, None)]
        assert released == ["a", "b"]
        assert sequencer.reordered == 0

    def test_out_of_order_batches_stash_until_gap_fills(self):
        released = []
        sequencer = Sequencer(released.append)
        assert drain(sequencer.put(2, "c")) == []
        assert drain(sequencer.put(1, "b")) == []
        assert released == []
        out = drain(sequencer.put(0, "a"))
        assert [index for index, _r in out] == [0, 1, 2]
        assert released == ["a", "b", "c"]
        assert sequencer.reordered == 2
        assert sequencer.next_index == 3

    def test_duplicate_index_re_releases_for_replay(self):
        # a crash-replayed batch re-arrives under its original index after
        # the sequencer already advanced past it: release again (the
        # at-least-once contract; pk-upsert dedups downstream)
        released = []
        sequencer = Sequencer(released.append)
        drain(sequencer.put(0, "a"))
        out = drain(sequencer.put(0, "a-replayed"))
        assert out == [(0, None)]
        assert released == ["a", "a-replayed"]
        assert sequencer.next_index == 1  # replay does not advance the head

    def test_release_results_flow_through(self):
        sequencer = Sequencer(lambda payload: payload.upper())
        assert drain(sequencer.put(0, "a")) == [(0, "A")]

    def test_channel_hand_off_preserves_index_order(self):
        runtime = Runtime()
        channel = Channel(runtime, capacity=8)
        sequencer = Sequencer(lambda payload: payload, channel)
        got = []

        def producer():
            for index, payload in [(1, "b"), (2, "c"), (0, "a")]:
                yield from sequencer.put(index, payload)
            channel.end()

        def consumer():
            while True:
                item = yield from channel.get()
                if item is None:
                    break
                got.append(item)

        runtime.spawn("p", producer())
        runtime.spawn("c", consumer())
        runtime.run()
        assert got == ["a", "b", "c"]


class TestSequencerSubBatches:
    """Sub-batch accumulation: merge in sub order, release in index order."""

    def test_subbatches_release_only_when_complete(self):
        released = []
        sequencer = Sequencer(released.append, merge="".join)
        assert drain(sequencer.put(0, "a", sub_index=0, num_subs=3)) == []
        assert drain(sequencer.put(0, "b", sub_index=1, num_subs=3)) == []
        assert released == []
        out = drain(sequencer.put(0, "c", sub_index=2, num_subs=3))
        assert out == [(0, None)]
        assert released == ["abc"]
        assert sequencer.subbatch_merges == 1

    def test_subbatches_merge_in_sub_order_not_arrival_order(self):
        released = []
        sequencer = Sequencer(released.append, merge="".join)
        drain(sequencer.put(0, "c", sub_index=2, num_subs=3))
        drain(sequencer.put(0, "a", sub_index=0, num_subs=3))
        drain(sequencer.put(0, "b", sub_index=1, num_subs=3))
        assert released == ["abc"]

    def test_split_and_unsplit_indices_interleave_in_index_order(self):
        released = []
        sequencer = Sequencer(released.append, merge="".join)
        # index 1 (split) completes before index 0 (unsplit) arrives
        drain(sequencer.put(1, "y", sub_index=1, num_subs=2))
        drain(sequencer.put(1, "x", sub_index=0, num_subs=2))
        assert released == []
        out = drain(sequencer.put(0, "w"))
        assert [index for index, _r in out] == [0, 1]
        assert released == ["w", "xy"]
        assert sequencer.next_index == 2

    def test_replayed_subindex_overwrites_idempotently(self):
        # a crashed worker re-puts its un-acked sub-batch: the slot is
        # overwritten, not double-counted, and the merge stays correct
        released = []
        sequencer = Sequencer(released.append, merge="".join)
        drain(sequencer.put(0, "a", sub_index=0, num_subs=2))
        drain(sequencer.put(0, "a", sub_index=0, num_subs=2))  # replay
        assert released == []
        drain(sequencer.put(0, "b", sub_index=1, num_subs=2))
        assert released == ["ab"]
        assert sequencer.subbatch_merges == 1

    def test_default_merge_returns_parts_list(self):
        released = []
        sequencer = Sequencer(released.append)  # no merge callable
        drain(sequencer.put(0, "a", sub_index=0, num_subs=2))
        drain(sequencer.put(0, "b", sub_index=1, num_subs=2))
        assert released == [["a", "b"]]

    def test_subbatch_replay_after_release_re_releases(self):
        # sub arrives for an index the sequencer already released (worker
        # crashed after its put but before acking): at-least-once re-release
        released = []
        sequencer = Sequencer(released.append, merge="".join)
        drain(sequencer.put(0, "a", sub_index=0, num_subs=2))
        drain(sequencer.put(0, "b", sub_index=1, num_subs=2))
        out = drain(sequencer.put(0, "b", sub_index=1, num_subs=2))
        assert out == [(0, None)]
        assert released == ["ab", "b"]
        assert sequencer.next_index == 1


class TestIntakeBufferSteal:
    def test_steal_hook_returns_work_item_before_batch_assembly(self):
        runtime = Runtime()
        holders = [PassivePartitionHolder("h", 0, capacity_frames=8)]
        buffer = IntakeBuffer(runtime, holders)
        pending = ["stolen-work"]
        results = []

        def producer():
            yield from buffer.put(0, Frame([{"seq": 0}]))
            buffer.end()

        def consumer():
            got = yield from buffer.collect(
                batch_size=4, steal=lambda: pending.pop() if pending else None
            )
            results.append(got)
            got = yield from buffer.collect(batch_size=4, steal=lambda: None)
            results.append(got)

        runtime.spawn("p", producer())
        runtime.spawn("c", consumer())
        runtime.run()
        # the stolen item pre-empts batch assembly; the queued frame is
        # still collected by the next call
        assert results[0] == "stolen-work"
        assert results[1] == [[{"seq": 0}]]

    def test_kick_wakes_waiting_consumer_to_poll_steal(self):
        runtime = Runtime()
        holders = [PassivePartitionHolder("h", 0, capacity_frames=8)]
        buffer = IntakeBuffer(runtime, holders)
        pending = []
        results = []

        def consumer():
            got = yield from buffer.collect(
                batch_size=4, steal=lambda: pending.pop() if pending else None
            )
            results.append(got)

        def peer():
            yield Advance(0.5)
            pending.append("late-work")
            buffer.kick()

        runtime.spawn("c", consumer())
        runtime.spawn("p", peer())
        runtime.run()
        assert results == ["late-work"]
