"""Field paths and type-spec parsing."""

import pytest

from repro.adm import field_path, open_type, primary_key_of, set_field_path, split_path
from repro.adm.schema import parse_field_spec, resolve_tag
from repro.adm.types import TypeTag
from repro.adm.values import MISSING
from repro.errors import AdmTypeError


class TestFieldPath:
    def test_top_level(self):
        assert field_path({"a": 1}, "a") == 1

    def test_nested(self):
        assert field_path({"u": {"name": "x"}}, "u.name") == "x"

    def test_missing_step_yields_missing(self):
        assert field_path({"u": {}}, "u.name") is MISSING
        assert field_path({}, "u.name") is MISSING

    def test_through_non_object_yields_missing(self):
        assert field_path({"u": 5}, "u.name") is MISSING

    def test_sequence_path(self):
        assert field_path({"a": {"b": 2}}, ("a", "b")) == 2

    def test_split_path(self):
        assert split_path("a.b.c") == ("a", "b", "c")
        assert split_path(["a", "b"]) == ("a", "b")


class TestSetFieldPath:
    def test_sets_nested_creating_intermediates(self):
        record = {}
        set_field_path(record, "a.b.c", 1)
        assert record == {"a": {"b": {"c": 1}}}

    def test_overwrites_non_object_intermediate(self):
        record = {"a": 5}
        set_field_path(record, "a.b", 1)
        assert record == {"a": {"b": 1}}


class TestPrimaryKey:
    def test_extracts(self):
        assert primary_key_of({"id": 9}, "id") == 9

    def test_missing_key_raises(self):
        with pytest.raises(AdmTypeError, match="no primary key"):
            primary_key_of({}, "id")

    def test_null_key_raises(self):
        with pytest.raises(AdmTypeError):
            primary_key_of({"id": None}, "id")


class TestTypeSpecs:
    def test_aliases(self):
        assert resolve_tag("int") is TypeTag.INT64
        assert resolve_tag("bigint") is TypeTag.INT64
        assert resolve_tag("float") is TypeTag.DOUBLE
        assert resolve_tag("text") is TypeTag.STRING

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            resolve_tag("frobnicator")

    def test_optional_spec(self):
        ft = parse_field_spec("string?")
        assert ft.optional and ft.tag is TypeTag.STRING

    def test_array_spec(self):
        ft = parse_field_spec("[int64]")
        assert ft.tag is TypeTag.ARRAY and ft.item.tag is TypeTag.INT64

    def test_nested_optional_array(self):
        ft = parse_field_spec("[string]?")
        assert ft.optional and ft.tag is TypeTag.ARRAY

    def test_open_type_shorthand(self):
        t = open_type("T", id="int64")
        assert t.is_open and t.declared("id")
