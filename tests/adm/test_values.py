"""DateTime/Duration arithmetic and spatial geometry."""

import pytest

from repro.adm import Circle, DateTime, Duration, Point, Rectangle, spatial_intersect
from repro.adm.values import MISSING
from repro.errors import AdmParseError


class TestDateTime:
    def test_parse_iso(self):
        dt = DateTime.parse("2019-03-15T12:30:45Z")
        assert dt.components() == (2019, 3, 15, 12, 30, 45, 0)

    def test_parse_millis(self):
        dt = DateTime.parse("2019-03-15T12:30:45.250Z")
        assert dt.components()[-1] == 250

    def test_roundtrip_isoformat(self):
        text = "2021-12-31T23:59:59Z"
        assert DateTime.parse(text).isoformat() == text

    def test_epoch(self):
        assert DateTime.parse("1970-01-01T00:00:00Z").epoch_millis == 0

    def test_ordering(self):
        early = DateTime.parse("2019-01-01T00:00:00Z")
        late = DateTime.parse("2019-06-01T00:00:00Z")
        assert early < late
        assert late > early
        assert early == DateTime.parse("2019-01-01T00:00:00Z")

    @pytest.mark.parametrize(
        "bad",
        ["not a date", "2019-13-01T00:00:00Z", "2019-02-30T00:00:00Z",
         "2019-01-01T25:00:00Z", ""],
    )
    def test_invalid_rejected(self, bad):
        with pytest.raises(AdmParseError):
            DateTime.parse(bad)

    def test_leap_year_feb_29(self):
        DateTime.parse("2020-02-29T00:00:00Z")
        with pytest.raises(AdmParseError):
            DateTime.parse("2019-02-29T00:00:00Z")

    def test_add_months(self):
        dt = DateTime.parse("2019-03-15T12:00:00Z")
        assert dt.add(Duration.parse("P2M")).isoformat().startswith("2019-05-15")

    def test_add_months_clamps_to_month_end(self):
        dt = DateTime.parse("2019-01-31T00:00:00Z")
        assert dt.add(Duration.parse("P1M")).isoformat().startswith("2019-02-28")

    def test_add_time_component(self):
        dt = DateTime.parse("2019-01-01T00:00:00Z")
        assert dt.add(Duration.parse("PT90S")).isoformat() == "2019-01-01T00:01:30Z"

    def test_year_rollover(self):
        dt = DateTime.parse("2019-12-15T00:00:00Z")
        assert dt.add(Duration.parse("P2M")).isoformat().startswith("2020-02-15")


class TestDuration:
    def test_parse_months(self):
        assert Duration.parse("P2M") == Duration(2, 0)

    def test_parse_years_and_days(self):
        d = Duration.parse("P1Y2M3D")
        assert d.months == 14
        assert d.millis == 3 * 86_400_000

    def test_parse_time_parts(self):
        d = Duration.parse("PT1H30M15.5S")
        assert d.months == 0
        assert d.millis == 3_600_000 + 30 * 60_000 + 15_500

    @pytest.mark.parametrize("bad", ["", "P", "2M", "P-1M"])
    def test_invalid_rejected(self, bad):
        with pytest.raises(AdmParseError):
            Duration.parse(bad)


class TestGeometry:
    def test_point_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5.0

    def test_rectangle_normalizes_corners(self):
        r = Rectangle(5, 5, 1, 1)
        assert (r.x1, r.y1, r.x2, r.y2) == (1, 1, 5, 5)

    def test_rectangle_contains_boundary(self):
        r = Rectangle(0, 0, 2, 2)
        assert r.contains_point(Point(0, 0))
        assert r.contains_point(Point(2, 2))
        assert not r.contains_point(Point(2.001, 1))

    def test_rectangle_intersects(self):
        a = Rectangle(0, 0, 2, 2)
        assert a.intersects(Rectangle(1, 1, 3, 3))
        assert a.intersects(Rectangle(2, 2, 3, 3))  # touching counts
        assert not a.intersects(Rectangle(2.1, 2.1, 3, 3))

    def test_circle_contains(self):
        c = Circle(Point(0, 0), 1.0)
        assert c.contains_point(Point(1, 0))
        assert not c.contains_point(Point(1.01, 0))

    def test_circle_rectangle_intersection(self):
        c = Circle(Point(0, 0), 1.0)
        assert c.intersects_rectangle(Rectangle(0.5, 0.5, 2, 2))
        assert not c.intersects_rectangle(Rectangle(1, 1, 2, 2))

    def test_circle_mbr(self):
        mbr = Circle(Point(5, 5), 2).mbr
        assert (mbr.x1, mbr.y1, mbr.x2, mbr.y2) == (3, 3, 7, 7)


class TestSpatialIntersect:
    def test_point_point(self):
        assert spatial_intersect(Point(1, 1), Point(1, 1))
        assert not spatial_intersect(Point(1, 1), Point(1, 2))

    def test_all_pairs_symmetric(self):
        values = [
            Point(1, 1),
            Rectangle(0, 0, 2, 2),
            Circle(Point(1, 1), 1),
        ]
        for a in values:
            for b in values:
                assert spatial_intersect(a, b) == spatial_intersect(b, a)

    def test_disjoint_circle_rectangle(self):
        assert not spatial_intersect(Circle(Point(10, 10), 1), Rectangle(0, 0, 2, 2))

    def test_non_spatial_raises(self):
        with pytest.raises(AdmParseError):
            spatial_intersect(Point(0, 0), "not spatial")


class TestMissing:
    def test_singleton(self):
        from repro.adm.values import _Missing

        assert _Missing() is MISSING

    def test_falsy(self):
        assert not MISSING

    def test_repr(self):
        assert repr(MISSING) == "MISSING"
