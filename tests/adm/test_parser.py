"""JSON -> ADM parsing, coercion, and serialization."""

import pytest

from repro.adm import (
    Circle,
    DateTime,
    Duration,
    Point,
    Rectangle,
    make_type,
    parse_json,
    parse_json_lines,
    record_size_bytes,
    serialize,
)
from repro.errors import AdmParseError


class TestParseJson:
    def test_plain_object(self):
        assert parse_json('{"id": 1, "text": "hi"}') == {"id": 1, "text": "hi"}

    def test_malformed_rejected(self):
        with pytest.raises(AdmParseError, match="malformed JSON"):
            parse_json("{nope}")

    def test_non_object_rejected(self):
        with pytest.raises(AdmParseError, match="expected a JSON object"):
            parse_json("[1, 2]")

    def test_datetime_coercion(self):
        t = make_type("T", {"ts": "datetime"})
        record = parse_json('{"ts": "2019-03-15T12:00:00Z"}', t)
        assert record["ts"] == DateTime.parse("2019-03-15T12:00:00Z")

    def test_point_coercion_from_pair(self):
        t = make_type("T", {"loc": "point"})
        assert parse_json('{"loc": [1.5, 2.5]}', t)["loc"] == Point(1.5, 2.5)

    def test_rectangle_and_circle_coercion(self):
        t = make_type("T", {"r": "rectangle", "c": "circle"})
        record = parse_json('{"r": [0,0,2,2], "c": [1,1,0.5]}', t)
        assert record["r"] == Rectangle(0, 0, 2, 2)
        assert record["c"] == Circle(Point(1, 1), 0.5)

    def test_duration_coercion(self):
        t = make_type("T", {"d": "duration"})
        assert parse_json('{"d": "P2M"}', t)["d"] == Duration(2, 0)

    def test_validation_applied_after_coercion(self):
        t = make_type("T", {"id": "int64"})
        with pytest.raises(Exception):
            parse_json('{"id": "oops"}', t)

    def test_nested_array_coercion(self):
        t = make_type("T", {"ds": "[datetime]"})
        record = parse_json('{"ds": ["2019-01-01T00:00:00Z"]}', t)
        assert record["ds"][0] == DateTime.parse("2019-01-01T00:00:00Z")

    def test_int_to_double_coercion(self):
        t = make_type("T", {"x": "double"})
        assert parse_json('{"x": 3}', t)["x"] == 3.0
        assert isinstance(parse_json('{"x": 3}', t)["x"], float)


class TestParseLines:
    def test_skips_blank_lines(self):
        lines = ['{"id": 1}', "", "  ", '{"id": 2}']
        assert [r["id"] for r in parse_json_lines(lines)] == [1, 2]


class TestSerialize:
    def test_roundtrip_extended_values(self):
        record = {
            "ts": DateTime.parse("2019-03-15T12:00:00Z"),
            "loc": Point(1.0, 2.0),
            "area": Rectangle(0, 0, 1, 1),
            "zone": Circle(Point(0, 0), 2.0),
        }
        text = serialize(record)
        t = make_type(
            "T", {"ts": "datetime", "loc": "point", "area": "rectangle", "zone": "circle"}
        )
        back = parse_json(text, t)
        assert back == record

    def test_record_size_is_positive_and_stable(self):
        record = {"id": 1, "text": "x" * 100}
        assert record_size_bytes(record) == record_size_bytes(dict(record))
        assert record_size_bytes(record) > 100
