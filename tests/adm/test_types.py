"""Datatype validation: open/closed records, scalars, nesting, arrays."""

import pytest

from repro.adm import (
    Circle,
    DateTime,
    Datatype,
    Duration,
    FieldType,
    Point,
    Rectangle,
    TypeTag,
    closed_type,
    make_type,
    open_type,
    tag_of,
)
from repro.adm.values import MISSING
from repro.errors import AdmTypeError


class TestOpenTypes:
    def test_declared_fields_enforced(self):
        t = open_type("T", id="int64", text="string")
        t.validate({"id": 1, "text": "hi"})

    def test_missing_required_field_rejected(self):
        t = open_type("T", id="int64", text="string")
        with pytest.raises(AdmTypeError, match="missing required field 'text'"):
            t.validate({"id": 1})

    def test_extra_fields_allowed(self):
        t = open_type("T", id="int64")
        t.validate({"id": 1, "anything": {"nested": [1, 2]}})

    def test_wrong_type_rejected(self):
        t = open_type("T", id="int64")
        with pytest.raises(AdmTypeError, match="expected int64"):
            t.validate({"id": "not an int"})

    def test_bool_is_not_int64(self):
        t = open_type("T", id="int64")
        with pytest.raises(AdmTypeError):
            t.validate({"id": True})

    def test_int64_range_enforced(self):
        t = open_type("T", id="int64")
        t.validate({"id": 2**63 - 1})
        with pytest.raises(AdmTypeError, match="out of range"):
            t.validate({"id": 2**63})

    def test_non_object_record_rejected(self):
        t = open_type("T", id="int64")
        with pytest.raises(AdmTypeError, match="expected an object"):
            t.validate([1, 2, 3])


class TestClosedTypes:
    def test_extra_fields_rejected(self):
        t = closed_type("T", id="int64")
        with pytest.raises(AdmTypeError, match="undeclared fields"):
            t.validate({"id": 1, "extra": 2})

    def test_exact_fields_ok(self):
        t = closed_type("T", id="int64", name="string")
        t.validate({"id": 1, "name": "x"})


class TestOptionalAndStructured:
    def test_optional_field_may_be_absent(self):
        t = make_type("T", {"id": "int64", "geo": "point?"})
        t.validate({"id": 1})
        t.validate({"id": 1, "geo": Point(1.0, 2.0)})

    def test_optional_field_may_be_null(self):
        t = make_type("T", {"id": "int64", "geo": "point?"})
        t.validate({"id": 1, "geo": None})

    def test_array_field(self):
        t = make_type("T", {"tags": "[string]"})
        t.validate({"tags": ["a", "b"]})
        with pytest.raises(AdmTypeError):
            t.validate({"tags": ["a", 1]})

    def test_nested_object_type(self):
        user = open_type("User", screen_name="string")
        t = Datatype(
            "T", {"user": FieldType(TypeTag.OBJECT, object_type=user)}
        )
        t.validate({"user": {"screen_name": "x"}})
        with pytest.raises(AdmTypeError):
            t.validate({"user": {"other": 1}})

    def test_double_accepts_int(self):
        t = make_type("T", {"x": "double"})
        t.validate({"x": 3})
        t.validate({"x": 3.5})

    def test_spatial_and_temporal_tags(self):
        t = make_type(
            "T",
            {
                "p": "point",
                "r": "rectangle",
                "c": "circle",
                "d": "datetime",
                "u": "duration",
            },
        )
        t.validate(
            {
                "p": Point(0, 0),
                "r": Rectangle(0, 0, 1, 1),
                "c": Circle(Point(0, 0), 1),
                "d": DateTime(0),
                "u": Duration(1, 0),
            }
        )

    def test_conforms_returns_bool(self):
        t = open_type("T", id="int64")
        assert t.conforms({"id": 1})
        assert not t.conforms({"id": "x"})


class TestTagOf:
    @pytest.mark.parametrize(
        "value,tag",
        [
            (None, TypeTag.NULL),
            (True, TypeTag.BOOLEAN),
            (1, TypeTag.INT64),
            (1.5, TypeTag.DOUBLE),
            ("s", TypeTag.STRING),
            (DateTime(0), TypeTag.DATETIME),
            (Duration(1, 0), TypeTag.DURATION),
            (Point(0, 0), TypeTag.POINT),
            (Rectangle(0, 0, 1, 1), TypeTag.RECTANGLE),
            (Circle(Point(0, 0), 1), TypeTag.CIRCLE),
            ([], TypeTag.ARRAY),
            ({}, TypeTag.OBJECT),
            (MISSING, TypeTag.MISSING),
        ],
    )
    def test_runtime_tags(self, value, tag):
        assert tag_of(value) is tag

    def test_unknown_type_raises(self):
        with pytest.raises(AdmTypeError):
            tag_of(object())
