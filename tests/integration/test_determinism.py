"""Reproducibility: identical configurations produce identical numbers.

The simulated-time results are the library's headline output; they must be
bit-for-bit deterministic across runs of the same seed and configuration —
no wall-clock, no unseeded randomness, no dict-ordering hazards.
"""

import pytest

from repro.bench import ExperimentHarness
from repro.ingestion.feed import Framework


def run_once(case, **kwargs):
    harness = ExperimentHarness(reference_scale=0.002, num_partitions=4)
    report = harness.run_enrichment(case, tweets=150, num_nodes=4, **kwargs)
    return (
        report.records_stored,
        report.simulated_seconds,
        report.computing_seconds,
        report.storage_seconds,
        report.intake_seconds,
        report.num_computing_jobs,
    )


class TestDeterminism:
    def test_no_udf_run_deterministic(self):
        assert run_once(None) == run_once(None)

    def test_sqlpp_enrichment_deterministic(self):
        first = run_once("safety_rating", batch_size=40)
        second = run_once("safety_rating", batch_size=40)
        assert first == second

    def test_java_enrichment_deterministic(self):
        first = run_once("safety_rating", batch_size=40, language="java")
        second = run_once("safety_rating", batch_size=40, language="java")
        assert first == second

    def test_static_framework_deterministic(self):
        first = run_once("safety_rating", language="java",
                         framework=Framework.STATIC)
        second = run_once("safety_rating", language="java",
                          framework=Framework.STATIC)
        assert first == second

    def test_update_client_deterministic(self):
        first = run_once("safety_rating", batch_size=40, update_rate=50.0)
        second = run_once("safety_rating", batch_size=40, update_rate=50.0)
        assert first == second

    def test_spatial_case_deterministic(self):
        first = run_once("nearby_monuments", batch_size=40)
        second = run_once("nearby_monuments", batch_size=40)
        assert first == second

    def test_enriched_contents_identical(self):
        def contents():
            harness = ExperimentHarness(reference_scale=0.002, num_partitions=4)
            catalog = harness.catalog_for(["SafetyRatings"])
            target = harness.workload.enriched_tweets_dataset()
            catalog["EnrichedTweets"] = target
            registry = harness.registry_for(catalog)
            from repro.cluster import Cluster
            from repro.ingestion import (
                AttachedFunction,
                DynamicIngestionPipeline,
                FeedDefinition,
                GeneratorAdapter,
            )
            from repro.workloads.tweets import TWEET_TYPE_FULL

            feed = FeedDefinition(
                "F", "EnrichedTweets", datatype=TWEET_TYPE_FULL, batch_size=30,
                functions=[AttachedFunction("enrichTweetQ1")],
            )
            DynamicIngestionPipeline(Cluster(4), catalog, registry).run(
                feed, GeneratorAdapter(harness.workload.tweet_generator.raw_json(90))
            )
            return [
                (r["id"], r.get("safety_rating")) for r in sorted(
                    target.scan(), key=lambda r: r["id"]
                )
            ]

        assert contents() == contents()

    def test_different_seeds_produce_different_data(self):
        # The per-record work counts (one hash probe, one match) are the
        # same for any seed, so simulated time may coincide — the *data*
        # must differ.
        a = ExperimentHarness(reference_scale=0.002, num_partitions=4, seed=1)
        b = ExperimentHarness(reference_scale=0.002, num_partitions=4, seed=2)
        tweets_a = list(a.workload.tweet_generator.raw_json(20))
        tweets_b = list(b.workload.tweet_generator.raw_json(20))
        assert tweets_a != tweets_b
        ratings_a = list(a.workload.safety_ratings(size=50))
        ratings_b = list(b.workload.safety_ratings(size=50))
        assert ratings_a != ratings_b
