"""The shipped examples must keep running (fast ones, in-process)."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart_runs(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "Let there be light" in out
        assert "feed ingested 500 records" in out

    def test_tweet_safety_check_runs(self, capsys):
        load_example("tweet_safety_check").main()
        out = capsys.readouterr().out
        assert "first Red tweet" in out
        assert "rejected, as in AsterixDB today" in out

    def test_all_examples_importable(self):
        """Every example at least parses and imports cleanly."""
        for path in sorted(EXAMPLES_DIR.glob("*.py")):
            spec = importlib.util.spec_from_file_location(path.stem + "_probe", path)
            module = importlib.util.module_from_spec(spec)
            spec.loader.exec_module(module)
            assert hasattr(module, "main"), path.name
