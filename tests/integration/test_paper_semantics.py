"""Differential tests of the paper's two enrichment options.

Option 1 (enrich during querying, §4.1) and Option 2 (enrich during
ingestion, §4.2) must produce the same enrichment when reference data is
static — the framework only changes *when* the UDF runs, never what it
computes.  With reference updates mid-stream the options legitimately
diverge (Option 1 sees the final state, Option 2 the per-batch states);
both divergences are asserted here.
"""

import json

import pytest

from repro import AsterixLite
from repro.ingestion import GeneratorAdapter


@pytest.fixture
def system():
    s = AsterixLite(num_nodes=3)
    s.execute(
        """
        CREATE TYPE TweetType AS OPEN { id: int64, text: string };
        CREATE TYPE WordType AS OPEN { wid: int64 };
        CREATE DATASET Tweets(TweetType) PRIMARY KEY id;
        CREATE DATASET EnrichedTweets(TweetType) PRIMARY KEY id;
        CREATE DATASET SensitiveWords(WordType) PRIMARY KEY wid;
        """
    )
    s.insert(
        "SensitiveWords",
        [
            {"wid": 1, "country": "US", "word": "bomb"},
            {"wid": 2, "country": "FR", "word": "bombe"},
        ],
    )
    s.execute(
        """
        CREATE FUNCTION tweetSafetyCheck(tweet) {
            LET safety_check_flag = CASE
                EXISTS(SELECT s FROM SensitiveWords s
                       WHERE tweet.country = s.country AND
                             contains(tweet.text, s.word))
                WHEN true THEN "Red" ELSE "Green"
                END
            SELECT tweet.*, safety_check_flag
        }
        """
    )
    return s


TWEETS = [
    {"id": 0, "text": "a bomb scare", "country": "US"},
    {"id": 1, "text": "la bombe", "country": "FR"},
    {"id": 2, "text": "peaceful day", "country": "US"},
    {"id": 3, "text": "a bomb scare", "country": "DE"},
    {"id": 4, "text": "nothing here", "country": "FR"},
]


class TestOptionEquivalence:
    def test_lazy_equals_eager_with_static_reference_data(self, system):
        # Option 1: store raw, enrich at query time
        system.insert("Tweets", TWEETS)
        lazy = system.query(
            """
            SELECT VALUE tweetSafetyCheck(t)[0]
            FROM Tweets t
            """
        )
        lazy_flags = {r["id"]: r["safety_check_flag"] for r in lazy}

        # Option 2: enrich during ingestion
        system.execute(
            'CREATE FEED F WITH { "type-name": "TweetType" };'
            "CONNECT FEED F TO DATASET EnrichedTweets "
            "APPLY FUNCTION tweetSafetyCheck;"
        )
        system.start_feed(
            "F",
            adapter=GeneratorAdapter(json.dumps(t) for t in TWEETS),
            batch_size=2,
        )
        eager_flags = {
            r["id"]: r["safety_check_flag"]
            for r in system.catalog["EnrichedTweets"].scan()
        }
        assert lazy_flags == eager_flags == {
            0: "Red", 1: "Red", 2: "Green", 3: "Green", 4: "Green",
        }

    def test_lazy_sees_final_state_eager_sees_batch_states(self, system):
        system.insert("Tweets", TWEETS)

        class Injector(GeneratorAdapter):
            def __init__(self, raws, words):
                super().__init__(raws)
                self.words = words
                self.count = 0

            def envelopes(self):
                for envelope in super().envelopes():
                    self.count += 1
                    if self.count == 3:
                        # "peaceful" becomes sensitive mid-feed
                        self.words.upsert(
                            {"wid": 3, "country": "US", "word": "peaceful"}
                        )
                    yield envelope

        system.execute(
            'CREATE FEED F WITH { "type-name": "TweetType" };'
            "CONNECT FEED F TO DATASET EnrichedTweets "
            "APPLY FUNCTION tweetSafetyCheck;"
        )
        system.start_feed(
            "F",
            adapter=Injector(
                (json.dumps(t) for t in TWEETS),
                system.catalog["SensitiveWords"],
            ),
            batch_size=2,
        )
        eager = {
            r["id"]: r["safety_check_flag"]
            for r in system.catalog["EnrichedTweets"].scan()
        }
        # tweet 2 ("peaceful day") was in batch 2, enriched AFTER the word
        # was added mid-collection of that batch
        assert eager[2] == "Red"

        # Option 1 evaluated now sees the final reference state: also Red
        lazy = system.query(
            "SELECT VALUE tweetSafetyCheck(t)[0] FROM Tweets t WHERE t.id = 2"
        )
        assert lazy[0]["safety_check_flag"] == "Red"

    def test_eager_enrichment_supports_repeated_analytics(self, system):
        """§4.2: once stored, analytical queries skip the UDF entirely."""
        system.execute(
            'CREATE FEED F WITH { "type-name": "TweetType" };'
            "CONNECT FEED F TO DATASET EnrichedTweets "
            "APPLY FUNCTION tweetSafetyCheck;"
        )
        system.start_feed(
            "F", adapter=GeneratorAdapter(json.dumps(t) for t in TWEETS)
        )
        got = system.query(
            """
            SELECT e.country AS Country, count(e) Num
            FROM EnrichedTweets e
            WHERE e.safety_check_flag = "Red"
            GROUP BY e.country
            ORDER BY Country
            """
        )
        assert got == [
            {"Country": "FR", "Num": 1},
            {"Country": "US", "Num": 1},
        ]


class TestFigure10And11Approaches:
    """§4.2.1/§4.2.2: the external-program approaches, via INSERT."""

    def test_figure_10_batch_insert_with_udf(self, system):
        batch = json.dumps(TWEETS)
        system.execute(
            f"""
            INSERT INTO EnrichedTweets(
                LET TweetsBatch = ({batch})
                SELECT VALUE tweetSafetyCheck(tweet)[0]
                FROM TweetsBatch tweet
            )
            """
        )
        assert len(system.catalog["EnrichedTweets"]) == len(TWEETS)

    def test_figure_11_enrich_ingested_not_yet_enriched(self, system):
        system.insert("Tweets", TWEETS)
        system.execute(
            """
            INSERT INTO EnrichedTweets(
                SELECT VALUE tweetSafetyCheck(tweet)[0]
                FROM Tweets tweet WHERE tweet.id NOT IN
                    (SELECT VALUE enrichedTweet.id
                     FROM EnrichedTweets enrichedTweet)
            )
            """
        )
        assert len(system.catalog["EnrichedTweets"]) == len(TWEETS)
        # running it again is a no-op: everything is already enriched
        system.execute(
            """
            INSERT INTO EnrichedTweets(
                SELECT VALUE tweetSafetyCheck(tweet)[0]
                FROM Tweets tweet WHERE tweet.id NOT IN
                    (SELECT VALUE enrichedTweet.id
                     FROM EnrichedTweets enrichedTweet)
            )
            """
        )
        assert len(system.catalog["EnrichedTweets"]) == len(TWEETS)
