"""The README quickstart snippet must keep working verbatim (scaled down)."""

import json

from repro import AsterixLite
from repro.ingestion import GeneratorAdapter


def test_readme_quickstart():
    system = AsterixLite(num_nodes=3)
    system.execute(
        """
        CREATE TYPE TweetType AS OPEN { id: int64, text: string };
        CREATE DATASET Tweets(TweetType) PRIMARY KEY id;
        CREATE DATASET EnrichedTweets(TweetType) PRIMARY KEY id;
        CREATE TYPE WordType AS OPEN { wid: int64 };
        CREATE DATASET SensitiveWords(WordType) PRIMARY KEY wid;
        """
    )
    system.insert("SensitiveWords", [{"wid": 1, "country": "US", "word": "bomb"}])

    system.execute(
        """
        CREATE FUNCTION tweetSafetyCheck(tweet) {
            LET safety_check_flag = CASE
                EXISTS(SELECT s FROM SensitiveWords s
                       WHERE tweet.country = s.country AND
                             contains(tweet.text, s.word))
                WHEN true THEN "Red" ELSE "Green"
                END
            SELECT tweet.*, safety_check_flag
        };
        CREATE FEED TweetFeed WITH { "type-name": "TweetType" };
        CONNECT FEED TweetFeed TO DATASET EnrichedTweets
            APPLY FUNCTION tweetSafetyCheck;
        """
    )

    raws = (
        json.dumps({"id": i, "text": "...", "country": "US"}) for i in range(1000)
    )
    report = system.start_feed(
        "TweetFeed", adapter=GeneratorAdapter(raws), batch_size=420
    )
    assert report.throughput > 0
    assert report.refresh_period > 0
    assert len(system.catalog["EnrichedTweets"]) == 1000


def test_readme_fault_tolerance_snippet():
    from repro.ingestion import FeedPolicy
    from repro.runtime import CrashAt, FaultPlan

    system = AsterixLite(num_nodes=3)
    system.execute(
        """
        CREATE TYPE TweetType AS OPEN { id: int64, text: string };
        CREATE DATASET EnrichedTweets(TweetType) PRIMARY KEY id;
        """
    )
    system.create_feed("TweetFeed", {"type-name": "TweetType"})
    system.connect_feed("TweetFeed", "EnrichedTweets", policy=FeedPolicy.spill())
    raws = ['{"id": 1, "text": "ok"}', '{"id": 2, "text": ', '{"id": 3, "text": "ok"}']
    report = system.start_feed(
        "TweetFeed", adapter=GeneratorAdapter(raws), batch_size=420,
        fault_plan=FaultPlan(crashes=(CrashAt(at=0.01, target="computing"),)),
    )
    # the malformed record is dead-lettered, the rest survive the crash
    assert report.faults.records_dead_lettered == 1
    assert sorted(
        r["id"] for r in system.catalog["EnrichedTweets"].scan()
    ) == [1, 3]
    dead = system.query("SELECT VALUE d FROM TweetFeed_DeadLetters d")
    assert len(dead) == 1 and dead[0]["seq"] == 1


def test_readme_elastic_snippet():
    from repro.ingestion import FeedPolicy

    system = AsterixLite(num_nodes=3)
    system.execute(
        """
        CREATE TYPE TweetType AS OPEN { id: int64, text: string };
        CREATE DATASET EnrichedTweets(TweetType) PRIMARY KEY id;
        CREATE TYPE WordType AS OPEN { wid: int64 };
        CREATE DATASET SensitiveWords(WordType) PRIMARY KEY wid;
        """
    )
    system.insert(
        "SensitiveWords",
        [{"wid": i, "country": "US", "word": f"w{i}"} for i in range(100)],
    )
    system.execute(
        """
        CREATE FUNCTION tweetSafetyCheck(tweet) {
            LET flag = CASE
                EXISTS(SELECT s FROM SensitiveWords s
                       WHERE tweet.country = s.country AND
                             contains(tweet.text, s.word))
                WHEN true THEN "Red" ELSE "Green" END
            SELECT tweet.*, flag
        };
        CREATE FEED TweetFeed WITH { "type-name": "TweetType" };
        CONNECT FEED TweetFeed TO DATASET EnrichedTweets
            APPLY FUNCTION tweetSafetyCheck;
        """
    )
    raws = (
        json.dumps({"id": i, "text": "...", "country": "US"})
        for i in range(400)
    )
    policy = FeedPolicy.elastic()  # grow 1..4 workers on congestion
    report = system.start_feed(
        "TweetFeed", adapter=GeneratorAdapter(raws), batch_size=40,
        policy=policy,
    )
    assert report.peak_computing_workers > 1
    assert report.scale_ups >= 1
    assert report.computing_concurrency > 1.0
    assert report.computing_wall_seconds < report.computing_seconds
    assert len(system.catalog["EnrichedTweets"]) == 400


def test_readme_replay_snippet():
    from repro.ingestion import FeedPolicy

    system = AsterixLite(num_nodes=3)
    system.execute(
        """
        CREATE TYPE TweetType AS OPEN { id: int64, text: string };
        CREATE DATASET EnrichedTweets(TweetType) PRIMARY KEY id;
        """
    )
    system.create_feed("TweetFeed", {"type-name": "TweetType"})
    system.connect_feed(
        "TweetFeed", "EnrichedTweets", policy=FeedPolicy.spill()
    )
    raws = ['{"id": 1, "text": "ok"}', '{"id": 2, "text": ']
    system.start_feed("TweetFeed", adapter=GeneratorAdapter(raws))
    dead_letters = system.catalog["TweetFeed_DeadLetters"]
    for row in list(dead_letters.scan()):
        repaired = dict(row)
        repaired["raw"] = '{"id": 2, "text": "repaired"}'
        dead_letters.upsert(repaired)
    result = system.replay_dead_letters("TweetFeed")
    assert result.replayed == 1 and result.still_dead == 0
    assert sorted(
        r["id"] for r in system.catalog["EnrichedTweets"].scan()
    ) == [1, 2]


def test_module_docstring_quickstart():
    system = AsterixLite(num_nodes=3)
    system.execute(
        """
        CREATE TYPE TweetType AS OPEN { id: int64, text: string };
        CREATE DATASET Tweets(TweetType) PRIMARY KEY id;
        """
    )
    system.insert("Tweets", [{"id": 0, "text": "Let there be light"}])
    assert system.query("SELECT VALUE t.text FROM Tweets t") == [
        "Let there be light"
    ]
