"""Parameterized predeployed queries (the paper's Figure 20)."""

import pytest

from repro import AsterixLite
from repro.errors import SqlppAnalysisError


@pytest.fixture
def system():
    s = AsterixLite(num_nodes=3)
    s.execute(
        "CREATE TYPE T AS OPEN { id: int64 };"
        "CREATE DATASET Tweets(T) PRIMARY KEY id;"
    )
    s.insert("Tweets", [{"id": i, "score": i % 7} for i in range(100)])
    return s


class TestFigure20:
    def test_figure_20_query(self, system):
        prepared = system.prepare("SELECT VALUE t FROM Tweets t WHERE t.id = $x")
        assert prepared.execute(x=97) == [{"id": 97, "score": 97 % 7}]
        assert prepared.execute(x=3) == [{"id": 3, "score": 3}]

    def test_spec_cached_on_all_nodes(self, system):
        prepared = system.prepare("SELECT VALUE t.id FROM Tweets t WHERE t.id = $x")
        assert all(
            node.has_job(prepared.job_id) for node in system.cluster.nodes
        )

    def test_invocations_tracked_per_node(self, system):
        prepared = system.prepare("SELECT VALUE t.id FROM Tweets t WHERE t.id = $x")
        prepared.execute(x=1)
        prepared.execute(x=2)
        assert prepared.invocations == 2
        assert all(
            node.invocations[prepared.job_id] == 2
            for node in system.cluster.nodes
        )

    def test_multiple_parameters(self, system):
        prepared = system.prepare(
            "SELECT VALUE t.id FROM Tweets t "
            "WHERE t.score >= $low AND t.score <= $high ORDER BY t.id LIMIT 3"
        )
        assert prepared.params == ["$high", "$low"]
        got = prepared.execute(low=2, high=3)
        assert got == [2, 3, 9]

    def test_missing_parameter_rejected(self, system):
        prepared = system.prepare("SELECT VALUE t FROM Tweets t WHERE t.id = $x")
        with pytest.raises(SqlppAnalysisError, match=r"missing parameter.*\$x"):
            prepared.execute()

    def test_unknown_parameter_rejected(self, system):
        prepared = system.prepare("SELECT VALUE t FROM Tweets t WHERE t.id = $x")
        with pytest.raises(SqlppAnalysisError, match=r"unknown parameter"):
            prepared.execute(x=1, y=2)

    def test_close_undeploys(self, system):
        prepared = system.prepare("SELECT VALUE t FROM Tweets t WHERE t.id = $x")
        prepared.close()
        assert not any(
            node.has_job(prepared.job_id) for node in system.cluster.nodes
        )
        from repro.errors import HyracksError

        with pytest.raises(HyracksError):
            prepared.execute(x=1)

    def test_prepare_rejects_ddl(self, system):
        with pytest.raises(SqlppAnalysisError, match="exactly one SELECT"):
            system.prepare("CREATE TYPE X AS OPEN { id: int64 }")

    def test_invocation_cheaper_than_compile(self, system):
        """The Figure 20 point: invoking skips compile + distribution."""
        cost = system.cluster.cost_model
        invoke = cost.job_startup(3, predeployed=True)
        compile_run = cost.job_startup(3, predeployed=False)
        assert invoke < compile_run / 5
