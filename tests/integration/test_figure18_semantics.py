"""Figure 18's nested-subquery UDF: the top-10 list refreshes per batch.

``highRiskTweetCheck`` flags tweets from the ten countries with the most
sensitive keywords.  Section 4.3.4's point: under the stream model that
top-10 list would never refresh; under the paper's per-batch model it is
recomputed each computing job, so keyword churn re-ranks countries between
batches.
"""

import json

import pytest

from repro import AsterixLite
from repro.ingestion import GeneratorAdapter
from repro.udf.library import SQLPP_UDFS


@pytest.fixture
def system():
    s = AsterixLite(num_nodes=2)
    s.execute(
        """
        CREATE TYPE TweetType AS OPEN { id: int64, text: string };
        CREATE TYPE WordType AS OPEN { wid: int64 };
        CREATE DATASET SensitiveWords(WordType) PRIMARY KEY wid;
        CREATE DATASET EnrichedTweets(TweetType) PRIMARY KEY id;
        """
    )
    s.execute(SQLPP_UDFS["high_risk_tweet_check"])
    # 12 countries; CXX gets XX keywords, so the top-10 are C12..C03
    wid = 0
    for country_index in range(1, 13):
        for _ in range(country_index):
            s.insert(
                "SensitiveWords",
                [{"wid": wid, "country": f"C{country_index:02d}", "word": "w"}],
            )
            wid += 1
    return s


class TestTop10Refresh:
    def test_top10_membership(self, system):
        got = system.query('SELECT VALUE highRiskTweetCheck(t)[0] FROM [{"id": 1, "country": "C12"}] t')
        assert got[0]["high_risk_flag"] == "Red"
        got = system.query('SELECT VALUE highRiskTweetCheck(t)[0] FROM [{"id": 1, "country": "C02"}] t')
        assert got[0]["high_risk_flag"] == "Green"  # rank 11

    def test_reranking_visible_at_batch_boundary(self, system):
        system.execute(
            'CREATE FEED F WITH { "type-name": "TweetType" };'
            "CONNECT FEED F TO DATASET EnrichedTweets "
            "APPLY FUNCTION highRiskTweetCheck;"
        )

        class Promoter(GeneratorAdapter):
            """Gives C02 twenty new keywords after the first batch."""

            def __init__(self, raws, words):
                super().__init__(raws)
                self.words = words
                self.count = 0

            def envelopes(self):
                for envelope in super().envelopes():
                    self.count += 1
                    if self.count == 11:
                        for i in range(20):
                            self.words.upsert(
                                {"wid": 10_000 + i, "country": "C02", "word": "w"}
                            )
                    yield envelope

        raws = [
            json.dumps({"id": i, "text": "x", "country": "C02"})
            for i in range(30)
        ]
        system.start_feed(
            "F",
            adapter=Promoter(raws, system.catalog["SensitiveWords"]),
            batch_size=10,
        )
        flags = {
            r["id"]: r["high_risk_flag"]
            for r in system.catalog["EnrichedTweets"].scan()
        }
        # batch 1 (ids 0-9): C02 outside the top 10 -> Green
        assert all(flags[i] == "Green" for i in range(10))
        # after promotion C02 leads the ranking -> Red
        assert all(flags[i] == "Red" for i in range(20, 30))

    def test_cached_within_batch(self, system):
        """The top-10 list is evaluated once per generation, not per record."""
        from repro.sqlpp import EvaluationContext, Evaluator, parse_expression

        ctx = EvaluationContext(system.catalog, functions=system.registry)
        evaluator = Evaluator(ctx)
        expr = parse_expression("highRiskTweetCheck(t)")
        for i in range(25):
            evaluator.evaluate_query(expr, {"t": {"id": i, "country": "C05"}})
        # one cached uncorrelated-subquery entry; the group/sort work of
        # computing the ranking was charged once (shared), not 25 times
        cached = [k for k in ctx.batch_cache if k[0] == "uncorrelated"]
        assert len(cached) == 1
        assert ctx.shared_meter.group_items == 78  # sum(1..12) keywords
