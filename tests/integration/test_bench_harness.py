"""The benchmark harness itself (small configurations)."""

import pytest

from repro.bench import (
    BATCH_SIZES,
    SIMPLE_CASES,
    USE_CASES,
    ExperimentHarness,
    format_table,
    scaled_batch_sizes,
)
from repro.ingestion.feed import ComputingModel, Framework


@pytest.fixture(scope="module")
def harness():
    return ExperimentHarness(reference_scale=0.002, num_partitions=4)


class TestHarness:
    def test_no_udf_run(self, harness):
        report = harness.run_enrichment(None, tweets=200, num_nodes=4)
        assert report.records_stored == 200
        assert report.throughput > 0

    @pytest.mark.parametrize("case", SIMPLE_CASES)
    def test_every_simple_case_runs_sqlpp(self, harness, case):
        report = harness.run_enrichment(case, tweets=60, num_nodes=4,
                                        batch_size=30)
        assert report.records_stored == 60
        assert report.num_computing_jobs == 2

    @pytest.mark.parametrize(
        "case", ["suspicious_names", "tweet_context", "worrisome_tweets",
                 "naive_nearby_monuments"]
    )
    def test_every_complex_case_runs(self, harness, case):
        report = harness.run_enrichment(case, tweets=30, num_nodes=4)
        assert report.records_stored == 30

    def test_java_language_runs(self, harness):
        report = harness.run_enrichment(
            "safety_rating", tweets=50, num_nodes=4, language="java"
        )
        assert report.records_stored == 50

    def test_java_without_twin_rejected(self, harness):
        with pytest.raises(ValueError, match="no Java implementation"):
            harness.run_enrichment(
                "tweet_context", tweets=10, num_nodes=2, language="java"
            )

    def test_static_framework(self, harness):
        report = harness.run_enrichment(
            "safety_rating", tweets=50, num_nodes=4, language="java",
            framework=Framework.STATIC,
        )
        assert report.framework == "static"

    def test_update_rate_applies_updates(self, harness):
        report = harness.run_enrichment(
            "safety_rating", tweets=400, num_nodes=4, batch_size=40,
            update_rate=50.0,
        )
        assert report.extra["updates_applied"] > 0

    def test_catalogs_cached_across_runs(self, harness):
        first = harness.catalog_for(["SafetyRatings"])
        second = harness.catalog_for(["SafetyRatings"])
        assert first["SafetyRatings"] is second["SafetyRatings"]

    def test_quiesced_between_runs(self, harness):
        harness.run_enrichment(
            "safety_rating", tweets=100, num_nodes=4, batch_size=20,
            update_rate=200.0,
        )
        # next run must start from a flushed reference dataset
        harness.run_enrichment("safety_rating", tweets=20, num_nodes=4)
        catalog = harness.catalog_for(["SafetyRatings"])
        assert not catalog["SafetyRatings"].update_activity

    def test_reference_work_scale_propagates(self, harness):
        report_small = harness.run_enrichment(
            "safety_rating", tweets=100, num_nodes=4, batch_size=50
        )
        big = ExperimentHarness(reference_scale=0.004, num_partitions=4)
        report_big = big.run_enrichment(
            "safety_rating", tweets=100, num_nodes=4, batch_size=50
        )
        # both charge work as if at paper scale: refresh periods comparable
        ratio = report_big.refresh_period / report_small.refresh_period
        assert 0.5 < ratio < 2.0


class TestHelpers:
    def test_batch_size_constants(self):
        assert BATCH_SIZES == {"1X": 420, "4X": 1680, "16X": 6720}

    def test_scaled_batch_sizes_ratios(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_BATCH_SCALE", "0.1")
        sizes = scaled_batch_sizes()
        assert sizes == {"1X": 42, "4X": 168, "16X": 672}

    def test_use_case_registry_complete(self):
        assert len(USE_CASES) == 9
        for case in USE_CASES.values():
            assert case.sqlpp_function
            assert case.datasets

    def test_format_table_alignment(self):
        table = format_table("T", ["a", "bb"], [[1, 2.5], [10, 333.0]])
        lines = table.splitlines()
        assert lines[0] == "T"
        assert len({len(line) for line in lines[1:]}) == 1  # aligned
