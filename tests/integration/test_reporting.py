"""ASCII chart rendering."""

import pytest

from repro.bench.reporting import ascii_bar_chart, ascii_line_chart, speedup_table


class TestBarChart:
    def test_longest_bar_for_largest_value(self):
        chart = ascii_bar_chart({"small": 10, "big": 100}, width=20)
        lines = {line.split("|")[0].strip(): line for line in chart.splitlines()}
        assert lines["big"].count("#") == 20
        assert lines["small"].count("#") == 2

    def test_log_scale_compresses(self):
        linear = ascii_bar_chart({"a": 1, "b": 1024}, width=20)
        logged = ascii_bar_chart({"a": 1, "b": 1024}, width=20, log_scale=True)
        a_linear = [l for l in linear.splitlines() if l.startswith("a")][0]
        a_logged = [l for l in logged.splitlines() if l.startswith("a")][0]
        assert a_logged.count("#") > a_linear.count("#")

    def test_title_and_values_shown(self):
        chart = ascii_bar_chart({"x": 1234}, title="T")
        assert chart.startswith("T")
        assert "1,234" in chart

    def test_empty(self):
        assert ascii_bar_chart({}, title="T") == "T"

    def test_zero_value_gets_no_bar(self):
        chart = ascii_bar_chart({"z": 0, "a": 10})
        z_line = [l for l in chart.splitlines() if l.strip().startswith("z")][0]
        assert "#" not in z_line


class TestLineChart:
    def test_extremes_labeled(self):
        chart = ascii_line_chart(
            [1, 2, 3], {"s": [10, 20, 30]}, height=5, width=20
        )
        assert "30" in chart and "10" in chart

    def test_all_series_in_legend(self):
        chart = ascii_line_chart(
            [1, 2], {"alpha": [1, 2], "beta": [2, 1]}, height=4, width=10
        )
        assert "alpha" in chart and "beta" in chart

    def test_rising_series_rises(self):
        chart = ascii_line_chart([0, 10], {"s": [0, 100]}, height=5, width=11)
        rows = [line for line in chart.splitlines() if "|" in line][:5]
        # first point bottom-left, last point top-right
        assert rows[0].rstrip().endswith("*")
        assert rows[-1].split("|")[1].startswith("*")

    def test_empty(self):
        assert ascii_line_chart([], {}, title="T") == "T"


class TestSpeedupTable:
    def test_ratios(self):
        table = speedup_table({"a": 100.0, "b": 50.0}, {"a": 300.0, "b": 60.0}, 4.0)
        assert "3.00x" in table
        assert "1.20x" in table
        assert "75%" in table

    def test_zero_baseline_skipped(self):
        table = speedup_table({"a": 0.0}, {"a": 10.0}, 4.0)
        assert "a" not in table.splitlines()[-1] or len(table.splitlines()) == 1


class TestLayerUtilizationTable:
    def _metrics(self, workers=4):
        import json

        from repro.bench.reporting import layer_utilization_table
        from repro.core import AsterixLite
        from repro.ingestion import FeedPolicy, GeneratorAdapter

        system = AsterixLite(num_nodes=2)
        system.execute(
            """
            CREATE TYPE TweetType AS OPEN { id: int64 };
            CREATE DATASET Tweets(TweetType) PRIMARY KEY id;
            """
        )
        system.create_feed("TweetFeed", {"type-name": "TweetType"})
        system.connect_feed("TweetFeed", "Tweets")
        policy = FeedPolicy.spill(
            min_computing_workers=workers, max_computing_workers=workers
        )
        raws = (json.dumps({"id": i}) for i in range(120))
        report = system.start_feed(
            "TweetFeed", GeneratorAdapter(raws), batch_size=20, policy=policy
        )
        return layer_utilization_table, report.runtime

    def test_default_output_has_no_per_process_rows(self):
        table, metrics = self._metrics()
        rendered = table(metrics)
        assert "computing" in rendered
        assert ".w1" not in rendered and "w1 " not in rendered
        assert "pool:" not in rendered

    def test_per_process_adds_worker_rows_and_pool_summary(self):
        table, metrics = self._metrics()
        rendered = table(metrics, per_process=True)
        # one indented row per pool worker under the computing layer
        for worker in ("computing ", "w1", "w2", "w3"):
            assert worker in rendered
        assert "computing pool: peak 4 worker(s)" in rendered

    def test_single_worker_per_process_stays_compact(self):
        table, metrics = self._metrics(workers=1)
        rendered = table(metrics, per_process=True)
        assert "pool:" not in rendered  # nothing elastic to summarize
