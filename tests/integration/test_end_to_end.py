"""End-to-end scenarios through the public facade (the paper's user model)."""

import json

import pytest

from repro import AsterixLite
from repro.errors import FeedStateError, SqlppAnalysisError
from repro.ingestion import GeneratorAdapter, QueueAdapter


@pytest.fixture
def system():
    s = AsterixLite(num_nodes=3)
    s.execute(
        """
        CREATE TYPE TweetType AS OPEN { id: int64, text: string };
        CREATE DATASET Tweets(TweetType) PRIMARY KEY id;
        CREATE DATASET EnrichedTweets(TweetType) PRIMARY KEY id;
        CREATE TYPE SensitiveWordsType AS OPEN { wid: int64 };
        CREATE DATASET SensitiveWords(SensitiveWordsType) PRIMARY KEY wid;
        """
    )
    return s


class TestDdlAndDml:
    def test_figure_1_and_3(self, system):
        """The paper's Figure 1 DDL + Figure 3 insert."""
        system.execute(
            'INSERT INTO Tweets ([{"id": 0, "text": "Let there be light"}])'
        )
        assert system.query("SELECT VALUE t.text FROM Tweets t") == [
            "Let there be light"
        ]

    def test_duplicate_type_rejected(self, system):
        with pytest.raises(SqlppAnalysisError):
            system.execute("CREATE TYPE TweetType AS OPEN { id: int64 }")

    def test_duplicate_dataset_rejected(self, system):
        with pytest.raises(SqlppAnalysisError):
            system.execute("CREATE DATASET Tweets(TweetType) PRIMARY KEY id")

    def test_unknown_type_rejected(self, system):
        with pytest.raises(SqlppAnalysisError, match="unknown type"):
            system.execute("CREATE DATASET X(NopeType) PRIMARY KEY id")

    def test_insert_and_group_query(self, system):
        system.insert(
            "Tweets",
            [{"id": i, "text": "x", "country": f"C{i % 3}"} for i in range(30)],
        )
        got = system.query(
            "SELECT t.country AS country, count(*) AS num "
            "FROM Tweets t GROUP BY t.country"
        )
        assert sorted((g["country"], g["num"]) for g in got) == [
            ("C0", 10),
            ("C1", 10),
            ("C2", 10),
        ]

    def test_insert_into_select(self, system):
        system.insert("Tweets", [{"id": i, "text": "t"} for i in range(10)])
        system.execute(
            "INSERT INTO EnrichedTweets (SELECT VALUE t FROM Tweets t WHERE t.id < 4)"
        )
        assert len(system.catalog["EnrichedTweets"]) == 4

    def test_create_index_via_ddl(self, system):
        system.insert("Tweets", [{"id": 1, "text": "x", "score": 5}])
        system.execute("CREATE INDEX byScore ON Tweets(score)")
        assert system.catalog["Tweets"].index_on("score") == "byScore"


class TestUdfsAndOption1:
    """Option 1 (§4.1): enrichment during querying."""

    def test_figure_9_analytical_query(self, system):
        system.execute(
            """
            CREATE FUNCTION tweetSafetyCheck(tweet) {
                LET safety_check_flag = CASE
                    EXISTS(SELECT s FROM SensitiveWords s
                           WHERE tweet.country = s.country AND
                                 contains(tweet.text, s.word))
                    WHEN true THEN "Red" ELSE "Green"
                    END
                SELECT tweet.*, safety_check_flag
            }
            """
        )
        system.insert(
            "SensitiveWords", [{"wid": 1, "country": "US", "word": "bomb"}]
        )
        system.insert(
            "Tweets",
            [
                {"id": 1, "text": "a bomb", "country": "US"},
                {"id": 2, "text": "peace", "country": "US"},
                {"id": 3, "text": "a bomb", "country": "CA"},
            ],
        )
        got = system.query(
            """
            SELECT tweet.country Country, count(tweet) Num
            FROM Tweets tweet
            LET enrichedTweet = tweetSafetyCheck(tweet)[0]
            WHERE enrichedTweet.safety_check_flag = "Red"
            GROUP BY tweet.country
            """
        )
        assert got == [{"Country": "US", "Num": 1}]


class TestFeedLifecycle:
    def test_figure_4_feed_ddl_and_run(self, system):
        system.execute(
            """
            CREATE FEED TweetFeed WITH {
                "type-name": "TweetType",
                "adapter-name": "socket_adapter",
                "format": "JSON"
            };
            CONNECT FEED TweetFeed TO DATASET Tweets;
            """
        )
        raws = [json.dumps({"id": i, "text": f"t{i}"}) for i in range(40)]
        report = system.start_feed(
            "TweetFeed", adapter=GeneratorAdapter(raws), batch_size=10
        )
        assert report.records_stored == 40
        assert len(system.catalog["Tweets"]) == 40

    def test_feed_with_udf_enriches(self, system):
        system.execute(
            """
            CREATE FUNCTION usCheck(tweet) {
                LET safety_check_flag =
                    CASE tweet.country = "US" AND contains(tweet.text, "bomb")
                    WHEN true THEN "Red" ELSE "Green"
                    END
                SELECT tweet.*, safety_check_flag
            };
            CREATE FEED F2 WITH { "type-name": "TweetType" };
            CONNECT FEED F2 TO DATASET EnrichedTweets APPLY FUNCTION usCheck;
            """
        )
        raws = [
            json.dumps({"id": 1, "text": "a bomb", "country": "US"}),
            json.dumps({"id": 2, "text": "calm", "country": "US"}),
        ]
        system.start_feed("F2", adapter=GeneratorAdapter(raws))
        flags = {
            r["id"]: r["safety_check_flag"]
            for r in system.catalog["EnrichedTweets"].scan()
        }
        assert flags == {1: "Red", 2: "Green"}

    def test_static_framework_through_facade(self, system):
        system.execute(
            'CREATE FEED F3 WITH { "type-name": "TweetType" };'
            "CONNECT FEED F3 TO DATASET Tweets;"
        )
        raws = [json.dumps({"id": i, "text": "x"}) for i in range(25)]
        report = system.start_feed(
            "F3", adapter=GeneratorAdapter(raws), framework="static"
        )
        assert report.framework == "static"
        assert len(system.catalog["Tweets"]) == 25

    def test_queue_adapter_stop_feed(self, system):
        system.execute(
            'CREATE FEED F4 WITH { "type-name": "TweetType" };'
            "CONNECT FEED F4 TO DATASET Tweets;"
        )
        adapter = QueueAdapter()
        adapter.send_many(json.dumps({"id": i, "text": "x"}) for i in range(5))
        system.set_feed_adapter("F4", adapter)
        system.execute("STOP FEED F4")  # marks EOF
        report = system.start_feed("F4", batch_size=2)
        assert report.records_stored == 5

    def test_unconnected_feed_rejected(self, system):
        system.create_feed("Lonely")
        with pytest.raises(FeedStateError, match="not connected"):
            system.start_feed("Lonely", adapter=GeneratorAdapter([]))

    def test_feed_without_adapter_rejected(self, system):
        system.create_feed("NoAdapter")
        system.connect_feed("NoAdapter", "Tweets")
        with pytest.raises(FeedStateError, match="no adapter"):
            system.start_feed("NoAdapter")

    def test_feed_report_persisted(self, system):
        system.execute(
            'CREATE FEED F5 WITH { "type-name": "TweetType" };'
            "CONNECT FEED F5 TO DATASET Tweets;"
        )
        system.start_feed(
            "F5",
            adapter=GeneratorAdapter([json.dumps({"id": 1, "text": "x"})]),
        )
        assert system.feed_report("F5").records_stored == 1


class TestOption2EagerEnrichment:
    """Option 2 (§4.2): enrich during ingestion, query the stored results."""

    def test_enrich_then_analyze(self, system):
        system.insert(
            "SensitiveWords", [{"wid": 1, "country": "US", "word": "bomb"}]
        )
        system.execute(
            """
            CREATE FUNCTION safetyCheck(tweet) {
                LET safety_check_flag = CASE
                    EXISTS(SELECT s FROM SensitiveWords s
                           WHERE tweet.country = s.country AND
                                 contains(tweet.text, s.word))
                    WHEN true THEN "Red" ELSE "Green"
                    END
                SELECT tweet.*, safety_check_flag
            };
            CREATE FEED EnrichFeed WITH { "type-name": "TweetType" };
            CONNECT FEED EnrichFeed TO DATASET EnrichedTweets
                APPLY FUNCTION safetyCheck;
            """
        )
        raws = [
            json.dumps(
                {"id": i, "text": "bomb" if i % 2 else "ok", "country": "US"}
            )
            for i in range(20)
        ]
        system.start_feed("EnrichFeed", adapter=GeneratorAdapter(raws), batch_size=5)
        got = system.query(
            "SELECT t.safety_check_flag AS flag, count(*) AS n "
            "FROM EnrichedTweets t GROUP BY t.safety_check_flag"
        )
        assert sorted((g["flag"], g["n"]) for g in got) == [
            ("Green", 10),
            ("Red", 10),
        ]
