"""Legacy setup shim.

``pip install -e .`` on machines without the ``wheel`` package (e.g.
air-gapped environments) falls back to setuptools' legacy editable
install through this file; all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
