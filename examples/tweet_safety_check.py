"""The paper's running example: tweet safety checks with changing keywords.

Demonstrates the core claim of the paper (Sections 3-5):

* a *stateful* SQL++ UDF (Figure 8) joins each incoming tweet against the
  SensitiveWords reference dataset;
* the old static framework cannot run it at all, and its Java equivalent
  (Figure 7) never observes keyword updates;
* the new dynamic framework evaluates the UDF per batch, so a keyword
  added *while the feed is running* flags later tweets.

Run:  python examples/tweet_safety_check.py
"""

import json

from repro import AsterixLite
from repro.errors import IngestionError
from repro.ingestion import GeneratorAdapter


SAFETY_CHECK_UDF = """
CREATE FUNCTION tweetSafetyCheck(tweet) {
    LET safety_check_flag = CASE
        EXISTS(SELECT s FROM SensitiveWords s
               WHERE tweet.country = s.country AND
                     contains(tweet.text, s.word))
        WHEN true THEN "Red" ELSE "Green"
        END
    SELECT tweet.*, safety_check_flag
}
"""


class KeywordInjectingAdapter(GeneratorAdapter):
    """Upserts a new sensitive keyword after ``after`` records have flowed.

    Models the paper's scenario of reference data changing mid-ingestion.
    """

    def __init__(self, raws, words_dataset, after: int, new_word: dict):
        super().__init__(raws)
        self.words = words_dataset
        self.after = after
        self.new_word = new_word
        self._count = 0

    def envelopes(self):
        for envelope in super().envelopes():
            self._count += 1
            if self._count == self.after:
                print(f"  !! keyword {self.new_word['word']!r} added after "
                      f"{self.after} tweets")
                self.words.upsert(self.new_word)
            yield envelope


def main() -> None:
    system = AsterixLite(num_nodes=3)
    system.execute(
        """
        CREATE TYPE TweetType AS OPEN { id: int64, text: string };
        CREATE TYPE WordType AS OPEN { wid: int64 };
        CREATE DATASET SensitiveWords(WordType) PRIMARY KEY wid;
        CREATE DATASET EnrichedTweets(TweetType) PRIMARY KEY id;
        """
    )
    system.insert(
        "SensitiveWords", [{"wid": 1, "country": "US", "word": "bomb"}]
    )
    system.execute(SAFETY_CHECK_UDF)
    system.execute(
        'CREATE FEED TweetFeed WITH { "type-name": "TweetType" };'
        "CONNECT FEED TweetFeed TO DATASET EnrichedTweets "
        "APPLY FUNCTION tweetSafetyCheck;"
    )

    # 300 tweets, all containing the word "protest" which is NOT yet
    # sensitive; the adapter adds it to SensitiveWords after tweet 100.
    raws = [
        json.dumps({"id": i, "text": "big protest downtown", "country": "US"})
        for i in range(300)
    ]
    adapter = KeywordInjectingAdapter(
        raws,
        system.catalog["SensitiveWords"],
        after=100,
        new_word={"wid": 2, "country": "US", "word": "protest"},
    )

    print("running the DYNAMIC framework (batch = 50 records)...")
    report = system.start_feed("TweetFeed", adapter=adapter, batch_size=50)
    flags = {
        r["id"]: r["safety_check_flag"]
        for r in system.catalog["EnrichedTweets"].scan()
    }
    first_red = min((i for i, f in flags.items() if f == "Red"), default=None)
    reds = sum(1 for f in flags.values() if f == "Red")
    print(f"  {report.records_stored} tweets enriched in "
          f"{report.num_computing_jobs} computing jobs")
    print(f"  first Red tweet: id {first_red} (the update became visible at "
          "the next batch boundary)")
    print(f"  Red tweets: {reds} / {len(flags)}")

    # The old framework rejects the stateful UDF outright (§4.3.4).
    print("\ntrying the STATIC framework with the same stateful UDF...")
    try:
        system.start_feed(
            "TweetFeed",
            adapter=GeneratorAdapter(raws),
            framework="static",
        )
    except IngestionError as exc:
        print(f"  rejected, as in AsterixDB today: {exc}")


if __name__ == "__main__":
    main()
