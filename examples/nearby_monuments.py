"""Spatial enrichment: the Nearby Monuments use case (paper Appendix E).

Shows the optimizer's three access paths for the same spatial UDF:

* with an R-tree index on monument locations, the plan is an index
  nested-loop join that probes *live* data — a monument added mid-batch
  is visible immediately;
* with the ``/*+ no-index */`` hint (the paper's Naive Nearby Monuments),
  the plan scans and caches the monument list per batch;
* the Java twin linearly scans a node-local resource file.

Run:  python examples/nearby_monuments.py
"""

import json
import random

from repro.bench import ExperimentHarness
from repro.workloads import WorkloadScale


def main() -> None:
    harness = ExperimentHarness(reference_scale=0.01, num_partitions=6)

    print("enriching 1,000 tweets with nearby monuments on 6 nodes\n")
    configs = [
        ("SQL++ (R-tree index NLJ)", "nearby_monuments", "sqlpp"),
        ("SQL++ naive (no-index hint)", "naive_nearby_monuments", "sqlpp"),
        ("Java (linear resource scan)", "nearby_monuments", "java"),
    ]
    for title, case, language in configs:
        report = harness.run_enrichment(
            case, tweets=1000, num_nodes=6, batch_size=420, language=language
        )
        print(
            f"{title:32s} {report.throughput:10,.0f} records/sim-second   "
            f"refresh {report.refresh_period * 1000:7.1f} ms/batch"
        )

    # show the enriched output itself
    print("\nsample enrichment output:")
    catalog = harness.catalog_for(["monumentList"])
    catalog["EnrichedTweets"] = harness.workload.enriched_tweets_dataset()
    registry = harness.registry_for(catalog)
    from repro.sqlpp import EvaluationContext, Evaluator, parse_expression

    evaluator = Evaluator(EvaluationContext(catalog, functions=registry))
    rnd = random.Random(1)
    tweet = {
        "id": 1,
        "text": "visiting the city",
        "latitude": rnd.uniform(0, 100),
        "longitude": rnd.uniform(0, 100),
    }
    enriched = evaluator.evaluate_query(
        parse_expression("enrichTweetQ5(t)"), {"t": tweet}
    )[0]
    print(json.dumps(
        {k: v for k, v in enriched.items() if k in ("id", "nearby_monuments")},
        indent=2,
    ))

    # update sensitivity (the §7.3 effect): throughput under updates
    print("\nthroughput vs reference update rate (records/sim-second):")
    for rate in (0, 10, 100, 400):
        report = harness.run_enrichment(
            "nearby_monuments", tweets=600, num_nodes=6, batch_size=420,
            update_rate=float(rate),
        )
        print(f"  {rate:4d} updates/s -> {report.throughput:8,.0f}")


if __name__ == "__main__":
    main()
