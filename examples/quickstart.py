"""Quickstart: the paper's user model in five minutes.

Creates a type and datasets (Figure 1), inserts records (Figure 3), runs
analytical queries (Figure 2's group-by), defines a feed with DDL
(Figure 4), and streams data through it.

Run:  python examples/quickstart.py
"""

import json

from repro import AsterixLite
from repro.ingestion import GeneratorAdapter


def main() -> None:
    system = AsterixLite(num_nodes=3)

    # --- DDL: Figure 1 --------------------------------------------------
    system.execute(
        """
        CREATE TYPE TweetType AS OPEN {
            id: int64,
            text: string
        };
        CREATE DATASET Tweets(TweetType) PRIMARY KEY id;
        """
    )

    # --- DML: Figure 3 --------------------------------------------------
    system.execute(
        'INSERT INTO Tweets ([{"id": 0, "text": "Let there be light"}])'
    )
    print("inserted:", system.query("SELECT VALUE t FROM Tweets t"))

    # --- a batch of richer tweets, then Figure 2's analytical query ------
    system.insert(
        "Tweets",
        [
            {"id": i, "text": f"tweet number {i}", "country": f"C{i % 4}"}
            for i in range(1, 101)
        ],
    )
    counts = system.query(
        """
        SELECT t.country AS country, count(*) AS num
        FROM Tweets t
        GROUP BY t.country
        ORDER BY num DESC
        """
    )
    print("tweets per country:", counts)

    # --- feeds: Figure 4 --------------------------------------------------
    system.execute(
        """
        CREATE FEED TweetFeed WITH {
            "type-name"   : "TweetType",
            "adapter-name": "socket_adapter",
            "format"      : "JSON"
        };
        CONNECT FEED TweetFeed TO DATASET Tweets;
        """
    )
    live_tweets = (
        json.dumps({"id": 1000 + i, "text": f"live tweet {i}"})
        for i in range(500)
    )
    report = system.start_feed(
        "TweetFeed", adapter=GeneratorAdapter(live_tweets), batch_size=50
    )
    print(
        f"feed ingested {report.records_stored} records in "
        f"{report.num_computing_jobs} computing jobs "
        f"({report.throughput:,.0f} records/simulated-second)"
    )
    print("total tweets stored:", len(system.catalog["Tweets"]))


if __name__ == "__main__":
    main()
