"""Comparing the old and new ingestion frameworks (paper Section 7.1).

Runs the no-UDF tweet firehose through both frameworks across cluster
sizes and batch sizes — a miniature of Figure 24 — and prints the
resulting throughput matrix with the effects the paper highlights.

Run:  python examples/ingestion_comparison.py
"""

from repro.bench import BATCH_SIZES, ExperimentHarness
from repro.ingestion.feed import Framework


def main() -> None:
    harness = ExperimentHarness(reference_scale=0.01, num_partitions=6)
    tweets = 4000

    print(f"ingesting {tweets} tweets (no UDF), throughput in records/sim-second\n")
    header = (
        f"{'nodes':>5}  {'static':>9}  {'bal-static':>10}  "
        f"{'dyn-1X':>9}  {'dyn-16X':>9}  {'bal-dyn-16X':>11}"
    )
    print(header)
    print("-" * len(header))
    for nodes in (1, 3, 6, 12, 24):
        static = harness.run_enrichment(
            None, tweets, nodes, framework=Framework.STATIC
        ).throughput
        balanced_static = harness.run_enrichment(
            None, tweets, nodes, framework=Framework.STATIC, balanced_intake=True
        ).throughput
        dyn_1x = harness.run_enrichment(
            None, tweets, nodes, batch_size=BATCH_SIZES["1X"]
        ).throughput
        dyn_16x = harness.run_enrichment(
            None, tweets, nodes, batch_size=BATCH_SIZES["16X"]
        ).throughput
        bal_dyn = harness.run_enrichment(
            None, tweets, nodes, batch_size=BATCH_SIZES["16X"],
            balanced_intake=True,
        ).throughput
        print(
            f"{nodes:>5}  {static:>9,.0f}  {balanced_static:>10,.0f}  "
            f"{dyn_1x:>9,.0f}  {dyn_16x:>9,.0f}  {bal_dyn:>11,.0f}"
        )

    print(
        "\nwhat to look for (paper Figure 24):\n"
        "  * static stays flat — parsing is stuck on the single intake node\n"
        "  * balanced static grows with every node\n"
        "  * dynamic rises then saturates on the intake node; 16X > 1X\n"
        "  * balanced dynamic scales, but trails balanced static on big\n"
        "    clusters because every batch pays a job-invocation overhead\n"
        "    that grows with cluster size"
    )


if __name__ == "__main__":
    main()
