"""Option 1 vs Option 2: enrich during querying vs during ingestion (§4).

The paper's Section 4 contrasts two ways to use an enrichment UDF:

* **Option 1 — lazy**: store raw tweets, call the UDF inside each
  analytical query (Figure 9).  Every query re-pays the enrichment.
* **Option 2 — eager**: attach the UDF to the feed, store enriched tweets,
  and let analytical queries read the stored flag.

This example ingests the same stream both ways and runs the paper's
Figure 9 analytics against each, comparing correctness (identical answers)
and the per-query enrichment work that Option 1 keeps re-paying.

Run:  python examples/enrichment_options.py
"""

import json
import time

from repro import AsterixLite
from repro.ingestion import GeneratorAdapter

SETUP = """
CREATE TYPE TweetType AS OPEN { id: int64, text: string };
CREATE TYPE WordType AS OPEN { wid: int64 };
CREATE DATASET Tweets(TweetType) PRIMARY KEY id;
CREATE DATASET EnrichedTweets(TweetType) PRIMARY KEY id;
CREATE DATASET SensitiveWords(WordType) PRIMARY KEY wid;

CREATE FUNCTION tweetSafetyCheck(tweet) {
    LET safety_check_flag = CASE
        EXISTS(SELECT s FROM SensitiveWords s
               WHERE tweet.country = s.country AND
                     contains(tweet.text, s.word))
        WHEN true THEN "Red" ELSE "Green"
        END
    SELECT tweet.*, safety_check_flag
};

CREATE FEED RawFeed WITH { "type-name": "TweetType" };
CONNECT FEED RawFeed TO DATASET Tweets;

CREATE FEED EnrichingFeed WITH { "type-name": "TweetType" };
CONNECT FEED EnrichingFeed TO DATASET EnrichedTweets
    APPLY FUNCTION tweetSafetyCheck;
"""

OPTION1_QUERY = """
SELECT tweet.country Country, count(tweet) Num
FROM Tweets tweet
LET enrichedTweet = tweetSafetyCheck(tweet)[0]
WHERE enrichedTweet.safety_check_flag = "Red"
GROUP BY tweet.country
ORDER BY Country
"""

OPTION2_QUERY = """
SELECT e.country Country, count(e) Num
FROM EnrichedTweets e
WHERE e.safety_check_flag = "Red"
GROUP BY e.country
ORDER BY Country
"""


def main() -> None:
    system = AsterixLite(num_nodes=3)
    system.execute(SETUP)
    system.insert(
        "SensitiveWords",
        [
            {"wid": 1, "country": "US", "word": "bomb"},
            {"wid": 2, "country": "FR", "word": "bombe"},
        ],
    )

    words = ["hello", "bomb", "sunny", "bombe", "rain"]
    tweets = [
        {"id": i, "text": f"{words[i % 5]} day", "country": ["US", "FR"][i % 2]}
        for i in range(2000)
    ]
    raws = [json.dumps(t) for t in tweets]

    print("ingesting 2,000 tweets twice: raw (Option 1) and enriched (Option 2)")
    system.start_feed("RawFeed", adapter=GeneratorAdapter(raws), batch_size=420)
    report = system.start_feed(
        "EnrichingFeed", adapter=GeneratorAdapter(raws), batch_size=420
    )
    print(f"  eager feed: {report.num_computing_jobs} computing jobs, "
          f"{report.throughput:,.0f} records/sim-second\n")

    # both options answer the Figure 9 analytics identically
    start = time.perf_counter()
    lazy = system.query(OPTION1_QUERY)
    lazy_wall = time.perf_counter() - start
    start = time.perf_counter()
    eager = system.query(OPTION2_QUERY)
    eager_wall = time.perf_counter() - start
    assert lazy == eager, (lazy, eager)
    print("Figure 9 analytics (both options agree):", lazy)
    print(f"\nquery wall time, Option 1 (UDF per query): {lazy_wall * 1000:8.1f} ms")
    print(f"query wall time, Option 2 (stored flag)   : {eager_wall * 1000:8.1f} ms")
    print(
        "\nOption 1 re-pays the enrichment on every analytical query; "
        "Option 2 paid it once, during ingestion — the paper's case for "
        "pushing enrichment into the feed (§4.2)."
    )


if __name__ == "__main__":
    main()
