"""The public facade: an embedded AsterixDB-like system.

This is the user model the paper assumes — DDL for types, datasets,
indexes, functions, and feeds; DML for inserts and queries; feeds for
continuous ingestion with attached enrichment UDFs.  Statements can be
issued as SQL++ text (``execute``) or through the equivalent programmatic
methods.

>>> system = AsterixLite(num_nodes=3)
>>> system.execute('''
...     CREATE TYPE TweetType AS OPEN { id: int64, text: string };
...     CREATE DATASET Tweets(TweetType) PRIMARY KEY id;
... ''')
>>> system.insert("Tweets", [{"id": 0, "text": "Let there be light"}])
1
>>> system.query("SELECT VALUE t.text FROM Tweets t")
['Let there be light']
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Union

from ..adm.schema import make_type
from ..adm.types import Datatype
from ..cluster.controller import Cluster
from ..errors import FeedStateError, SqlppAnalysisError
from ..hyracks.cost import CostModel
from ..ingestion.adapter import FeedAdapter
from ..ingestion.feed import (
    AttachedFunction,
    ComputingModel,
    FeedDefinition,
    FeedRunReport,
    Framework,
)
from ..ingestion.fabric import FeedLaunch, merge_fault_plans
from ..ingestion.pipelines import (
    ActiveFeedManager,
    DynamicIngestionPipeline,
    StaticIngestionPipeline,
)
from ..ingestion.policy import DEFAULT_POLICY, FeedPolicy
from ..runtime.faults import FaultPlan
from ..sqlpp.compiler import QueryCompiler, run_insert
from ..storage.checkpoint import CheckpointStore
from ..sqlpp.evaluator import EvaluationContext, Evaluator
from ..sqlpp.parser import parse_statements
from ..sqlpp.statements import (
    ConnectFeed,
    CreateDataset,
    CreateFeed,
    CreateFunction,
    CreateIndex,
    CreateType,
    DeleteStatement,
    InsertStatement,
    QueryStatement,
    StartFeed,
    StopFeed,
)
from ..storage.dataset import Dataset
from ..storage.index import IndexKind
from ..udf.registry import FunctionRegistry


class _FeedState:
    def __init__(self, name: str, config: Dict[str, object]):
        self.name = name
        self.config = config
        self.target_dataset: Optional[str] = None
        self.functions: List[AttachedFunction] = []
        self.adapter: Optional[FeedAdapter] = None
        self.policy: Optional[FeedPolicy] = None
        self.external_enrichers: List[object] = []
        self.last_report: Optional[FeedRunReport] = None
        self.running = False


class AsterixLite:
    """An embedded, single-process reproduction of the paper's system."""

    def __init__(
        self,
        num_nodes: int = 1,
        cost_model: Optional[CostModel] = None,
        default_partitions: Optional[int] = None,
    ):
        self.cluster = Cluster(num_nodes, cost_model)
        self.types: Dict[str, Datatype] = {}
        self.catalog: Dict[str, Dataset] = {}
        self.registry = FunctionRegistry(lambda: set(self.catalog))
        self.feeds: Dict[str, _FeedState] = {}
        self.afm = ActiveFeedManager(self.cluster)
        self.default_partitions = default_partitions or num_nodes
        self._compiler = QueryCompiler(self.cluster, self.catalog, self.registry)

    # ------------------------------------------------------------------- DDL

    def create_type(
        self, name: str, fields: Dict[str, str], open: bool = True  # noqa: A002
    ) -> Datatype:
        if name in self.types:
            raise SqlppAnalysisError(f"type {name!r} already exists")
        datatype = make_type(name, fields, open=open)
        self.types[name] = datatype
        return datatype

    def create_dataset(
        self,
        name: str,
        type_name: str,
        primary_key: str,
        num_partitions: Optional[int] = None,
    ) -> Dataset:
        if name in self.catalog:
            raise SqlppAnalysisError(f"dataset {name!r} already exists")
        if type_name not in self.types:
            raise SqlppAnalysisError(f"unknown type: {type_name}")
        dataset = Dataset(
            name,
            self.types[type_name],
            primary_key,
            num_partitions=num_partitions or self.default_partitions,
        )
        self.catalog[name] = dataset
        self.registry.invalidate_plans()
        return dataset

    def create_index(
        self, name: str, dataset: str, field: str, kind: str = "btree"
    ) -> None:
        self._dataset(dataset).create_index(
            name, field, IndexKind.RTREE if kind == "rtree" else IndexKind.BTREE
        )
        self.registry.invalidate_plans()

    def drop_index(self, dataset: str, name: str) -> None:
        self._dataset(dataset).drop_index(name)
        self.registry.invalidate_plans()

    def plan_cache_stats(self, feed: Optional[str] = None) -> Dict[str, int]:
        """Plan-cache + enrichment-state-cache + enrichment-memo counters.

        With no ``feed``, the registry-global view: plan-cache keys are
        unprefixed (``plans``/``hits``/``misses``/``invalidations``); the
        cross-batch state cache's counters are merged in under a
        ``state_cache_`` prefix and the key-level enrichment memo's under
        a ``memo_`` prefix.  Under concurrent feeds those singleton
        counters interleave every tenant's traffic, so pass a feed name
        to get *that feed's* disjoint, labeled row instead: its last
        run's per-run cache/memo deltas plus its columnar counters (all
        zero before the feed's first run).
        """
        if feed is not None:
            report = self._feed(feed).last_report
            stats: Dict[str, int] = {"feed": feed}
            if report is None:
                return stats
            stats.update(
                state_cache_hits=report.state_cache_hits,
                state_cache_misses=report.state_cache_misses,
                state_cache_evictions=report.state_cache_evictions,
                state_cache_bytes=report.state_cache_bytes,
                memo_hits=report.memo_hits,
                memo_misses=report.memo_misses,
                memo_evictions=report.memo_evictions,
                memo_bytes=report.memo_bytes,
                vectorized_batches=report.vectorized_batches,
                vectorized_records=report.vectorized_records,
                scalar_fallbacks=report.scalar_fallbacks,
            )
            return stats
        stats = dict(self.registry.plan_cache.stats())
        for key, value in self.registry.state_cache.stats().items():
            stats[f"state_cache_{key}"] = value
        for key, value in self.registry.enrichment_memo.stats().items():
            stats[f"memo_{key}"] = value
        return stats

    def create_function(self, source_or_definition) -> None:
        self.registry.register_sqlpp(source_or_definition)

    def create_java_function(self, descriptor) -> None:
        self.registry.register_java(descriptor)

    def create_feed(self, name: str, config: Optional[Dict] = None) -> None:
        if name in self.feeds:
            raise FeedStateError(f"feed {name!r} already exists")
        self.feeds[name] = _FeedState(name, dict(config or {}))

    def connect_feed(
        self,
        feed: str,
        dataset: str,
        apply_functions: Iterable[Union[str, AttachedFunction]] = (),
        policy: Optional[FeedPolicy] = None,
        external_enrichers: Iterable[object] = (),
    ) -> None:
        """Connect a feed to its target dataset.

        ``policy`` (a :class:`~repro.ingestion.policy.FeedPolicy`, e.g.
        ``FeedPolicy.spill()``) governs soft errors, congestion, and actor
        restarts for every subsequent run of this feed; the default is the
        fail-fast ``Basic`` policy.

        ``external_enrichers`` (a sequence of
        :class:`~repro.ingestion.external.EnricherBinding`) routes probe
        keys through simulated remote lookup services with the full
        resilience stack — see :mod:`repro.ingestion.external`.
        """
        state = self._feed(feed)
        self._dataset(dataset)  # validate existence
        state.target_dataset = dataset
        state.functions = [
            fn if isinstance(fn, AttachedFunction) else AttachedFunction(fn)
            for fn in apply_functions
        ]
        state.policy = policy
        state.external_enrichers = list(external_enrichers)

    # ------------------------------------------------------------------ feeds

    def set_feed_adapter(self, feed: str, adapter: FeedAdapter) -> None:
        self._feed(feed).adapter = adapter

    def start_feed(
        self,
        feed: str,
        adapter: Optional[Union[FeedAdapter, Sequence[FeedAdapter]]] = None,
        framework: Union[str, Framework] = Framework.DYNAMIC,
        batch_size: int = 420,
        balanced_intake: bool = False,
        computing_model: ComputingModel = ComputingModel.PER_BATCH,
        update_client=None,
        policy: Optional[FeedPolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
        checkpoint: Optional[CheckpointStore] = None,
        resume: bool = False,
    ) -> FeedRunReport:
        """Run the feed to adapter exhaustion; returns the run report.

        The embedded execution model is synchronous: starting a feed drives
        it until the adapter's stream ends (a ``QueueAdapter`` ends when its
        producer calls ``end()``, which is the STOP FEED analog).

        ``adapter`` can be a sequence for partitioned intake (one adapter
        per intake partition), or a single splittable adapter combined
        with a policy whose ``intake_partitions`` exceeds one.

        ``policy`` overrides the policy attached at ``connect_feed`` time
        for this run only; ``fault_plan`` injects a deterministic schedule
        of actor crashes/stalls/disconnects (chaos testing).

        ``checkpoint`` (a :class:`~repro.storage.CheckpointStore`) makes
        the run durably restartable (dynamic framework only): see
        :meth:`resume_run`.
        """
        state = self._feed(feed)
        if state.target_dataset is None:
            raise FeedStateError(f"feed {feed!r} is not connected to a dataset")
        if state.running:
            raise FeedStateError(f"feed {feed!r} is already running")
        adapter = adapter if adapter is not None else state.adapter
        if adapter is None:
            raise FeedStateError(f"feed {feed!r} has no adapter")
        framework = Framework(framework) if isinstance(framework, str) else framework
        if framework is Framework.STATIC and checkpoint is not None:
            raise FeedStateError(
                "durable checkpoints need the dynamic framework (the static "
                "pipeline is one monolithic job with no restart cursor)"
            )
        if framework is Framework.STATIC and not isinstance(adapter, FeedAdapter):
            raise FeedStateError(
                "partitioned intake (multiple adapters) needs the dynamic "
                "framework"
            )
        type_name = state.config.get("type-name")
        datatype = self.types.get(type_name) if type_name else None
        definition = FeedDefinition(
            name=feed,
            target_dataset=state.target_dataset,
            datatype=datatype,
            batch_size=batch_size,
            framework=framework,
            computing_model=computing_model,
            functions=list(state.functions),
            balanced_intake=balanced_intake,
            policy=policy or state.policy,
            fault_plan=fault_plan,
            external_enrichers=list(state.external_enrichers),
        )
        state.running = True
        try:
            if framework is Framework.STATIC:
                pipeline = StaticIngestionPipeline(
                    self.cluster, self.catalog, self.registry
                )
                report = pipeline.run(definition, adapter)
            else:
                pipeline = DynamicIngestionPipeline(
                    self.cluster, self.catalog, self.registry, afm=self.afm
                )
                report = pipeline.run(
                    definition,
                    adapter,
                    update_client=update_client,
                    checkpoint=checkpoint,
                    resume=resume,
                )
        finally:
            state.running = False
        state.last_report = report
        return report

    def start_feeds(
        self,
        launches: Sequence[Union[str, FeedLaunch]],
        fabric=None,
        computing_model: ComputingModel = ComputingModel.PER_BATCH,
    ) -> Dict[str, FeedRunReport]:
        """Run several feeds concurrently on one shared simulated runtime.

        Each entry is a :class:`~repro.ingestion.fabric.FeedLaunch` (or a
        bare feed name for all-default settings).  Every feed's layers run
        as processes on *one* discrete-event runtime sharing the cluster
        clock, so the feeds genuinely contend: the fleet's makespan — the
        shared runtime's elapsed time — lands in every report's
        ``simulated_seconds``.

        ``fabric`` (a :class:`~repro.ingestion.fabric.FeedFabric`) makes
        the fleet multi-tenant: per-feed elastic controllers bid into one
        global worker budget, and — when the fabric carries a memory
        governor — each feed's cache/memo becomes a governed private
        tenant.  Defaults to the cluster's attached fabric
        (:meth:`Cluster.attach_fabric`) when that one is fresh, else no
        arbitration (feeds still share the clock but size their pools
        independently).  Per-feed stored outputs are byte-identical with
        and without a fabric — the fabric only changes pool sizes over
        time, never batch order.

        Per-feed fault plans are merged onto the shared runtime; target
        entries should use feed-scoped names (``feed-<name>.computing``)
        and :class:`~repro.runtime.faults.AdapterFailAt` entries the
        ``feed=`` field, since bare layer targets match every feed.

        Returns ``{feed name: report}``; each feed's report is also its
        ``last_report`` (visible to :meth:`feed_report`,
        :meth:`runtime_metrics`, and ``plan_cache_stats(feed=...)``).
        """
        launches = [
            launch if isinstance(launch, FeedLaunch) else FeedLaunch(feed=launch)
            for launch in launches
        ]
        if not launches:
            raise FeedStateError("start_feeds needs at least one feed")
        names = [launch.feed for launch in launches]
        if len(set(names)) != len(names):
            raise FeedStateError(f"duplicate feeds in start_feeds: {names}")
        if fabric is None:
            attached = self.cluster.fabric
            if attached is not None and not attached.used:
                fabric = attached

        entries = []
        for launch in launches:
            state = self._feed(launch.feed)
            if state.target_dataset is None:
                raise FeedStateError(
                    f"feed {launch.feed!r} is not connected to a dataset"
                )
            if state.running:
                raise FeedStateError(f"feed {launch.feed!r} is already running")
            adapter = (
                launch.adapter if launch.adapter is not None else state.adapter
            )
            if adapter is None:
                raise FeedStateError(f"feed {launch.feed!r} has no adapter")
            type_name = state.config.get("type-name")
            datatype = self.types.get(type_name) if type_name else None
            definition = FeedDefinition(
                name=launch.feed,
                target_dataset=state.target_dataset,
                datatype=datatype,
                batch_size=launch.batch_size,
                framework=Framework.DYNAMIC,
                computing_model=computing_model,
                functions=list(state.functions),
                balanced_intake=launch.balanced_intake,
                policy=launch.policy or state.policy,
                fault_plan=launch.fault_plan,
                external_enrichers=list(state.external_enrichers),
            )
            entries.append((state, launch, adapter, definition))

        if fabric is not None:
            fabric.validate(
                [
                    (d.name, d.policy or DEFAULT_POLICY)
                    for _, _, _, d in entries
                ]
            )
        runtime = self.cluster.new_runtime("fleet")
        runtime.install_fault_plan(
            merge_fault_plans([d.fault_plan for _, _, _, d in entries])
        )
        if fabric is not None:
            fabric.bind(runtime)
        pipeline = DynamicIngestionPipeline(
            self.cluster, self.catalog, self.registry, afm=self.afm
        )
        handles = []
        reports: Dict[str, FeedRunReport] = {}
        for state, _, _, _ in entries:
            state.running = True
        try:
            try:
                for state, launch, adapter, definition in entries:
                    handles.append(
                        (
                            state,
                            pipeline.launch(
                                definition,
                                adapter,
                                update_client=launch.update_client,
                                runtime=runtime,
                                fabric=fabric,
                            ),
                        )
                    )
                for _, handle in handles:
                    self.cluster.controller.begin_run(handle.run_name)
                try:
                    elapsed = runtime.run()
                finally:
                    for _, handle in handles:
                        self.cluster.controller.finish_run(handle.run_name)
                        handle.collect_faults()
                for state, handle in handles:
                    report = handle.finalize(elapsed)
                    state.last_report = report
                    reports[handle.feed_name] = report
            finally:
                for _, handle in handles:
                    handle.cleanup()
        finally:
            for state, _, _, _ in entries:
                state.running = False
        return reports

    def resume_run(
        self,
        feed: str,
        adapter: Optional[Union[FeedAdapter, Sequence[FeedAdapter]]] = None,
        checkpoint: Optional[CheckpointStore] = None,
        **kwargs,
    ) -> FeedRunReport:
        """Restart an interrupted feed run from its durable checkpoint.

        Pass *fresh* adapters over the same source(s) (the interrupted
        process's live adapters are gone): each intake partition is
        re-opened at its persisted cursor, so everything acked before the
        interruption is skipped, the un-acked tail is replayed, and
        pk-upsert dedupes the overlap — the final datasets are
        byte-identical to an uninterrupted run.  Accepts the same keyword
        arguments as :meth:`start_feed`.
        """
        if checkpoint is None:
            raise FeedStateError("resume_run needs the run's CheckpointStore")
        return self.start_feed(
            feed, adapter, checkpoint=checkpoint, resume=True, **kwargs
        )

    def feed_report(self, feed: str) -> Optional[FeedRunReport]:
        return self._feed(feed).last_report

    def replay_dead_letters(
        self,
        feed: str,
        batch_size: int = 420,
        policy: Optional[FeedPolicy] = None,
    ):
        """Re-ingest the feed's repaired dead-letter rows and clear them.

        See :func:`repro.ingestion.replay.replay_dead_letters`; returns its
        :class:`~repro.ingestion.replay.ReplayReport`.
        """
        from ..ingestion.replay import replay_dead_letters

        return replay_dead_letters(self, feed, batch_size=batch_size, policy=policy)

    def backfill_pending(
        self,
        feed: str,
        bindings=None,
        policy: Optional[FeedPolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
    ):
        """Catch-up pass: re-probe stored ``_enrichment_pending`` records.

        Runs the feed's external enrichers (or ``bindings``) over every
        stored record still carrying the pending marker — once the remote
        has recovered this drives enrichment completeness back to 1.0.
        See :func:`repro.ingestion.external.backfill_pending`; returns its
        :class:`~repro.ingestion.external.BackfillReport`.
        """
        from ..ingestion.external import backfill_pending

        return backfill_pending(
            self, feed, bindings=bindings, policy=policy, fault_plan=fault_plan
        )

    def runtime_metrics(self, feed: str):
        """The feed's last-run :class:`~repro.runtime.RuntimeMetrics`.

        Per-layer busy/idle/blocked timelines, partition-holder high-water
        marks, stall counts, and batch latencies — ``None`` before the
        feed's first run.
        """
        report = self._feed(feed).last_report
        return report.runtime if report is not None else None

    # ------------------------------------------------------------------- DML

    def insert(self, dataset: str, records: List[dict], upsert: bool = False) -> int:
        result = run_insert(
            self.cluster, self.catalog, dataset, list(records), upsert=upsert
        )
        return result.records_out

    def upsert(self, dataset: str, records: List[dict]) -> int:
        return self.insert(dataset, records, upsert=True)

    def delete_where(self, dataset_name: str, var: str, where=None) -> int:
        """Delete records matching ``where``; returns how many went."""
        dataset = self._dataset(dataset_name)
        evaluator = self.evaluator()
        from ..adm.schema import primary_key_of
        from ..sqlpp.evaluator import Env, _truthy

        doomed = []
        for record in dataset.scan():
            if where is None or _truthy(
                evaluator.evaluate(where, Env({var: record}))
            ):
                doomed.append(primary_key_of(record, dataset.primary_key))
        for key in doomed:
            dataset.delete(key)
        return len(doomed)

    def query(self, text_or_ast) -> List:
        """Evaluate a query (Option 1: enrichment-during-querying)."""
        if isinstance(text_or_ast, str):
            statements = parse_statements(text_or_ast)
            if len(statements) != 1 or not isinstance(statements[0], QueryStatement):
                raise SqlppAnalysisError("query() expects exactly one SELECT")
            ast = statements[0].query
        else:
            ast = text_or_ast
        return self._compiler.compile(ast).execute()

    def prepare(self, text: str) -> "PreparedQuery":
        """Predeploy a parameterized query (Figure 20).

        Placeholders are written ``$name``; ``PreparedQuery.execute`` binds
        them per invocation.  The compiled specification is cached on every
        node, so invocations pay the predeployed-invoke overhead rather
        than re-compiling — the same mechanism the dynamic ingestion
        framework uses for its computing jobs.
        """
        statements = parse_statements(text)
        if len(statements) != 1 or not isinstance(statements[0], QueryStatement):
            raise SqlppAnalysisError("prepare() expects exactly one SELECT")
        ast = statements[0].query
        from ..sqlpp.analysis import free_vars

        params = sorted(
            name for name in free_vars(ast)
            if name.startswith("$")
        )
        from ..hyracks.connectors import OneToOne
        from ..hyracks.job import JobSpecification, OperatorDescriptor
        from ..hyracks.operators import ListSource, NullSink

        def spec_builder(bound):
            # the invocation message: ship the parameter to the cluster
            spec = JobSpecification("prepared-query")
            src = spec.add_operator(
                OperatorDescriptor(
                    "params",
                    lambda c: ListSource(c, [dict(bound)] if bound else []),
                    partitions=1,
                )
            )
            sink = spec.add_operator(
                OperatorDescriptor("sink", lambda c: NullSink(c), partitions=1)
            )
            spec.connect(src, sink, OneToOne())
            return spec

        job_id = self.cluster.controller.deploy("prepared-query", spec_builder)
        return PreparedQuery(self, ast, params, job_id)

    def save_dataset(self, dataset: str, path: str) -> int:
        """Snapshot a dataset to disk; returns records written."""
        from ..storage.persistence import save_dataset

        return save_dataset(self._dataset(dataset), path)

    def load_dataset(self, path: str) -> Dataset:
        """Load a snapshot into the catalog (name comes from the file)."""
        from ..storage.persistence import load_dataset

        dataset = load_dataset(path, num_partitions=self.default_partitions)
        if dataset.name in self.catalog:
            raise SqlppAnalysisError(f"dataset {dataset.name!r} already exists")
        self.catalog[dataset.name] = dataset
        self.types.setdefault(dataset.datatype.name, dataset.datatype)
        self.registry.invalidate_plans()
        return dataset

    def explain(self, text_or_ast) -> str:
        """Describe the physical plan a query compiles to (EXPLAIN)."""
        if isinstance(text_or_ast, str):
            statements = parse_statements(text_or_ast)
            if len(statements) != 1 or not isinstance(statements[0], QueryStatement):
                raise SqlppAnalysisError("explain() expects exactly one SELECT")
            ast = statements[0].query
        else:
            ast = text_or_ast
        return self._compiler.compile(ast).plan

    # ------------------------------------------------------------- statements

    def execute(self, sqlpp_text: str):
        """Execute one or more SQL++ statements; returns the last result."""
        result = None
        for statement in parse_statements(sqlpp_text):
            result = self._execute_one(statement)
        return result

    def _execute_one(self, statement):
        if isinstance(statement, CreateType):
            return self.create_type(
                statement.name, statement.fields, open=statement.is_open
            )
        if isinstance(statement, CreateDataset):
            return self.create_dataset(
                statement.name, statement.type_name, statement.primary_key
            )
        if isinstance(statement, CreateIndex):
            return self.create_index(
                statement.name,
                statement.dataset,
                statement.fields[0],
                kind=statement.index_type,
            )
        if isinstance(statement, CreateFunction):
            return self.create_function(statement.definition)
        if isinstance(statement, CreateFeed):
            return self.create_feed(statement.name, statement.config)
        if isinstance(statement, ConnectFeed):
            return self.connect_feed(
                statement.feed, statement.dataset, statement.apply_functions
            )
        if isinstance(statement, StartFeed):
            return self.start_feed(statement.feed)
        if isinstance(statement, StopFeed):
            state = self._feed(statement.feed)
            if state.adapter is not None and hasattr(state.adapter, "end"):
                state.adapter.end()
            return None
        if isinstance(statement, DeleteStatement):
            return self.delete_where(
                statement.dataset, statement.var, statement.where
            )
        if isinstance(statement, InsertStatement):
            rows = self._compiler.compile(statement.query).execute()
            return self.insert(statement.dataset, rows, upsert=statement.upsert)
        if isinstance(statement, QueryStatement):
            return self._compiler.compile(statement.query).execute()
        raise SqlppAnalysisError(f"unsupported statement: {type(statement).__name__}")

    # ---------------------------------------------------------------- helpers

    def evaluation_context(self) -> EvaluationContext:
        return EvaluationContext(self.catalog, functions=self.registry)

    def evaluator(self) -> Evaluator:
        return Evaluator(self.evaluation_context())

    def _dataset(self, name: str) -> Dataset:
        if name not in self.catalog:
            raise SqlppAnalysisError(f"unknown dataset: {name}")
        return self.catalog[name]

    def _feed(self, name: str) -> _FeedState:
        if name not in self.feeds:
            raise FeedStateError(f"unknown feed: {name}")
        return self.feeds[name]


class PreparedQuery:
    """A predeployed parameterized query (the paper's Figure 20)."""

    def __init__(self, system: AsterixLite, ast, params, job_id: str):
        self._system = system
        self.ast = ast
        self.params = params  # sorted "$name" placeholders
        self.job_id = job_id
        self.invocations = 0

    def execute(self, **bindings) -> List:
        """Run the query with ``name=value`` bindings for each ``$name``."""
        bound = {f"${name}": value for name, value in bindings.items()}
        missing_params = [p for p in self.params if p not in bound]
        if missing_params:
            raise SqlppAnalysisError(
                f"missing parameter(s): {', '.join(missing_params)}"
            )
        unknown = [p for p in bound if p not in self.params]
        if unknown:
            raise SqlppAnalysisError(
                f"unknown parameter(s): {', '.join(unknown)}"
            )
        # Bookkeeping through the predeployed-job machinery: invocations
        # are tracked per node (Figure 20's invocation message).
        self._system.cluster.controller.invoke(self.job_id, bound)
        self.invocations += 1
        evaluator = self._system.evaluator()
        result = evaluator.evaluate_query(self.ast, bound)
        return result if isinstance(result, list) else [result]

    def close(self) -> None:
        """Undeploy the cached specification from the cluster."""
        self._system.cluster.controller.undeploy(self.job_id)
