"""Public facade: the embedded AsterixDB-like system of the paper."""

from .system import AsterixLite

__all__ = ["AsterixLite"]
