"""The "Java" UDF framework (Python stand-in with the same lifecycle).

AsterixDB Java UDFs implement ``initialize(functionHelper, nodeInfo)`` —
typically loading node-local resource files — and ``evaluate`` per record.
We mirror that lifecycle: a :class:`JavaUdf` subclass loads *resources*
(line-oriented, like the paper's ``keywordListPath`` file) in
``initialize`` and processes one input per ``evaluate`` call.

Lifecycle rules that drive the experiments:

* the **static** framework initializes a UDF instance once per feed, so
  resource updates are never observed (§7.2's "Static Enrichment w/ Java
  can only handle reference data without updates");
* the **dynamic** framework initializes per computing job (per batch), so
  resource updates become visible at batch boundaries.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from ..errors import UdfError

ResourceProvider = Callable[[], Iterable[str]]


class JavaUdf:
    """Base class for compiled UDFs.

    ``resources`` maps resource names to providers returning the current
    line contents of that node-local file.  ``initialize`` is called once
    per instance generation; ``evaluate`` once per input.
    """

    #: subclasses list the resource names they require
    required_resources: tuple = ()

    def __init__(self, resources: Optional[Dict[str, ResourceProvider]] = None):
        self.resources = resources or {}
        for name in self.required_resources:
            if name not in self.resources:
                raise UdfError(
                    f"{type(self).__name__} requires resource {name!r}"
                )
        self.initialized = False
        self.resource_lines_loaded = 0

    def read_resource(self, name: str) -> List[str]:
        lines = list(self.resources[name]())
        self.resource_lines_loaded += len(lines)
        return lines

    def initialize(self, node_info: str) -> None:
        """Load resources; subclasses override and must call super()."""
        self.initialized = True

    def evaluate(self, *args):
        raise NotImplementedError

    def __call__(self, *args):
        if not self.initialized:
            raise UdfError(
                f"{type(self).__name__}.evaluate called before initialize()"
            )
        return self.evaluate(*args)


class JavaUdfDescriptor:
    """Registry entry: how to build and cost a Java UDF instance."""

    def __init__(
        self,
        library: str,
        name: str,
        factory: Callable[[], JavaUdf],
        arity: int,
        stateful: bool,
    ):
        self.library = library
        self.name = name
        self.factory = factory
        self.arity = arity
        self.stateful = stateful

    @property
    def qualified_name(self) -> str:
        return f"{self.library}#{self.name}"

    def instantiate(self, node_info: str = "nc0") -> JavaUdf:
        instance = self.factory()
        instance.initialize(node_info)
        if not instance.initialized:
            raise UdfError(
                f"{self.qualified_name}: initialize() must call super().initialize()"
            )
        return instance
