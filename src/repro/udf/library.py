"""The paper's enrichment UDF library (Sections 3, 7 and the appendix).

Every use case ships in both forms the paper evaluates:

* **SQL++ UDFs** — the appendix queries (Figures 32-40), registered from
  source text through the real parser;
* **"Java" UDFs** — compiled implementations with the
  ``initialize``-loads-resources / ``evaluate``-per-record lifecycle
  (Figures 5, 7, 35), for use cases 1-5 plus the ``removeSpecial`` helper.
"""

from __future__ import annotations

import re
from typing import Dict, List

from ..adm.values import Point
from ..sqlpp.functions import edit_distance
from .java import JavaUdf, JavaUdfDescriptor
from .registry import FunctionRegistry

# --------------------------------------------------------------------- SQL++

SQLPP_UDFS: Dict[str, str] = {
    # §3.2, Figure 6 — stateless tweet safety check
    "us_tweet_safety_check": """
        CREATE FUNCTION USTweetSafetyCheck(tweet) {
            LET safety_check_flag =
                CASE tweet.country = "US" AND contains(tweet.text, "bomb")
                WHEN true THEN "Red" ELSE "Green"
                END
            SELECT tweet.*, safety_check_flag
        }
    """,
    # §3.3, Figure 8 — stateful tweet safety check via SensitiveWords
    "tweet_safety_check": """
        CREATE FUNCTION tweetSafetyCheck(tweet) {
            LET safety_check_flag = CASE
                EXISTS(SELECT s FROM SensitiveWords s
                       WHERE tweet.country = s.country AND
                             contains(tweet.text, s.word))
                WHEN true THEN "Red" ELSE "Green"
                END
            SELECT tweet.*, safety_check_flag
        }
    """,
    # §4.3.4, Figure 18 — nested uncorrelated subquery (top-10 countries)
    "high_risk_tweet_check": """
        CREATE FUNCTION highRiskTweetCheck(t) {
            LET high_risk_flag = CASE
                t.country IN (SELECT VALUE s.country
                              FROM SensitiveWords s
                              GROUP BY s.country
                              ORDER BY count(s) DESC
                              LIMIT 10)
                WHEN true THEN "Red" ELSE "Green"
                END
            SELECT t.*, high_risk_flag
        }
    """,
    # Appendix A, Figure 32 — use case 1 (hash join)
    "safety_rating": """
        CREATE FUNCTION enrichTweetQ1(t) {
            LET safety_rating = (SELECT VALUE s.safety_rating
                                 FROM SafetyRatings s
                                 WHERE t.country = s.country_code)
            SELECT t.*, safety_rating
        }
    """,
    # Appendix B, Figure 33 — use case 2 (group-by)
    "religious_population": """
        CREATE FUNCTION enrichTweetQ2(t) {
            LET religious_population =
                (SELECT sum(r.population) FROM ReligiousPopulations r
                 WHERE r.country_name = t.country)[0]
            SELECT t.*, religious_population
        }
    """,
    # Appendix C, Figure 34 — use case 3 (order-by)
    "largest_religions": """
        CREATE FUNCTION enrichTweetQ3(t) {
            LET largest_religions =
                (SELECT VALUE r.religion_name
                 FROM ReligiousPopulations r
                 WHERE r.country_name = t.country
                 ORDER BY r.population DESC LIMIT 3)
            SELECT t.*, largest_religions
        }
    """,
    # Appendix D, Figure 36 — use case 4 (similarity join + Java helper)
    "fuzzy_suspects": """
        CREATE FUNCTION annotateTweetQ4(x) {
            LET related_suspects = (
                SELECT s.sensitiveName, s.religionName
                FROM SensitiveNamesDataset s
                WHERE edit_distance(
                        testlib#removeSpecial(x.user.screen_name),
                        s.sensitiveName) < 5)
            SELECT x.*, related_suspects
        }
    """,
    # Appendix E, Figure 37 — use case 5 (index nested-loop spatial join)
    "nearby_monuments": """
        CREATE FUNCTION enrichTweetQ5(t) {
            LET nearby_monuments =
                (SELECT VALUE m.monument_id
                 FROM monumentList m
                 WHERE spatial_intersect(
                        m.monument_location,
                        create_circle(
                            create_point(t.latitude, t.longitude), 1.5)))
            SELECT t.*, nearby_monuments
        }
    """,
    # Appendix E variant — the Figure 31 "Naive Nearby Monuments" hint case
    "naive_nearby_monuments": """
        CREATE FUNCTION enrichTweetQ5Naive(t) {
            LET nearby_monuments =
                (SELECT VALUE m.monument_id
                 FROM monumentList /*+ no-index */ m
                 WHERE spatial_intersect(
                        m.monument_location,
                        create_circle(
                            create_point(t.latitude, t.longitude), 1.5)))
            SELECT t.*, nearby_monuments
        }
    """,
    # Appendix F, Figure 38 — use case 6
    "suspicious_names": """
        CREATE FUNCTION enrichTweetQ6(t) {
            LET nearby_facilities = (
                    SELECT f.facility_type FacilityType, count(*) AS Cnt
                    FROM Facilities f
                    WHERE spatial_intersect(
                            create_point(t.latitude, t.longitude),
                            create_circle(f.facility_location, 3.0))
                    GROUP BY f.facility_type),
                nearby_religious_buildings = (
                    SELECT r.religious_building_id religious_building_id,
                           r.religion_name religion_name
                    FROM ReligiousBuildings r
                    WHERE spatial_intersect(
                            create_point(t.latitude, t.longitude),
                            create_circle(r.building_location, 3.0))
                    ORDER BY spatial_distance(
                            create_point(t.latitude, t.longitude),
                            r.building_location) LIMIT 3),
                suspicious_users_info = (
                    SELECT s.suspicious_name_id suspect_id,
                           s.religion_name AS religion,
                           s.threat_level AS threat_level
                    FROM SuspiciousNames s
                    WHERE s.suspicious_name = t.user.name)
            SELECT t.*, nearby_facilities, nearby_religious_buildings,
                   suspicious_users_info
        }
    """,
    # Appendix G, Figure 39 — use case 7
    "tweet_context": """
        CREATE FUNCTION enrichTweetQ7(t) {
            LET area_avg_income = (
                    SELECT VALUE a.average_income
                    FROM AverageIncomes a, DistrictAreas d1
                    WHERE a.district_area_id = d1.district_area_id
                      AND spatial_intersect(
                            create_point(t.latitude, t.longitude),
                            d1.district_area)),
                area_facilities = (
                    SELECT f.facility_type FacilityType, count(*) AS Cnt
                    FROM Facilities f, DistrictAreas d2
                    WHERE spatial_intersect(f.facility_location,
                                            d2.district_area)
                      AND spatial_intersect(
                            create_point(t.latitude, t.longitude),
                            d2.district_area)
                    GROUP BY f.facility_type),
                ethnicity_dist = (
                    SELECT ethnicity, count(*) AS EthnicityPopulation
                    FROM Persons p, DistrictAreas d3
                    WHERE spatial_intersect(
                            create_point(t.latitude, t.longitude),
                            d3.district_area)
                      AND spatial_intersect(p.location, d3.district_area)
                    GROUP BY p.ethnicity AS ethnicity)
            SELECT t.*, area_avg_income, area_facilities, ethnicity_dist
        }
    """,
    # Appendix H, Figure 40 — use case 8
    "worrisome_tweets": """
        CREATE FUNCTION enrichTweetQ8(t) {
            LET nearby_religious_attacks = (
                SELECT r.religion_name AS religion,
                       count(a.attack_record_id) AS attack_num
                FROM ReligiousBuildings r, AttackEvents a
                WHERE spatial_intersect(
                        create_point(t.latitude, t.longitude),
                        create_circle(r.building_location, 3.0))
                  AND t.created_at < a.attack_datetime + duration("P2M")
                  AND t.created_at > a.attack_datetime
                  AND r.religion_name = a.related_religion
                GROUP BY r.religion_name)
            SELECT t.*, nearby_religious_attacks
        }
    """,
}

#: function-name aliases: use-case key -> registered SQL++ function name
SQLPP_FUNCTION_NAMES: Dict[str, str] = {
    "us_tweet_safety_check": "USTweetSafetyCheck",
    "tweet_safety_check": "tweetSafetyCheck",
    "high_risk_tweet_check": "highRiskTweetCheck",
    "safety_rating": "enrichTweetQ1",
    "religious_population": "enrichTweetQ2",
    "largest_religions": "enrichTweetQ3",
    "fuzzy_suspects": "annotateTweetQ4",
    "nearby_monuments": "enrichTweetQ5",
    "naive_nearby_monuments": "enrichTweetQ5Naive",
    "suspicious_names": "enrichTweetQ6",
    "tweet_context": "enrichTweetQ7",
    "worrisome_tweets": "enrichTweetQ8",
}


# ---------------------------------------------------------------------- Java


class RemoveSpecialUdf(JavaUdf):
    """Figure 35: strip non-alphabetic characters, lowercase the rest."""

    _pattern = re.compile(r"[^a-zA-Z]+")

    def evaluate(self, name):
        if not isinstance(name, str):
            return None
        return self._pattern.sub("", name).lower()


class TweetSafetyCheckJavaUdf(JavaUdf):
    """Figure 5 (Java UDF 1): stateless US/bomb safety flag."""

    def evaluate(self, tweet):
        flag = (
            "Red"
            if tweet.get("country") == "US" and "bomb" in tweet.get("text", "")
            else "Green"
        )
        out = dict(tweet)
        out["safety_check_flag"] = flag
        return out


class KeywordSafetyCheckJavaUdf(JavaUdf):
    """Figure 7 (Java UDF 2): keyword list loaded from a resource file.

    Resource line format: ``<id>|<country>|<keyword>``.
    """

    required_resources = ("keyword_list",)

    def initialize(self, node_info: str) -> None:
        self.keywords: Dict[str, List[str]] = {}
        for line in self.read_resource("keyword_list"):
            items = line.split("|")
            self.keywords.setdefault(items[1], []).append(items[2])
        super().initialize(node_info)

    def evaluate(self, tweet):
        text = tweet.get("text", "")
        flag = "Green"
        for keyword in self.keywords.get(tweet.get("country"), ()):
            if keyword in text:
                flag = "Red"
                break
        out = dict(tweet)
        out["safety_check_flag"] = flag
        return out


class SafetyRatingJavaUdf(JavaUdf):
    """Use case 1 in Java: country -> safety rating lookup table.

    Resource line format: ``<country_code>|<safety_rating>``.
    """

    required_resources = ("safety_ratings",)

    def initialize(self, node_info: str) -> None:
        self.ratings: Dict[str, str] = {}
        for line in self.read_resource("safety_ratings"):
            code, rating = line.split("|", 1)
            self.ratings[code] = rating
        super().initialize(node_info)

    def evaluate(self, tweet):
        out = dict(tweet)
        rating = self.ratings.get(tweet.get("country"))
        out["safety_rating"] = [rating] if rating is not None else []
        return out


class ReligiousPopulationJavaUdf(JavaUdf):
    """Use case 2 in Java: country -> total religious population.

    Resource line format: ``<rid>|<country>|<religion>|<population>``.
    """

    required_resources = ("religious_populations",)

    def initialize(self, node_info: str) -> None:
        self.totals: Dict[str, int] = {}
        for line in self.read_resource("religious_populations"):
            _rid, country, _religion, population = line.split("|")
            self.totals[country] = self.totals.get(country, 0) + int(population)
        super().initialize(node_info)

    def evaluate(self, tweet):
        out = dict(tweet)
        total = self.totals.get(tweet.get("country"))
        out["religious_population"] = {"sum": total} if total is not None else {}
        return out


class LargestReligionsJavaUdf(JavaUdf):
    """Use case 3 in Java: country -> three largest religions.

    Resource line format: ``<rid>|<country>|<religion>|<population>``.
    """

    required_resources = ("religious_populations",)

    def initialize(self, node_info: str) -> None:
        per_country: Dict[str, List] = {}
        for line in self.read_resource("religious_populations"):
            _rid, country, religion, population = line.split("|")
            per_country.setdefault(country, []).append((int(population), religion))
        self.top3: Dict[str, List[str]] = {}
        for country, entries in per_country.items():
            entries.sort(key=lambda pair: (-pair[0], pair[1]))
            self.top3[country] = [religion for _pop, religion in entries[:3]]
        super().initialize(node_info)

    def evaluate(self, tweet):
        out = dict(tweet)
        out["largest_religions"] = list(self.top3.get(tweet.get("country"), []))
        return out


class FuzzySuspectsJavaUdf(JavaUdf):
    """Use case 4 in Java: edit-distance scan over the suspects list.

    Resource line format: ``<sensitiveName>|<religionName>``.
    """

    required_resources = ("suspect_names",)
    _pattern = re.compile(r"[^a-zA-Z]+")

    def initialize(self, node_info: str) -> None:
        self.suspects: List[tuple] = []
        for line in self.read_resource("suspect_names"):
            name, religion = line.split("|", 1)
            self.suspects.append((name, religion))
        super().initialize(node_info)

    def evaluate(self, tweet):
        screen_name = tweet.get("user", {}).get("screen_name", "")
        cleaned = self._pattern.sub("", screen_name).lower()
        meter = getattr(self, "meter", None)
        related = []
        for name, religion in self.suspects:
            if meter is not None:
                meter.java_ops += (len(cleaned) + 1) * (len(name) + 1)
            if edit_distance(cleaned, name) < 5:
                related.append({"sensitiveName": name, "religionName": religion})
        out = dict(tweet)
        out["related_suspects"] = related
        return out


class NearbyMonumentsJavaUdf(JavaUdf):
    """Use case 5 in Java: linear distance scan (no index available).

    Resource line format: ``<monument_id>|<x>|<y>``.  The SQL++ version
    outperforms this one by probing the partitioned R-tree (§7.2).
    """

    required_resources = ("monuments",)

    def initialize(self, node_info: str) -> None:
        self.monuments: List[tuple] = []
        for line in self.read_resource("monuments"):
            monument_id, x, y = line.split("|")
            self.monuments.append((monument_id, float(x), float(y)))
        super().initialize(node_info)

    def evaluate(self, tweet):
        latitude = tweet.get("latitude")
        longitude = tweet.get("longitude")
        meter = getattr(self, "meter", None)
        nearby = []
        if latitude is not None and longitude is not None:
            center = Point(latitude, longitude)
            if meter is not None:
                meter.java_ops += len(self.monuments)
            for monument_id, x, y in self.monuments:
                if center.distance_to(Point(x, y)) <= 1.5:
                    nearby.append(monument_id)
        out = dict(tweet)
        out["nearby_monuments"] = nearby
        return out


JAVA_UDF_CLASSES: Dict[str, type] = {
    "remove_special": RemoveSpecialUdf,
    "tweet_safety_check": TweetSafetyCheckJavaUdf,
    "keyword_safety_check": KeywordSafetyCheckJavaUdf,
    "safety_rating": SafetyRatingJavaUdf,
    "religious_population": ReligiousPopulationJavaUdf,
    "largest_religions": LargestReligionsJavaUdf,
    "fuzzy_suspects": FuzzySuspectsJavaUdf,
    "nearby_monuments": NearbyMonumentsJavaUdf,
}


def register_paper_udfs(
    registry: FunctionRegistry,
    java_resources: Dict[str, Dict[str, object]] = None,
) -> None:
    """Register every paper UDF.

    ``java_resources`` maps java-udf keys (e.g. ``"safety_rating"``) to
    their resource-provider dicts; java UDFs whose resources are missing
    are skipped (they cannot initialize without their files).
    """
    java_resources = java_resources or {}
    # removeSpecial is required by the fuzzy_suspects SQL++ text.
    registry.register_java(
        JavaUdfDescriptor("testlib", "removeSpecial", RemoveSpecialUdf, 1, False)
    )
    for source in SQLPP_UDFS.values():
        registry.register_sqlpp(source)
    for key, cls in JAVA_UDF_CLASSES.items():
        if key == "remove_special":
            continue
        resources = java_resources.get(key)
        if cls.required_resources and resources is None:
            continue
        stateful = bool(cls.required_resources)

        def factory(cls=cls, resources=resources):
            return cls(resources)

        registry.register_java(
            JavaUdfDescriptor("udflib", key, factory, 1, stateful)
        )
