"""The function registry: SQL++ and Java UDFs, with statefulness analysis."""

from __future__ import annotations

from typing import Dict, List

from ..errors import UdfError, UdfRegistrationError
from ..sqlpp.analysis import is_stateful, uses_unsupported_builtin
from ..sqlpp.ast import FunctionDefinition
from ..sqlpp.parser import parse_function
from ..sqlpp.memo import EnrichmentMemo
from ..sqlpp.plans import PlanCache
from ..sqlpp.state_cache import StateCache


class SqlppUdf:
    """A registered SQL++ function."""

    def __init__(self, definition: FunctionDefinition, stateful: bool):
        self.definition = definition
        self.stateful = stateful

    @property
    def name(self) -> str:
        return self.definition.name

    @property
    def arity(self) -> int:
        return len(self.definition.params)


class FunctionRegistry:
    """Holds every registered UDF; consulted by the evaluator on calls.

    Java instances are cached in the evaluation context's batch cache, so
    their lifecycle follows the context generation: a dynamic computing job
    refreshes the context per batch (re-running ``initialize`` and hence
    re-reading resource files), while the static pipeline keeps one
    generation for the feed's lifetime.
    """

    def __init__(self, catalog_names_provider=None):
        self._sqlpp: Dict[str, SqlppUdf] = {}
        self._java: Dict[str, object] = {}  # "lib#name" -> JavaUdfDescriptor
        self._catalog_names_provider = catalog_names_provider or (lambda: set())
        # Compile-once plans for every UDF body (§5.2 analog); evaluation
        # contexts built over this registry share it, so plans survive
        # across batches and are invalidated centrally.
        self.plan_cache = PlanCache()
        # Cross-batch enrichment-state cache (version-keyed build reuse).
        # Owned here so every feed over this registry shares one bounded
        # working set; disabled (budget 0) until a FeedPolicy grants bytes.
        self.state_cache = StateCache()
        # Cross-batch key-level enrichment memo (per-key results reused
        # across batches under the same version proofs).  Same ownership
        # rationale as the state cache; same default-off budget.
        self.enrichment_memo = EnrichmentMemo()
        # Per-feed scoped caches adopted for the duration of a governed
        # multi-tenant run: they are private to one feed (the memory
        # governor resizes them individually) but must still observe the
        # registry's wholesale invalidations — DDL and function
        # replacement clear them exactly like the shared singletons.
        self._scoped_caches: List[StateCache] = []
        # Bumped on every registration change; prepared invokers re-resolve
        # their function when it moves (§3.2 instant updates).
        self.version = 0

    # ---------------------------------------------------------------- sql++

    def register_sqlpp(self, definition_or_source) -> SqlppUdf:
        if isinstance(definition_or_source, str):
            definition = parse_function(definition_or_source)
        else:
            definition = definition_or_source
        if definition.name in self._sqlpp:
            raise UdfRegistrationError(
                f"function {definition.name!r} already registered"
            )
        called = uses_unsupported_builtin(definition)
        unknown = [
            name
            for name in called
            if name not in self._sqlpp and name != definition.name
        ]
        if unknown:
            raise UdfRegistrationError(
                f"function {definition.name!r} calls unknown function(s): {unknown}"
            )
        catalog_names = set(self._catalog_names_provider())
        stateful = is_stateful(definition, catalog_names) or any(
            self._sqlpp[name].stateful
            for name in called
            if name in self._sqlpp
        )
        udf = SqlppUdf(definition, stateful)
        self._sqlpp[definition.name] = udf
        self.version += 1
        return udf

    def replace_sqlpp(self, definition_or_source) -> SqlppUdf:
        """UPSERT-style function replacement (§3.2: instant updates)."""
        if isinstance(definition_or_source, str):
            definition = parse_function(definition_or_source)
        else:
            definition = definition_or_source
        self._sqlpp.pop(definition.name, None)
        udf = self.register_sqlpp(definition)
        # Old plans may close over the replaced body; drop them all so the
        # next batch replans against the new definition.  Cached build
        # state may have been produced by the old body's subqueries, so it
        # goes too, as do memoized per-key results it produced.
        self.plan_cache.invalidate()
        self.state_cache.clear()
        self.enrichment_memo.clear()
        for cache in self._scoped_caches:
            cache.clear()
        return udf

    def invalidate_plans(self) -> None:
        """Drop all cached plans (called on DDL: dataset/index changes)."""
        self.plan_cache.invalidate()
        # DDL can change access paths and even dataset identity without
        # bumping any Dataset.version (create_index/drop_index), so the
        # version-keyed state cache must start cold as well — and so must
        # the per-key memo, whose entries are guarded by the same keys.
        self.state_cache.clear()
        self.enrichment_memo.clear()
        for cache in self._scoped_caches:
            cache.clear()
        self.version += 1

    def adopt_cache(self, cache: StateCache) -> StateCache:
        """Enroll a per-feed scoped cache in registry-wide invalidation.

        Governed multi-tenant runs give each feed its *own*
        StateCache/EnrichmentMemo (so the memory governor can resize
        tenants independently); adoption keeps those private instances
        subject to the same DDL / ``replace_sqlpp`` clears as the shared
        singletons.  Pair with :meth:`release_cache` at run teardown.
        """
        self._scoped_caches.append(cache)
        return cache

    def release_cache(self, cache: StateCache) -> None:
        """Un-enroll a scoped cache (its run is over)."""
        try:
            self._scoped_caches.remove(cache)
        except ValueError:
            pass

    # ----------------------------------------------------------------- java

    def register_java(self, descriptor) -> None:
        key = descriptor.qualified_name
        if key in self._java:
            raise UdfRegistrationError(f"java function {key!r} already registered")
        self._java[key] = descriptor
        self.version += 1

    # --------------------------------------------------------------- lookup

    def has(self, name: str) -> bool:
        return name in self._sqlpp

    def has_java(self, library: str, name: str) -> bool:
        return f"{library}#{name}" in self._java

    def get(self, name: str) -> SqlppUdf:
        if name not in self._sqlpp:
            raise UdfError(f"unknown function: {name}")
        return self._sqlpp[name]

    def get_java(self, library: str, name: str):
        key = f"{library}#{name}"
        if key not in self._java:
            raise UdfError(f"unknown java function: {key}")
        return self._java[key]

    def sqlpp_names(self) -> List[str]:
        return sorted(self._sqlpp)

    def java_names(self) -> List[str]:
        return sorted(self._java)

    # ------------------------------------------------------------ invocation

    def invoke(self, name: str, args: List, ctx):
        """Invoke a SQL++ UDF: bind parameters and evaluate the body."""
        from ..sqlpp.evaluator import Env, Evaluator

        udf = self.get(name)
        if len(args) != udf.arity:
            raise UdfError(
                f"{name} expects {udf.arity} argument(s), got {len(args)}"
            )
        env = Env(dict(zip(udf.definition.params, args)))
        return Evaluator(ctx).evaluate(udf.definition.body, env)

    def prepared_invoker(self, name: str):
        """Return a callable ``fn(args, ctx)`` that skips per-call lookup.

        The function is resolved (name lookup + arity) once per registry
        version, not once per record; a ``replace_sqlpp`` bumps the version
        so the next call re-resolves and picks up the new body (§3.2).

        The parameter binding set of a UDF is static, so the per-record
        hot path reuses one pooled ``Env`` (rebinding parameters in place)
        and one ``Evaluator`` per evaluation context instead of allocating
        fresh ones per record.  Nested/recursive invocations go through
        :meth:`invoke` with their own fresh ``Env``, so the pooled scope is
        only ever live for one top-level call at a time; a re-entrancy
        guard falls back to allocation if that ever changes.
        """
        from ..sqlpp.evaluator import Env, Evaluator

        state = {
            "version": -1,
            "udf": None,
            "params": None,
            "ctx": None,
            "evaluator": None,
            "env": Env({}),
            "busy": False,
        }

        def invoke_prepared(args: List, ctx):
            if state["version"] != self.version:
                udf = self.get(name)
                state["udf"] = udf
                state["params"] = tuple(udf.definition.params)
                state["version"] = self.version
            udf = state["udf"]
            if len(args) != udf.arity:
                raise UdfError(
                    f"{name} expects {udf.arity} argument(s), got {len(args)}"
                )
            if state["busy"]:
                env = Env(dict(zip(state["params"], args)))
                return Evaluator(ctx).evaluate(udf.definition.body, env)
            if ctx is not state["ctx"]:
                state["ctx"] = ctx
                state["evaluator"] = Evaluator(ctx)
            env = state["env"]
            env_vars = env.vars
            env_vars.clear()
            for param, arg in zip(state["params"], args):
                env_vars[param] = arg
            state["busy"] = True
            try:
                return state["evaluator"].evaluate(udf.definition.body, env)
            finally:
                state["busy"] = False

        return invoke_prepared

    def invoke_java(self, library: str, name: str, args: List, ctx):
        """Invoke a Java UDF through its per-generation cached instance."""
        descriptor = self.get_java(library, name)
        if len(args) != descriptor.arity:
            raise UdfError(
                f"{descriptor.qualified_name} expects {descriptor.arity} "
                f"argument(s), got {len(args)}"
            )
        key = ("java_instance", descriptor.qualified_name)
        instance = ctx.batch_cache.get(key)
        if instance is None:
            instance = descriptor.instantiate()
            ctx.batch_cache[key] = instance
            # Resource files are node-local: every node re-reads the whole
            # file when a new generation initializes the UDF.
            ctx.replicated_meter.records_scanned += instance.resource_lines_loaded
        # Expose the meter so expensive UDFs can count work units.
        instance.meter = ctx.meter
        return instance(*args)
