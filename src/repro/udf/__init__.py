"""UDF framework: SQL++ and "Java" user-defined functions."""

from .java import JavaUdf, JavaUdfDescriptor
from .library import (
    JAVA_UDF_CLASSES,
    SQLPP_FUNCTION_NAMES,
    SQLPP_UDFS,
    register_paper_udfs,
)
from .registry import FunctionRegistry, SqlppUdf

__all__ = [
    "FunctionRegistry",
    "JAVA_UDF_CLASSES",
    "JavaUdf",
    "JavaUdfDescriptor",
    "SQLPP_FUNCTION_NAMES",
    "SQLPP_UDFS",
    "SqlppUdf",
    "register_paper_udfs",
]
