"""Node Controllers: the per-node agents of an AsterixDB cluster."""

from __future__ import annotations

from typing import Dict, Set


class NodeController:
    """A worker node: holds storage partitions and predeployed job specs.

    In this simulation the NC's job-execution role is played centrally by
    the executor; the NC tracks what a real node would cache (predeployed
    job specifications) and expose (its partition inventory) so tests can
    assert the deployment protocol.
    """

    def __init__(self, node_id: int, is_cc: bool = False):
        self.node_id = node_id
        self.is_cc = is_cc
        self.predeployed_jobs: Set[str] = set()
        self.invocations: Dict[str, int] = {}

    def cache_job(self, deployed_job_id: str) -> None:
        self.predeployed_jobs.add(deployed_job_id)

    def evict_job(self, deployed_job_id: str) -> None:
        self.predeployed_jobs.discard(deployed_job_id)

    def has_job(self, deployed_job_id: str) -> bool:
        return deployed_job_id in self.predeployed_jobs

    def note_invocation(self, deployed_job_id: str) -> None:
        self.invocations[deployed_job_id] = self.invocations.get(deployed_job_id, 0) + 1

    def __repr__(self):
        role = "CC+NC" if self.is_cc else "NC"
        return f"<Node {self.node_id} ({role})>"
