"""Cluster substrate: Cluster Controller, Node Controllers, predeploy."""

from .controller import Cluster, ClusterController, DeployedJob
from .node import NodeController

__all__ = ["Cluster", "ClusterController", "DeployedJob", "NodeController"]
