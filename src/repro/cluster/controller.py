"""The Cluster Controller and parameterized predeployed jobs (paper §5.1).

One node in an AsterixDB cluster runs the Cluster Controller (CC): it takes
user queries, compiles them to Hyracks jobs, starts jobs, and tracks their
progress.  The new ingestion framework adds *parameterized predeployed
jobs*: a job specification is compiled once, distributed to every node, and
later invoked with just a parameter (the collected record batch) — the
analog of prepared queries.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..errors import HyracksError
from ..hyracks.cost import CostModel, DEFAULT_COST_MODEL
from ..hyracks.executor import JobResult, LocalJobRunner
from ..hyracks.job import JobSpecification
from ..hyracks.partition_holder import PartitionHolderManager
from ..runtime import Clock, Runtime
from .node import NodeController


class DeployedJob:
    """A compiled, distributed, parameterized job specification.

    ``spec_builder(params)`` instantiates the cached specification with an
    invocation parameter (e.g. the record batch).  Building the spec object
    is cheap; the expensive compile/distribute cost was paid at deploy time
    and invocations only pay the invoke overhead.
    """

    def __init__(self, job_id: str, spec_builder: Callable[[object], JobSpecification]):
        self.job_id = job_id
        self.spec_builder = spec_builder
        self.invocations = 0


class ClusterController:
    """The CC: job deployment, invocation, and bookkeeping."""

    def __init__(self, nodes: List[NodeController], runner: LocalJobRunner):
        self.nodes = nodes
        self.runner = runner
        self._deployed: Dict[str, DeployedJob] = {}
        self._next_job_id = 0
        self.simulated_deploy_seconds = 0.0
        self.active_runs: List[str] = []
        self.runs_completed = 0
        self.peak_concurrent_runs = 0

    # --------------------------------------------------------- run lifecycle

    def begin_run(self, run_name: str) -> None:
        """Track a feed/pipeline run driven by the cluster's runtime."""
        if run_name in self.active_runs:
            raise HyracksError(f"run {run_name!r} is already active")
        self.active_runs.append(run_name)
        self.peak_concurrent_runs = max(
            self.peak_concurrent_runs, len(self.active_runs)
        )

    def finish_run(self, run_name: str) -> None:
        if run_name in self.active_runs:
            self.active_runs.remove(run_name)
            self.runs_completed += 1

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    # ------------------------------------------------------------ job running

    def run_job(self, spec: JobSpecification) -> JobResult:
        """Compile-and-run: pays full startup (compile + distribute)."""
        return self.runner.execute(spec, predeployed=False)

    # ------------------------------------------------------------- predeploy

    def deploy(
        self, name: str, spec_builder: Callable[[object], JobSpecification]
    ) -> str:
        """Compile a parameterized job and cache it on every node."""
        job_id = f"{name}#{self._next_job_id}"
        self._next_job_id += 1
        self._deployed[job_id] = DeployedJob(job_id, spec_builder)
        for node in self.nodes:
            node.cache_job(job_id)
        cost = self.runner.cost_model
        self.simulated_deploy_seconds += (
            cost.job_compile + cost.job_distribute_per_node * self.num_nodes
        )
        return job_id

    def invoke(
        self,
        job_id: str,
        params: object,
        extra_node_busy: Optional[Dict[int, float]] = None,
    ) -> JobResult:
        """Invoke a predeployed job with a parameter (Fig. 20)."""
        deployed = self._deployed.get(job_id)
        if deployed is None:
            raise HyracksError(f"no predeployed job with id {job_id!r}")
        for node in self.nodes:
            if not node.has_job(job_id):
                raise HyracksError(
                    f"node {node.node_id} has no cached spec for {job_id!r}"
                )
            node.note_invocation(job_id)
        deployed.invocations += 1
        spec = deployed.spec_builder(params)
        return self.runner.execute(
            spec, predeployed=True, extra_node_busy=extra_node_busy
        )

    def undeploy(self, job_id: str) -> None:
        self._deployed.pop(job_id, None)
        for node in self.nodes:
            node.evict_job(job_id)

    def deployed_job_ids(self) -> List[str]:
        return sorted(self._deployed)


class Cluster:
    """A simulated AsterixDB cluster: one CC co-located with node 0's NC."""

    def __init__(self, num_nodes: int, cost_model: Optional[CostModel] = None):
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        self.num_nodes = num_nodes
        self.cost_model = cost_model or DEFAULT_COST_MODEL
        self.clock = Clock()
        self.nodes = [NodeController(i, is_cc=(i == 0)) for i in range(num_nodes)]
        self.runner = LocalJobRunner(num_nodes, self.cost_model, clock=self.clock)
        self.controller = ClusterController(self.nodes, self.runner)
        self.holder_manager = PartitionHolderManager()
        #: the cluster's default multi-tenant arbiter; ``start_feeds``
        #: uses it when no fabric is passed explicitly
        self.fabric = None

    def attach_fabric(self, fabric) -> None:
        """Install a :class:`~repro.ingestion.fabric.FeedFabric` as this
        cluster's default arbiter for multi-feed runs.

        A fabric arbitrates exactly one run (its lease ledger is a run
        artifact), so attaching replaces any previous — typically spent —
        fabric.  Refuses to swap while runs are in flight.
        """
        if self.controller.active_runs:
            raise HyracksError(
                "cannot attach a fabric while runs are active: "
                + ", ".join(self.controller.active_runs)
            )
        self.fabric = fabric

    def detach_fabric(self) -> None:
        self.fabric = None

    def new_runtime(self, name: str) -> Runtime:
        """A discrete-event runtime sharing the cluster's clock."""
        return Runtime(clock=self.clock, name=name)

    def __repr__(self):
        return f"<Cluster {self.num_nodes} nodes>"
