"""Terminal-friendly rendering of benchmark series.

The benchmarks print the paper's tables; these helpers render the same
series as ASCII charts for quick shape-checking in environments without
plotting libraries.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def ascii_bar_chart(
    values: Dict[str, float],
    width: int = 50,
    title: Optional[str] = None,
    log_scale: bool = False,
) -> str:
    """Render a labeled horizontal bar chart.

    ``log_scale`` mirrors the paper's Figure 25 presentation: bar lengths
    proportional to log2 of the value.
    """
    if not values:
        return title or ""
    import math

    def magnitude(value: float) -> float:
        if value <= 0:
            return 0.0
        return math.log2(value + 1) if log_scale else value

    peak = max(magnitude(v) for v in values.values()) or 1.0
    label_width = max(len(label) for label in values)
    lines: List[str] = [title] if title else []
    for label, value in values.items():
        bar = "#" * max(1 if value > 0 else 0, round(width * magnitude(value) / peak))
        lines.append(f"{label.rjust(label_width)} | {bar} {value:,.0f}")
    return "\n".join(lines)


def ascii_line_chart(
    x_values: Sequence[float],
    series: Dict[str, Sequence[float]],
    height: int = 12,
    width: int = 60,
    title: Optional[str] = None,
) -> str:
    """Render multiple series as an ASCII scatter/line chart.

    Each series gets a marker character; points share the plot area scaled
    to the global min/max.  Good enough to see 'flat', 'rising', and
    'crossover' — the shapes EXPERIMENTS.md talks about.
    """
    if not series or not x_values:
        return title or ""
    markers = "*o+x@%&$"
    all_y = [y for ys in series.values() for y in ys]
    y_min, y_max = min(all_y), max(all_y)
    y_span = (y_max - y_min) or 1.0
    x_min, x_max = min(x_values), max(x_values)
    x_span = (x_max - x_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, ys) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        for x, y in zip(x_values, ys):
            col = round((x - x_min) / x_span * (width - 1))
            row = height - 1 - round((y - y_min) / y_span * (height - 1))
            grid[row][col] = marker

    lines: List[str] = [title] if title else []
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{y_max:>10,.0f} |"
        elif row_index == height - 1:
            label = f"{y_min:>10,.0f} |"
        else:
            label = " " * 10 + " |"
        lines.append(label + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(
        " " * 12 + f"{x_min:<10g}" + " " * max(0, width - 20) + f"{x_max:>10g}"
    )
    legend = "   ".join(
        f"{markers[i % len(markers)]} {name}" for i, name in enumerate(series)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def layer_utilization_table(
    metrics, per_process: bool = False, label: Optional[str] = None
) -> str:
    """Render a :class:`~repro.runtime.RuntimeMetrics` per-layer summary.

    One row per layer with busy/idle/blocked seconds and utilization over
    the run's makespan, plus the holder high-water mark and stall count —
    the quickest way to see which layer bottlenecks a feed.

    A layer row aggregates every process in the layer, so a worker pool's
    busy can exceed the makespan (overlapped work).  ``per_process=True``
    adds an indented row per process under each multi-process layer,
    showing each worker's own share.

    ``label`` names the feed the metrics belong to — pass it when several
    feeds' tables are printed together (e.g. a ``start_feeds`` fleet) so
    each table's rows are unambiguously that tenant's.
    """
    if metrics is None:
        return f"[{label}] (no runtime metrics)" if label else "(no runtime metrics)"
    lines = []
    if label:
        lines.append(f"[{label}]")
    lines.append(
        f"{'layer':<12} {'busy (s)':>10} {'idle (s)':>10} "
        f"{'blocked (s)':>12} {'utilized':>9}"
    )
    for name in sorted(metrics.layers):
        times = metrics.layers[name]
        lines.append(
            f"{name:<12} {times.busy:>10.4f} {times.idle:>10.4f} "
            f"{times.blocked:>12.4f} "
            f"{times.utilization(metrics.makespan_seconds):>8.0%}"
        )
        if per_process:
            members = metrics.layer_process_times(name)
            if len(members) > 1:
                for pname in sorted(members):
                    ptimes = members[pname]
                    short = pname.split(".")[-1]
                    lines.append(
                        f"  {short:<10} {ptimes.busy:>10.4f} "
                        f"{ptimes.idle:>10.4f} {ptimes.blocked:>12.4f} "
                        f"{ptimes.utilization(metrics.makespan_seconds):>8.0%}"
                    )
    if per_process and metrics.peak_workers > 1:
        lines.append(
            f"computing pool: peak {metrics.peak_workers} worker(s), "
            f"{metrics.scale_ups} scale-up(s), "
            f"{metrics.scale_downs} scale-down(s), "
            f"{metrics.reordered_batches} reordered batch(es)"
        )
    if metrics.vectorized_batches or metrics.scalar_fallbacks:
        lines.append(
            f"columnar: {metrics.vectorized_batches} vectorized batch(es), "
            f"{metrics.vectorized_records} record(s), "
            f"{metrics.scalar_fallbacks} scalar fallback(s)"
        )
    state_total = metrics.state_cache_hits + metrics.state_cache_misses
    if state_total:
        lines.append(
            f"state cache: {metrics.state_cache_hits} hit(s), "
            f"{metrics.state_cache_misses} miss(es) "
            f"({metrics.state_cache_hits / state_total:.0%} hit ratio), "
            f"{metrics.state_cache_evictions} eviction(s)"
        )
    memo_total = metrics.memo_hits + metrics.memo_misses
    if memo_total:
        lines.append(
            f"memo: {metrics.memo_hits} hit(s), "
            f"{metrics.memo_misses} miss(es) "
            f"({metrics.memo_hits / memo_total:.0%} hit ratio), "
            f"{metrics.memo_evictions} eviction(s)"
        )
    if metrics.lease_timeline or metrics.governor_grants:
        lines.append(
            f"fabric: +{metrics.borrowed_workers} borrowed worker(s) at "
            f"peak, {len(metrics.lease_timeline)} lease step(s), "
            f"{len(metrics.governor_grants)} governor grant(s)"
        )
    lines.append(
        f"makespan {metrics.makespan_seconds:.4f}s, "
        f"fill/drain {metrics.fill_drain_seconds:.4f}s, "
        f"{metrics.stall_count} stall(s), "
        f"holder high-water {metrics.holder_high_water} frame(s)"
    )
    return "\n".join(lines)


def fleet_utilization_table(reports: Dict[str, object], per_process: bool = False) -> str:
    """Render every feed of a ``start_feeds`` fleet as labeled sections.

    ``reports`` is the ``{feed name: FeedRunReport}`` mapping
    :meth:`AsterixLite.start_feeds` returns.  Each feed gets its own
    labeled :func:`layer_utilization_table` (rows are disjoint per
    tenant), followed by a fleet footer summing stored records and worker
    borrowing across tenants.
    """
    sections = []
    total_stored = 0
    total_borrowed = 0
    for name in sorted(reports):
        report = reports[name]
        sections.append(
            layer_utilization_table(
                report.runtime, per_process=per_process, label=name
            )
        )
        total_stored += report.records_stored
        total_borrowed += report.borrowed_workers
    sections.append(
        f"fleet: {len(reports)} feed(s), {total_stored} record(s) stored, "
        f"{total_borrowed} peak borrowed worker(s) across tenants"
    )
    return "\n\n".join(sections)


def speedup_table(
    baseline: Dict[str, float], scaled: Dict[str, float], ideal: float
) -> str:
    """Render per-case speed-ups against an ideal (Figure 30 style)."""
    lines = [f"{'case':<24} {'speed-up':>9} {'of ideal':>9}"]
    for case in baseline:
        if baseline[case] <= 0:
            continue
        speedup = scaled.get(case, 0.0) / baseline[case]
        lines.append(
            f"{case:<24} {speedup:>8.2f}x {speedup / ideal:>8.0%}"
        )
    return "\n".join(lines)
