"""External-enrichment benchmark: resilience under scripted remote faults.

Every scenario drives a full feed whose records fan out through an
:class:`~repro.ingestion.external.ExternalEnricher` behind the complete
resilience stack (deadline, retry/backoff, rate limiting, circuit
breaker).  Remote misbehavior is scripted on the feed's
:class:`~repro.runtime.faults.FaultPlan` (``EnricherOutage`` /
``EnricherSlowdown`` / ``EnricherFlaky``), so — like the chaos suite —
this is *not* a flaky stress test: each scenario runs twice and must
produce byte-identical external counters and makespans.

Invariants proven per run:

* **zero acked loss** — every input record ends up stored (possibly
  with a pending marker) or dead-lettered with provenance; nothing
  vanishes, no matter how broken the remote is;
* **determinism** — repeated runs are byte-identical;
* **every record accounted** — enriched + pending + dead-lettered
  covers every enrichment-requiring record;

and across scenarios:

* **monotone degradation** — completeness orders healthy ≥ flaky ≥
  partial outage ≥ hard-down;
* **breaker pays for itself** — a hard-down run with the breaker fails
  fast and finishes in less simulated time than the same run without it;
* **breaker recovery** — a mid-run outage drives the breaker through
  open → half-open → closed and the feed finishes enriching;
* **backfill restores completeness** — after the remote recovers,
  :func:`~repro.ingestion.external.backfill_pending` drives a degraded
  dataset back to completeness 1.0, and replay re-ingests dead-lettered
  records.

Results go to ``BENCH_external.json`` at the repo root;
``benchmarks/results/`` stays reserved for the paper-figure tables.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from ..core.system import AsterixLite
from ..ingestion.adapter import GeneratorAdapter
from ..ingestion.external import EnricherBinding, ExternalEnricher
from ..ingestion.policy import ExternalFailureAction, FeedPolicy
from ..runtime.faults import (
    EnricherFlaky,
    EnricherOutage,
    EnricherSlowdown,
    FaultPlan,
)

FEED = "GeoFeed"
DATASET = "GeoTweets"
ENRICHER = "geo"
KEY_CARDINALITY = 40  # distinct probe keys — exercises per-batch dedup


def _geo_lookup(key):
    return {"user": key, "region": f"r{len(str(key)) % 5}"}


def _raw_records(records: int) -> List[str]:
    return [
        json.dumps({"id": i, "user": f"u{i % KEY_CARDINALITY}"})
        for i in range(records)
    ]


def _run_feed(
    records: int,
    batch_size: int,
    policy: FeedPolicy,
    plan: Optional[FaultPlan],
):
    system = AsterixLite(num_nodes=2)
    system.execute(
        """
        CREATE TYPE GeoTweetType AS OPEN { id: int64, user: string };
        CREATE DATASET GeoTweets(GeoTweetType) PRIMARY KEY id;
        """
    )
    system.create_feed(FEED, {"type-name": "GeoTweetType"})
    enricher = ExternalEnricher(ENRICHER, lookup=_geo_lookup)
    system.connect_feed(
        FEED,
        DATASET,
        policy=policy,
        external_enrichers=[EnricherBinding(enricher, "user", "user_geo")],
    )
    adapter = GeneratorAdapter(_raw_records(records))
    report = system.start_feed(
        FEED, adapter, batch_size=batch_size, fault_plan=plan
    )
    return system, report


def _signature(report) -> str:
    """Everything that must be byte-identical across repeated runs."""
    return json.dumps(
        {
            "external": report.external.as_dict(),
            "faults": report.faults.as_dict(),
            "simulated_seconds": report.simulated_seconds,
            "completeness": report.enrichment_completeness,
        },
        sort_keys=True,
    )


def _accounted(system, report, records: int) -> Dict[str, bool]:
    """The per-scenario loss/accounting invariants."""
    stored_ids = set(system.query(f"SELECT VALUE t.id FROM {DATASET} t"))
    dl_name = f"{FEED}_DeadLetters"
    dead = (
        list(system.catalog[dl_name].scan())
        if dl_name in system.catalog
        else []
    )
    dead_ids = {json.loads(row["raw"])["id"] for row in dead}
    external = report.external
    return {
        "zero_acked_loss": stored_ids | dead_ids == set(range(records)),
        "every_record_accounted": (
            external.records_enriched
            + external.records_pending
            + external.records_dead_lettered
            == records
        ),
    }


def _scenarios(policy_overrides: Dict, healthy_makespan: float) -> List[Dict]:
    """Fault schedules scaled to the measured healthy makespan ``H``."""
    H = healthy_makespan
    base = dict(policy_overrides)
    return [
        {
            "name": "healthy",
            "description": "remote up: completeness 1.0, zero retries",
            "policy": FeedPolicy.spill(**base),
            "plan": None,
        },
        {
            "name": "flaky_remote",
            "description": "40% of calls error; retries absorb the noise",
            "policy": FeedPolicy.spill(**dict(base, external_max_attempts=6)),
            "plan": FaultPlan(
                enricher_faults=(EnricherFlaky(ENRICHER, rate=0.4),)
            ),
        },
        {
            "name": "slow_remote",
            "description": "a 60x slowdown window pushes calls past the "
            "deadline; timeouts burn it, late batches recover",
            "policy": FeedPolicy.spill(
                **dict(base, external_breaker_reset_seconds=0.05 * H)
            ),
            "plan": FaultPlan(
                enricher_faults=(
                    EnricherSlowdown(
                        ENRICHER, at=0.0, duration=0.4 * H, factor=60.0
                    ),
                )
            ),
        },
        {
            "name": "outage_recovery",
            "description": "the remote is down for the first part of the "
            "run: the breaker opens, half-opens after the cool-off, and "
            "closes on a healthy probe",
            "policy": FeedPolicy.spill(
                **dict(
                    base,
                    external_max_attempts=2,
                    external_breaker_failures=3,
                    external_breaker_reset_seconds=0.05 * H,
                )
            ),
            "plan": FaultPlan(
                enricher_faults=(
                    EnricherOutage(ENRICHER, at=0.0, duration=0.4 * H),
                )
            ),
        },
        {
            "name": "hard_down",
            "description": "the remote never answers: every record stores "
            "with a pending marker; backfill restores completeness",
            "policy": FeedPolicy.spill(**base),
            "plan": FaultPlan(
                enricher_faults=(
                    EnricherOutage(ENRICHER, at=0.0, duration=1e9),
                )
            ),
            "backfill": True,
        },
        {
            "name": "hard_down_no_breaker",
            "description": "same outage with the breaker disabled: every "
            "chunk burns its full retry budget (what fail-fast saves)",
            "policy": FeedPolicy.spill(
                **dict(base, external_breaker_failures=0)
            ),
            "plan": FaultPlan(
                enricher_faults=(
                    EnricherOutage(ENRICHER, at=0.0, duration=1e9),
                )
            ),
        },
        {
            "name": "hard_down_dead_letter",
            "description": "same outage under the DEAD_LETTER action: "
            "records park in the dead-letter dataset with provenance and "
            "replay re-ingests them once the remote recovers",
            "policy": FeedPolicy.spill(
                **dict(
                    base,
                    external_on_failure=ExternalFailureAction.DEAD_LETTER,
                )
            ),
            "plan": FaultPlan(
                enricher_faults=(
                    EnricherOutage(ENRICHER, at=0.0, duration=1e9),
                )
            ),
            "replay": True,
        },
    ]


def run_external(records: int = 2000, batch_size: int = 200) -> Dict:
    """Run every external-resilience scenario twice; results + checks."""
    overrides = {}  # the stock FeedPolicy resilience knobs
    # Measure the healthy makespan first: fault windows scale to it, so
    # scenario schedules stay meaningful across workload sizes.
    _, probe = _run_feed(records, batch_size, FeedPolicy.spill(), None)
    healthy_makespan = probe.simulated_seconds

    results: Dict = {
        "records": records,
        "batch_size": batch_size,
        "key_cardinality": KEY_CARDINALITY,
        "healthy_makespan_seconds": healthy_makespan,
        "scenarios": {},
    }
    ok = True
    by_name: Dict[str, Dict] = {}
    for scenario in _scenarios(overrides, healthy_makespan):
        runs = [
            _run_feed(
                records, batch_size, scenario["policy"], scenario["plan"]
            )
            for _ in range(2)
        ]
        system, report = runs[0]
        checks = _accounted(system, report, records)
        checks["deterministic"] = _signature(report) == _signature(
            runs[1][1]
        )
        if scenario["plan"] is None:
            checks["no_retries_when_healthy"] = (
                report.external.retries == 0
                and report.external.errors == 0
                and report.enrichment_completeness == 1.0
            )
        entry = {
            "description": scenario["description"],
            "throughput_records_per_sim_second": report.throughput,
            "simulated_seconds": report.simulated_seconds,
            "records_stored": report.records_stored,
            "enrichment_completeness": report.enrichment_completeness,
            "external": report.external.as_dict(),
            "checks": checks,
        }
        if scenario.get("backfill"):
            # the remote recovers: the catch-up pass clears every marker
            backfill = system.backfill_pending(FEED)
            entry["backfill"] = {
                "scanned": backfill.scanned,
                "backfilled": backfill.backfilled,
                "still_pending": backfill.still_pending,
                "simulated_seconds": backfill.simulated_seconds,
                "completeness": backfill.completeness,
            }
            checks["backfill_restores_completeness"] = (
                backfill.completeness == 1.0 and backfill.still_pending == 0
            )
        if scenario.get("replay"):
            replay = system.replay_dead_letters(FEED, batch_size=batch_size)
            stored = set(system.query(f"SELECT VALUE t.id FROM {DATASET} t"))
            entry["replay"] = {
                "replayed": replay.replayed,
                "records_stored": replay.records_stored,
                "still_dead": replay.still_dead,
            }
            checks["replay_restores_records"] = (
                replay.still_dead == 0 and stored == set(range(records))
            )
        ok = ok and all(checks.values())
        results["scenarios"][scenario["name"]] = entry
        by_name[scenario["name"]] = entry

    completeness = {
        name: entry["enrichment_completeness"]
        for name, entry in by_name.items()
    }
    cross = {
        # progressive degradation is ordered, not cliff-edged
        "monotone_completeness": (
            completeness["healthy"]
            >= completeness["flaky_remote"]
            >= completeness["outage_recovery"]
            >= completeness["hard_down"]
        ),
        # fail-fast beats burning every chunk's full retry budget
        "breaker_saves_wasted_time": (
            by_name["hard_down"]["simulated_seconds"]
            < by_name["hard_down_no_breaker"]["simulated_seconds"]
        ),
        # the outage scenario really walked open -> half-open -> closed
        "breaker_recovered_in_run": (
            by_name["outage_recovery"]["external"]["breaker_opens"] >= 1
            and by_name["outage_recovery"]["external"]["breaker_half_opens"]
            >= 1
            and by_name["outage_recovery"]["external"]["breaker_closes"] >= 1
        ),
        "degraded_mode_keeps_ingesting": (
            by_name["hard_down"]["records_stored"] == records
        ),
    }
    ok = ok and all(cross.values())
    results["cross_scenario_checks"] = cross
    results["ok"] = ok
    return results
