"""Elastic computing-pool benchmark: makespan vs worker count.

A compute-bound enrichment (the paper's sensitive-words EXISTS join) is
pushed through the same feed at static pool sizes 1, 2, and 4 workers,
then once more under ``FeedPolicy.elastic()`` where the controller grows
the pool from sampled intake congestion.  The harness verifies the
invariants that make the pool trustworthy, not just fast:

* **speedup** — simulated makespan at 4 workers is at least 1.8x the
  single-worker makespan on this compute-bound UDF;
* **identical outputs** — every worker count stores the byte-identical
  enriched dataset (the sequencer preserves storage order/content);
* **determinism** — re-running any configuration reproduces the same
  makespan and output hash;
* **elastic reaction** — the elastic run actually scales (peak workers >
  1, at least one scale-up) and lands between the 1- and 4-worker
  makespans.

Results go to ``BENCH_elastic.json`` at the repo root;
``benchmarks/results/`` stays reserved for the paper-figure tables.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Sequence, Tuple

from ..core.system import AsterixLite
from ..ingestion.adapter import GeneratorAdapter
from ..ingestion.policy import FeedPolicy
from .reporting import layer_utilization_table

FEED = "ElasticFeed"
DATASET = "EnrichedTweets"
SPEEDUP_FLOOR = 1.8  # acceptance: >= this at 4 workers vs 1


def _raw_records(records: int) -> List[str]:
    return [
        json.dumps({"id": i, "text": f"tweet {i}", "country": "US"})
        for i in range(records)
    ]


def _run_once(policy: FeedPolicy, records: int, batch_size: int,
              num_nodes: int = 4, words: int = 300):
    """One feed run of the compute-bound enrichment; returns (report, hash)."""
    system = AsterixLite(num_nodes=num_nodes)
    system.execute(
        """
        CREATE TYPE TweetType AS OPEN { id: int64, text: string };
        CREATE DATASET EnrichedTweets(TweetType) PRIMARY KEY id;
        CREATE TYPE WordType AS OPEN { wid: int64 };
        CREATE DATASET SensitiveWords(WordType) PRIMARY KEY wid;
        """
    )
    system.insert(
        "SensitiveWords",
        [{"wid": i, "country": "US", "word": f"w{i}"} for i in range(words)],
    )
    system.execute(
        """
        CREATE FUNCTION heavyCheck(tweet) {
            LET flag = CASE
                EXISTS(SELECT w FROM SensitiveWords w
                       WHERE tweet.country = w.country
                         AND contains(tweet.text, w.word))
                WHEN true THEN "Red" ELSE "Green" END
            SELECT tweet.*, flag
        };
        CREATE FEED ElasticFeed WITH { "type-name": "TweetType" };
        CONNECT FEED ElasticFeed TO DATASET EnrichedTweets
            APPLY FUNCTION heavyCheck;
        """
    )
    report = system.start_feed(
        FEED,
        adapter=GeneratorAdapter(_raw_records(records)),
        batch_size=batch_size,
        policy=policy,
    )
    stored = sorted(
        (r["id"], r["flag"]) for r in system.catalog[DATASET].scan()
    )
    digest = hashlib.sha256(
        json.dumps(stored, sort_keys=True).encode()
    ).hexdigest()
    return report, digest


def _summarize(report, digest: str) -> Dict:
    metrics = report.runtime
    return {
        "makespan_seconds": metrics.makespan_seconds,
        "throughput_records_per_sim_second": report.throughput,
        "records_stored": report.records_stored,
        "computing_busy_aggregate_seconds": report.computing_seconds,
        "computing_wall_seconds": report.computing_wall_seconds,
        "computing_concurrency": report.computing_concurrency,
        "computing_worker_busy": dict(report.computing_worker_busy),
        "peak_workers": report.peak_computing_workers,
        "scale_ups": report.scale_ups,
        "scale_downs": report.scale_downs,
        "reordered_batches": metrics.reordered_batches,
        "worker_pool_timeline": [
            [at, size] for at, size in metrics.worker_pool_timeline
        ],
        "output_sha256": digest,
        "layer_utilization": layer_utilization_table(
            metrics, per_process=True
        ),
    }


def run_elastic(
    records: int = 2400,
    batch_size: int = 80,
    worker_counts: Sequence[int] = (1, 2, 4),
) -> Dict:
    """Run the static-pool sweep plus the elastic run; returns results."""
    results: Dict = {
        "records": records,
        "batch_size": batch_size,
        "speedup_floor": SPEEDUP_FLOOR,
        "static": {},
    }
    makespans: Dict[int, float] = {}
    digests: Dict[int, str] = {}
    repeats: Dict[int, Tuple[float, str]] = {}
    for workers in worker_counts:
        policy = FeedPolicy.spill(
            min_computing_workers=workers, max_computing_workers=workers
        )
        report, digest = _run_once(policy, records, batch_size)
        report2, digest2 = _run_once(policy, records, batch_size)
        makespans[workers] = report.runtime.makespan_seconds
        digests[workers] = digest
        repeats[workers] = (report2.runtime.makespan_seconds, digest2)
        results["static"][str(workers)] = _summarize(report, digest)

    elastic_report, elastic_digest = _run_once(
        FeedPolicy.elastic(), records, batch_size
    )
    elastic_repeat, elastic_digest2 = _run_once(
        FeedPolicy.elastic(), records, batch_size
    )
    results["elastic"] = _summarize(elastic_report, elastic_digest)

    base = makespans[min(worker_counts)]
    top = max(worker_counts)
    speedup = base / makespans[top] if makespans[top] > 0 else 0.0
    results["speedup_at_max_workers"] = speedup
    results["elastic_speedup"] = (
        base / elastic_report.runtime.makespan_seconds
        if elastic_report.runtime.makespan_seconds > 0
        else 0.0
    )

    checks = {
        "speedup_reaches_floor": speedup >= SPEEDUP_FLOOR,
        "outputs_identical_across_worker_counts": (
            len({digests[w] for w in worker_counts} | {elastic_digest}) == 1
        ),
        "deterministic_repeats": all(
            repeats[w] == (makespans[w], digests[w]) for w in worker_counts
        )
        and (
            elastic_repeat.runtime.makespan_seconds,
            elastic_digest2,
        )
        == (elastic_report.runtime.makespan_seconds, elastic_digest),
        "elastic_scaled_up": (
            elastic_report.peak_computing_workers > 1
            and elastic_report.scale_ups >= 1
        ),
        "elastic_beats_single_worker": (
            elastic_report.runtime.makespan_seconds < base
        ),
        "all_records_stored": all(
            results["static"][str(w)]["records_stored"] == records
            for w in worker_counts
        )
        and elastic_report.records_stored == records,
    }
    results["checks"] = checks
    results["ok"] = all(checks.values())
    return results
