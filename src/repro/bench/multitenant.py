"""Multi-tenant feed-fabric benchmark: shared worker budget vs equal split.

Eight feeds run concurrently on one shared simulated runtime
(:meth:`AsterixLite.start_feeds`), all pushing the paper's compute-bound
sensitive-words EXISTS join.  Two worker-allocation regimes compete over
the same cluster budget:

* **baseline** — static equal-split partitioning: every feed gets a fixed
  ``total_workers / num_feeds`` pool (``min == max``), the allocation a
  cluster without a fabric would pin per tenant;
* **fabric** — a :class:`~repro.ingestion.fabric.FeedFabric` with the
  same total budget: per-feed elastic controllers bid congestion signals
  into the global arbiter, so congested feeds borrow the workers idle
  tenants are not using (never below any feed's floor).

The harness verifies the fabric is a pure scheduler win:

* **skewed speedup** — on a skewed workload (2 heavy feeds, 6 light) the
  fabric's fleet makespan beats equal-split by at least 1.5x;
* **uniform parity** — on a uniform workload (no skew to exploit) the
  fabric stays within tolerance of equal-split;
* **identical outputs** — per-feed stored datasets are byte-identical
  fabric-on vs fabric-off (the sequencer fixes order; the fabric only
  moves pool sizes over time);
* **determinism** — every configuration re-runs to the same makespan and
  per-feed output hashes;
* **governed caches** (info) — a fabric carrying a
  :class:`~repro.ingestion.fabric.MemoryGovernor` splits one cache
  budget across tenants without changing any stored byte.

Results go to ``BENCH_multitenant.json`` at the repo root;
``benchmarks/results/`` stays reserved for the paper-figure tables.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.system import AsterixLite
from ..ingestion.adapter import GeneratorAdapter
from ..ingestion.fabric import FeedFabric, FeedLaunch
from ..ingestion.policy import FeedPolicy
from .reporting import fleet_utilization_table

SKEWED_SPEEDUP_FLOOR = 1.5  # acceptance: fabric vs equal split, skewed fleet
UNIFORM_PARITY_FLOOR = 0.75  # fabric must not tank a fleet with no skew
# (the uniform fleet pays the elastic ramp-up lag — floors of 1 growing
# toward the fair share — with no skew to win it back, so parity here
# means "close", not "equal")
NUM_FEEDS = 8
NUM_HEAVY = 2
TOTAL_WORKERS = 16


def _feed_name(index: int) -> str:
    return f"Tenant{index}"


def _dataset_name(index: int) -> str:
    return f"EnrichedTenant{index}"


def _raw_records(records: int, feed_index: int) -> List[str]:
    return [
        json.dumps(
            {"id": i, "text": f"tweet {i} of tenant {feed_index}",
             "country": "US"}
        )
        for i in range(records)
    ]


def _build_system(num_feeds: int, num_nodes: int, words: int) -> AsterixLite:
    system = AsterixLite(num_nodes=num_nodes)
    system.execute(
        """
        CREATE TYPE TweetType AS OPEN { id: int64, text: string };
        CREATE TYPE WordType AS OPEN { wid: int64 };
        CREATE DATASET SensitiveWords(WordType) PRIMARY KEY wid;
        """
    )
    system.insert(
        "SensitiveWords",
        [{"wid": i, "country": "US", "word": f"w{i}"} for i in range(words)],
    )
    system.execute(
        """
        CREATE FUNCTION heavyCheck(tweet) {
            LET flag = CASE
                EXISTS(SELECT w FROM SensitiveWords w
                       WHERE tweet.country = w.country
                         AND contains(tweet.text, w.word))
                WHEN true THEN "Red" ELSE "Green" END
            SELECT tweet.*, flag
        };
        """
    )
    for index in range(num_feeds):
        system.execute(
            f"""
            CREATE DATASET {_dataset_name(index)}(TweetType) PRIMARY KEY id;
            CREATE FEED {_feed_name(index)} WITH {{ "type-name": "TweetType" }};
            CONNECT FEED {_feed_name(index)} TO DATASET {_dataset_name(index)}
                APPLY FUNCTION heavyCheck;
            """
        )
    return system


def _digest(system: AsterixLite, index: int) -> str:
    stored = sorted(
        (r["id"], r["flag"]) for r in system.catalog[_dataset_name(index)].scan()
    )
    return hashlib.sha256(
        json.dumps(stored, sort_keys=True).encode()
    ).hexdigest()


def _run_fleet(
    per_feed_records: Sequence[int],
    policies: Sequence[FeedPolicy],
    batch_size: int,
    num_nodes: int,
    words: int,
    fabric_workers: Optional[int] = None,
    memory_bytes: int = 0,
) -> Tuple[Dict, Dict[str, str], float, Optional[FeedFabric]]:
    """One fleet run; returns (reports, per-feed digests, makespan, fabric)."""
    system = _build_system(len(per_feed_records), num_nodes, words)
    fabric = (
        FeedFabric(fabric_workers, memory_bytes=memory_bytes)
        if fabric_workers is not None
        else None
    )
    launches = [
        FeedLaunch(
            feed=_feed_name(index),
            adapter=GeneratorAdapter(_raw_records(count, index)),
            batch_size=batch_size,
            policy=policies[index],
        )
        for index, count in enumerate(per_feed_records)
    ]
    reports = system.start_feeds(launches, fabric=fabric)
    digests = {
        _feed_name(index): _digest(system, index)
        for index in range(len(per_feed_records))
    }
    makespan = max(r.runtime.makespan_seconds for r in reports.values())
    return reports, digests, makespan, fabric


def _fabric_policies(per_feed_records: Sequence[int]) -> List[FeedPolicy]:
    """Elastic floor-1 policies; heavier feeds get priority and headroom."""
    heavy_cutoff = max(per_feed_records)
    policies = []
    for count in per_feed_records:
        heavy = count == heavy_cutoff and max(per_feed_records) > min(
            per_feed_records
        )
        policies.append(
            FeedPolicy.elastic(
                min_computing_workers=1,
                max_computing_workers=8 if heavy else 4,
                priority=2 if heavy else 1,
            )
        )
    return policies


def _baseline_policies(num_feeds: int, total_workers: int) -> List[FeedPolicy]:
    """Static equal split: each feed pinned to total/num fixed workers."""
    share = max(1, total_workers // num_feeds)
    return [
        FeedPolicy.spill(
            min_computing_workers=share, max_computing_workers=share
        )
        for _ in range(num_feeds)
    ]


def _per_feed_summary(reports: Dict) -> Dict[str, Dict]:
    return {
        name: {
            "records_stored": report.records_stored,
            "peak_workers": report.peak_computing_workers,
            "borrowed_workers": report.borrowed_workers,
            "scale_ups": report.scale_ups,
            "latency_p50": report.latency_p50,
            "latency_p95": report.latency_p95,
            "latency_p99": report.latency_p99,
        }
        for name, report in sorted(reports.items())
    }


def _scenario(
    per_feed_records: Sequence[int],
    batch_size: int,
    num_nodes: int,
    words: int,
    total_workers: int,
) -> Dict:
    """Fabric vs equal-split on one workload shape, each run twice."""
    fabric_policies = _fabric_policies(per_feed_records)
    baseline_policies = _baseline_policies(len(per_feed_records), total_workers)

    fab_reports, fab_digests, fab_makespan, fabric = _run_fleet(
        per_feed_records, fabric_policies, batch_size, num_nodes, words,
        fabric_workers=total_workers,
    )
    _, fab_digests2, fab_makespan2, _ = _run_fleet(
        per_feed_records, fabric_policies, batch_size, num_nodes, words,
        fabric_workers=total_workers,
    )
    base_reports, base_digests, base_makespan, _ = _run_fleet(
        per_feed_records, baseline_policies, batch_size, num_nodes, words,
    )
    _, base_digests2, base_makespan2, _ = _run_fleet(
        per_feed_records, baseline_policies, batch_size, num_nodes, words,
    )

    speedup = base_makespan / fab_makespan if fab_makespan > 0 else 0.0
    return {
        "records_per_feed": list(per_feed_records),
        "total_workers": total_workers,
        "fabric": {
            "makespan_seconds": fab_makespan,
            "per_feed": _per_feed_summary(fab_reports),
            "fabric_summary": fabric.summary(),
            "fleet_table": fleet_utilization_table(fab_reports),
        },
        "baseline": {
            "makespan_seconds": base_makespan,
            "per_feed": _per_feed_summary(base_reports),
        },
        "speedup": speedup,
        "checks": {
            "outputs_identical_fabric_on_off": fab_digests == base_digests,
            "deterministic_repeats": (
                (fab_makespan, fab_digests) == (fab_makespan2, fab_digests2)
                and (base_makespan, base_digests)
                == (base_makespan2, base_digests2)
            ),
            "all_records_stored": all(
                fab_reports[_feed_name(i)].records_stored == count
                and base_reports[_feed_name(i)].records_stored == count
                for i, count in enumerate(per_feed_records)
            ),
            "budget_never_exceeded": all(
                total_held <= total_workers
                for _, _, _, _, total_held in fabric.lease_events
            ),
        },
        "digests": fab_digests,
    }


def run_multitenant(
    heavy_records: int = 2400,
    batch_size: int = 80,
    num_nodes: int = 4,
    words: int = 200,
) -> Dict:
    """Skewed + uniform fleets, fabric vs equal split; returns results."""
    light_records = max(batch_size, heavy_records // 10)
    skewed = [heavy_records] * NUM_HEAVY + [light_records] * (
        NUM_FEEDS - NUM_HEAVY
    )
    total_records = sum(skewed)
    uniform = [total_records // NUM_FEEDS] * NUM_FEEDS

    results: Dict = {
        "num_feeds": NUM_FEEDS,
        "batch_size": batch_size,
        "skewed_speedup_floor": SKEWED_SPEEDUP_FLOOR,
        "uniform_parity_floor": UNIFORM_PARITY_FLOOR,
        "skewed": _scenario(
            skewed, batch_size, num_nodes, words, TOTAL_WORKERS
        ),
        "uniform": _scenario(
            uniform, batch_size, num_nodes, words, TOTAL_WORKERS
        ),
    }

    # Governed-cache info run: same skewed fleet, fabric also arbitrating
    # one memory budget across per-tenant caches.  Stored bytes must not
    # move — the governor resizes caches, never results.
    governed_policies = [
        FeedPolicy.elastic(
            min_computing_workers=1,
            max_computing_workers=8 if count == max(skewed) else 4,
            priority=2 if count == max(skewed) else 1,
            state_cache_bytes=64 * 1024,
            enrichment_memo_bytes=64 * 1024,
        )
        for count in skewed
    ]
    gov_reports, gov_digests, gov_makespan, gov_fabric = _run_fleet(
        skewed, governed_policies, batch_size, num_nodes, words,
        fabric_workers=TOTAL_WORKERS, memory_bytes=1024 * 1024,
    )
    results["governed"] = {
        "makespan_seconds": gov_makespan,
        "per_feed": _per_feed_summary(gov_reports),
        "governor": gov_fabric.governor.summary(),
        "governor_grants": sum(
            len(report.governor_grants) for report in gov_reports.values()
        ),
    }

    skewed_speedup = results["skewed"]["speedup"]
    uniform_speedup = results["uniform"]["speedup"]
    results["skewed_speedup"] = skewed_speedup
    results["uniform_speedup"] = uniform_speedup

    checks = {
        "skewed_speedup_reaches_floor": skewed_speedup >= SKEWED_SPEEDUP_FLOOR,
        "uniform_within_tolerance": uniform_speedup >= UNIFORM_PARITY_FLOOR,
        "heavy_feeds_borrowed": all(
            results["skewed"]["fabric"]["per_feed"][_feed_name(i)][
                "borrowed_workers"
            ]
            >= 1
            for i in range(NUM_HEAVY)
        ),
        "governed_outputs_match": gov_digests == results["skewed"]["digests"],
        "governor_rebalanced": (
            gov_fabric.governor.rebalances > 1
            and len(gov_fabric.governor.grants) > 0
        ),
    }
    for scenario_name in ("skewed", "uniform"):
        for check, passed in results[scenario_name]["checks"].items():
            checks[f"{scenario_name}_{check}"] = passed
    results["checks"] = checks
    results["ok"] = all(checks.values())
    return results
