"""Benchmark harness: experiment setup, runs, and table rendering."""

from .harness import (
    BATCH_16X,
    BATCH_1X,
    BATCH_4X,
    BATCH_SIZES,
    COMPLEX_CASES,
    SIMPLE_CASES,
    USE_CASES,
    ExperimentHarness,
    UseCase,
    env_scale,
    env_tweets,
    format_table,
    scaled_batch_sizes,
)
from .reporting import (
    ascii_bar_chart,
    ascii_line_chart,
    fleet_utilization_table,
    layer_utilization_table,
    speedup_table,
)

__all__ = [
    "BATCH_16X",
    "ascii_bar_chart",
    "ascii_line_chart",
    "speedup_table",
    "BATCH_1X",
    "BATCH_4X",
    "BATCH_SIZES",
    "COMPLEX_CASES",
    "ExperimentHarness",
    "SIMPLE_CASES",
    "USE_CASES",
    "UseCase",
    "env_scale",
    "env_tweets",
    "format_table",
    "fleet_utilization_table",
    "layer_utilization_table",
    "scaled_batch_sizes",
]
