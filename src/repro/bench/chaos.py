"""Chaos benchmark: feeds under injected faults, with recovery invariants.

Every scenario is a deterministic discrete-event schedule (a
:class:`~repro.runtime.faults.FaultPlan`), so this benchmark is *not* a
flaky stress test: each scenario runs twice and the two runs must produce
byte-identical fault counters, and every scenario checks **zero
acked-record loss** — each well-formed input record is present in the
target dataset after recovery (at-least-once replay + primary-key upsert).

Results go to ``BENCH_chaos.json`` at the repo root, next to the
wall-clock harness's output; ``benchmarks/results/`` stays reserved for
the paper-figure tables, which this module never touches.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from ..core.system import AsterixLite
from ..ingestion.adapter import GeneratorAdapter
from ..ingestion.policy import FeedPolicy
from ..runtime.faults import (
    AdapterFailAt,
    ChannelSendFailure,
    CrashAt,
    FaultPlan,
    HolderDisconnect,
    StallAt,
)

FEED = "ChaosFeed"
DATASET = "ChaosTweets"


def _raw_records(records: int, malformed_every: int = 0) -> List[str]:
    """``records`` JSON tweets; every ``malformed_every``-th is truncated."""
    out = []
    for i in range(records):
        if malformed_every and i % malformed_every == 37 % malformed_every:
            out.append('{"id": %d, "text": ' % i)
        else:
            out.append(json.dumps({"id": i, "text": f"tweet {i}"}))
    return out


def _well_formed_ids(records: int, malformed_every: int = 0) -> set:
    return {
        i
        for i in range(records)
        if not (malformed_every and i % malformed_every == 37 % malformed_every)
    }


def _run_feed(
    records: int,
    batch_size: int,
    malformed_every: int,
    policy: FeedPolicy,
    plan: Optional[FaultPlan],
    num_nodes: int = 2,
):
    system = AsterixLite(num_nodes=num_nodes)
    system.execute(
        """
        CREATE TYPE ChaosTweetType AS OPEN { id: int64, text: string };
        CREATE DATASET ChaosTweets(ChaosTweetType) PRIMARY KEY id;
        """
    )
    system.create_feed(FEED, {"type-name": "ChaosTweetType"})
    system.connect_feed(FEED, DATASET, policy=policy)
    adapter = GeneratorAdapter(_raw_records(records, malformed_every))
    report = system.start_feed(
        FEED, adapter, batch_size=batch_size, fault_plan=plan
    )
    return system, report


def _scenarios(records: int) -> List[Dict]:
    """The fault schedules, scaled to a ``records``-sized workload."""
    return [
        {
            "name": "baseline_no_faults",
            "description": "clean run: every fault counter must stay zero",
            "malformed_every": 0,
            "policy": FeedPolicy.spill(),
            "plan": None,
        },
        {
            "name": "malformed_plus_computing_crash",
            "description": "1% malformed input and a mid-run computing-job "
            "crash under the Spill policy",
            "malformed_every": 100,
            "policy": FeedPolicy.spill(),
            "plan": FaultPlan(crashes=(CrashAt(at=0.01, target="computing"),)),
        },
        {
            "name": "storage_stall",
            "description": "the storage actor stalls mid-run (slow consumer)",
            "malformed_every": 0,
            "policy": FeedPolicy.spill(),
            "plan": FaultPlan(
                stalls=(StallAt(at=0.01, target="storage", duration=0.05),)
            ),
        },
        {
            "name": "intake_holder_disconnect",
            "description": "intake partition holder 0 unreachable for a window",
            "malformed_every": 0,
            "policy": FeedPolicy.spill(),
            "plan": FaultPlan(
                disconnects=(
                    HolderDisconnect(
                        holder_id=f"intake-{FEED}",
                        partition=0,
                        at=0.0,
                        duration=0.02,
                    ),
                )
            ),
        },
        {
            "name": "worker_pool_crash",
            "description": "every worker of a 4-strong computing pool "
            "crashes mid-run; each replays its own in-flight batch",
            "malformed_every": 0,
            "policy": FeedPolicy.spill(
                min_computing_workers=4, max_computing_workers=4
            ),
            "plan": FaultPlan(crashes=(CrashAt(at=0.01, target="computing"),)),
        },
        {
            "name": "adapter_crash_resume",
            "description": "the adapter's source dies mid-fetch; intake "
            "re-opens it from the resume cursor with no acked loss",
            "malformed_every": 0,
            "policy": FeedPolicy.spill(),
            "plan": FaultPlan(
                adapter_failures=(
                    AdapterFailAt(after_records=max(1, records // 3)),
                )
            ),
        },
        {
            "name": "channel_send_failure",
            "description": "a computing-to-storage hand-off fails transiently "
            "and is resent",
            "malformed_every": 0,
            "policy": FeedPolicy.spill(),
            "plan": FaultPlan(
                channel_failures=(
                    ChannelSendFailure(
                        channel=".storage", put_index=1, retry_seconds=0.01
                    ),
                )
            ),
        },
    ]


def run_chaos(records: int = 2000, batch_size: int = 200) -> Dict:
    """Run every chaos scenario twice; returns results + invariant checks.

    Per scenario:

    * ``zero_acked_loss`` — every well-formed input id is stored;
    * ``deterministic`` — both runs produced byte-identical fault counters
      and the same simulated makespan;
    * ``recovered`` — the feed completed despite the injected faults.
    """
    results: Dict = {"records": records, "batch_size": batch_size, "scenarios": {}}
    ok = True
    for scenario in _scenarios(records):
        runs = []
        for _ in range(2):
            system, report = _run_feed(
                records,
                batch_size,
                scenario["malformed_every"],
                scenario["policy"],
                scenario["plan"],
            )
            runs.append((system, report))
        system, report = runs[0]
        faults = report.faults
        counters = faults.as_dict()
        counters2 = runs[1][1].faults.as_dict()
        expected = _well_formed_ids(records, scenario["malformed_every"])
        stored = set(system.query(f"SELECT VALUE t.id FROM {DATASET} t"))
        checks = {
            "zero_acked_loss": expected <= stored,
            "deterministic": (
                json.dumps(counters, sort_keys=True)
                == json.dumps(counters2, sort_keys=True)
                and report.simulated_seconds == runs[1][1].simulated_seconds
            ),
            "recovered": report.records_stored > 0,
        }
        if scenario["plan"] is None:
            checks["no_spurious_faults"] = not faults.any_activity
        dead_letters = (
            len(system.catalog[f"{FEED}_DeadLetters"])
            if f"{FEED}_DeadLetters" in system.catalog
            else 0
        )
        ok = ok and all(checks.values())
        results["scenarios"][scenario["name"]] = {
            "description": scenario["description"],
            "throughput_records_per_sim_second": report.throughput,
            "simulated_seconds": report.simulated_seconds,
            "records_ingested": report.records_ingested,
            "records_stored": report.records_stored,
            "dead_letters": dead_letters,
            "faults": counters,
            "checks": checks,
        }
    results["ok"] = ok
    return results
