"""Update-rate sensitivity benchmark for the enrichment-state cache (§7.3).

A hash-join enrichment feed (tweets joined to a ``SafetyRatings``
reference dataset on ``county``) runs with the cross-batch state cache
off and on at reference-update rates 0, 1, 10, and 100 updates per
simulated second, reproducing the paper's §7.3 sensitivity axis:

* at rate 0 the reference data never changes, so every batch after the
  first reuses the cached build table — the cache must win by at least
  :data:`SIM_WIN_FLOOR` in simulated computing cost (and not lose wall
  clock);
* as the rate grows, version bumps land between more and more batch
  boundaries, forcing rebuilds; the win degrades gracefully toward the
  per-batch-rebuild baseline (throughput within
  :data:`BASELINE_EQUIV_TOLERANCE` at the highest rate);
* at **every** rate the stored output is byte-identical cache-on vs.
  cache-off — the cache changes cost, never results.

Updates are applied on a *fixed per-batch schedule*
(:class:`BatchScheduledUpdates` advances the underlying
:class:`~repro.ingestion.updates.ReferenceUpdateClient` by a constant
nominal duration per batch instead of the batch's actual simulated
makespan).  With the raw client, cache-on batches finish faster, so
updates would land at different batch boundaries and legitimately change
which tweets see which rating — making output equivalence unfalsifiable.
Pinning the update schedule to batch indices keeps the §7.3 sweep
semantics (updates per unit of feed progress) while making cache-on and
cache-off runs bit-comparable.

Results go to ``BENCH_updates.json`` at the repo root;
``benchmarks/results/`` stays reserved for the paper-figure tables.
"""

from __future__ import annotations

import hashlib
import json
import time
from typing import Dict, List, Optional, Sequence

from ..core.system import AsterixLite
from ..ingestion.adapter import GeneratorAdapter
from ..ingestion.feed import AttachedFunction, FeedDefinition
from ..ingestion.pipelines import DynamicIngestionPipeline
from ..ingestion.policy import FeedPolicy
from ..ingestion.updates import ReferenceUpdateClient

FEED = "UpdateSweepFeed"
DATASET = "EnrichedTweets"
REFERENCE = "SafetyRatings"
UPDATE_RATES = (0.0, 1.0, 10.0, 100.0)
SIM_WIN_FLOOR = 2.0  # acceptance: cache-on computing cost win at rate 0
WALLCLOCK_FLOOR = 1.0  # the cache must never *lose* wall clock at rate 0
BASELINE_EQUIV_TOLERANCE = 0.10  # throughput on/off at the top rate
#: simulated seconds each batch nominally advances the update client by
#: (fixed per batch so cache-on/off runs see identical update schedules)
NOMINAL_BATCH_SECONDS = 0.5
STATE_CACHE_BUDGET = 32 << 20


class BatchScheduledUpdates:
    """Advance the wrapped client by a fixed nominal duration per batch.

    The feed driver calls ``advance(makespan)`` after every batch; this
    wrapper ignores the (cache-dependent) makespan so the update schedule
    is a pure function of the batch index.
    """

    def __init__(self, client: ReferenceUpdateClient, nominal_seconds: float):
        self.client = client
        self.nominal_seconds = nominal_seconds

    def advance(self, sim_seconds: float) -> int:
        return self.client.advance(self.nominal_seconds)

    @property
    def applied(self) -> int:
        return self.client.applied

    @property
    def exhausted(self) -> bool:
        return self.client.exhausted


def _raw_tweets(count: int, counties: int) -> List[str]:
    return [
        json.dumps(
            {"id": i, "text": f"tweet {i}", "county": f"county{i % counties}"}
        )
        for i in range(count)
    ]


def _update_stream(counties: int):
    """Deterministic endless upsert stream cycling over the counties."""
    i = 0
    while True:
        county = i % counties
        yield {
            "sid": county,
            "county": f"county{county}",
            "rating": (17 * (i + 3)) % 100,
        }
        i += 1


def _build_system(ref_records: int, counties: int) -> AsterixLite:
    system = AsterixLite(num_nodes=4)
    system.execute(
        """
        CREATE TYPE TweetType AS OPEN { id: int64, text: string };
        CREATE DATASET EnrichedTweets(TweetType) PRIMARY KEY id;
        CREATE TYPE RatingType AS OPEN { sid: int64 };
        CREATE DATASET SafetyRatings(RatingType) PRIMARY KEY sid;
        """
    )
    system.insert(
        REFERENCE,
        [
            {
                "sid": i,
                "county": f"county{i % counties}",
                "rating": (13 * i) % 100,
            }
            for i in range(ref_records)
        ],
    )
    # Quiesce the fresh reference data so rate-0 runs start with no
    # in-memory LSM activity (§7.3 penalties apply only to updated data).
    system.catalog[REFERENCE].flush_all()
    system.execute(
        """
        CREATE FUNCTION enrichSafety(t) {
            LET ratings = (SELECT VALUE s.rating FROM SafetyRatings s
                           WHERE s.county = t.county)
            SELECT t.*, ratings AS safety
        };
        """
    )
    return system


def _run_once(
    cache_on: bool,
    rate: float,
    ref_records: int,
    counties: int,
    tweets: int,
    batch_size: int,
    work_scale: float,
):
    """One sweep cell; returns (report, output_sha256, wall_seconds)."""
    system = _build_system(ref_records, counties)
    policy = FeedPolicy.basic(
        state_cache_bytes=STATE_CACHE_BUDGET if cache_on else 0
    )
    feed = FeedDefinition(
        name=FEED,
        target_dataset=DATASET,
        datatype=system.types.get("TweetType"),
        batch_size=batch_size,
        functions=[AttachedFunction("enrichSafety")],
        policy=policy,
    )
    feed.reference_work_scale = work_scale
    update_client = None
    if rate > 0:
        update_client = BatchScheduledUpdates(
            ReferenceUpdateClient(
                rate, _update_stream(counties), system.catalog[REFERENCE].upsert
            ),
            NOMINAL_BATCH_SECONDS,
        )
    pipeline = DynamicIngestionPipeline(
        system.cluster, system.catalog, system.registry, afm=system.afm
    )
    adapter = GeneratorAdapter(_raw_tweets(tweets, counties))
    started = time.perf_counter()
    report = pipeline.run(feed, adapter, update_client=update_client)
    wall = time.perf_counter() - started
    stored = sorted(
        (r["id"], tuple(r.get("safety") or ()))
        for r in system.catalog[DATASET].scan()
    )
    digest = hashlib.sha256(
        json.dumps(stored, sort_keys=True).encode()
    ).hexdigest()
    applied = update_client.applied if update_client is not None else 0
    return report, digest, wall, applied


def _summarize(report, digest: str, wall: float) -> Dict:
    return {
        "computing_seconds": report.computing_seconds,
        "simulated_seconds": report.simulated_seconds,
        "throughput_records_per_sim_second": report.throughput,
        "records_stored": report.records_stored,
        "num_computing_jobs": report.num_computing_jobs,
        "state_cache_hits": report.state_cache_hits,
        "state_cache_misses": report.state_cache_misses,
        "state_cache_evictions": report.state_cache_evictions,
        "state_cache_bytes": report.state_cache_bytes,
        "output_sha256": digest,
        "wall_seconds": wall,
    }


def run_update_sweep(
    ref_records: int = 20000,
    counties: int = 200,
    tweets: int = 3000,
    batch_size: int = 100,
    work_scale: float = 30.0,
    rates: Sequence[float] = UPDATE_RATES,
    wallclock_repeats: int = 3,
    check_wallclock: bool = True,
) -> Dict:
    """Run the cache-off/cache-on sweep over ``rates``; returns results."""
    results: Dict = {
        "ref_records": ref_records,
        "tweets": tweets,
        "batch_size": batch_size,
        "reference_work_scale": work_scale,
        "nominal_batch_seconds": NOMINAL_BATCH_SECONDS,
        "state_cache_budget_bytes": STATE_CACHE_BUDGET,
        "sim_win_floor": SIM_WIN_FLOOR,
        "rates": {},
    }
    wins: List[float] = []
    hashes_equal = True
    for rate in rates:
        cells = {}
        for cache_on in (False, True):
            cells[cache_on] = _run_once(
                cache_on, rate, ref_records, counties, tweets, batch_size,
                work_scale,
            )
        off_report, off_digest, off_wall, off_applied = cells[False]
        on_report, on_digest, on_wall, on_applied = cells[True]
        win = (
            off_report.computing_seconds / on_report.computing_seconds
            if on_report.computing_seconds > 0
            else 0.0
        )
        wins.append(win)
        hashes_equal = hashes_equal and off_digest == on_digest
        results["rates"][str(rate)] = {
            "cache_off": _summarize(off_report, off_digest, off_wall),
            "cache_on": _summarize(on_report, on_digest, on_wall),
            "computing_seconds_win": win,
            "throughput_ratio_on_vs_off": (
                on_report.throughput / off_report.throughput
                if off_report.throughput > 0
                else 0.0
            ),
            "updates_applied": {"cache_off": off_applied, "cache_on": on_applied},
            "output_hashes_equal": off_digest == on_digest,
        }

    # Wall clock at rate 0: best of N repeats per configuration (the
    # simulated numbers are deterministic; only the wall clock is noisy).
    wall_ratio: Optional[float] = None
    if check_wallclock:
        best = {False: float("inf"), True: float("inf")}
        for cache_on in (False, True):
            for _ in range(max(1, wallclock_repeats)):
                _report, _digest, wall, _applied = _run_once(
                    cache_on, 0.0, ref_records, counties, tweets, batch_size,
                    work_scale,
                )
                best[cache_on] = min(best[cache_on], wall)
        wall_ratio = best[False] / best[True] if best[True] > 0 else 0.0
        results["wallclock_rate0"] = {
            "cache_off_best_seconds": best[False],
            "cache_on_best_seconds": best[True],
            "ratio": wall_ratio,
            "floor": WALLCLOCK_FLOOR,
            "repeats": wallclock_repeats,
        }

    rate0 = results["rates"][str(rates[0])]
    top = results["rates"][str(rates[-1])]
    checks = {
        "sim_win_at_rate_0_reaches_floor": wins[0] >= SIM_WIN_FLOOR,
        "output_hashes_equal_at_every_rate": hashes_equal,
        "win_degrades_monotonically": all(
            wins[i] >= wins[i + 1] - 0.05 for i in range(len(wins) - 1)
        ),
        "baseline_equivalent_at_top_rate": (
            abs(top["throughput_ratio_on_vs_off"] - 1.0)
            <= BASELINE_EQUIV_TOLERANCE
        ),
        "cache_hits_observed_at_rate_0": (
            rate0["cache_on"]["state_cache_hits"] > 0
        ),
        "cache_inert_when_disabled": all(
            cell["cache_off"]["state_cache_hits"] == 0
            and cell["cache_off"]["state_cache_misses"] == 0
            for cell in results["rates"].values()
        ),
    }
    if wall_ratio is not None:
        checks["wallclock_not_worse_at_rate_0"] = wall_ratio >= WALLCLOCK_FLOOR
    results["wins"] = wins
    results["checks"] = checks
    results["ok"] = all(checks.values())
    return results
