"""Wall-clock micro-benchmark: real Python records/sec for enrichment UDFs.

Everything else in ``bench/`` measures *simulated* cost (WorkMeter units on
a discrete-event clock); this module measures actual elapsed time.  It runs
a representative UDF mix through the feed invoker twice — once with the
evaluator's compile-once plan layer disabled (``use_plans=False``, the
pre-plan interpreted path) and once with it enabled — and reports
records/sec for both, giving the repo a real-time performance trajectory
alongside the paper-faithful simulated figures.

Numbers are machine-dependent and nondeterministic, so results go to
``BENCH_wallclock.json`` at the repo root, never into
``benchmarks/results/`` (which is byte-compared across runs).
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence

from ..ingestion.feed import AttachedFunction
from ..ingestion.udf_operator import make_batch_invoker, make_invoker
from ..sqlpp.evaluator import EvaluationContext
from .harness import BATCH_16X, USE_CASES, ExperimentHarness

#: Default UDF mix: two equality-probe enrichments and one with a
#: grouped/ordered subquery, covering the common plan shapes.
DEFAULT_CASES = ("safety_rating", "religious_population", "largest_religions")

#: Interpreter-path case set: timed with ``use_plans=False`` only, so the
#: committed numbers baseline the raw expression interpreter (Env
#: handling, dispatch) independently of the plan layer.  Mixes a cheap
#: equality probe, a multi-dataset join, and a grouped/ordered subquery.
DEFAULT_INTERPRETER_CASES = (
    "safety_rating",
    "suspicious_names",
    "largest_religions",
)


def calibration_score(repeats: int = 3, loops: int = 200_000) -> float:
    """Machine-speed score: pure-Python ops/sec on a fixed loop.

    Interpreter throughput is machine-dependent, so the committed
    interpreter baseline cannot gate absolute rec/s across machines.
    Dividing by this score (measured on the same machine, at the same
    time, with the same Python) yields a normalized throughput that *is*
    comparable — both numerator and denominator move together with CPU
    speed.  The loop mixes dict access, attribute-free arithmetic, and
    branching, approximating the interpreter's instruction mix.
    """
    best = float("inf")
    for _ in range(max(1, repeats)):
        acc = 0
        table = {"a": 1, "b": 2}
        start = time.perf_counter()
        for i in range(loops):
            acc += table["a"] + (i & 7)
            table["b"] = acc & 1023
            if table["b"] > 512:
                acc -= 1
        best = min(best, time.perf_counter() - start)
    return loops / best


def _time_mode(
    tweets: List[dict],
    catalog: Dict[str, object],
    registry,
    function_name: str,
    use_plans: bool,
    batch_size: int,
    reference_work_scale: float,
):
    """One timed pass over ``tweets``; returns (elapsed_seconds, outputs)."""
    ctx = EvaluationContext(
        catalog,
        functions=registry,
        reference_work_scale=reference_work_scale,
        use_plans=use_plans,
    )
    invoker = make_invoker([AttachedFunction(function_name)], registry)
    out: List[dict] = []
    start = time.perf_counter()
    for position, record in enumerate(tweets):
        if position and position % batch_size == 0:
            ctx.refresh_batch()
        out.extend(invoker(record, ctx))
    return time.perf_counter() - start, out


def _time_columnar(
    tweets: List[dict],
    catalog: Dict[str, object],
    registry,
    function_name: str,
    batch_size: int,
    reference_work_scale: float,
):
    """One timed pass through the columnar batch invoker.

    Batches match :func:`_time_mode`'s refresh boundaries exactly; a batch
    the invoker declines falls back to the scalar invoker, the same
    protocol the UDF evaluator operator uses.
    """
    ctx = EvaluationContext(
        catalog,
        functions=registry,
        reference_work_scale=reference_work_scale,
        use_plans=True,
    )
    attached = [AttachedFunction(function_name)]
    batch_invoker = make_batch_invoker(attached, registry)
    scalar_invoker = make_invoker(attached, registry)
    out: List[dict] = []
    start = time.perf_counter()
    for lo in range(0, len(tweets), batch_size):
        if lo:
            ctx.refresh_batch()
        chunk = tweets[lo : lo + batch_size]
        rows = (
            batch_invoker(chunk, ctx) if batch_invoker is not None else None
        )
        if rows is None:
            for record in chunk:
                out.extend(scalar_invoker(record, ctx))
        else:
            out.extend(rows)
    return time.perf_counter() - start, out


def run_wallclock(
    records: int = 1500,
    batch_size: int = BATCH_16X,
    cases: Sequence[str] = DEFAULT_CASES,
    repeats: int = 3,
    reference_scale: float = 0.01,
    interpreter_cases: Sequence[str] = DEFAULT_INTERPRETER_CASES,
) -> Dict:
    """Measure interpreted vs. planned records/sec over the UDF mix.

    The default batch size is the paper's 16X (6720): per-batch hash-build
    cost is identical in both modes, so the benchmark amortizes it away to
    isolate what the plan layer actually changes — per-record evaluation.

    Each (case, mode) pair is timed ``repeats`` times and the best run is
    kept (standard micro-benchmark practice: the minimum is the least
    noisy estimate of the achievable rate).  Outputs from both modes are
    compared for equality so a plan-layer bug cannot masquerade as a
    speedup.
    """
    harness = ExperimentHarness(
        reference_scale=reference_scale, num_partitions=2
    )
    tweets = list(harness.workload.tweet_generator.records(records))

    per_case: Dict[str, Dict] = {}
    total_interpreted = 0.0
    total_planned = 0.0
    total_columnar = 0.0
    for key in cases:
        case = USE_CASES[key]
        catalog = harness.catalog_for(case.datasets)
        registry = harness.registry_for(catalog)

        timings = {}
        outputs = {}
        for use_plans in (False, True):
            best = float("inf")
            for _ in range(max(1, repeats)):
                elapsed, out = _time_mode(
                    tweets,
                    catalog,
                    registry,
                    case.sqlpp_function,
                    use_plans,
                    batch_size,
                    harness.reference_work_scale,
                )
                best = min(best, elapsed)
            timings[use_plans] = best
            outputs[use_plans] = out
        if outputs[False] != outputs[True]:
            raise AssertionError(
                f"{case.sqlpp_function}: planned and interpreted outputs differ"
            )

        columnar_best = float("inf")
        columnar_out = None
        for _ in range(max(1, repeats)):
            elapsed, out = _time_columnar(
                tweets,
                catalog,
                registry,
                case.sqlpp_function,
                batch_size,
                harness.reference_work_scale,
            )
            columnar_best = min(columnar_best, elapsed)
            columnar_out = out
        if columnar_out != outputs[True]:
            raise AssertionError(
                f"{case.sqlpp_function}: columnar and planned outputs differ"
            )

        total_interpreted += timings[False]
        total_planned += timings[True]
        total_columnar += columnar_best
        per_case[key] = {
            "function": case.sqlpp_function,
            "interpreted_seconds": timings[False],
            "planned_seconds": timings[True],
            "columnar_seconds": columnar_best,
            "interpreted_records_per_sec": records / timings[False],
            "planned_records_per_sec": records / timings[True],
            "columnar_records_per_sec": records / columnar_best,
            "speedup": timings[False] / timings[True],
            "columnar_speedup": timings[True] / columnar_best,
        }

    # ---------------------------------------------- interpreter-only pass
    # Baselines the raw interpreter (no plan layer) per case, normalized
    # by a machine-speed calibration so --baseline can gate regressions
    # across machines.
    score = calibration_score(repeats=max(1, repeats))
    interp_cases: Dict[str, Dict] = {}
    interp_total = 0.0
    for key in interpreter_cases:
        case = USE_CASES[key]
        catalog = harness.catalog_for(case.datasets)
        registry = harness.registry_for(catalog)
        best = float("inf")
        for _ in range(max(1, repeats)):
            elapsed, _out = _time_mode(
                tweets,
                catalog,
                registry,
                case.sqlpp_function,
                False,
                batch_size,
                harness.reference_work_scale,
            )
            best = min(best, elapsed)
        interp_total += best
        rate = records / best
        interp_cases[key] = {
            "function": case.sqlpp_function,
            "interpreted_seconds": best,
            "interpreted_records_per_sec": rate,
            # records evaluated per million calibration ops: the
            # machine-comparable number the baseline gate uses
            "normalized_throughput": rate / (score / 1e6),
        }
    interp_rate = records * len(interp_cases) / interp_total
    interpreter = {
        "cases": interp_cases,
        "aggregate": {
            "interpreted_records_per_sec": interp_rate,
            "normalized_throughput": interp_rate / (score / 1e6),
        },
    }

    total_records = records * len(per_case)
    return {
        "benchmark": "wallclock enrichment micro-benchmark",
        "records_per_case": records,
        "batch_size": batch_size,
        "repeats": repeats,
        "reference_scale": reference_scale,
        "cases": per_case,
        "aggregate": {
            "interpreted_records_per_sec": total_records / total_interpreted,
            "planned_records_per_sec": total_records / total_planned,
            "columnar_records_per_sec": total_records / total_columnar,
            "speedup": total_interpreted / total_planned,
            "columnar_speedup": total_planned / total_columnar,
        },
        "calibration_ops_per_sec": score,
        "interpreter": interpreter,
    }
