"""Scale-out benchmark: partitioned intake, sub-batch splits, restart.

Three sweeps over the real partitioned execution path (no simulated
stand-ins), each verifying byte-identical stored output next to its
makespan numbers:

* **intake partitions** — an intake-bound plain-ingestion feed (no UDF,
  a single intake location, a worker pool wide enough that computing
  never bottlenecks) at N = 1/2/4 adapter partitions.  Acceptance:
  >= 1.8x simulated-makespan improvement at 4 partitions and identical
  output hashes at every N;
* **sub-batch splits** — one oversized 16X batch of the paper's Tweet
  Context enrichment (four reference datasets) split K ways across a
  4-worker pool, with the enrichment-state cache keeping the build-side
  state shared across sub-invocations.  Acceptance: splitting into
  quarter-batches beats the unsplit run by >= 1.5x with identical
  hashes (each sub-invocation still pays the per-job overhead, so the
  win comes from the per-record work);
* **durable restart** — a partitioned + sub-batched file feed killed
  mid-run by a zero-restart-budget worker crash, then resumed from the
  on-disk :class:`~repro.storage.CheckpointStore` with fresh adapters.
  Acceptance: the interrupted run checkpointed progress, the resumed
  run skips the acked prefix, and the final dataset is byte-identical
  to an uninterrupted run.

Results go to ``BENCH_scaleout.json`` at the repo root;
``benchmarks/results/`` stays reserved for the paper-figure tables.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Dict, List, Sequence

from ..core.system import AsterixLite
from ..errors import FeedFailedError
from ..ingestion.adapter import FileAdapter, GeneratorAdapter
from ..ingestion.feed import AttachedFunction, FeedDefinition
from ..ingestion.pipelines import DynamicIngestionPipeline
from ..ingestion.policy import FeedPolicy
from ..runtime import CrashAt, FaultPlan
from ..storage.checkpoint import CheckpointStore
from ..workloads.tweets import TWEET_TYPE_FULL
from .harness import ExperimentHarness, scaled_batch_sizes

FEED = "ScaleoutFeed"
INTAKE_SPEEDUP_FLOOR = 1.8  # acceptance: >= this at 4 partitions vs 1
SUBBATCH_SPEEDUP_FLOOR = 1.5  # acceptance: quarter-splits vs unsplit
STATE_CACHE_BYTES = 256 * 1024 * 1024


def _raw_records(records: int) -> List[str]:
    return [
        json.dumps({"id": i, "text": f"tweet {i}", "country": "US"})
        for i in range(records)
    ]


def _digest(rows) -> str:
    canonical = json.dumps(sorted(rows, key=lambda r: str(r)),
                           sort_keys=True, default=repr)
    return hashlib.sha256(canonical.encode()).hexdigest()


def _build_plain_system(num_nodes: int = 8) -> AsterixLite:
    """A no-UDF ingestion feed: intake is the only per-record hot loop."""
    system = AsterixLite(num_nodes=num_nodes)
    system.execute(
        """
        CREATE TYPE TweetType AS OPEN { id: int64, text: string };
        CREATE DATASET Tweets(TweetType) PRIMARY KEY id;
        """
    )
    system.create_feed(FEED, {"type-name": "TweetType"})
    system.connect_feed(FEED, "Tweets")
    return system


def _partition_adapters(records: int, partitions: int):
    """Round-robin pre-split of the deterministic raw stream."""
    stream = _raw_records(records)
    if partitions <= 1:
        return GeneratorAdapter(iter(stream))
    return [
        GeneratorAdapter(iter(stream[p::partitions]))
        for p in range(partitions)
    ]


def _run_plain(
    records: int,
    batch_size: int,
    partitions: int,
    workers: int,
    subbatch: int = 0,
):
    system = _build_plain_system()
    policy = FeedPolicy.basic(
        intake_partitions=partitions,
        max_subbatch_records=subbatch,
        min_computing_workers=workers,
        max_computing_workers=workers,
    )
    report = system.start_feed(
        FEED,
        adapter=_partition_adapters(records, partitions),
        batch_size=batch_size,
        policy=policy,
    )
    digest = _digest(list(system.catalog["Tweets"].scan()))
    return report, digest


def _summarize(report, digest: str) -> Dict:
    metrics = report.runtime
    return {
        "makespan_seconds": metrics.makespan_seconds,
        "records_stored": report.records_stored,
        "intake_bottleneck_seconds": report.intake_seconds,
        "intake_partitions": report.intake_partitions,
        "intake_partition_busy": {
            str(p): busy
            for p, busy in sorted(report.intake_partition_busy.items())
        },
        "subbatches_dispatched": report.subbatches_dispatched,
        "subbatch_merges": metrics.subbatch_merges,
        "checkpoint_commits": report.checkpoint_commits,
        "output_sha256": digest,
    }


# ---------------------------------------------------------------- sub-batches


def _run_tweet_context(
    harness: ExperimentHarness,
    tweets: int,
    batch_size: int,
    subbatch: int,
    workers: int,
):
    """One Tweet Context run; returns (report, stored-output digest).

    Mirrors :meth:`ExperimentHarness.run_enrichment` but keeps a handle
    on the target dataset so the stored output can be hashed.
    """
    case_datasets = ("AverageIncomes", "DistrictAreas", "Facilities", "Persons")
    catalog = harness.catalog_for(case_datasets)
    for dataset in catalog.values():
        dataset.flush_all()
    target = harness.workload.enriched_tweets_dataset()
    catalog["EnrichedTweets"] = target
    registry = harness.registry_for(catalog)

    feed = FeedDefinition(
        name="bench-tweet-context-scaleout",
        target_dataset="EnrichedTweets",
        datatype=TWEET_TYPE_FULL,
        batch_size=batch_size,
        functions=[AttachedFunction("enrichTweetQ7")],
        policy=FeedPolicy.basic(
            max_subbatch_records=subbatch,
            min_computing_workers=workers,
            max_computing_workers=workers,
            state_cache_bytes=STATE_CACHE_BYTES,
        ),
    )
    feed.reference_work_scale = harness.reference_work_scale

    from ..cluster.controller import Cluster

    cluster = Cluster(6)
    pipeline = DynamicIngestionPipeline(cluster, catalog, registry)
    adapter = GeneratorAdapter(
        harness.workload.tweet_generator.raw_json(tweets)
    )
    report = pipeline.run(feed, adapter)
    digest = _digest(list(target.scan()))
    return report, digest


# ------------------------------------------------------------------- restart


def _run_restart_cycle(records: int, batch_size: int) -> Dict:
    """Kill a partitioned + sub-batched file feed mid-run, then resume."""
    partitions, workers = 4, 3
    subbatch = max(batch_size // 4, 1)
    policy = FeedPolicy.basic(
        intake_partitions=partitions,
        max_subbatch_records=subbatch,
        min_computing_workers=workers,
        max_computing_workers=workers,
    )

    handle, path = tempfile.mkstemp(suffix=".ndjson")
    with os.fdopen(handle, "w", encoding="utf-8") as stream:
        stream.write("\n".join(_raw_records(records)) + "\n")
    checkpoint_dir = tempfile.mkdtemp()
    try:
        # the uninterrupted reference run
        system = _build_plain_system()
        reference = system.start_feed(
            FEED, FileAdapter(path), batch_size=batch_size, policy=policy
        )
        expected = _digest(list(system.catalog["Tweets"].scan()))

        # the interrupted run: no restart budget, so the injected worker
        # crash kills the whole process mid-feed
        store = CheckpointStore(checkpoint_dir)
        system = _build_plain_system()
        plan = FaultPlan(
            crashes=(
                CrashAt(
                    at=reference.runtime.makespan_seconds * 0.6,
                    target="computing",
                ),
            )
        )
        crashed = False
        try:
            system.start_feed(
                FEED,
                FileAdapter(path),
                batch_size=batch_size,
                policy=FeedPolicy.basic(
                    intake_partitions=partitions,
                    max_subbatch_records=subbatch,
                    min_computing_workers=workers,
                    max_computing_workers=workers,
                    max_restarts=0,
                ),
                fault_plan=plan,
                checkpoint=store,
            )
        except FeedFailedError:
            crashed = True
        interrupted = store.load(FEED)

        # fresh adapters over the same file: resume from the durable
        # cursors, replay the un-acked tail, dedupe via pk-upsert
        resumed = system.resume_run(
            FEED,
            FileAdapter(path),
            checkpoint=store,
            batch_size=batch_size,
            policy=policy,
        )
        final = _digest(list(system.catalog["Tweets"].scan()))
        completed = store.load(FEED)
    finally:
        os.unlink(path)
        for name in os.listdir(checkpoint_dir):
            os.unlink(os.path.join(checkpoint_dir, name))
        os.rmdir(checkpoint_dir)

    total_batches = -(-records // batch_size)
    return {
        "records": records,
        "batch_size": batch_size,
        "intake_partitions": partitions,
        "max_subbatch_records": subbatch,
        "crashed": crashed,
        "acked_batches_at_crash": interrupted.acked_batches if interrupted else None,
        "records_stored_at_crash": interrupted.records_stored if interrupted else None,
        "resumed_records_ingested": resumed.records_ingested,
        "resumed_from_checkpoint": resumed.resumed_from_checkpoint,
        "final_records_stored": resumed.records_stored,
        "uninterrupted_sha256": expected,
        "final_sha256": final,
        "checks": {
            "crash_interrupted_the_run": crashed,
            "progress_was_checkpointed": (
                interrupted is not None
                and not interrupted.complete
                and 0 < interrupted.acked_batches < total_batches
            ),
            "resume_skipped_acked_prefix": (
                resumed.resumed_from_checkpoint
                and resumed.records_ingested < records
            ),
            "final_output_byte_identical": final == expected,
            "checkpoint_finalized": completed is not None and completed.complete,
        },
    }


# ----------------------------------------------------------------------- main


def run_scaleout(
    records: int = 4800,
    batch_size: int = 480,
    tweets: int = 480,
    partition_counts: Sequence[int] = (1, 2, 4),
) -> Dict:
    """Run all three sweeps; returns the results document."""
    results: Dict = {
        "records": records,
        "batch_size": batch_size,
        "intake_speedup_floor": INTAKE_SPEEDUP_FLOOR,
        "subbatch_speedup_floor": SUBBATCH_SPEEDUP_FLOOR,
        "intake_sweep": {},
        "subbatch_sweep": {},
    }

    # --- intake-partition sweep (intake-bound: no UDF, 8 workers) ---
    workers = 8
    makespans: Dict[int, float] = {}
    digests: Dict[int, str] = {}
    for partitions in partition_counts:
        report, digest = _run_plain(records, batch_size, partitions, workers)
        makespans[partitions] = report.runtime.makespan_seconds
        digests[partitions] = digest
        results["intake_sweep"][str(partitions)] = _summarize(report, digest)
    top = max(partition_counts)
    intake_speedup = (
        makespans[1] / makespans[top] if makespans[top] > 0 else 0.0
    )
    results["intake_speedup_at_max_partitions"] = intake_speedup

    # combined partitions x sub-batches on the same feed
    combined_report, combined_digest = _run_plain(
        records, batch_size, top, workers, subbatch=max(batch_size // 4, 1)
    )
    results["combined"] = _summarize(combined_report, combined_digest)

    # --- sub-batch sweep (compute-bound: Tweet Context, one 16X batch) ---
    harness = ExperimentHarness()
    batch_16x = scaled_batch_sizes()["16X"]
    sub_makespans: Dict[int, float] = {}
    sub_digests: Dict[int, str] = {}
    sub_workers = 4
    for subbatch in (0, batch_16x // 2, batch_16x // 4):
        report, digest = _run_tweet_context(
            harness, tweets, batch_16x, subbatch, sub_workers
        )
        sub_makespans[subbatch] = report.runtime.makespan_seconds
        sub_digests[subbatch] = digest
        results["subbatch_sweep"][str(subbatch)] = _summarize(report, digest)
    quarter = batch_16x // 4
    subbatch_speedup = (
        sub_makespans[0] / sub_makespans[quarter]
        if sub_makespans[quarter] > 0
        else 0.0
    )
    results["subbatch_speedup_at_quarter_splits"] = subbatch_speedup

    # --- durable restart cycle ---
    results["restart"] = _run_restart_cycle(records, batch_size)

    checks = {
        "intake_speedup_reaches_floor": intake_speedup >= INTAKE_SPEEDUP_FLOOR,
        "intake_outputs_identical": len(set(digests.values())) == 1,
        "combined_output_identical": combined_digest == digests[1],
        "combined_split_batches": combined_report.subbatches_dispatched > 0,
        "subbatch_speedup_reaches_floor": (
            subbatch_speedup >= SUBBATCH_SPEEDUP_FLOOR
        ),
        "subbatch_outputs_identical": len(set(sub_digests.values())) == 1,
        "all_records_stored": all(
            results["intake_sweep"][str(p)]["records_stored"] == records
            for p in partition_counts
        ),
        "restart_cycle_ok": all(results["restart"]["checks"].values()),
    }
    results["checks"] = checks
    results["ok"] = all(checks.values())
    return results
