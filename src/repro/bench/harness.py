"""The experiment harness shared by every figure benchmark.

Encapsulates the Section 7 setup: build the reference catalog at a chosen
scale, register the paper UDFs (SQL++ and Java), assemble the feed, run it
on a simulated cluster of the requested size, and report throughput /
refresh periods in the paper's units.

Environment knobs (all optional):

* ``REPRO_BENCH_SCALE``  — reference-data scale factor (default 0.01;
  1.0 = the paper's cardinalities, much slower);
* ``REPRO_BENCH_TWEETS`` — multiplier on per-run tweet counts (default 1.0).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..cluster.controller import Cluster
from ..ingestion.adapter import GeneratorAdapter
from ..ingestion.feed import (
    AttachedFunction,
    ComputingModel,
    FeedDefinition,
    FeedRunReport,
    Framework,
)
from ..ingestion.pipelines import DynamicIngestionPipeline, StaticIngestionPipeline
from ..ingestion.updates import ReferenceUpdateClient
from ..udf.library import register_paper_udfs
from ..udf.registry import FunctionRegistry
from ..workloads.reference import PaperWorkload, WorkloadScale
from ..workloads.tweets import TWEET_TYPE_FULL

#: the paper's batch sizes (§7.1)
BATCH_1X = 420
BATCH_4X = 1680
BATCH_16X = 6720
BATCH_SIZES = {"1X": BATCH_1X, "4X": BATCH_4X, "16X": BATCH_16X}


@dataclass(frozen=True)
class UseCase:
    """One enrichment workload: its UDFs and required reference datasets."""

    key: str
    title: str
    sqlpp_function: str
    datasets: tuple
    java_key: Optional[str] = None  # udflib entry, when a Java twin exists
    update_dataset: Optional[str] = None  # the §7.3 update target


USE_CASES: Dict[str, UseCase] = {
    case.key: case
    for case in [
        UseCase(
            "safety_rating",
            "Safety Rating",
            "enrichTweetQ1",
            ("SafetyRatings",),
            java_key="safety_rating",
            update_dataset="SafetyRatings",
        ),
        UseCase(
            "religious_population",
            "Religious Population",
            "enrichTweetQ2",
            ("ReligiousPopulations",),
            java_key="religious_population",
            update_dataset="ReligiousPopulations",
        ),
        UseCase(
            "largest_religions",
            "Largest Religions",
            "enrichTweetQ3",
            ("ReligiousPopulations",),
            java_key="largest_religions",
            update_dataset="ReligiousPopulations",
        ),
        UseCase(
            "fuzzy_suspects",
            "Fuzzy Suspects",
            "annotateTweetQ4",
            ("SensitiveNamesDataset",),
            java_key="fuzzy_suspects",
            update_dataset="SensitiveNamesDataset",
        ),
        UseCase(
            "nearby_monuments",
            "Nearby Monuments",
            "enrichTweetQ5",
            ("monumentList",),
            java_key="nearby_monuments",
            update_dataset="monumentList",
        ),
        UseCase(
            "naive_nearby_monuments",
            "Naive Nearby Monuments",
            "enrichTweetQ5Naive",
            ("monumentList",),
        ),
        UseCase(
            "suspicious_names",
            "Suspicious Names",
            "enrichTweetQ6",
            ("Facilities", "ReligiousBuildings", "SuspiciousNames"),
        ),
        UseCase(
            "tweet_context",
            "Tweet Context",
            "enrichTweetQ7",
            ("AverageIncomes", "DistrictAreas", "Facilities", "Persons"),
        ),
        UseCase(
            "worrisome_tweets",
            "Worrisome Tweets",
            "enrichTweetQ8",
            ("ReligiousBuildings", "AttackEvents"),
        ),
    ]
}

#: Figure 25/26/27 workloads (use cases 1-5)
SIMPLE_CASES = [
    "safety_rating",
    "religious_population",
    "largest_religions",
    "fuzzy_suspects",
    "nearby_monuments",
]

#: Figure 29/31 workloads (the complex UDFs)
COMPLEX_CASES = [
    "nearby_monuments",
    "suspicious_names",
    "tweet_context",
    "worrisome_tweets",
]


def env_scale(default: float = 0.01) -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", default))


def env_tweets(count: int) -> int:
    return max(10, int(count * float(os.environ.get("REPRO_BENCH_TWEETS", 1.0))))


def scaled_batch_sizes() -> Dict[str, int]:
    """The paper's 1X/4X/16X batch sizes, scaled to the bench tweet volume.

    The paper streams millions of tweets, so a 420-record batch recurs
    thousands of times; the scaled-down benches stream thousands, so batch
    sizes shrink proportionally (default 1/14, i.e. 30/120/480) to keep
    the jobs-per-run ratios — override with ``REPRO_BENCH_BATCH_SCALE=1``
    for the paper's absolute sizes.
    """
    scale = float(os.environ.get("REPRO_BENCH_BATCH_SCALE", 1.0 / 14.0))
    return {
        label: max(10, int(size * scale)) for label, size in BATCH_SIZES.items()
    }


class ExperimentHarness:
    """Builds catalogs/registries once per (scale, partitions) and runs feeds."""

    def __init__(
        self,
        reference_scale: Optional[float] = None,
        num_partitions: int = 6,
        seed: int = 7,
        reference_work_scale: Optional[float] = None,
    ):
        self.scale = WorkloadScale(
            reference_scale=reference_scale
            if reference_scale is not None
            else env_scale(),
            seed=seed,
        )
        # default: charge reference work as if at the paper's cardinality;
        # Figure 28 overrides this so 2X generated data charges 2X work.
        self.reference_work_scale = (
            reference_work_scale
            if reference_work_scale is not None
            else 1.0 / self.scale.reference_scale
        )
        self.num_partitions = num_partitions
        self.workload = PaperWorkload(
            scale=self.scale, num_partitions=num_partitions
        )
        self._catalog_cache: Dict[tuple, Dict] = {}

    # ----------------------------------------------------------------- setup

    def catalog_for(self, datasets: Sequence[str]) -> Dict[str, object]:
        """Build (and cache) the reference datasets a use case needs."""
        key = tuple(sorted(datasets))
        if key not in self._catalog_cache:
            self._catalog_cache[key] = self.workload.build_catalog(list(key))
        # Shallow copy so callers can add their target dataset.
        return dict(self._catalog_cache[key])

    def registry_for(self, catalog: Dict[str, object]) -> FunctionRegistry:
        registry = FunctionRegistry(lambda: set(catalog))
        register_paper_udfs(registry, self.workload.java_resources(catalog))
        return registry

    # ------------------------------------------------------------------- run

    def run_enrichment(
        self,
        use_case: Optional[str],
        tweets: int,
        num_nodes: int,
        batch_size: int = BATCH_16X,
        language: str = "sqlpp",
        framework: Framework = Framework.DYNAMIC,
        balanced_intake: bool = False,
        update_rate: float = 0.0,
        computing_model: ComputingModel = ComputingModel.PER_BATCH,
        predeploy: bool = True,
        decoupled: bool = True,
        stream_memory_budget: Optional[int] = None,
        intake_partitions: int = 1,
        max_subbatch_records: int = 0,
        computing_workers: int = 1,
        state_cache_bytes: int = 0,
    ) -> FeedRunReport:
        """Run one feed configuration and return its report.

        ``use_case=None`` runs the no-UDF basic-ingestion feed (Fig. 24).

        ``intake_partitions > 1`` runs partitioned intake: the tweet
        stream is round-robin pre-split across that many adapters, one
        intake actor each (dynamic framework only).
        ``max_subbatch_records`` caps the records one computing invocation
        handles — oversized batches are split across the worker pool and
        reassembled in order (intra-batch parallelism);
        ``computing_workers`` sizes that (fixed) pool.
        """
        case = USE_CASES[use_case] if use_case else None
        catalog = self.catalog_for(case.datasets if case else [])
        for dataset in catalog.values():
            # quiesce: a previous run's update client must not leak its
            # in-memory LSM activity into this configuration
            dataset.flush_all()
        target = self.workload.enriched_tweets_dataset()
        catalog["EnrichedTweets"] = target
        registry = self.registry_for(catalog)

        functions: List[AttachedFunction] = []
        if case is not None:
            if language == "java":
                if case.java_key is None:
                    raise ValueError(f"{case.key} has no Java implementation")
                functions.append(
                    AttachedFunction(case.java_key, language="java", library="udflib")
                )
            else:
                functions.append(AttachedFunction(case.sqlpp_function))

        feed = FeedDefinition(
            name=f"bench-{use_case or 'plain'}",
            target_dataset="EnrichedTweets",
            datatype=TWEET_TYPE_FULL,
            batch_size=batch_size,
            framework=framework,
            computing_model=computing_model,
            functions=functions,
            balanced_intake=balanced_intake,
        )
        if stream_memory_budget is not None:
            feed.stream_memory_budget = stream_memory_budget
        if (
            intake_partitions > 1
            or max_subbatch_records > 0
            or computing_workers > 1
            or state_cache_bytes > 0
        ):
            from ..ingestion.policy import FeedPolicy

            # FeedPolicy.basic() mirrors the no-policy default, so the
            # scale-out knobs are the only behavioral difference
            feed.policy = FeedPolicy.basic(
                intake_partitions=intake_partitions,
                max_subbatch_records=max_subbatch_records,
                min_computing_workers=computing_workers,
                max_computing_workers=computing_workers,
                state_cache_bytes=state_cache_bytes,
            )
        # Charge reference-data work at the harness's configured scale
        # (by default: as if the datasets were at paper cardinality).
        feed.reference_work_scale = self.reference_work_scale

        cluster = Cluster(num_nodes)
        if intake_partitions > 1:
            # round-robin pre-split of the deterministic tweet stream:
            # partition p streams tweets p, p+N, p+2N, ... — the union is
            # exactly the single-adapter stream
            raw = list(self.workload.tweet_generator.raw_json(tweets))
            adapter = [
                GeneratorAdapter(iter(raw[p::intake_partitions]))
                for p in range(intake_partitions)
            ]
        else:
            adapter = GeneratorAdapter(
                self.workload.tweet_generator.raw_json(tweets)
            )

        update_client = None
        if update_rate > 0 and case is not None and case.update_dataset:
            ref = catalog[case.update_dataset]
            update_client = ReferenceUpdateClient(
                update_rate,
                self.workload.update_stream(case.update_dataset),
                ref.upsert,
            )

        if framework is Framework.STATIC:
            pipeline = StaticIngestionPipeline(cluster, catalog, registry)
            report = pipeline.run(feed, adapter)
        else:
            pipeline = DynamicIngestionPipeline(cluster, catalog, registry)
            report = pipeline.run(
                feed,
                adapter,
                update_client=update_client,
                predeploy=predeploy,
                decoupled=decoupled,
            )
        if update_client is not None:
            report.extra["updates_applied"] = float(update_client.applied)
        return report


# ------------------------------------------------------------------ printing


def format_table(title: str, headers: List[str], rows: List[List]) -> str:
    """Render a paper-style ASCII results table."""
    out = [title]
    cells = [headers] + [[_fmt(value) for value in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    line = "  ".join("-" * w for w in widths)
    out.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append(line)
    for row in cells[1:]:
        out.append("  ".join(value.rjust(w) for value, w in zip(row, widths)))
    return "\n".join(out)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value >= 100:
            return f"{value:,.0f}"
        if value >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)
