"""Key-skew x update-rate sweep for the key-level enrichment memo.

A hash-join enrichment feed (tweets joined to ``SafetyRatings`` on
``county``) runs with the cross-batch enrichment memo off and on across
two key-distribution profiles:

* **high_skew** — a small county pool, so the same probe keys recur in
  every batch.  After the cold first batch the memo serves whole batches
  without touching (or even building) the reference hash table; the memo
  must win by at least :data:`SIM_WIN_FLOOR` in simulated computing cost
  at update rate 0 and by :data:`WALLCLOCK_FLOOR` in wall clock;
* **all_unique** — every record probes a distinct key, so the memo can
  never hit.  The memo-on run must be *exact* parity (1.00x simulated
  cost, byte-identical stored output) — the miss path charges precisely
  what the unmemoized path charges.

The update-rate axis reuses :class:`~repro.bench.updates.\
BatchScheduledUpdates` so memo-on and memo-off runs see the identical
upsert schedule (pure function of the batch index): version bumps land
between batch boundaries, displacing memo entries and degrading the win
gracefully toward the per-batch baseline.

At **every** sweep point — including a 4-worker computing pool and a
4-partition intake — stored output is byte-identical memo-on vs.
memo-off: the memo changes cost, never results.

Results go to ``BENCH_memo.json`` at the repo root;
``benchmarks/results/`` stays reserved for the paper-figure tables.
"""

from __future__ import annotations

import hashlib
import json
import time
from typing import Dict, List, Optional, Sequence

from ..core.system import AsterixLite
from ..ingestion.adapter import GeneratorAdapter
from ..ingestion.feed import AttachedFunction, FeedDefinition
from ..ingestion.pipelines import DynamicIngestionPipeline
from ..ingestion.policy import FeedPolicy
from ..ingestion.updates import ReferenceUpdateClient
from .updates import BatchScheduledUpdates, NOMINAL_BATCH_SECONDS

FEED = "MemoSweepFeed"
DATASET = "EnrichedTweets"
REFERENCE = "SafetyRatings"
UPDATE_RATES = (0.0, 1.0, 10.0, 100.0)
SIM_WIN_FLOOR = 2.0  # acceptance: memo-on computing win, high skew, rate 0
WALLCLOCK_FLOOR = 1.3  # wall-clock win, high skew, rate 0 (full mode only)
PARITY_EPSILON = 1e-9  # all-unique keys: memo-on must cost *exactly* parity
MEMO_BUDGET = 32 << 20


def _raw_tweets(count: int, counties: int) -> List[str]:
    """``counties == count`` gives the all-unique profile (no key recurs)."""
    return [
        json.dumps(
            {"id": i, "text": f"tweet {i}", "county": f"county{i % counties}"}
        )
        for i in range(count)
    ]


def _update_stream(counties: int):
    i = 0
    while True:
        county = i % counties
        yield {
            "sid": county,
            "county": f"county{county}",
            "rating": (17 * (i + 3)) % 100,
        }
        i += 1


def _build_system(ref_records: int, counties: int) -> AsterixLite:
    system = AsterixLite(num_nodes=4)
    system.execute(
        """
        CREATE TYPE TweetType AS OPEN { id: int64, text: string };
        CREATE DATASET EnrichedTweets(TweetType) PRIMARY KEY id;
        CREATE TYPE RatingType AS OPEN { sid: int64 };
        CREATE DATASET SafetyRatings(RatingType) PRIMARY KEY sid;
        """
    )
    system.insert(
        REFERENCE,
        [
            {
                "sid": i,
                "county": f"county{i % counties}",
                "rating": (13 * i) % 100,
            }
            for i in range(ref_records)
        ],
    )
    system.catalog[REFERENCE].flush_all()
    system.execute(
        """
        CREATE FUNCTION enrichSafety(t) {
            LET ratings = (SELECT VALUE s.rating FROM SafetyRatings s
                           WHERE s.county = t.county)
            SELECT t.*, ratings AS safety
        };
        """
    )
    return system


def _run_once(
    memo_on: bool,
    rate: float,
    ref_records: int,
    counties: int,
    tweets: int,
    batch_size: int,
    work_scale: float,
    policy_overrides: Optional[Dict] = None,
):
    """One sweep cell; returns (report, output_sha256, wall_seconds)."""
    system = _build_system(ref_records, counties)
    policy = FeedPolicy.basic(
        enrichment_memo_bytes=MEMO_BUDGET if memo_on else 0,
        **(policy_overrides or {}),
    )
    feed = FeedDefinition(
        name=FEED,
        target_dataset=DATASET,
        datatype=system.types.get("TweetType"),
        batch_size=batch_size,
        functions=[AttachedFunction("enrichSafety")],
        policy=policy,
    )
    feed.reference_work_scale = work_scale
    update_client = None
    if rate > 0:
        update_client = BatchScheduledUpdates(
            ReferenceUpdateClient(
                rate, _update_stream(counties), system.catalog[REFERENCE].upsert
            ),
            NOMINAL_BATCH_SECONDS,
        )
    pipeline = DynamicIngestionPipeline(
        system.cluster, system.catalog, system.registry, afm=system.afm
    )
    raw = _raw_tweets(tweets, counties)
    if policy.intake_partitions > 1:
        # round-robin pre-split: partition p streams tweets p, p+N, ... —
        # the union is exactly the single-adapter stream
        adapter = [
            GeneratorAdapter(iter(raw[p :: policy.intake_partitions]))
            for p in range(policy.intake_partitions)
        ]
    else:
        adapter = GeneratorAdapter(raw)
    started = time.perf_counter()
    report = pipeline.run(feed, adapter, update_client=update_client)
    wall = time.perf_counter() - started
    stored = sorted(
        (r["id"], tuple(r.get("safety") or ()))
        for r in system.catalog[DATASET].scan()
    )
    digest = hashlib.sha256(
        json.dumps(stored, sort_keys=True).encode()
    ).hexdigest()
    return report, digest, wall


def _summarize(report, digest: str, wall: float) -> Dict:
    return {
        "computing_seconds": report.computing_seconds,
        "simulated_seconds": report.simulated_seconds,
        "throughput_records_per_sim_second": report.throughput,
        "records_stored": report.records_stored,
        "memo_hits": report.memo_hits,
        "memo_misses": report.memo_misses,
        "memo_evictions": report.memo_evictions,
        "memo_bytes": report.memo_bytes,
        "output_sha256": digest,
        "wall_seconds": wall,
    }


def _cell(off, on) -> Dict:
    off_report, off_digest, off_wall = off
    on_report, on_digest, on_wall = on
    win = (
        off_report.computing_seconds / on_report.computing_seconds
        if on_report.computing_seconds > 0
        else 0.0
    )
    return {
        "memo_off": _summarize(off_report, off_digest, off_wall),
        "memo_on": _summarize(on_report, on_digest, on_wall),
        "computing_seconds_win": win,
        "output_hashes_equal": off_digest == on_digest,
    }


def run_memo_sweep(
    ref_records: int = 20000,
    high_skew_counties: int = 8,
    tweets: int = 3000,
    batch_size: int = 100,
    work_scale: float = 30.0,
    rates: Sequence[float] = UPDATE_RATES,
    wallclock_repeats: int = 3,
    check_wallclock: bool = True,
) -> Dict:
    """Run the memo-off/memo-on sweep; returns the results + gate verdicts."""
    results: Dict = {
        "ref_records": ref_records,
        "high_skew_counties": high_skew_counties,
        "tweets": tweets,
        "batch_size": batch_size,
        "reference_work_scale": work_scale,
        "memo_budget_bytes": MEMO_BUDGET,
        "sim_win_floor": SIM_WIN_FLOOR,
        "wallclock_floor": WALLCLOCK_FLOOR,
        "profiles": {},
    }

    def sweep(counties: int, profile_rates: Sequence[float]) -> Dict:
        cells = {}
        for rate in profile_rates:
            off = _run_once(
                False, rate, ref_records, counties, tweets, batch_size,
                work_scale,
            )
            on = _run_once(
                True, rate, ref_records, counties, tweets, batch_size,
                work_scale,
            )
            cells[str(rate)] = _cell(off, on)
        return cells

    # High skew: the memo's home turf, swept over the update-rate axis.
    high = sweep(high_skew_counties, rates)
    results["profiles"]["high_skew"] = {"counties": high_skew_counties, "rates": high}
    # All-unique: every record probes a fresh key; rate axis adds nothing
    # (there is no reuse to displace), so only rate 0 runs.
    unique = sweep(tweets, (0.0,))
    results["profiles"]["all_unique"] = {"counties": tweets, "rates": unique}

    # Byte-identity must also survive the concurrent shapes: a 4-worker
    # computing pool and a 4-partition intake (high skew, rate 0).
    shapes = {
        "workers_4": dict(min_computing_workers=4, max_computing_workers=4),
        "intake_partitions_4": dict(intake_partitions=4),
    }
    results["shapes"] = {}
    for name, overrides in shapes.items():
        off = _run_once(
            False, 0.0, ref_records, high_skew_counties, tweets, batch_size,
            work_scale, policy_overrides=overrides,
        )
        on = _run_once(
            True, 0.0, ref_records, high_skew_counties, tweets, batch_size,
            work_scale, policy_overrides=overrides,
        )
        results["shapes"][name] = _cell(off, on)

    # Wall clock, high skew at rate 0: best of N repeats per configuration
    # (simulated numbers are deterministic; only wall clock is noisy).
    wall_ratio: Optional[float] = None
    if check_wallclock:
        best = {False: float("inf"), True: float("inf")}
        for memo_on in (False, True):
            for _ in range(max(1, wallclock_repeats)):
                _r, _d, wall = _run_once(
                    memo_on, 0.0, ref_records, high_skew_counties, tweets,
                    batch_size, work_scale,
                )
                best[memo_on] = min(best[memo_on], wall)
        wall_ratio = best[False] / best[True] if best[True] > 0 else 0.0
        results["wallclock_high_skew_rate0"] = {
            "memo_off_best_seconds": best[False],
            "memo_on_best_seconds": best[True],
            "ratio": wall_ratio,
            "floor": WALLCLOCK_FLOOR,
            "repeats": wallclock_repeats,
        }

    wins = [high[str(rate)]["computing_seconds_win"] for rate in rates]
    unique_cell = unique["0.0"]
    every_cell = (
        list(high.values()) + list(unique.values())
        + list(results["shapes"].values())
    )
    checks = {
        "sim_win_high_skew_rate0_reaches_floor": wins[0] >= SIM_WIN_FLOOR,
        "win_degrades_with_update_rate": all(
            wins[i] >= wins[i + 1] - 0.05 for i in range(len(wins) - 1)
        ),
        "exact_parity_at_all_unique_keys": (
            abs(unique_cell["computing_seconds_win"] - 1.0) <= PARITY_EPSILON
            and unique_cell["memo_on"]["memo_hits"] == 0
        ),
        "output_hashes_equal_everywhere": all(
            cell["output_hashes_equal"] for cell in every_cell
        ),
        "memo_hits_observed_at_high_skew": (
            high[str(rates[0])]["memo_on"]["memo_hits"] > 0
        ),
        "memo_inert_when_disabled": all(
            cell["memo_off"]["memo_hits"] == 0
            and cell["memo_off"]["memo_misses"] == 0
            for cell in every_cell
        ),
    }
    if wall_ratio is not None:
        checks["wallclock_win_high_skew_rate0"] = wall_ratio >= WALLCLOCK_FLOOR
    results["wins"] = wins
    results["checks"] = checks
    results["ok"] = all(checks.values())
    return results
