"""Runtime value classes for the non-JSON ADM primitives.

Plain JSON values (int, float, str, bool, None, list, dict) are represented
by their Python equivalents; the extended ADM primitives — datetimes,
durations, and the spatial types — get small immutable wrapper classes so
they can be distinguished, compared, and serialized.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from functools import total_ordering

from ..errors import AdmParseError


class _Missing:
    """Singleton marking an absent field (distinct from null).

    SQL++ distinguishes ``MISSING`` (the field is not there) from ``NULL``
    (the field is there with no value).  Comparisons and arithmetic on
    MISSING propagate MISSING; in a WHERE clause MISSING is falsy.
    """

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self):
        return "MISSING"

    def __bool__(self):
        return False


MISSING = _Missing()


_DATETIME_RE = re.compile(
    r"^(\d{4})-(\d{2})-(\d{2})T(\d{2}):(\d{2}):(\d{2})(?:\.(\d{1,3}))?Z?$"
)
_DAYS_PER_MONTH = (31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31)


def _is_leap(year: int) -> bool:
    return year % 4 == 0 and (year % 100 != 0 or year % 400 == 0)


def _days_in_month(year: int, month: int) -> int:
    if month == 2 and _is_leap(year):
        return 29
    return _DAYS_PER_MONTH[month - 1]


def _days_from_civil(year: int, month: int, day: int) -> int:
    """Days since 1970-01-01 (Howard Hinnant's algorithm)."""
    year -= month <= 2
    era = (year if year >= 0 else year - 399) // 400
    yoe = year - era * 400
    doy = (153 * (month + (-3 if month > 2 else 9)) + 2) // 5 + day - 1
    doe = yoe * 365 + yoe // 4 - yoe // 100 + doy
    return era * 146097 + doe - 719468


def _civil_from_days(days: int):
    era = (days + 719468 if days >= -719468 else days + 719468 - 146096) // 146097
    doe = days + 719468 - era * 146097
    yoe = (doe - doe // 1460 + doe // 36524 - doe // 146096) // 365
    year = yoe + era * 400
    doy = doe - (365 * yoe + yoe // 4 - yoe // 100)
    mp = (5 * doy + 2) // 153
    day = doy - (153 * mp + 2) // 5 + 1
    month = mp + (3 if mp < 10 else -9)
    return year + (month <= 2), month, day


@total_ordering
@dataclass(frozen=True)
class DateTime:
    """An ADM datetime, stored as milliseconds since the Unix epoch."""

    epoch_millis: int

    @classmethod
    def parse(cls, text: str) -> "DateTime":
        match = _DATETIME_RE.match(text.strip())
        if not match:
            raise AdmParseError(f"invalid datetime literal: {text!r}")
        year, month, day, hour, minute, second = (int(g) for g in match.groups()[:6])
        frac = match.group(7)
        millis = int(frac.ljust(3, "0")) if frac else 0
        if not (1 <= month <= 12):
            raise AdmParseError(f"invalid month in datetime: {text!r}")
        if not (1 <= day <= _days_in_month(year, month)):
            raise AdmParseError(f"invalid day in datetime: {text!r}")
        if hour > 23 or minute > 59 or second > 59:
            raise AdmParseError(f"invalid time in datetime: {text!r}")
        days = _days_from_civil(year, month, day)
        total = ((days * 24 + hour) * 60 + minute) * 60 + second
        return cls(total * 1000 + millis)

    @classmethod
    def of(cls, year, month, day, hour=0, minute=0, second=0, millis=0):
        days = _days_from_civil(year, month, day)
        total = ((days * 24 + hour) * 60 + minute) * 60 + second
        return cls(total * 1000 + millis)

    def components(self):
        """Return (year, month, day, hour, minute, second, millis)."""
        millis = self.epoch_millis % 1000
        seconds = self.epoch_millis // 1000
        days, rem = divmod(seconds, 86400)
        hour, rem = divmod(rem, 3600)
        minute, second = divmod(rem, 60)
        year, month, day = _civil_from_days(days)
        return year, month, day, hour, minute, second, millis

    def add(self, duration: "Duration") -> "DateTime":
        """Add a duration; month arithmetic clamps to end-of-month."""
        year, month, day, hour, minute, second, millis = self.components()
        total_months = (year * 12 + (month - 1)) + duration.months
        year, month = divmod(total_months, 12)
        month += 1
        day = min(day, _days_in_month(year, month))
        base = DateTime.of(year, month, day, hour, minute, second, millis)
        return DateTime(base.epoch_millis + duration.millis)

    def __lt__(self, other):
        if not isinstance(other, DateTime):
            return NotImplemented
        return self.epoch_millis < other.epoch_millis

    def isoformat(self) -> str:
        year, month, day, hour, minute, second, millis = self.components()
        base = f"{year:04d}-{month:02d}-{day:02d}T{hour:02d}:{minute:02d}:{second:02d}"
        if millis:
            base += f".{millis:03d}"
        return base + "Z"

    def __repr__(self):
        return f"datetime('{self.isoformat()}')"


_DURATION_RE = re.compile(
    r"^P(?:(\d+)Y)?(?:(\d+)M)?(?:(\d+)D)?"
    r"(?:T(?:(\d+)H)?(?:(\d+)M)?(?:(\d+(?:\.\d+)?)S)?)?$"
)


@dataclass(frozen=True)
class Duration:
    """An ADM duration: a month component plus a millisecond component.

    ISO-8601 style, e.g. ``P2M`` (two months) or ``PT30S`` (thirty seconds).
    Month-based and millisecond-based parts are kept separate because months
    have variable length.
    """

    months: int = 0
    millis: int = 0

    @classmethod
    def parse(cls, text: str) -> "Duration":
        text = text.strip()
        match = _DURATION_RE.match(text)
        if not match or text == "P":
            raise AdmParseError(f"invalid duration literal: {text!r}")
        years, months, days, hours, minutes, seconds = match.groups()
        if not any((years, months, days, hours, minutes, seconds)):
            raise AdmParseError(f"invalid duration literal: {text!r}")
        total_months = int(years or 0) * 12 + int(months or 0)
        total_millis = (
            int(days or 0) * 86400000
            + int(hours or 0) * 3600000
            + int(minutes or 0) * 60000
            + int(round(float(seconds or 0) * 1000))
        )
        return cls(total_months, total_millis)

    def __repr__(self):
        return f"duration(months={self.months}, millis={self.millis})"


@dataclass(frozen=True)
class Point:
    """A 2-D point (longitude/latitude or generic x/y)."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)

    def __repr__(self):
        return f"point({self.x}, {self.y})"


@dataclass(frozen=True)
class Rectangle:
    """An axis-aligned rectangle defined by two corner points."""

    x1: float
    y1: float
    x2: float
    y2: float

    def __post_init__(self):
        if self.x1 > self.x2 or self.y1 > self.y2:
            x_low, x_high = min(self.x1, self.x2), max(self.x1, self.x2)
            y_low, y_high = min(self.y1, self.y2), max(self.y1, self.y2)
            object.__setattr__(self, "x1", x_low)
            object.__setattr__(self, "x2", x_high)
            object.__setattr__(self, "y1", y_low)
            object.__setattr__(self, "y2", y_high)

    def contains_point(self, p: Point) -> bool:
        return self.x1 <= p.x <= self.x2 and self.y1 <= p.y <= self.y2

    def intersects(self, other: "Rectangle") -> bool:
        return not (
            other.x1 > self.x2
            or other.x2 < self.x1
            or other.y1 > self.y2
            or other.y2 < self.y1
        )

    @property
    def mbr(self) -> "Rectangle":
        return self

    def __repr__(self):
        return f"rectangle({self.x1},{self.y1} {self.x2},{self.y2})"


@dataclass(frozen=True)
class Circle:
    """A circle with a center point and radius."""

    center: Point
    radius: float

    def contains_point(self, p: Point) -> bool:
        return self.center.distance_to(p) <= self.radius

    def intersects_circle(self, other: "Circle") -> bool:
        return self.center.distance_to(other.center) <= self.radius + other.radius

    def intersects_rectangle(self, rect: Rectangle) -> bool:
        nearest_x = min(max(self.center.x, rect.x1), rect.x2)
        nearest_y = min(max(self.center.y, rect.y1), rect.y2)
        return self.center.distance_to(Point(nearest_x, nearest_y)) <= self.radius

    @property
    def mbr(self) -> Rectangle:
        return Rectangle(
            self.center.x - self.radius,
            self.center.y - self.radius,
            self.center.x + self.radius,
            self.center.y + self.radius,
        )

    def __repr__(self):
        return f"circle({self.center!r}, r={self.radius})"


def spatial_intersect(a, b) -> bool:
    """Geometric intersection across point/rectangle/circle combinations.

    The ADM ``spatial_intersect`` builtin accepts any pair of spatial values.
    """
    if isinstance(a, Point) and isinstance(b, Point):
        return a == b
    if isinstance(a, Point):
        return spatial_intersect(b, a)
    if isinstance(a, Rectangle):
        if isinstance(b, Point):
            return a.contains_point(b)
        if isinstance(b, Rectangle):
            return a.intersects(b)
        if isinstance(b, Circle):
            return b.intersects_rectangle(a)
    if isinstance(a, Circle):
        if isinstance(b, Point):
            return a.contains_point(b)
        if isinstance(b, Rectangle):
            return a.intersects_rectangle(b)
        if isinstance(b, Circle):
            return a.intersects_circle(b)
    raise AdmParseError(
        f"spatial_intersect: unsupported operand types "
        f"({type(a).__name__}, {type(b).__name__})"
    )
