"""Parsing raw ingested bytes/text into ADM records, and serializing back.

This is the feed *parser* role from the paper: the adapter hands over raw
bytes, the parser produces typed ADM records.  JSON is the wire format; the
parser optionally coerces string-encoded extended values (datetimes, points)
into their ADM wrapper classes based on the target datatype.
"""

from __future__ import annotations

import json
from typing import Iterable, Iterator, Optional

from ..errors import AdmParseError
from .types import Datatype, FieldType, TypeTag
from .values import Circle, DateTime, Duration, Point, Rectangle


def parse_json(text: str, datatype: Optional[Datatype] = None) -> dict:
    """Parse one JSON object into an ADM record.

    If ``datatype`` is given, string-encoded extended fields declared in the
    type (datetime, duration, point...) are coerced, and the record is
    validated against the type.
    """
    try:
        raw = json.loads(text)
    except json.JSONDecodeError as exc:
        raise AdmParseError(f"malformed JSON: {exc}") from exc
    if not isinstance(raw, dict):
        raise AdmParseError(
            f"expected a JSON object record, got {type(raw).__name__}"
        )
    if datatype is not None:
        raw = coerce_record(raw, datatype)
        datatype.validate(raw)
    return raw


def parse_json_lines(
    lines: Iterable[str], datatype: Optional[Datatype] = None
) -> Iterator[dict]:
    """Parse newline-delimited JSON records, skipping blank lines."""
    for line in lines:
        line = line.strip()
        if line:
            yield parse_json(line, datatype)


def coerce_record(record: dict, datatype: Datatype) -> dict:
    """Coerce string/array-encoded extended values using declared types."""
    out = dict(record)
    for fname, ftype in datatype.fields.items():
        if fname in out and out[fname] is not None:
            out[fname] = _coerce_value(out[fname], ftype)
    return out


def _coerce_value(value, ftype: FieldType):
    tag = ftype.tag
    if tag is TypeTag.DATETIME and isinstance(value, str):
        return DateTime.parse(value)
    if tag is TypeTag.DURATION and isinstance(value, str):
        return Duration.parse(value)
    if tag is TypeTag.POINT and isinstance(value, (list, tuple)) and len(value) == 2:
        return Point(float(value[0]), float(value[1]))
    if (
        tag is TypeTag.RECTANGLE
        and isinstance(value, (list, tuple))
        and len(value) == 4
    ):
        return Rectangle(*(float(v) for v in value))
    if tag is TypeTag.CIRCLE and isinstance(value, (list, tuple)) and len(value) == 3:
        return Circle(Point(float(value[0]), float(value[1])), float(value[2]))
    if tag is TypeTag.DOUBLE and isinstance(value, int):
        return float(value)
    if tag is TypeTag.ARRAY and isinstance(value, list) and ftype.item is not None:
        return [_coerce_value(v, ftype.item) for v in value]
    if (
        tag is TypeTag.OBJECT
        and isinstance(value, dict)
        and ftype.object_type is not None
    ):
        return coerce_record(value, ftype.object_type)
    return value


class _AdmEncoder(json.JSONEncoder):
    def default(self, o):
        if isinstance(o, DateTime):
            return o.isoformat()
        if isinstance(o, Duration):
            return f"P{o.months}M" if not o.millis else repr(o)
        if isinstance(o, Point):
            return [o.x, o.y]
        if isinstance(o, Rectangle):
            return [o.x1, o.y1, o.x2, o.y2]
        if isinstance(o, Circle):
            return [o.center.x, o.center.y, o.radius]
        return super().default(o)


def serialize(record) -> str:
    """Serialize an ADM record back to JSON text."""
    return json.dumps(record, cls=_AdmEncoder, separators=(",", ":"))


def record_size_bytes(record) -> int:
    """Approximate wire size of a record (used by workload calibration)."""
    return len(serialize(record).encode("utf-8"))
