"""ADM — the AsterixDB Data Model substrate.

A superset of JSON with int64, datetime, duration, and spatial primitives,
plus open/closed record datatypes (Section 2.1 of the paper).
"""

from .parser import (
    coerce_record,
    parse_json,
    parse_json_lines,
    record_size_bytes,
    serialize,
)
from .schema import (
    closed_type,
    field_path,
    make_type,
    open_type,
    primary_key_of,
    set_field_path,
    split_path,
)
from .types import Datatype, FieldType, TypeTag, tag_of
from .values import (
    MISSING,
    Circle,
    DateTime,
    Duration,
    Point,
    Rectangle,
    spatial_intersect,
)

__all__ = [
    "MISSING",
    "Circle",
    "DateTime",
    "Datatype",
    "Duration",
    "FieldType",
    "Point",
    "Rectangle",
    "TypeTag",
    "closed_type",
    "coerce_record",
    "field_path",
    "make_type",
    "open_type",
    "parse_json",
    "parse_json_lines",
    "primary_key_of",
    "record_size_bytes",
    "serialize",
    "set_field_path",
    "spatial_intersect",
    "split_path",
    "tag_of",
]
