"""The AsterixDB Data Model (ADM) type system.

ADM is a superset of JSON: in addition to the JSON scalar types it has
64-bit integers, datetimes, durations, and spatial primitives (point,
rectangle, circle).  A :class:`Datatype` describes the known aspects of the
records stored in a dataset; an *open* datatype only constrains the declared
fields and admits arbitrary additional ones, a *closed* datatype rejects
undeclared fields.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..errors import AdmTypeError


class TypeTag(enum.Enum):
    """Tags for every primitive and structured ADM type."""

    NULL = "null"
    MISSING = "missing"
    BOOLEAN = "boolean"
    INT64 = "int64"
    DOUBLE = "double"
    STRING = "string"
    DATETIME = "datetime"
    DURATION = "duration"
    POINT = "point"
    RECTANGLE = "rectangle"
    CIRCLE = "circle"
    ARRAY = "array"
    OBJECT = "object"
    ANY = "any"


_SCALAR_TAGS = frozenset(
    {
        TypeTag.NULL,
        TypeTag.BOOLEAN,
        TypeTag.INT64,
        TypeTag.DOUBLE,
        TypeTag.STRING,
        TypeTag.DATETIME,
        TypeTag.DURATION,
        TypeTag.POINT,
        TypeTag.RECTANGLE,
        TypeTag.CIRCLE,
    }
)


@dataclass(frozen=True)
class FieldType:
    """The type of a single declared field.

    ``optional`` fields may be absent (or null) in a conforming record.
    ``item`` is the element type for arrays; ``object_type`` names a nested
    datatype for OBJECT fields.
    """

    tag: TypeTag
    optional: bool = False
    item: Optional["FieldType"] = None
    object_type: Optional["Datatype"] = None

    def describe(self) -> str:
        base = self.tag.value
        if self.tag is TypeTag.ARRAY and self.item is not None:
            base = f"[{self.item.describe()}]"
        if self.optional:
            base += "?"
        return base


@dataclass
class Datatype:
    """A named record type, open or closed.

    Mirrors ``CREATE TYPE name AS OPEN { ... }`` in AsterixDB.  ``fields``
    maps declared field names to their :class:`FieldType`.
    """

    name: str
    fields: Dict[str, FieldType] = field(default_factory=dict)
    is_open: bool = True

    def declared(self, field_name: str) -> bool:
        return field_name in self.fields

    def validate(self, record: dict) -> None:
        """Raise :class:`AdmTypeError` if ``record`` does not conform."""
        if not isinstance(record, dict):
            raise AdmTypeError(
                f"type {self.name}: expected an object, got {type(record).__name__}"
            )
        for fname, ftype in self.fields.items():
            if fname not in record or record[fname] is None:
                if ftype.optional:
                    continue
                raise AdmTypeError(
                    f"type {self.name}: missing required field {fname!r}"
                )
            _validate_value(record[fname], ftype, self.name, fname)
        if not self.is_open:
            extra = set(record) - set(self.fields)
            if extra:
                raise AdmTypeError(
                    f"closed type {self.name}: undeclared fields {sorted(extra)}"
                )

    def conforms(self, record: dict) -> bool:
        """Return True if ``record`` validates, False otherwise."""
        try:
            self.validate(record)
        except AdmTypeError:
            return False
        return True


def _validate_value(value, ftype: FieldType, type_name: str, fname: str) -> None:
    from .values import Circle, DateTime, Duration, Point, Rectangle

    tag = ftype.tag
    ok = True
    if tag is TypeTag.ANY:
        ok = True
    elif tag is TypeTag.INT64:
        ok = isinstance(value, int) and not isinstance(value, bool)
        if ok and not (-(2**63) <= value < 2**63):
            raise AdmTypeError(
                f"type {type_name}.{fname}: int64 out of range: {value}"
            )
    elif tag is TypeTag.DOUBLE:
        ok = isinstance(value, (int, float)) and not isinstance(value, bool)
    elif tag is TypeTag.STRING:
        ok = isinstance(value, str)
    elif tag is TypeTag.BOOLEAN:
        ok = isinstance(value, bool)
    elif tag is TypeTag.DATETIME:
        ok = isinstance(value, DateTime)
    elif tag is TypeTag.DURATION:
        ok = isinstance(value, Duration)
    elif tag is TypeTag.POINT:
        ok = isinstance(value, Point)
    elif tag is TypeTag.RECTANGLE:
        ok = isinstance(value, Rectangle)
    elif tag is TypeTag.CIRCLE:
        ok = isinstance(value, Circle)
    elif tag is TypeTag.NULL:
        ok = value is None
    elif tag is TypeTag.ARRAY:
        ok = isinstance(value, list)
        if ok and ftype.item is not None:
            for i, element in enumerate(value):
                _validate_value(element, ftype.item, type_name, f"{fname}[{i}]")
    elif tag is TypeTag.OBJECT:
        ok = isinstance(value, dict)
        if ok and ftype.object_type is not None:
            ftype.object_type.validate(value)
    if not ok:
        raise AdmTypeError(
            f"type {type_name}.{fname}: expected {ftype.describe()}, "
            f"got {type(value).__name__} ({value!r})"
        )


def tag_of(value) -> TypeTag:
    """Return the runtime :class:`TypeTag` of a Python-represented ADM value."""
    from .values import MISSING, Circle, DateTime, Duration, Point, Rectangle

    if value is MISSING:
        return TypeTag.MISSING
    if value is None:
        return TypeTag.NULL
    if isinstance(value, bool):
        return TypeTag.BOOLEAN
    if isinstance(value, int):
        return TypeTag.INT64
    if isinstance(value, float):
        return TypeTag.DOUBLE
    if isinstance(value, str):
        return TypeTag.STRING
    if isinstance(value, DateTime):
        return TypeTag.DATETIME
    if isinstance(value, Duration):
        return TypeTag.DURATION
    if isinstance(value, Point):
        return TypeTag.POINT
    if isinstance(value, Rectangle):
        return TypeTag.RECTANGLE
    if isinstance(value, Circle):
        return TypeTag.CIRCLE
    if isinstance(value, list):
        return TypeTag.ARRAY
    if isinstance(value, dict):
        return TypeTag.OBJECT
    raise AdmTypeError(f"value {value!r} has no ADM type")


def is_scalar_tag(tag: TypeTag) -> bool:
    return tag in _SCALAR_TAGS
