"""Schema helpers: a small DDL-ish builder API plus field-path access.

``field_path`` is the workhorse used across the query engine and index
maintenance: it navigates dotted paths (``user.screen_name``) through nested
objects, yielding MISSING when a step is absent — matching SQL++ semantics.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple, Union

from .types import Datatype, FieldType, TypeTag
from .values import MISSING

_TAG_BY_NAME = {t.value: t for t in TypeTag}
_TAG_ALIASES = {
    "int": TypeTag.INT64,
    "int64": TypeTag.INT64,
    "bigint": TypeTag.INT64,
    "float": TypeTag.DOUBLE,
    "double": TypeTag.DOUBLE,
    "bool": TypeTag.BOOLEAN,
    "text": TypeTag.STRING,
}


def resolve_tag(name: str) -> TypeTag:
    key = name.strip().lower()
    if key in _TAG_ALIASES:
        return _TAG_ALIASES[key]
    if key in _TAG_BY_NAME:
        return _TAG_BY_NAME[key]
    raise KeyError(f"unknown ADM type name: {name!r}")


def make_type(
    name: str,
    fields: Dict[str, Union[str, FieldType]],
    open: bool = True,  # noqa: A002 - mirrors AsterixDB "OPEN" keyword
) -> Datatype:
    """Build a :class:`Datatype` from a name->type-name mapping.

    Type names accept a trailing ``?`` for optional fields and ``[...]`` for
    arrays, e.g. ``{"id": "int64", "tags": "[string]", "geo": "point?"}``.
    """
    resolved: Dict[str, FieldType] = {}
    for fname, spec in fields.items():
        if isinstance(spec, FieldType):
            resolved[fname] = spec
        else:
            resolved[fname] = parse_field_spec(spec)
    return Datatype(name=name, fields=resolved, is_open=open)


def parse_field_spec(spec: str) -> FieldType:
    spec = spec.strip()
    optional = spec.endswith("?")
    if optional:
        spec = spec[:-1].strip()
    if spec.startswith("[") and spec.endswith("]"):
        inner = parse_field_spec(spec[1:-1])
        return FieldType(TypeTag.ARRAY, optional=optional, item=inner)
    return FieldType(resolve_tag(spec), optional=optional)


PathLike = Union[str, Sequence[str]]


def split_path(path: PathLike) -> Tuple[str, ...]:
    if isinstance(path, str):
        return tuple(path.split("."))
    return tuple(path)


def field_path(record, path: PathLike):
    """Navigate a dotted path through a record; absent steps yield MISSING."""
    current = record
    for step in split_path(path):
        if isinstance(current, dict):
            if step in current:
                current = current[step]
            else:
                return MISSING
        else:
            return MISSING
    return current


def set_field_path(record: dict, path: PathLike, value) -> None:
    """Set a (possibly nested) field, creating intermediate objects."""
    steps = split_path(path)
    current = record
    for step in steps[:-1]:
        nxt = current.get(step)
        if not isinstance(nxt, dict):
            nxt = {}
            current[step] = nxt
        current = nxt
    current[steps[-1]] = value


def primary_key_of(record: dict, key_path: PathLike):
    """Extract the primary key; raises if the key is missing."""
    value = field_path(record, key_path)
    if value is MISSING or value is None:
        from ..errors import AdmTypeError

        raise AdmTypeError(f"record has no primary key at path {key_path!r}")
    return value


def open_type(type_name: str, **fields: str) -> Datatype:
    """Shorthand: ``open_type("TweetType", id="int64", text="string")``.

    The first parameter is named ``type_name`` so records may declare a
    field called ``name``.
    """
    return make_type(type_name, fields, open=True)


def closed_type(type_name: str, **fields: str) -> Datatype:
    return make_type(type_name, fields, open=False)
