"""Bounded hand-off points between runtime processes.

Two flavors:

* :class:`Channel` — a generic bounded FIFO of work items (used for the
  computing→storage hand-off: one item per stored batch);
* :class:`IntakeBuffer` — the intake→computing hand-off, layered directly
  on the feed's :class:`~repro.hyracks.partition_holder.PassivePartitionHolder`
  set.  ``put`` *blocks* (accounted as backpressure) when the target
  holder is full — the force-append escape hatch the sequential driver
  used is gone — and ``collect`` assembles balanced batches, waking when
  data arrives, the feed ends, or the producer is stalled and the buffer
  must be drained to make progress.

Both are coroutine-style: ``put``/``get``/``collect`` are generators that
must be driven with ``yield from`` inside a runtime process.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence

from ..errors import PartitionHolderError
from ..hyracks.frame import Frame
from ..hyracks.partition_holder import PassivePartitionHolder
from .kernel import Advance, BLOCKED, IDLE, Runtime, Wait
from .metrics import FaultMetrics

#: congestion reactions an :class:`IntakeBuffer` can apply when a holder
#: is full (the ingestion policy's congestion knob, lowered to strings so
#: the runtime layer stays independent of the ingestion package)
CONGESTION_BLOCK = "block"
CONGESTION_DISCARD = "discard"
CONGESTION_THROTTLE = "throttle"


class _Cancelled:
    """Sentinel: a consumer was retired while waiting for work."""

    def __repr__(self):
        return "<CANCELLED>"


#: returned by :meth:`IntakeBuffer.collect` when the consumer's ``cancel``
#: hook claims it (elastic scale-down) instead of a batch arriving
CANCELLED = _Cancelled()


class Channel:
    """A bounded FIFO of items with blocking put and EOF semantics."""

    def __init__(self, runtime: Runtime, capacity: int, name: str = "channel"):
        if capacity < 1:
            raise ValueError("channel capacity must be >= 1")
        self.runtime = runtime
        self.capacity = capacity
        self.name = name
        self._items: Deque[object] = deque()
        self._eof = False
        self._not_full = runtime.signal(f"{name}.not_full")
        self._not_empty = runtime.signal(f"{name}.not_empty")
        self.stalls = 0  # producer block events (backpressure)
        self.high_water = 0
        self.put_count = 0
        self.send_failures = 0  # injected transient failures (retried)

    def __len__(self) -> int:
        return len(self._items)

    @property
    def eof(self) -> bool:
        return self._eof

    def put(self, item):
        """Coroutine: enqueue ``item``, blocking while the channel is full.

        An installed :class:`~repro.runtime.faults.FaultPlan` can make a
        specific send fail transiently: the sender waits out the retry
        delay (blocked) and the resend succeeds — at-least-once, nothing
        lost.
        """
        if self._eof:
            raise PartitionHolderError(f"channel {self.name} is closed")
        plan = self.runtime.fault_plan
        if plan is not None:
            failure = plan.channel_put_failure(self.name, self.put_count)
            if failure is not None:
                self.send_failures += 1
                if failure.retry_seconds > 0:
                    yield Advance(failure.retry_seconds, state=BLOCKED)
        stalled = False
        while len(self._items) >= self.capacity:
            if not stalled:
                self.stalls += 1
                stalled = True
            yield Wait(self._not_full, state=BLOCKED)
        self._items.append(item)
        self.put_count += 1
        self.high_water = max(self.high_water, len(self._items))
        self._not_empty.notify_all()

    def get(self):
        """Coroutine: dequeue one item; returns ``None`` once drained at EOF."""
        while not self._items:
            if self._eof:
                return None
            yield Wait(self._not_empty, state=IDLE)
        item = self._items.popleft()
        self._not_full.notify_all()
        return item

    def end(self) -> None:
        self._eof = True
        self._not_empty.notify_all()


class IntakeBuffer:
    """The intake→computing hand-off over the feed's passive holders.

    One buffer spans the feed's ``n`` intake partition holders (holder
    ``p`` lives on node ``p``); the producer targets a specific holder and
    the consumer collects record batches balanced across all of them.
    """

    def __init__(
        self,
        runtime: Runtime,
        holders: Sequence[PassivePartitionHolder],
        congestion: str = CONGESTION_BLOCK,
        throttle_seconds: float = 0.01,
        throttle_max_seconds: float = 0.64,
        faults: Optional[FaultMetrics] = None,
    ):
        if congestion not in (
            CONGESTION_BLOCK, CONGESTION_DISCARD, CONGESTION_THROTTLE
        ):
            raise ValueError(f"unknown congestion mode: {congestion!r}")
        self.runtime = runtime
        self.holders = list(holders)
        self.congestion = congestion
        self.throttle_seconds = throttle_seconds
        self.throttle_max_seconds = throttle_max_seconds
        self.faults = faults
        self._data_ready = runtime.signal("intake.data_ready")
        self._space_freed = runtime.signal("intake.space_freed")
        self.stalls = 0  # distinct producer block events
        self.producer_blocked = False

    # --------------------------------------------------------------- producer

    def _wait_out_disconnect(self, holder: PassivePartitionHolder):
        """Coroutine: block while the target holder is disconnected."""
        plan = self.runtime.fault_plan
        if plan is None:
            return
        while True:
            now = self.runtime.clock.now - self.runtime.epoch
            until = plan.holder_disconnected_until(
                holder.holder_id, holder.partition, now
            )
            if until is None:
                return
            if self.faults is not None:
                self.faults.disconnect_waits += 1
            holder.note_disconnected(until - now)
            yield Advance(until - now, state=BLOCKED)

    def put(self, target: int, frame: Frame):
        """Coroutine: offer ``frame`` to holder ``target``; congestion is
        handled per the feed's policy.

        * ``block`` (default) — wait for space, accounted as backpressure;
        * ``discard`` — drop the frame and count it (lossy by contract);
        * ``throttle`` — retry with exponentially growing admission delays
          instead of waiting on the consumer's signal.

        Every failed offer is metered by the holder (``rejected``); block
        durations are charged to the holder's ``blocked_seconds``.  A
        holder disconnected by the fault plan is waited out first.
        """
        holder = self.holders[target]
        yield from self._wait_out_disconnect(holder)
        stalled_at: Optional[float] = None
        delay = self.throttle_seconds
        while not holder.offer(frame):
            if stalled_at is None:
                self.stalls += 1
                stalled_at = self.runtime.clock.now
            if self.congestion == CONGESTION_DISCARD:
                if self.faults is not None:
                    self.faults.frames_dropped += 1
                    self.faults.records_discarded += len(frame)
                self.producer_blocked = False
                return
            self.producer_blocked = True
            if self.congestion == CONGESTION_THROTTLE:
                if self.faults is not None:
                    self.faults.throttle_seconds += delay
                yield Advance(delay, state=BLOCKED)
                delay = min(delay * 2, self.throttle_max_seconds)
            else:
                yield Wait(self._space_freed, state=BLOCKED)
        if stalled_at is not None:
            holder.note_blocked(self.runtime.clock.now - stalled_at)
        self.producer_blocked = False
        self._data_ready.notify_all()

    def end(self) -> None:
        for holder in self.holders:
            holder.end()
        self._data_ready.notify_all()

    def kick(self) -> None:
        """Wake every waiting consumer so cancel hooks are re-checked."""
        self._data_ready.notify_all()

    # --------------------------------------------------------------- consumer

    @property
    def queued_records(self) -> int:
        return sum(holder.queued_records for holder in self.holders)

    @property
    def queued_frames(self) -> int:
        return sum(len(holder) for holder in self.holders)

    @property
    def capacity_frames(self) -> int:
        return sum(holder.capacity for holder in self.holders)

    @property
    def occupancy(self) -> float:
        """Queued fraction of the buffer's total frame capacity, 0..1."""
        capacity = self.capacity_frames
        if capacity <= 0:
            return 0.0
        return self.queued_frames / capacity

    @property
    def all_eof(self) -> bool:
        return all(holder.eof for holder in self.holders)

    @property
    def drained(self) -> bool:
        return all(holder.drained for holder in self.holders)

    def collect(self, batch_size: int, cancel=None, steal=None):
        """Coroutine: assemble one batch of up to ``batch_size`` records.

        Returns per-partition record lists, or ``None`` once the buffer is
        fully drained after EOF.  A batch forms when enough records are
        queued, when the feed ended (partial final batch), or when the
        producer is blocked on a full holder — draining then is what
        relieves the backpressure, so a bounded buffer smaller than a
        batch cannot deadlock the feed.

        ``steal`` (optional callable) is polled first on every pass: when
        it returns a non-``None`` work item, that item is returned
        directly instead of a batch — how the worker pool hands pending
        sub-batches of an oversized batch to idle peers (woken via
        :meth:`kick`).

        ``cancel`` (optional callable) is polled before each wait; when it
        returns true the consumer is retired and :data:`CANCELLED` is
        returned instead of a batch — the elastic controller's scale-down
        hand-shake.  Multiple consumers may collect concurrently; each
        batch goes to exactly one of them.
        """
        while True:
            if steal is not None:
                stolen = steal()
                if stolen is not None:
                    return stolen
            if cancel is not None and cancel():
                return CANCELLED
            queued = self.queued_records
            if queued >= batch_size:
                break
            if self.all_eof:
                if queued == 0:
                    return None
                break
            if queued > 0 and self.producer_blocked:
                break
            yield Wait(self._data_ready, state=IDLE)
        take = min(batch_size, self.queued_records)
        pulled = self._pull_balanced(take)
        self._space_freed.notify_all()
        return pulled

    def _pull_balanced(self, take: int) -> List[List[dict]]:
        """Pull ``take`` records, balanced across partitions, FIFO per holder."""
        n = len(self.holders)
        share = max(1, math.ceil(take / n))
        pulled: List[List[dict]] = []
        remaining = take
        for holder in self.holders:
            got = holder.poll_batch(min(share, remaining))
            pulled.append(got)
            remaining -= len(got)
        # Top up from any partition with leftovers if we fell short.
        if remaining > 0:
            for p, holder in enumerate(self.holders):
                if remaining <= 0:
                    break
                extra = holder.poll_batch(remaining)
                pulled[p].extend(extra)
                remaining -= len(extra)
        return pulled


class Sequencer:
    """Order-preserving hand-off in front of a consumer of indexed work.

    Concurrent producers (the computing worker pool) complete batches out
    of index order; the storage layer's semantics — pk-upsert order, acked
    guarantees, dead-letter provenance — require release in index order.
    ``put(index, payload)`` stashes out-of-order payloads and, once the
    next expected index arrives, synchronously calls ``release(payload)``
    for each consecutive index and forwards each release's return value to
    the optional downstream :class:`Channel`.

    ``put`` is a coroutine (it may block on the downstream channel) and
    returns the list of ``(index, release_result)`` pairs it released, so
    a coupled pipeline can charge the released work to the caller.

    **Sub-batch merge**: an oversized batch split across the worker pool
    arrives as ``num_subs`` puts sharing one ``index`` with distinct
    ``sub_index`` values (in any order, from any worker).  The sequencer
    accumulates the sub-results and, once all have arrived, reassembles
    them with ``merge`` (sub-index order — i.e. record order) before the
    usual in-order release, so the stored output is byte-identical to the
    unsplit batch at any (partitions, splits, workers) configuration.

    Re-putting an index that was already released (a supervised worker
    replaying its un-acked in-flight batch — or sub-batch — after a
    crash) releases it again immediately — at-least-once semantics, with
    duplicate effects resolved downstream exactly as single-actor replay
    resolves them.
    """

    def __init__(self, release, channel: Optional[Channel] = None, merge=None):
        self.release = release
        self.channel = channel
        self.merge = merge
        self.next_index = 0
        self._stash: Dict[int, object] = {}
        self._subs: Dict[int, Dict[int, object]] = {}
        self.reordered = 0  # puts that had to wait for an earlier index
        self.released = 0
        self.subbatch_merges = 0  # indices reassembled from sub-batches

    def __len__(self) -> int:
        return len(self._stash)

    def _assemble(self, index: int, payload, sub_index: int, num_subs: int):
        """Collect one sub-result; returns the merged payload when whole.

        Returns ``None`` while sub-results are still outstanding.  A
        replayed sub-index overwrites its slot idempotently.
        """
        if num_subs <= 1:
            return payload
        subs = self._subs.setdefault(index, {})
        subs[sub_index] = payload
        if len(subs) < num_subs:
            return None
        del self._subs[index]
        parts = [subs[k] for k in sorted(subs)]
        self.subbatch_merges += 1
        return self.merge(parts) if self.merge is not None else parts

    def put(self, index: int, payload, sub_index: int = 0, num_subs: int = 1):
        """Coroutine: hand off batch ``index``; releases all consecutive."""
        out = []
        if index < self.next_index:
            # crash replay of an already-released batch (or one of its
            # sub-batches): release the replayed payload again
            result = self.release(payload)
            self.released += 1
            out.append((index, result))
            if self.channel is not None:
                yield from self.channel.put(result)
            return out
        complete = self._assemble(index, payload, sub_index, num_subs)
        if complete is None:
            return out  # sub-batches still outstanding
        self._stash[index] = complete
        if index != self.next_index:
            self.reordered += 1
        while self.next_index in self._stash:
            result = self.release(self._stash.pop(self.next_index))
            self.released += 1
            out.append((self.next_index, result))
            self.next_index += 1
            if self.channel is not None:
                yield from self.channel.put(result)
        return out
