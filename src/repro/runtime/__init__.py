"""A deterministic discrete-event feed runtime.

The paper's ingestion framework is three *concurrent* jobs — intake,
computing, storage — handing frames across job boundaries through bounded
partition holders.  This package provides the execution substrate that
makes that concurrency explicit instead of reconstructing it with
closed-form arithmetic:

* :class:`Clock` — the simulated clock (owned by the cluster);
* :class:`Runtime` — a heap-based discrete-event scheduler driving
  cooperatively-scheduled generator :class:`Process`\\ es;
* :class:`Advance` / :class:`Wait` — the effects a process yields to
  consume simulated time or block on a :class:`Signal`;
* :class:`Channel` / :class:`IntakeBuffer` — bounded hand-off points
  (the intake buffer is layered on the existing passive partition
  holders) with *real* blocking backpressure;
* :class:`RuntimeMetrics` — the observability snapshot: per-layer
  busy/idle/blocked timelines, holder high-water marks, stall counts,
  and batch-latency histograms;
* :class:`FaultPlan` — a deterministic schedule of injected faults
  (actor crashes, slow-consumer stalls, transient channel-send failures,
  partition-holder disconnects) consulted by the kernel on the simulated
  clock;
* :class:`Supervisor` — monitors layer actors and restarts crashed ones
  with bounded retries and exponential backoff on the simulated clock.
"""

from .channel import (
    CANCELLED,
    CONGESTION_BLOCK,
    CONGESTION_DISCARD,
    CONGESTION_THROTTLE,
    Channel,
    IntakeBuffer,
    Sequencer,
)
from .clock import Clock
from .faults import (
    AdapterFailAt,
    ChannelSendFailure,
    CrashAt,
    EnricherFlaky,
    EnricherOutage,
    EnricherSlowdown,
    FaultPlan,
    HolderDisconnect,
    StallAt,
)
from .kernel import (
    BLOCKED,
    BUSY,
    IDLE,
    Advance,
    Process,
    Runtime,
    Signal,
    Wait,
)
from .metrics import (
    ExternalMetrics,
    FaultMetrics,
    HolderStats,
    LayerTimes,
    RuntimeMetrics,
)
from .supervisor import RestartPolicy, SupervisedStats, Supervisor

__all__ = [
    "AdapterFailAt",
    "Advance",
    "BLOCKED",
    "BUSY",
    "CANCELLED",
    "CONGESTION_BLOCK",
    "CONGESTION_DISCARD",
    "CONGESTION_THROTTLE",
    "Channel",
    "ChannelSendFailure",
    "Clock",
    "CrashAt",
    "EnricherFlaky",
    "EnricherOutage",
    "EnricherSlowdown",
    "ExternalMetrics",
    "FaultMetrics",
    "FaultPlan",
    "HolderDisconnect",
    "HolderStats",
    "IDLE",
    "IntakeBuffer",
    "LayerTimes",
    "Process",
    "RestartPolicy",
    "Runtime",
    "RuntimeMetrics",
    "Sequencer",
    "Signal",
    "StallAt",
    "SupervisedStats",
    "Supervisor",
    "Wait",
]
