"""Runtime observability: the per-run metrics snapshot.

A :class:`RuntimeMetrics` is assembled after a feed run from the runtime's
process accounting and the feed's partition holders.  It is the repo's
first observability layer: per-layer busy/idle/blocked time and timelines,
holder high-water marks and rejection/stall counters, and a batch-latency
histogram — everything the old sequential driver could only approximate
with terminal ``max()`` arithmetic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .kernel import BLOCKED, BUSY, IDLE, Runtime


@dataclass
class LayerTimes:
    """Aggregated simulated time one layer spent in each state."""

    busy: float = 0.0
    idle: float = 0.0
    blocked: float = 0.0

    @property
    def total(self) -> float:
        return self.busy + self.idle + self.blocked

    def utilization(self, makespan: float) -> float:
        """Fraction of the run this layer spent doing work."""
        if makespan <= 0:
            return 0.0
        return self.busy / makespan

    def add(self, totals: Dict[str, float]) -> None:
        self.busy += totals.get(BUSY, 0.0)
        self.idle += totals.get(IDLE, 0.0)
        self.blocked += totals.get(BLOCKED, 0.0)


@dataclass
class FaultMetrics:
    """Per-feed failure/recovery counters for one run.

    Deterministic for a deterministic (workload, policy, fault plan)
    triple: identical runs produce byte-identical counter dicts.
    """

    records_skipped: int = 0  # soft errors dropped by a Skip policy
    records_dead_lettered: int = 0  # soft errors routed to the dead-letter dataset
    records_replayed: int = 0  # un-acked records reprocessed after a restart
    records_discarded: int = 0  # congestion discards (Discard policy)
    frames_dropped: int = 0  # congestion-discarded frames
    crashes: int = 0  # injected actor crashes received
    restarts: int = 0  # supervisor restarts performed
    backoff_seconds: float = 0.0  # total simulated backoff before restarts
    stall_seconds: float = 0.0  # injected slow-consumer stall time
    channel_send_failures: int = 0  # transient send failures (retried)
    disconnect_waits: int = 0  # producer waits on disconnected holders
    throttle_seconds: float = 0.0  # admission throttling under congestion
    idle_timeouts: int = 0  # adapter idle-waits ended by policy timeout
    circuit_breaker_trips: int = 0
    adapter_crashes: int = 0  # injected adapter deaths (source died mid-fetch)
    adapter_reopens: int = 0  # adapter re-opened from its resume cursor

    def as_dict(self) -> Dict[str, float]:
        """Stable plain-dict form (what the chaos benchmark serializes)."""
        return {
            "records_skipped": self.records_skipped,
            "records_dead_lettered": self.records_dead_lettered,
            "records_replayed": self.records_replayed,
            "records_discarded": self.records_discarded,
            "frames_dropped": self.frames_dropped,
            "crashes": self.crashes,
            "restarts": self.restarts,
            "backoff_seconds": self.backoff_seconds,
            "stall_seconds": self.stall_seconds,
            "channel_send_failures": self.channel_send_failures,
            "disconnect_waits": self.disconnect_waits,
            "throttle_seconds": self.throttle_seconds,
            "idle_timeouts": self.idle_timeouts,
            "circuit_breaker_trips": self.circuit_breaker_trips,
            "adapter_crashes": self.adapter_crashes,
            "adapter_reopens": self.adapter_reopens,
        }

    @property
    def any_activity(self) -> bool:
        return any(v for v in self.as_dict().values())


@dataclass
class ExternalMetrics:
    """Per-feed external-enrichment resilience counters for one run.

    Kept separate from :class:`FaultMetrics` so feeds without external
    enrichers keep byte-identical fault dicts (default-off parity).
    Deterministic for a deterministic (workload, policy, fault plan)
    triple, like everything else on this runtime.
    """

    calls: int = 0  # enricher calls issued (chunks, incl. retries)
    keys_requested: int = 0  # probe keys sent across all calls
    retries: int = 0  # calls re-issued after a failure
    errors: int = 0  # server-error call outcomes
    timeouts: int = 0  # calls that burned their full deadline
    rate_limited: int = 0  # server-side rate-limit rejections
    fail_fast: int = 0  # chunks rejected locally by an open breaker
    breaker_opens: int = 0
    breaker_half_opens: int = 0
    breaker_closes: int = 0  # recoveries (half-open probe succeeded)
    call_seconds: float = 0.0  # simulated time inside enricher calls
    backoff_seconds: float = 0.0  # simulated retry backoff
    rate_limit_wait_seconds: float = 0.0  # client token-bucket waits
    records_enriched: int = 0  # records with every enrichment resolved
    records_pending: int = 0  # stored with the _enrichment_pending marker
    records_dead_lettered: int = 0  # routed aside by ExternalFailureAction

    def as_dict(self) -> Dict[str, float]:
        """Stable plain-dict form (what the external benchmark serializes)."""
        return {
            "calls": self.calls,
            "keys_requested": self.keys_requested,
            "retries": self.retries,
            "errors": self.errors,
            "timeouts": self.timeouts,
            "rate_limited": self.rate_limited,
            "fail_fast": self.fail_fast,
            "breaker_opens": self.breaker_opens,
            "breaker_half_opens": self.breaker_half_opens,
            "breaker_closes": self.breaker_closes,
            "call_seconds": self.call_seconds,
            "backoff_seconds": self.backoff_seconds,
            "rate_limit_wait_seconds": self.rate_limit_wait_seconds,
            "records_enriched": self.records_enriched,
            "records_pending": self.records_pending,
            "records_dead_lettered": self.records_dead_lettered,
        }

    @property
    def any_activity(self) -> bool:
        return any(v for v in self.as_dict().values())


@dataclass
class HolderStats:
    """One partition holder's counters at the end of a run."""

    holder_id: str
    partition: int
    kind: str  # 'passive' | 'active'
    high_water: int = 0  # peak queued frames (passive)
    offered: int = 0
    rejected: int = 0  # failed offers (backpressure)
    received: int = 0  # records pushed through (active)
    blocked_seconds: float = 0.0  # producer time stalled on this holder


@dataclass
class RuntimeMetrics:
    """Snapshot of one feed run on the discrete-event runtime."""

    makespan_seconds: float
    #: sim seconds of pipeline ramp-up/drain — the emergent makespan minus
    #: the bottleneck layer's busy time; amortizes to nothing on long feeds
    fill_drain_seconds: float
    layers: Dict[str, LayerTimes] = field(default_factory=dict)
    processes: Dict[str, LayerTimes] = field(default_factory=dict)
    #: per-process merged (state, start, end) segments, relative to run start
    timelines: Dict[str, List[Tuple[str, float, float]]] = field(
        default_factory=dict
    )
    holders: List[HolderStats] = field(default_factory=list)
    stall_count: int = 0  # intake backpressure block events
    batch_latencies_seconds: List[float] = field(default_factory=list)
    #: failure/recovery counters (``None`` when the run had no fault layer)
    faults: Optional[FaultMetrics] = None
    #: which layer each process belongs to (``{process_name: layer}``)
    process_layers: Dict[str, str] = field(default_factory=dict)
    #: computing worker-pool size over the run: ``(sim_seconds, size)``
    #: steps, one entry per spawn/retire event (empty for static pipelines)
    worker_pool_timeline: List[Tuple[float, int]] = field(default_factory=list)
    scale_ups: int = 0  # elastic controller grow events
    scale_downs: int = 0  # elastic controller shrink events (workers retired)
    reordered_batches: int = 0  # batches the sequencer held for an earlier one
    #: partitioned intake / intra-batch parallelism / durable restart:
    #: intake partition actors, sub-batch slices dispatched, indices the
    #: sequencer reassembled from sub-results, checkpoint commits written
    intake_partitions: int = 1
    subbatches: int = 0
    subbatch_merges: int = 0
    checkpoint_commits: int = 0
    #: cross-batch enrichment-state cache activity during this run (zeros
    #: when the feed policy leaves the cache disabled)
    state_cache_hits: int = 0
    state_cache_misses: int = 0
    state_cache_evictions: int = 0
    state_cache_bytes: int = 0  # resident bytes at run end (gauge)
    #: key-level enrichment memo activity during this run (zeros when the
    #: feed policy leaves the memo disabled); one shared memo spans the
    #: scalar, columnar, and external probe paths
    memo_hits: int = 0
    memo_misses: int = 0
    memo_evictions: int = 0
    memo_bytes: int = 0  # resident bytes at run end (gauge)
    #: columnar execution during this run: batches/records enriched through
    #: vectorized batch kernels and scalar fallbacks (whole frames plus
    #: individual fallen-back columns)
    vectorized_batches: int = 0
    vectorized_records: int = 0
    scalar_fallbacks: int = 0
    #: external-enrichment resilience counters (``None`` when the feed has
    #: no external enrichers attached — default-off parity)
    external: Optional[ExternalMetrics] = None
    #: fraction of enrichment-requiring stored records fully enriched by
    #: run end (1.0 when nothing degraded, or nothing was required)
    enrichment_completeness: float = 1.0
    #: multi-tenant fabric attribution (zeros/empty when the run had no
    #: :class:`~repro.ingestion.fabric.FeedFabric` — default-off parity):
    #: peak workers this feed held beyond its policy floor, the feed's
    #: ``(sim_seconds, held_workers)`` lease steps, and the memory
    #: governor's ``(sim_seconds, cache_kind, granted_bytes)`` grants
    borrowed_workers: int = 0
    lease_timeline: List[Tuple[float, int]] = field(default_factory=list)
    governor_grants: List[Tuple[float, str, int]] = field(default_factory=list)

    # ------------------------------------------------------------- assembly

    @classmethod
    def from_runtime(
        cls,
        runtime: Runtime,
        holders: Optional[List[object]] = None,
        stall_count: int = 0,
        batch_latencies: Optional[List[float]] = None,
        steady_state_seconds: Optional[float] = None,
        faults: Optional[FaultMetrics] = None,
        worker_pool_timeline: Optional[List[Tuple[float, int]]] = None,
        scale_ups: int = 0,
        scale_downs: int = 0,
        reordered_batches: int = 0,
        intake_partitions: int = 1,
        subbatches: int = 0,
        subbatch_merges: int = 0,
        checkpoint_commits: int = 0,
        state_cache_hits: int = 0,
        state_cache_misses: int = 0,
        state_cache_evictions: int = 0,
        state_cache_bytes: int = 0,
        memo_hits: int = 0,
        memo_misses: int = 0,
        memo_evictions: int = 0,
        memo_bytes: int = 0,
        vectorized_batches: int = 0,
        vectorized_records: int = 0,
        scalar_fallbacks: int = 0,
        external: Optional[ExternalMetrics] = None,
        enrichment_completeness: float = 1.0,
        process_prefix: Optional[str] = None,
        borrowed_workers: int = 0,
        lease_timeline: Optional[List[Tuple[float, int]]] = None,
        governor_grants: Optional[List[Tuple[float, str, int]]] = None,
    ) -> "RuntimeMetrics":
        makespan = runtime.elapsed
        steady = steady_state_seconds if steady_state_seconds is not None else makespan
        metrics = cls(
            makespan_seconds=makespan,
            fill_drain_seconds=max(0.0, makespan - steady),
            stall_count=stall_count,
            batch_latencies_seconds=list(batch_latencies or []),
            faults=faults,
            worker_pool_timeline=list(worker_pool_timeline or []),
            scale_ups=scale_ups,
            scale_downs=scale_downs,
            reordered_batches=reordered_batches,
            intake_partitions=intake_partitions,
            subbatches=subbatches,
            subbatch_merges=subbatch_merges,
            checkpoint_commits=checkpoint_commits,
            state_cache_hits=state_cache_hits,
            state_cache_misses=state_cache_misses,
            state_cache_evictions=state_cache_evictions,
            state_cache_bytes=state_cache_bytes,
            memo_hits=memo_hits,
            memo_misses=memo_misses,
            memo_evictions=memo_evictions,
            memo_bytes=memo_bytes,
            vectorized_batches=vectorized_batches,
            vectorized_records=vectorized_records,
            scalar_fallbacks=scalar_fallbacks,
            external=external,
            enrichment_completeness=enrichment_completeness,
            borrowed_workers=borrowed_workers,
            lease_timeline=list(lease_timeline or []),
            governor_grants=list(governor_grants or []),
        )
        for process in runtime.processes:
            # A shared multi-feed runtime hosts every feed's processes;
            # the prefix filter keeps each feed's snapshot disjoint.
            if process_prefix is not None and not process.name.startswith(
                process_prefix
            ):
                continue
            metrics.processes[process.name] = LayerTimes(
                busy=process.totals[BUSY],
                idle=process.totals[IDLE],
                blocked=process.totals[BLOCKED],
            )
            metrics.timelines[process.name] = list(process.timeline)
            metrics.process_layers[process.name] = process.layer
            layer = metrics.layers.setdefault(process.layer, LayerTimes())
            layer.add(process.totals)
        for holder in holders or []:
            metrics.holders.append(_holder_stats(holder))
        return metrics

    # -------------------------------------------------------------- queries

    def layer(self, name: str) -> LayerTimes:
        return self.layers.get(name, LayerTimes())

    def layer_process_times(self, layer_name: str) -> Dict[str, LayerTimes]:
        """Per-process times for one layer (each computing worker's share)."""
        return {
            name: times
            for name, times in self.processes.items()
            if self.process_layers.get(name, name) == layer_name
        }

    @property
    def peak_workers(self) -> int:
        """Largest concurrent computing-pool size seen during the run."""
        return max((size for _at, size in self.worker_pool_timeline), default=1)

    @property
    def holder_high_water(self) -> int:
        """Peak queued frames across every passive holder."""
        return max((h.high_water for h in self.holders), default=0)

    @property
    def total_rejected_offers(self) -> int:
        return sum(h.rejected for h in self.holders)

    def latency_percentile(self, q: float) -> float:
        """Nearest-rank batch-latency percentile in simulated seconds.

        ``q`` is in ``(0, 100]``; returns 0.0 when the run recorded no
        batch latencies.  Nearest-rank (the value at ``ceil(q/100 · n)``)
        keeps the result an *observed* latency — the convention SLO
        monitors use — and is deterministic for a deterministic run.
        """
        if not 0 < q <= 100:
            raise ValueError("percentile q must be in (0, 100]")
        latencies = sorted(self.batch_latencies_seconds)
        if not latencies:
            return 0.0
        rank = max(1, math.ceil(q / 100.0 * len(latencies)))
        return latencies[rank - 1]

    @property
    def latency_p50(self) -> float:
        return self.latency_percentile(50)

    @property
    def latency_p95(self) -> float:
        return self.latency_percentile(95)

    @property
    def latency_p99(self) -> float:
        return self.latency_percentile(99)

    def latency_summary(self) -> Dict[str, float]:
        """The SLO-facing latency digest: count, p50/p95/p99, and max."""
        latencies = self.batch_latencies_seconds
        return {
            "count": len(latencies),
            "p50": self.latency_p50,
            "p95": self.latency_p95,
            "p99": self.latency_p99,
            "max": max(latencies) if latencies else 0.0,
        }

    def latency_histogram(self, bins: int = 8) -> List[Tuple[float, int]]:
        """Batch-latency histogram: ``(upper_bound_seconds, count)`` rows.

        Linear bins over ``[0, max latency]``; deterministic for a
        deterministic run.
        """
        if bins < 1:
            raise ValueError("bins must be >= 1")
        latencies = self.batch_latencies_seconds
        if not latencies:
            return []
        top = max(latencies)
        if top <= 0:
            return [(0.0, len(latencies))]
        width = top / bins
        counts = [0] * bins
        for value in latencies:
            index = min(bins - 1, int(value / width))
            counts[index] += 1
        return [(width * (i + 1), counts[i]) for i in range(bins)]

    def describe(self) -> str:
        """Human-readable per-layer utilization summary."""
        lines = [
            f"runtime makespan {self.makespan_seconds:.4f}s "
            f"(fill/drain {self.fill_drain_seconds:.4f}s), "
            f"{self.stall_count} intake stall(s), "
            f"holder high-water {self.holder_high_water} frame(s)"
        ]
        for name in sorted(self.layers):
            times = self.layers[name]
            lines.append(
                f"  {name:<10} busy {times.busy:.4f}s  idle {times.idle:.4f}s  "
                f"blocked {times.blocked:.4f}s  "
                f"({times.utilization(self.makespan_seconds):.0%} utilized)"
            )
        if self.peak_workers > 1 or self.scale_ups or self.scale_downs:
            lines.append(
                f"  computing pool: peak {self.peak_workers} worker(s), "
                f"{self.scale_ups} scale-up(s), {self.scale_downs} "
                f"scale-down(s), {self.reordered_batches} reordered batch(es)"
            )
        if self.intake_partitions > 1 or self.subbatches:
            lines.append(
                f"  scale-out: {self.intake_partitions} intake partition(s), "
                f"{self.subbatches} sub-batch(es) dispatched, "
                f"{self.subbatch_merges} merged"
            )
        if self.checkpoint_commits:
            lines.append(
                f"  durability: {self.checkpoint_commits} checkpoint commit(s)"
            )
        if self.vectorized_batches or self.scalar_fallbacks:
            lines.append(
                f"  columnar: {self.vectorized_batches} vectorized "
                f"batch(es), {self.vectorized_records} record(s), "
                f"{self.scalar_fallbacks} scalar fallback(s)"
            )
        if self.memo_hits or self.memo_misses:
            total = self.memo_hits + self.memo_misses
            lines.append(
                f"  memo: {self.memo_hits} hit(s), {self.memo_misses} "
                f"miss(es) ({self.memo_hits / total:.0%} hit ratio), "
                f"{self.memo_evictions} eviction(s), "
                f"{self.memo_bytes} resident byte(s)"
            )
        if self.external is not None and self.external.any_activity:
            e = self.external
            lines.append(
                f"  external: {e.calls} call(s), {e.retries} retrie(s), "
                f"{e.timeouts} timeout(s), {e.errors} error(s), "
                f"{e.breaker_opens} breaker open(s), completeness "
                f"{self.enrichment_completeness:.2f} "
                f"({e.records_pending} pending, "
                f"{e.records_dead_lettered} dead-lettered)"
            )
        if self.lease_timeline or self.governor_grants:
            lines.append(
                f"  fabric: peak +{self.borrowed_workers} borrowed "
                f"worker(s), {len(self.lease_timeline)} lease step(s), "
                f"{len(self.governor_grants)} governor grant(s)"
            )
        if self.faults is not None and self.faults.any_activity:
            f = self.faults
            lines.append(
                f"  faults: {f.crashes} crash(es), {f.restarts} restart(s) "
                f"({f.backoff_seconds:.4f}s backoff), "
                f"{f.records_skipped} skipped, "
                f"{f.records_dead_lettered} dead-lettered, "
                f"{f.records_replayed} replayed, "
                f"{f.records_discarded} discarded"
            )
        return "\n".join(lines)


def _holder_stats(holder) -> HolderStats:
    kind = "passive" if hasattr(holder, "poll_batch") else "active"
    return HolderStats(
        holder_id=holder.holder_id,
        partition=holder.partition,
        kind=kind,
        high_water=getattr(holder, "high_water", 0),
        offered=getattr(holder, "offered", 0),
        rejected=getattr(holder, "rejected", 0),
        received=getattr(holder, "received", 0),
        blocked_seconds=getattr(holder, "blocked_seconds", 0.0),
    )
