"""The simulated clock.

One :class:`Clock` is owned by the cluster and shared by every runtime,
job runner, and metrics snapshot, so all simulated timestamps live on a
single monotonic axis.  Only the scheduler advances it; processes consume
time by yielding :class:`~repro.runtime.kernel.Advance` effects.
"""

from __future__ import annotations

from ..errors import SchedulingError

#: tolerance for floating-point comparisons on the simulated time axis
TIME_EPSILON = 1e-12


class Clock:
    """A monotonic simulated clock, in seconds."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance_to(self, timestamp: float) -> None:
        """Move the clock forward to ``timestamp`` (scheduler-only).

        Moving backwards is a scheduling bug, not a recoverable state.
        """
        if timestamp < self._now - TIME_EPSILON:
            raise SchedulingError(
                f"clock cannot run backwards: at {self._now!r}, "
                f"asked to advance to {timestamp!r}"
            )
        self._now = max(self._now, timestamp)

    def __repr__(self):
        return f"<Clock t={self._now:.6f}>"
