"""The discrete-event kernel: processes, effects, signals, scheduler.

A :class:`Process` is a Python generator that yields *effects*:

* ``Advance(seconds, state)`` — consume ``seconds`` of simulated time,
  accounted to ``state`` (busy by default);
* ``Wait(signal, state)`` — suspend until another process notifies the
  signal; elapsed time is accounted to ``state`` (``idle`` for starvation,
  ``blocked`` for backpressure).

The :class:`Runtime` drives processes strictly in simulated-time order
(ties broken by scheduling sequence, FIFO), so a run is bit-for-bit
deterministic and side effects executed by process code interleave in the
same order the simulated schedule says they happen.  If every remaining
process is waiting on a signal nobody can fire, the run aborts with a
:class:`~repro.errors.DeadlockError` naming the stuck processes.

Fault injection: an installed :class:`~repro.runtime.faults.FaultPlan`
adds *interrupt* events to the schedule.  A scheduled crash throws
:class:`~repro.errors.InjectedCrash` into the target process at its
simulated time (cancelling the process's pending resume or wait via a
resume token), and a scheduled stall delays the target's next resume by
the stall duration, accounted as blocked time.  Because interrupts ride
the same deterministic event heap, a faulty run replays identically.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Tuple

from ..errors import DeadlockError, InjectedCrash, SchedulingError
from .clock import Clock

#: process accounting states
BUSY = "busy"
IDLE = "idle"
BLOCKED = "blocked"
_STATES = (BUSY, IDLE, BLOCKED)


@dataclass(frozen=True)
class Advance:
    """Consume ``seconds`` of simulated time in ``state``."""

    seconds: float
    state: str = BUSY

    def __post_init__(self):
        if self.seconds < 0:
            raise SchedulingError(f"cannot advance by {self.seconds!r} seconds")
        if self.state not in _STATES:
            raise SchedulingError(f"unknown accounting state: {self.state!r}")


@dataclass(frozen=True)
class Wait:
    """Suspend until ``signal`` is notified; account elapsed time to ``state``."""

    signal: "Signal"
    state: str = IDLE

    def __post_init__(self):
        if self.state not in _STATES:
            raise SchedulingError(f"unknown accounting state: {self.state!r}")


class Signal:
    """A broadcast wake-up point: waiters resume at the current sim time."""

    def __init__(self, runtime: "Runtime", name: str):
        self._runtime = runtime
        self.name = name
        self._waiters: List[Tuple["Process", int]] = []
        self.notifications = 0

    def wait(self, process: "Process") -> None:
        # Capture the resume token: an interrupt (injected crash) that
        # fires while this process waits invalidates the registration, so
        # a later notify cannot resume a generator mid-restart.
        self._waiters.append((process, process._token))

    def notify_all(self) -> None:
        """Schedule every still-valid waiter to resume now (FIFO order)."""
        self.notifications += 1
        waiters, self._waiters = self._waiters, []
        for process, token in waiters:
            if process.done or token != process._token:
                continue
            self._runtime._schedule(self._runtime.clock.now, process)

    @property
    def waiter_names(self) -> List[str]:
        return [w.name for w, _token in self._waiters]

    def __repr__(self):
        return f"<Signal {self.name} waiters={self.waiter_names}>"


class Process:
    """A cooperatively-scheduled actor with busy/idle/blocked accounting."""

    def __init__(
        self,
        name: str,
        generator: Generator,
        layer: Optional[str] = None,
        epoch: float = 0.0,
    ):
        self.name = name
        self.layer = layer or name
        self._gen = generator
        self.done = False
        self.totals: Dict[str, float] = {BUSY: 0.0, IDLE: 0.0, BLOCKED: 0.0}
        #: merged (state, start, end) segments, relative to the runtime epoch
        self.timeline: List[Tuple[str, float, float]] = []
        self._epoch = epoch
        self._pending_state: Optional[str] = None
        self._suspended_at = 0.0
        #: resume token: bumped on every schedule and every interrupt, so
        #: stale heap entries and stale signal waits are skipped
        self._token = 0
        self.crashes_received = 0

    def _suspend(self, now: float, state: str) -> None:
        self._pending_state = state
        self._suspended_at = now

    def _account(self, now: float) -> None:
        """Attribute time since the last suspension to its pending state."""
        state = self._pending_state
        if state is None:
            return
        self._pending_state = None
        elapsed = now - self._suspended_at
        if elapsed <= 0:
            return
        self.totals[state] += elapsed
        start = self._suspended_at - self._epoch
        end = now - self._epoch
        if self.timeline and self.timeline[-1][0] == state and (
            abs(self.timeline[-1][2] - start) < 1e-12
        ):
            last = self.timeline[-1]
            self.timeline[-1] = (state, last[1], end)
        else:
            self.timeline.append((state, start, end))

    def __repr__(self):
        status = "done" if self.done else (self._pending_state or "ready")
        return f"<Process {self.name} [{self.layer}] {status}>"


class Runtime:
    """A deterministic discrete-event scheduler over a shared clock."""

    def __init__(
        self,
        clock: Optional[Clock] = None,
        name: str = "runtime",
        fault_plan=None,
    ):
        self.clock = clock or Clock()
        self.name = name
        self.epoch = self.clock.now
        self.processes: List[Process] = []
        # heap entries: (at, seq, process, token, throw_exc).  token is the
        # process's resume token (stale entries are skipped) or None for
        # interrupt entries, which fire regardless of pending resumes.
        self._heap: List[Tuple[float, int, Process, Optional[int], Optional[BaseException]]] = []
        self._seq = 0
        self._finished = False
        self.fault_plan = fault_plan
        self._consumed_stalls: set = set()
        self.injected_crashes = 0
        self.injected_stall_seconds = 0.0

    # ---------------------------------------------------------------- wiring

    def signal(self, name: str) -> Signal:
        return Signal(self, name)

    def install_fault_plan(self, fault_plan) -> None:
        """Attach a :class:`~repro.runtime.faults.FaultPlan` to this run.

        Must happen before the targeted processes are spawned — crash
        events are materialized at spawn time.
        """
        self.fault_plan = fault_plan

    def spawn(
        self, name: str, generator: Generator, layer: Optional[str] = None
    ) -> Process:
        """Register a process and schedule its first step at the current time."""
        process = Process(name, generator, layer=layer, epoch=self.epoch)
        self.processes.append(process)
        self._schedule(self.clock.now, process)
        if self.fault_plan is not None:
            now = self.clock.now - self.epoch
            for crash in self.fault_plan.crashes_for(process.name, process.layer):
                # A process spawned mid-run (an elastic worker scaled up
                # after the crash's scheduled time) did not exist when the
                # fault was due; it must not receive the interrupt late.
                if crash.at < now - 1e-12:
                    continue
                self.interrupt_at(
                    self.epoch + crash.at, process, InjectedCrash(crash)
                )
        return process

    def _schedule(self, at: float, process: Process) -> None:
        self._seq += 1
        process._token += 1
        heapq.heappush(self._heap, (at, self._seq, process, process._token, None))

    def interrupt_at(self, at: float, process: Process, exc: BaseException) -> None:
        """Schedule ``exc`` to be thrown into ``process`` at sim time ``at``."""
        self._seq += 1
        heapq.heappush(self._heap, (at, self._seq, process, None, exc))

    # --------------------------------------------------------------- running

    def run(self) -> float:
        """Drive every process to completion; returns elapsed sim seconds.

        A process exception aborts the run and propagates to the caller —
        the feed pipeline's cleanup path is responsible for releasing
        cluster state.
        """
        while self._heap:
            at, _seq, process, token, exc = heapq.heappop(self._heap)
            if process.done:
                continue
            if token is not None and token != process._token:
                continue  # superseded by an interrupt or a newer schedule
            self.clock.advance_to(at)
            if exc is None:
                stall = self._due_stall(process)
                if stall is not None:
                    # Slow-consumer stall: delay this resume by the stall
                    # duration, accounted as blocked time.
                    process._account(self.clock.now)
                    process._suspend(self.clock.now, BLOCKED)
                    self.injected_stall_seconds += stall.duration
                    self._schedule(self.clock.now + stall.duration, process)
                    continue
            process._account(self.clock.now)
            try:
                if exc is not None:
                    # Injected crash: cancel any pending resume/wait, then
                    # throw into the generator at its suspension point.
                    process._token += 1
                    process.crashes_received += 1
                    self.injected_crashes += 1
                    effect = process._gen.throw(exc)
                else:
                    effect = next(process._gen)
            except StopIteration:
                process.done = True
                continue
            if isinstance(effect, Advance):
                process._suspend(self.clock.now, effect.state)
                self._schedule(self.clock.now + effect.seconds, process)
            elif isinstance(effect, Wait):
                process._suspend(self.clock.now, effect.state)
                effect.signal.wait(process)
            else:
                raise SchedulingError(
                    f"process {process.name!r} yielded {effect!r}; "
                    f"expected Advance or Wait"
                )
        stuck = [p for p in self.processes if not p.done]
        if stuck:
            raise DeadlockError(
                "no runnable process and no pending event; stuck: "
                + ", ".join(
                    f"{p.name} ({p._pending_state or 'never ran'})" for p in stuck
                )
            )
        self._finished = True
        return self.clock.now - self.epoch

    def _due_stall(self, process: Process):
        """First unconsumed stall targeting ``process`` that is now due."""
        if self.fault_plan is None:
            return None
        now = self.clock.now - self.epoch
        for index, stall in self.fault_plan.stalls_for(process.name, process.layer):
            if index in self._consumed_stalls:
                continue
            if stall.at <= now + 1e-12:
                self._consumed_stalls.add(index)
                return stall
        return None

    @property
    def elapsed(self) -> float:
        return self.clock.now - self.epoch
