"""Deterministic fault injection: the :class:`FaultPlan`.

Every failure scenario is a *schedule on the simulated clock*, not a flaky
test: a plan lists crashes of layer actors, slow-consumer stalls,
transient channel-send failures, and partition-holder disconnects, each
pinned to a simulated time (or a send index).  The runtime kernel consults
the installed plan while scheduling, so two runs with the same plan and
the same workload produce byte-identical event orders, metrics, and fault
counters.

A plan is immutable and stateless: all mutable bookkeeping (which stalls
already fired, per-channel put counters) lives on the runtime or channel
consuming it, so one plan object can drive many runs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


def _matches(target: str, process_name: str, layer: str) -> bool:
    """A fault target names a layer, a full process name, or a suffix."""
    return (
        target == layer
        or target == process_name
        or process_name.endswith(target)
    )


@dataclass(frozen=True)
class CrashAt:
    """Crash the targeted layer actor at simulated time ``at``."""

    at: float
    target: str  # layer name ('computing'), process name, or name suffix

    def __post_init__(self):
        if self.at < 0:
            raise ValueError("crash time cannot be negative")


@dataclass(frozen=True)
class StallAt:
    """Stall the targeted actor for ``duration`` sim seconds at/after ``at``.

    Models a slow consumer: the first time the target would resume at or
    after ``at``, its resume is delayed by ``duration`` and the delay is
    accounted as *blocked* time.
    """

    at: float
    target: str
    duration: float

    def __post_init__(self):
        if self.at < 0 or self.duration < 0:
            raise ValueError("stall time/duration cannot be negative")


@dataclass(frozen=True)
class ChannelSendFailure:
    """The ``put_index``-th put on a matching channel fails transiently.

    The sender retries after ``retry_seconds`` (accounted as blocked) and
    the retry succeeds — a dropped-then-resent frame, not a lost one.
    """

    channel: str  # channel-name substring, e.g. '.storage'
    put_index: int  # 0-based index of the failing put() call
    retry_seconds: float = 0.01


@dataclass(frozen=True)
class AdapterFailAt:
    """A feed adapter dies after drawing ``after_records`` envelopes.

    Models a source that disconnects mid-``fetch`` (a dropped socket, a
    rotated file): the intake actor closes the adapter and crashes; the
    supervisor restarts it and the adapter is re-opened *from its resume
    cursor* (:meth:`~repro.ingestion.adapter.FeedAdapter.resume_position`),
    so no acked record is lost and no record is drawn twice.

    ``partition`` pins the failure to one intake partition of a
    partitioned feed (only that partition's adapter dies; its siblings
    keep streaming).  ``None`` — the default — lets the first adapter to
    reach the draw count consume the failure.

    ``feed`` pins the failure to one feed's adapters, for multi-feed
    runs whose merged fault plan is installed on a *shared* runtime
    (each feed tracks consumed failures separately, so an unscoped
    entry in a merged plan would fire once per feed).  Solo runs can
    leave it ``None``.
    """

    after_records: int
    partition: Optional[int] = None
    feed: Optional[str] = None

    def __post_init__(self):
        if self.after_records < 0:
            raise ValueError("after_records cannot be negative")


@dataclass(frozen=True)
class EnricherOutage:
    """External enricher ``enricher`` is down during ``[at, at + duration)``.

    ``mode`` scripts *how* the remote service fails: ``'error'`` answers
    immediately with a server error, ``'timeout'`` never answers (the
    client burns its full per-call deadline), ``'rate_limit'`` rejects
    with a retry-after hint of ``retry_after_seconds``.
    """

    enricher: str  # enricher name (exact match)
    at: float
    duration: float
    mode: str = "error"  # 'error' | 'timeout' | 'rate_limit'
    retry_after_seconds: float = 0.05

    def __post_init__(self):
        if self.at < 0 or self.duration < 0:
            raise ValueError("outage time/duration cannot be negative")
        if self.mode not in ("error", "timeout", "rate_limit"):
            raise ValueError(f"unknown outage mode: {self.mode!r}")


@dataclass(frozen=True)
class EnricherSlowdown:
    """External enricher latency is multiplied by ``factor`` during
    ``[at, at + duration)`` — a degraded-but-alive remote service.

    Overlapping slowdowns on the same enricher compound (factors
    multiply).  A factor large enough to push call latency past the
    client's deadline turns the window into scripted timeouts.
    """

    enricher: str
    at: float
    duration: float
    factor: float = 10.0

    def __post_init__(self):
        if self.at < 0 or self.duration < 0:
            raise ValueError("slowdown time/duration cannot be negative")
        if self.factor <= 0:
            raise ValueError("slowdown factor must be positive")


@dataclass(frozen=True)
class EnricherFlaky:
    """External enricher fails a deterministic ``rate`` fraction of calls
    with ``mode`` during ``[at, at + duration)``.

    Which calls fail is decided by a seeded hash of the enricher's call
    counter — not a live RNG — so repeated runs fail the *same* calls.
    """

    enricher: str
    rate: float  # fraction of calls that fail, [0, 1]
    mode: str = "error"  # 'error' | 'timeout' | 'rate_limit'
    at: float = 0.0
    duration: float = float("inf")

    def __post_init__(self):
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("flaky rate must be in [0, 1]")
        if self.mode not in ("error", "timeout", "rate_limit"):
            raise ValueError(f"unknown flaky mode: {self.mode!r}")


@dataclass(frozen=True)
class HolderDisconnect:
    """Partition holder ``holder_id``[``partition``] is unreachable during
    ``[at, at + duration)``; producers wait out the disconnect (blocked)."""

    holder_id: str  # holder-id substring, e.g. 'intake-F'
    partition: int
    at: float
    duration: float


class FaultPlan:
    """An immutable, reproducible schedule of injected faults."""

    def __init__(
        self,
        crashes: Sequence[CrashAt] = (),
        stalls: Sequence[StallAt] = (),
        channel_failures: Sequence[ChannelSendFailure] = (),
        disconnects: Sequence[HolderDisconnect] = (),
        adapter_failures: Sequence[AdapterFailAt] = (),
        enricher_faults: Sequence[object] = (),
        seed: int = 0,
    ):
        self.crashes: Tuple[CrashAt, ...] = tuple(crashes)
        self.stalls: Tuple[StallAt, ...] = tuple(stalls)
        self.channel_failures: Tuple[ChannelSendFailure, ...] = tuple(
            channel_failures
        )
        self.disconnects: Tuple[HolderDisconnect, ...] = tuple(disconnects)
        self.adapter_failures: Tuple[AdapterFailAt, ...] = tuple(adapter_failures)
        #: mixed EnricherOutage / EnricherSlowdown / EnricherFlaky entries
        self.enricher_faults: Tuple[object, ...] = tuple(enricher_faults)
        self.seed = seed

    @property
    def empty(self) -> bool:
        return not (
            self.crashes
            or self.stalls
            or self.channel_failures
            or self.disconnects
            or self.adapter_failures
            or self.enricher_faults
        )

    # -------------------------------------------------------------- queries

    def crashes_for(self, process_name: str, layer: str) -> List[CrashAt]:
        return [
            c for c in self.crashes if _matches(c.target, process_name, layer)
        ]

    def stalls_for(self, process_name: str, layer: str) -> List[Tuple[int, StallAt]]:
        """Matching stalls with their plan indices (for consumed-tracking)."""
        return [
            (i, s)
            for i, s in enumerate(self.stalls)
            if _matches(s.target, process_name, layer)
        ]

    def channel_put_failure(
        self, channel_name: str, put_index: int
    ) -> Optional[ChannelSendFailure]:
        for failure in self.channel_failures:
            if failure.channel in channel_name and failure.put_index == put_index:
                return failure
        return None

    def adapter_failures_indexed(self) -> List[Tuple[int, AdapterFailAt]]:
        """All adapter failures with plan indices (for consumed-tracking)."""
        return list(enumerate(self.adapter_failures))

    def holder_disconnected_until(
        self, holder_id: str, partition: int, now: float
    ) -> Optional[float]:
        """End time of a disconnect covering ``now``, or ``None``."""
        until = None
        for d in self.disconnects:
            if d.holder_id in holder_id and d.partition == partition:
                if d.at <= now < d.at + d.duration:
                    end = d.at + d.duration
                    until = end if until is None else max(until, end)
        return until

    def enricher_outage(self, enricher: str, now: float) -> Optional[EnricherOutage]:
        """The outage covering ``now`` for ``enricher``, or ``None``.

        When several outages overlap, the earliest-listed one wins (stable
        precedence keeps repeated runs byte-identical).
        """
        for fault in self.enricher_faults:
            if (
                isinstance(fault, EnricherOutage)
                and fault.enricher == enricher
                and fault.at <= now < fault.at + fault.duration
            ):
                return fault
        return None

    def enricher_latency_factor(self, enricher: str, now: float) -> float:
        """Product of all slowdown factors covering ``now`` (1.0 = healthy)."""
        factor = 1.0
        for fault in self.enricher_faults:
            if (
                isinstance(fault, EnricherSlowdown)
                and fault.enricher == enricher
                and fault.at <= now < fault.at + fault.duration
            ):
                factor *= fault.factor
        return factor

    def enricher_flaky(self, enricher: str, now: float) -> Optional[EnricherFlaky]:
        """The flakiness entry covering ``now`` for ``enricher``, or ``None``."""
        for fault in self.enricher_faults:
            if (
                isinstance(fault, EnricherFlaky)
                and fault.enricher == enricher
                and fault.at <= now < fault.at + fault.duration
            ):
                return fault
        return None

    # ------------------------------------------------------------ generation

    @classmethod
    def generated(
        cls,
        seed: int,
        horizon_seconds: float,
        crash_targets: Sequence[str] = ("computing",),
        num_crashes: int = 1,
        num_stalls: int = 0,
        stall_targets: Sequence[str] = ("storage",),
        stall_duration: float = 0.05,
    ) -> "FaultPlan":
        """A pseudo-random but fully seed-determined fault schedule."""
        rng = random.Random(seed)
        crashes = [
            CrashAt(
                at=rng.uniform(0.1, max(0.2, horizon_seconds)),
                target=crash_targets[rng.randrange(len(crash_targets))],
            )
            for _ in range(num_crashes)
        ]
        stalls = [
            StallAt(
                at=rng.uniform(0.1, max(0.2, horizon_seconds)),
                target=stall_targets[rng.randrange(len(stall_targets))],
                duration=stall_duration,
            )
            for _ in range(num_stalls)
        ]
        return cls(crashes=crashes, stalls=stalls, seed=seed)

    def __repr__(self):
        return (
            f"<FaultPlan crashes={len(self.crashes)} stalls={len(self.stalls)} "
            f"channel_failures={len(self.channel_failures)} "
            f"disconnects={len(self.disconnects)} "
            f"adapter_failures={len(self.adapter_failures)} "
            f"enricher_faults={len(self.enricher_faults)} seed={self.seed}>"
        )
