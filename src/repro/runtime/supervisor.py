"""Supervised recovery: restart crashed layer actors on the sim clock.

The paper's layered framework exists so a long-running feed survives the
failure of one layer (§5): the intake and storage jobs run for the feed's
lifetime while computing jobs are re-invoked per batch.  The
:class:`Supervisor` makes that survival real on the discrete-event
runtime: it wraps each layer actor's body in a restart loop that catches
:class:`~repro.errors.InjectedCrash`, waits an exponential backoff on the
*simulated* clock (accounted as blocked time), and re-enters the body.

Replay is the body's job, not the supervisor's: a supervised body is a
*factory* returning a fresh generator, closing over whatever un-acked
state (the in-flight batch, undelivered frames) must be reprocessed after
a restart — at-least-once delivery, with duplicate storage writes resolved
by primary-key upsert downstream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, Optional

from ..errors import FeedFailedError, InjectedCrash
from .kernel import Advance, BLOCKED, Process, Runtime


@dataclass
class SupervisedStats:
    """Per-actor crash/restart bookkeeping."""

    crashes: int = 0
    restarts: int = 0
    #: restart-budget attempts consumed — tracked here, per actor name,
    #: so one flapping actor (an intake partition) can never exhaust the
    #: budget of its healthy peers, and a re-spawn under the same name
    #: keeps that actor's own budget rather than getting a fresh one
    attempts: int = 0
    backoff_seconds: float = 0.0
    gave_up: bool = False


@dataclass
class RestartPolicy:
    """How a supervisor reacts to a crashed actor."""

    max_restarts: int = 3
    backoff_initial_seconds: float = 0.05
    backoff_multiplier: float = 2.0
    backoff_max_seconds: float = 5.0

    def backoff_at(self, attempt: int) -> float:
        """Backoff before restart ``attempt`` (1-based), capped."""
        seconds = self.backoff_initial_seconds * (
            self.backoff_multiplier ** (attempt - 1)
        )
        return min(seconds, self.backoff_max_seconds)


class Supervisor:
    """Monitors layer actors; restarts crashed ones with bounded retries."""

    def __init__(self, runtime: Runtime, restart_policy: Optional[RestartPolicy] = None):
        self.runtime = runtime
        self.restart_policy = restart_policy or RestartPolicy()
        self.stats: Dict[str, SupervisedStats] = {}

    @property
    def total_crashes(self) -> int:
        return sum(s.crashes for s in self.stats.values())

    @property
    def total_restarts(self) -> int:
        return sum(s.restarts for s in self.stats.values())

    @property
    def total_backoff_seconds(self) -> float:
        return sum(s.backoff_seconds for s in self.stats.values())

    def spawn(
        self,
        name: str,
        body_factory: Callable[[], Generator],
        layer: Optional[str] = None,
        restart_policy: Optional[RestartPolicy] = None,
    ) -> Process:
        """Spawn ``body_factory()`` under supervision.

        The factory is invoked for the first run and once per restart; it
        must return a generator yielding runtime effects.  An injected
        crash beyond the restart budget escalates to
        :class:`~repro.errors.FeedFailedError`.
        """
        policy = restart_policy or self.restart_policy
        stats = self.stats.setdefault(name, SupervisedStats())
        return self.runtime.spawn(
            name, self._supervise(name, body_factory, policy, stats), layer=layer
        )

    def _supervise(
        self,
        name: str,
        body_factory: Callable[[], Generator],
        policy: RestartPolicy,
        stats: SupervisedStats,
    ) -> Generator:
        restarting = False
        while True:
            try:
                if restarting:
                    # Backoff happens inside the try: a crash injected while
                    # the actor is down is absorbed as another attempt
                    # instead of escaping unsupervised.
                    restarting = False
                    backoff = policy.backoff_at(stats.attempts)
                    stats.restarts += 1
                    stats.backoff_seconds += backoff
                    if backoff > 0:
                        yield Advance(backoff, state=BLOCKED)
                yield from body_factory()
                return
            except InjectedCrash as crash:
                stats.crashes += 1
                stats.attempts += 1
                if stats.attempts > policy.max_restarts:
                    stats.gave_up = True
                    raise FeedFailedError(
                        f"actor {name!r} crashed {stats.crashes} time(s); "
                        f"restart budget ({policy.max_restarts}) exhausted"
                    ) from crash
                restarting = True
