"""Columnar batch execution for predeployed plans.

The plan layer (plans.py) compiles a ``SelectBlock`` once into per-record
closures; this module goes one step further for the *top-level UDF body*
shape (no FROM, a chain of LETs, a projection list): it compiles the block
into a :class:`BlockKernel` that evaluates one whole ingestion batch at a
time over per-field column views, with

* vectorized record-level expressions (field access, comparisons,
  arithmetic, boolean logic, CASE, constructors, the charge-free builtin
  table ``VECTORIZABLE_BUILTINS``),
* equi-join subqueries executed as **one hash-probe pass per batch**
  against the evaluator's batch-cached (and, cross-batch, StateCache'd)
  build tables, with the inner block's shaping (SELECT VALUE / named
  projections / implicit GROUP BY aggregates / single-key ORDER BY /
  LIMIT) applied per match list,
* uncorrelated cacheable subqueries evaluated once per batch through
  ``Evaluator._cached_select`` and broadcast, and
* per-LET scalar fallback: any expression outside the supported subset
  keeps its compiled scalar closure and is evaluated column-wise over a
  pooled flat ``Env`` whose bound-name set is identical to the scalar
  chain's, so nested plan-cache keys (and therefore batch-cache tokens)
  match the record-at-a-time path exactly.

Byte-identity contract: stored output and every ``WorkMeter`` counter
total must equal the scalar planned path for the same frame.  All
meter-charging work either goes through the shared evaluator primitives
(``_hash_table`` / ``_cached_select`` — builds are idempotent within a
generation) or is charged as one aggregated per-batch increment whose
total equals the sum of the scalar per-record increments.  Expressions
whose scalar evaluation is *conditional* (AND/OR right sides, CASE
branches past the first condition) are only vectorized when charge-free,
so eager whole-column evaluation cannot change any counter.

Failure protocol: kernels never handle errors themselves.  Any exception
during a batch attempt (including :class:`KernelFallback` runtime guards)
aborts the attempt; the caller discards the scratch meter and re-runs the
frame through the scalar loop.  Build-side state installed by the aborted
attempt lives in the batch cache, so the re-run does not re-charge it —
totals stay identical.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from ..adm.values import MISSING
from ..errors import SqlppEvaluationError
from ..storage.index import IndexKind
from .analysis import references_only, split_conjuncts
from .ast import (
    ArrayConstructor,
    BinaryOp,
    Call,
    CaseExpr,
    Exists,
    Expr,
    FieldAccess,
    IndexAccess,
    Literal,
    MissingLiteral,
    ObjectConstructor,
    SelectBlock,
    Star,
    Subquery,
    UnaryOp,
    VarRef,
)
from .evaluator import Env, _sort_key
from .functions import AGGREGATE_NAMES, BUILTINS, VECTORIZABLE_BUILTINS
from .memo import canonical_probe_key
from .plans import (
    SelectPlan,
    aggregate_values,
    apply_binary,
    default_alias,
    find_access_path,
    truthy,
)


class Unsupported(Exception):
    """Compile-time: the expression is outside the vectorizable subset."""


class KernelFallback(Exception):
    """Runtime: this batch cannot run vectorized (e.g. a B-tree index
    appeared on the probe field); the caller must re-run the frame through
    the scalar path."""


#: cached on ``SelectPlan.batch_kernel`` when compilation found the block
#: unsupported, so the verdict is not re-derived every batch
UNSUPPORTED = object()


class ColumnBatch:
    """Column views over one batch: variable name -> list of values."""

    __slots__ = ("n", "columns")

    def __init__(self, columns: Dict[str, list], n: int):
        self.columns = columns
        self.n = n


class _Scope:
    """Compile-time state for the record-level vector compiler."""

    __slots__ = ("known", "ctx", "catalog_names")

    def __init__(self, known, ctx, catalog_names):
        self.known = known  # ordered list: param + lets bound so far
        self.ctx = ctx
        self.catalog_names = catalog_names


# ------------------------------------------------ record-level vector kernels
#
# A kernel is ``fn(ev, cb) -> list`` producing one value per record.  The
# ``eager`` flag tracks whether the scalar path evaluates this position for
# *every* record; meter-charging kernels (subqueries) require it.


def compile_record_expr(expr: Expr, scope: _Scope, eager: bool) -> Callable:
    builder = _VEC_COMPILERS.get(type(expr))
    if builder is None:
        raise Unsupported(type(expr).__name__)
    return builder(expr, scope, eager)


def _vec_literal(expr: Literal, scope, eager):
    value = expr.value
    return lambda ev, cb: [value] * cb.n


def _vec_missing(expr: MissingLiteral, scope, eager):
    return lambda ev, cb: [MISSING] * cb.n


def _vec_varref(expr: VarRef, scope, eager):
    name = expr.name
    if name not in scope.known:
        # catalog datasets / unresolved names: only meaningful in FROM
        # clauses; let the scalar path produce its DatasetRef or error
        raise Unsupported(f"unknown column {name!r}")
    return lambda ev, cb: cb.columns[name]


def _vec_field(expr: FieldAccess, scope, eager):
    base_k = compile_record_expr(expr.base, scope, eager)
    field = expr.field

    def run(ev, cb):
        # MISSING/None/non-dict all project to MISSING, exactly as the
        # scalar closure does
        return [
            b.get(field, MISSING) if isinstance(b, dict) else MISSING
            for b in base_k(ev, cb)
        ]

    return run


def _index_one(base, index):
    if base is MISSING or index is MISSING:
        return MISSING
    if base is None or index is None:
        return None
    if not isinstance(base, list) or not isinstance(index, int):
        return MISSING
    if -len(base) <= index < len(base):
        return base[index]
    return MISSING


def _vec_index(expr: IndexAccess, scope, eager):
    base_k = compile_record_expr(expr.base, scope, eager)
    index_k = compile_record_expr(expr.index, scope, eager)

    def run(ev, cb):
        return [
            _index_one(b, i) for b, i in zip(base_k(ev, cb), index_k(ev, cb))
        ]

    return run


def _vec_unary(expr: UnaryOp, scope, eager):
    operand_k = compile_record_expr(expr.operand, scope, eager)
    if expr.op == "not":

        def run(ev, cb):
            return [
                v if (v is MISSING or v is None) else (not bool(v))
                for v in operand_k(ev, cb)
            ]

        return run
    if expr.op == "-":

        def run(ev, cb):
            return [
                v if (v is MISSING or v is None) else -v
                for v in operand_k(ev, cb)
            ]

        return run
    raise Unsupported(f"unary {expr.op!r}")


def _vec_binary(expr: BinaryOp, scope, eager):
    op = expr.op
    if op == "and" or op == "or":
        # Scalar short-circuits the right side; vectorized evaluation is
        # whole-column, so the right side must be charge-free (eager=False
        # rejects subquery kernels) — the selected value is identical.
        left_k = compile_record_expr(expr.left, scope, eager)
        right_k = compile_record_expr(expr.right, scope, False)
        if op == "and":

            def run(ev, cb):
                return [
                    truthy(r) if truthy(l) else False
                    for l, r in zip(left_k(ev, cb), right_k(ev, cb))
                ]

            return run

        def run(ev, cb):
            return [
                True if truthy(l) else truthy(r)
                for l, r in zip(left_k(ev, cb), right_k(ev, cb))
            ]

        return run
    left_k = compile_record_expr(expr.left, scope, eager)
    right_k = compile_record_expr(expr.right, scope, eager)
    if op == "=" or op == "!=":
        equals = op == "="

        def run(ev, cb):
            out = []
            for left, right in zip(left_k(ev, cb), right_k(ev, cb)):
                if left is MISSING or right is MISSING:
                    out.append(MISSING)
                elif left is None or right is None:
                    out.append(None)
                else:
                    out.append(
                        (left == right) if equals else (left != right)
                    )
            return out

        return run

    def run(ev, cb):
        return [
            apply_binary(op, left, right)
            for left, right in zip(left_k(ev, cb), right_k(ev, cb))
        ]

    return run


def _agg_one(lowered: str, value):
    if value is MISSING:
        return MISSING
    if value is None:
        return None
    if not isinstance(value, list):
        raise SqlppEvaluationError(
            f"{lowered}() outside GROUP BY requires an array argument"
        )
    cleaned = [v for v in value if v is not None and v is not MISSING]
    return aggregate_values(lowered, cleaned)


def _vec_call(expr: Call, scope, eager):
    name = expr.name
    lowered = name.lower()
    if expr.library is not None:
        # Java UDFs meter through the instance and read node-local
        # resources on instantiation — scalar path only.
        raise Unsupported(f"library call {expr.qualified_name}")
    if lowered in AGGREGATE_NAMES:
        # Array form only (no group context exists at record level).
        if not expr.args or isinstance(expr.args[0], Star):
            raise Unsupported(f"aggregate {name} without array argument")
        arg_k = compile_record_expr(expr.args[0], scope, eager)

        def run(ev, cb):
            return [_agg_one(lowered, v) for v in arg_k(ev, cb)]

        return run
    functions = scope.ctx.functions
    if functions is not None and functions.has(name):
        # Registry UDF: arbitrary nested evaluation — scalar path only.
        # (The kernel is cached per registry version, so a later
        # registration that shadows a builtin recompiles.)
        raise Unsupported(f"registry function {name}")
    builtin = BUILTINS.lookup(lowered)
    if builtin is None:
        raise Unsupported(f"unknown function {name}")
    if lowered not in VECTORIZABLE_BUILTINS:
        raise Unsupported(f"meter-charging builtin {name}")
    if not expr.args:
        raise Unsupported(f"zero-argument call {name}")
    arg_ks = tuple(compile_record_expr(arg, scope, eager) for arg in expr.args)

    def run(ev, cb):
        cols = [k(ev, cb) for k in arg_ks]
        out = []
        append = out.append
        try:
            for args in zip(*cols):
                append(builtin(None, *args))
        except (TypeError, ValueError, AttributeError) as exc:
            raise SqlppEvaluationError(f"{name}: {exc}") from exc
        return out

    return run


def _vec_case(expr: CaseExpr, scope, eager):
    # The first WHEN condition (and the operand) are always evaluated by
    # the scalar path; later conditions, all branch values, and the
    # default are conditional — they must be charge-free.
    when_ks = tuple(
        (
            compile_record_expr(cond, scope, eager if i == 0 else False),
            compile_record_expr(value, scope, False),
        )
        for i, (cond, value) in enumerate(expr.whens)
    )
    default_k = (
        compile_record_expr(expr.default, scope, False)
        if expr.default is not None
        else None
    )
    if expr.operand is not None:
        operand_k = compile_record_expr(expr.operand, scope, eager)

        def run(ev, cb):
            operand_col = operand_k(ev, cb)
            cond_cols = [ck(ev, cb) for ck, _vk in when_ks]
            value_cols = [vk(ev, cb) for _ck, vk in when_ks]
            default_col = default_k(ev, cb) if default_k is not None else None
            out = []
            for i in range(cb.n):
                operand = operand_col[i]
                for j in range(len(when_ks)):
                    if cond_cols[j][i] == operand:
                        out.append(value_cols[j][i])
                        break
                else:
                    out.append(
                        default_col[i] if default_col is not None else None
                    )
            return out

        return run

    def run(ev, cb):
        cond_cols = [ck(ev, cb) for ck, _vk in when_ks]
        value_cols = [vk(ev, cb) for _ck, vk in when_ks]
        default_col = default_k(ev, cb) if default_k is not None else None
        out = []
        for i in range(cb.n):
            for j in range(len(when_ks)):
                if truthy(cond_cols[j][i]):
                    out.append(value_cols[j][i])
                    break
            else:
                out.append(default_col[i] if default_col is not None else None)
        return out

    return run


def _vec_object(expr: ObjectConstructor, scope, eager):
    field_ks = tuple(
        (name, compile_record_expr(value, scope, eager))
        for name, value in expr.fields
    )

    def run(ev, cb):
        cols = [(name, k(ev, cb)) for name, k in field_ks]
        out = []
        for i in range(cb.n):
            row = {}
            for name, col in cols:
                value = col[i]
                if value is not MISSING:
                    row[name] = value
            out.append(row)
        return out

    return run


def _vec_array(expr: ArrayConstructor, scope, eager):
    item_ks = tuple(
        compile_record_expr(item, scope, eager) for item in expr.items
    )

    def run(ev, cb):
        if not item_ks:
            return [[] for _ in range(cb.n)]
        cols = [k(ev, cb) for k in item_ks]
        return [list(values) for values in zip(*cols)]

    return run


def _exists_one(value):
    if isinstance(value, list):
        return len(value) > 0
    return value is not MISSING and value is not None


def _vec_exists(expr: Exists, scope, eager):
    sub_k = compile_record_expr(expr.subquery, scope, eager)

    def run(ev, cb):
        return [_exists_one(v) for v in sub_k(ev, cb)]

    return run


def _vec_subquery(expr: Subquery, scope, eager):
    if not eager:
        # Subquery kernels charge meters (probe/group/sort counters or
        # once-per-generation builds); they may only run in positions the
        # scalar path evaluates for every record.
        raise Unsupported("subquery in a conditionally-evaluated position")
    inner = expr.select
    ctx = scope.ctx
    inner_bound = frozenset(scope.known)
    inner_plan = ctx.plan_cache.plan_for(inner, inner_bound, ctx.catalog)
    if inner_plan.cacheable:
        # Uncorrelated: one evaluation per batch generation, broadcast.
        # _cached_select keys by the plan token and handles the StateCache,
        # so charges and reuse are byte-identical to the scalar path.  The
        # dummy env only supplies the bound-name set for the plan-cache
        # key; cacheable blocks never read outer values.
        dummy_env = Env({name: None for name in inner_bound})

        def run(ev, cb):
            result = ev._cached_select(inner, dummy_env)
            return [result] * cb.n

        return run
    return _compile_probe_kernel(inner, inner_plan, scope)


_VEC_COMPILERS = {
    Literal: _vec_literal,
    MissingLiteral: _vec_missing,
    VarRef: _vec_varref,
    FieldAccess: _vec_field,
    IndexAccess: _vec_index,
    UnaryOp: _vec_unary,
    BinaryOp: _vec_binary,
    Call: _vec_call,
    CaseExpr: _vec_case,
    ObjectConstructor: _vec_object,
    ArrayConstructor: _vec_array,
    Exists: _vec_exists,
    Subquery: _vec_subquery,
    # Star, SelectBlock: unsupported at record level
}


# ----------------------------------------------------- match-level expressions
#
# Inside a probe subquery, shaping expressions run once per *match* and may
# reference only the FROM-term variable (outer references would need the
# per-record env).  Compiled to plain ``fn(match_record) -> value``; only
# charge-free constructs are allowed.


def compile_match_expr(expr: Expr, var: str) -> Callable:
    t = type(expr)
    if t is Literal:
        value = expr.value
        return lambda m: value
    if t is MissingLiteral:
        return lambda m: MISSING
    if t is VarRef:
        if expr.name != var:
            raise Unsupported(f"match expr references {expr.name!r}")
        return lambda m: m
    if t is FieldAccess:
        base_fn = compile_match_expr(expr.base, var)
        field = expr.field

        def run_field(m):
            base = base_fn(m)
            if isinstance(base, dict):
                return base.get(field, MISSING)
            return MISSING

        return run_field
    if t is IndexAccess:
        base_fn = compile_match_expr(expr.base, var)
        index_fn = compile_match_expr(expr.index, var)
        return lambda m: _index_one(base_fn(m), index_fn(m))
    if t is UnaryOp:
        operand_fn = compile_match_expr(expr.operand, var)
        if expr.op == "not":

            def run_not(m):
                value = operand_fn(m)
                if value is MISSING or value is None:
                    return value
                return not bool(value)

            return run_not
        if expr.op == "-":

            def run_neg(m):
                value = operand_fn(m)
                if value is MISSING or value is None:
                    return value
                return -value

            return run_neg
        raise Unsupported(f"unary {expr.op!r}")
    if t is BinaryOp:
        op = expr.op
        left_fn = compile_match_expr(expr.left, var)
        right_fn = compile_match_expr(expr.right, var)
        if op == "and":
            return lambda m: (
                truthy(right_fn(m)) if truthy(left_fn(m)) else False
            )
        if op == "or":
            return lambda m: (
                True if truthy(left_fn(m)) else truthy(right_fn(m))
            )
        return lambda m: apply_binary(op, left_fn(m), right_fn(m))
    if t is Call:
        if expr.library is not None:
            raise Unsupported(f"library call {expr.qualified_name}")
        lowered = expr.name.lower()
        if lowered in AGGREGATE_NAMES:
            if not expr.args or isinstance(expr.args[0], Star):
                raise Unsupported("aggregate without array argument")
            arg_fn = compile_match_expr(expr.args[0], var)
            return lambda m: _agg_one(lowered, arg_fn(m))
        builtin = BUILTINS.lookup(lowered)
        if builtin is None or lowered not in VECTORIZABLE_BUILTINS:
            raise Unsupported(f"function {expr.name}")
        if not expr.args:
            raise Unsupported(f"zero-argument call {expr.name}")
        arg_fns = tuple(compile_match_expr(arg, var) for arg in expr.args)
        name = expr.name

        def run_call(m):
            try:
                return builtin(None, *[fn(m) for fn in arg_fns])
            except (TypeError, ValueError, AttributeError) as exc:
                raise SqlppEvaluationError(f"{name}: {exc}") from exc

        return run_call
    if t is CaseExpr:
        when_fns = tuple(
            (compile_match_expr(cond, var), compile_match_expr(value, var))
            for cond, value in expr.whens
        )
        default_fn = (
            compile_match_expr(expr.default, var)
            if expr.default is not None
            else None
        )
        if expr.operand is not None:
            operand_fn = compile_match_expr(expr.operand, var)

            def run_case_op(m):
                operand = operand_fn(m)
                for cond_fn, value_fn in when_fns:
                    if cond_fn(m) == operand:
                        return value_fn(m)
                return default_fn(m) if default_fn is not None else None

            return run_case_op

        def run_case(m):
            for cond_fn, value_fn in when_fns:
                if truthy(cond_fn(m)):
                    return value_fn(m)
            return default_fn(m) if default_fn is not None else None

        return run_case
    if t is ObjectConstructor:
        field_fns = tuple(
            (name, compile_match_expr(value, var))
            for name, value in expr.fields
        )

        def run_object(m):
            out = {}
            for name, fn in field_fns:
                value = fn(m)
                if value is not MISSING:
                    out[name] = value
            return out

        return run_object
    if t is ArrayConstructor:
        item_fns = tuple(compile_match_expr(item, var) for item in expr.items)
        return lambda m: [fn(m) for fn in item_fns]
    raise Unsupported(type(expr).__name__)


# ------------------------------------------------------- probe subquery kernel


def _compile_probe_kernel(
    inner: SelectBlock, inner_plan: SelectPlan, scope: _Scope
) -> Callable:
    """One hash-probe pass per batch over a single-term equality subquery.

    Supported inner shape (anything else raises :class:`Unsupported`):
    exactly one FROM term with an equality access path, the WHERE being
    exactly the probe conjunct, no LETs, no DISTINCT; shaping limited to
    SELECT VALUE / named projections over the term variable, implicit
    GROUP BY with root-level aggregate projections, a single ORDER BY key
    over the term variable (SELECT VALUE rows only), and a literal LIMIT.
    """
    terms = inner_plan.terms
    if terms is None or len(terms) != 1:
        raise Unsupported("probe kernel needs exactly one FROM term")
    tp = terms[0]
    if not tp.is_dataset or tp.access_kind != "equality":
        raise Unsupported("no single-dataset equality access path")
    if inner_plan.let_fns or inner_plan.post_let_fns:
        raise Unsupported("inner LETs")
    if inner_plan.distinct:
        raise Unsupported("inner DISTINCT")
    if inner_plan.group_keys:
        raise Unsupported("explicit GROUP BY")
    conjuncts = split_conjuncts(inner.where)
    if len(conjuncts) != 1:
        raise Unsupported("WHERE is more than the probe conjunct")
    # Re-derive the probe expression AST (the plan only kept its closure).
    outer_bound = frozenset(scope.known) - scope.catalog_names
    path = find_access_path(
        tp.term, conjuncts, set(outer_bound), scope.catalog_names
    )
    if path is None or path[0] != "equality":
        raise Unsupported("access path no longer matches")
    _kind, field, probe_expr = path
    if field != tp.access_field:
        raise Unsupported("ambiguous access field")
    probe_k = compile_record_expr(probe_expr, scope, True)
    var = tp.var
    dataset_name = tp.dataset_name
    no_index = tp.no_index

    # --- shaping: compiled per match list ---------------------------------
    implicit_group = inner_plan.implicit_group
    block = inner_plan.block

    if implicit_group:
        if inner_plan.order_items or block.limit is not None:
            raise Unsupported("ORDER/LIMIT over an implicit group")
        shape = _compile_group_shape(block, var)
    else:
        shape = _compile_row_shape(inner_plan, block, var)

    token = inner_plan.token

    def run(ev, cb):
        ctx = ev.ctx
        dataset = ctx.catalog[dataset_name]
        if (
            not no_index
            and ctx.allow_index
            and dataset.index_on(field, IndexKind.BTREE) is not None
        ):
            # The scalar path would probe the live B-tree per record,
            # with different charges — this batch cannot vectorize.
            raise KernelFallback(f"B-tree on {dataset_name}.{field}")
        probe_col = probe_k(ev, cb)
        if ctx.memo is None:
            table = ev._hash_table(dataset, field)
            # one aggregated charge == n per-record `hash_probes += 1`
            ctx.meter.hash_probes += cb.n
            empty: List = []
            get = table.get
            out = []
            append = out.append
            for key in probe_col:
                if key is MISSING or key is None:
                    matches = empty
                elif key != key:
                    # NaN probe: dict lookup could identity-match the stored
                    # key, but the scalar WHERE recheck (NaN = NaN) rejects it
                    matches = empty
                else:
                    matches = get(key, empty)
                append(matches)
            return shape(ev, out)
        return run_memoized(ev, cb, dataset, probe_col)

    def run_memoized(ev, cb, dataset, probe_col):
        """The probe pass with the key-level memo in front of it.

        Every record whose canonical key is already shaped — in this batch
        (L1 dict) or in a prior batch under the same dataset version (L2
        memo) — reuses the shaped row list and is charged through the
        priced ``memo_hits`` / ``memo_reused_records`` counters; only the
        remaining misses acquire the hash table (an all-hit batch skips
        even the build/StateCache lookup), pay their per-record
        ``hash_probes``, and run the compiled shaping, so miss charges are
        computed by exactly the unmemoized code.  With zero hits the
        charges and output are identical to the plain path.  NULL/MISSING/
        NaN probes never memoize (the scalar recheck semantics make them
        per-record empties) and stay probe-charged misses.
        """
        ctx = ev.ctx
        memo = ctx.memo
        meter = ctx.meter
        version_key = ((dataset_name, dataset.version),)
        l1: Dict = {}
        l1_get = l1.get
        slots: List = [None] * cb.n
        miss_indices: List[int] = []
        miss_keys: List = []
        for i, key in enumerate(probe_col):
            if key is MISSING or key is None or key != key:
                miss_indices.append(i)
                miss_keys.append(key)
                continue
            ck = canonical_probe_key(key)
            rows = l1_get(ck)
            if rows is None:
                entry = memo.get(("probe", token, ck), version_key)
                if entry is None:
                    miss_indices.append(i)
                    miss_keys.append(key)
                    continue
                rows = entry.value
                l1[ck] = rows
            meter.memo_hits += 1
            meter.memo_reused_records += len(rows)
            slots[i] = rows
        if miss_indices:
            table = ev._hash_table(dataset, field)
            meter.hash_probes += len(miss_indices)
            empty: List = []
            get = table.get
            out = []
            for key in miss_keys:
                if key is MISSING or key is None or key != key:
                    out.append(empty)
                else:
                    out.append(get(key, empty))
            shaped = shape(ev, out)
            memo_put = memo.put
            for slot, key, rows in zip(miss_indices, miss_keys, shaped):
                slots[slot] = rows
                if key is MISSING or key is None or key != key:
                    continue
                ck = canonical_probe_key(key)
                l1[ck] = rows
                memo_put(("probe", token, ck), version_key, rows, len(rows))
        return slots

    return run


def _compile_group_shape(block: SelectBlock, var: str) -> Callable:
    """Implicit-group shaping: one aggregate row per record's match list."""
    if block.select_value is not None:
        spec = _aggregate_spec(block.select_value, var)

        def shape_value(ev, match_lists):
            total = 0
            out = []
            for matches in match_lists:
                total += len(matches)
                out.append([_run_aggregate(spec, matches)])
            ev.ctx.meter.group_items += total
            return out

        return shape_value
    specs = []
    for position, proj in enumerate(block.projections, start=1):
        if isinstance(proj.expr, Star):
            raise Unsupported("star projection in a group")
        name = proj.alias or default_alias(proj.expr, fallback=f"${position}")
        specs.append((name, _aggregate_spec(proj.expr, var)))

    def shape(ev, match_lists):
        total = 0
        out = []
        for matches in match_lists:
            total += len(matches)
            row = {}
            for name, spec in specs:
                value = _run_aggregate(spec, matches)
                if value is not MISSING:
                    row[name] = value
            out.append([row])
        ev.ctx.meter.group_items += total
        return out

    return shape


def _aggregate_spec(expr: Expr, var: str) -> Tuple:
    """(aggregate_name, arg_fn_or_None_for_count_star)."""
    if not (
        isinstance(expr, Call)
        and expr.library is None
        and expr.name.lower() in AGGREGATE_NAMES
    ):
        raise Unsupported("group projection is not a root-level aggregate")
    lowered = expr.name.lower()
    if expr.args and isinstance(expr.args[0], Star):
        return (lowered, None)
    if not expr.args:
        raise Unsupported(f"aggregate {expr.name} without argument")
    return (lowered, compile_match_expr(expr.args[0], var))


def _run_aggregate(spec: Tuple, matches: List):
    lowered, arg_fn = spec
    if arg_fn is None:
        return aggregate_values(lowered, [1] * len(matches))
    values = []
    for m in matches:
        value = arg_fn(m)
        if value is not MISSING and value is not None:
            values.append(value)
    return aggregate_values(lowered, values)


def _compile_row_shape(
    plan: SelectPlan, block: SelectBlock, var: str
) -> Callable:
    """Per-match projection + optional single-key ORDER BY + literal LIMIT."""
    if block.select_value is not None:
        project = compile_match_expr(block.select_value, var)
    else:
        if plan.order_items:
            # dict rows can shadow ORDER BY names via _order_env; the
            # scalar path must handle those
            raise Unsupported("ORDER BY over named projections")
        proj_fns = []
        for position, proj in enumerate(block.projections, start=1):
            if isinstance(proj.expr, Star):
                raise Unsupported("star projection over a match")
            name = proj.alias or default_alias(
                proj.expr, fallback=f"${position}"
            )
            proj_fns.append((name, compile_match_expr(proj.expr, var)))

        def project(m):
            out = {}
            for name, fn in proj_fns:
                value = fn(m)
                if value is not MISSING:
                    out[name] = value
            return out

    order_fn = None
    descending = False
    if plan.order_items:
        if len(plan.order_items) != 1:
            raise Unsupported("multi-key ORDER BY")
        item = block.order_items[0]
        order_fn = compile_match_expr(item.expr, var)
        descending = item.descending

    limit = None
    if block.limit is not None:
        if not (
            isinstance(block.limit, Literal)
            and isinstance(block.limit.value, int)
            and block.limit.value >= 0
        ):
            raise Unsupported("non-literal LIMIT")
        limit = block.limit.value

    if order_fn is None and limit is not None:

        def shape_limited(ev, match_lists):
            return [
                [project(m) for m in matches[:limit]]
                for matches in match_lists
            ]

        return shape_limited
    if order_fn is None:

        def shape_plain(ev, match_lists):
            return [[project(m) for m in matches] for matches in match_lists]

        return shape_plain

    def shape(ev, match_lists):
        out = []
        append = out.append
        sort_total = 0
        for matches in match_lists:
            rows = [project(m) for m in matches]
            sort_total += len(rows)
            if rows:
                for row in rows:
                    if isinstance(row, dict):
                        # _order_env would rebind row keys — scalar only
                        raise KernelFallback("dict rows under ORDER BY")
                pairs = [
                    (_sort_key(order_fn(m)), row)
                    for m, row in zip(matches, rows)
                ]
                pairs.sort(key=_item0, reverse=descending)
                rows = [row for _key, row in pairs]
            if limit is not None:
                rows = rows[:limit]
            append(rows)
        ev.ctx.meter.sort_items += sort_total
        return out

    return shape


def _item0(pair):
    return pair[0]


# -------------------------------------------------------------- block kernels


class BlockKernel:
    """A compiled whole-batch executor for one top-level UDF body."""

    __slots__ = (
        "param",
        "steps",  # tuple of (var, is_vector, fn) for lets + post_lets
        "where_step",  # (is_vector, fn) or None
        "select_value_step",  # (is_vector, fn) or None
        "projection_steps",  # tuple of (name_or_None, is_vector, fn)
        "fallback_lets",  # scalar-fallback column count (for stats)
        "_env",  # pooled flat env for scalar-fallback columns
    )

    def __init__(self):
        self.param = None
        self.steps = ()
        self.where_step = None
        self.select_value_step = None
        self.projection_steps = ()
        self.fallback_lets = 0
        self._env = Env({})

    # ------------------------------------------------------------- execution

    def _scalar_column(self, ev, fn, cb: ColumnBatch, bound: Tuple[str, ...]):
        """Evaluate a compiled scalar closure column-wise.

        The pooled env is rebound per record with exactly the names the
        scalar chain would have bound at this point, so ``bound_names()``
        — and therefore every nested plan-cache key — matches the
        record-at-a-time path.
        """
        env = self._env
        env_vars = env.vars
        columns = cb.columns
        out = []
        append = out.append
        for i in range(cb.n):
            env_vars.clear()
            for name in bound:
                env_vars[name] = columns[name][i]
            append(fn(ev, env))
        return out

    def run(self, ev, records: List[dict]) -> List:
        """Evaluate the whole batch; returns the flattened output rows."""
        n = len(records)
        columns: Dict[str, list] = {self.param: records}
        cb = ColumnBatch(columns, n)
        bound: Tuple[str, ...] = (self.param,)
        for var, is_vector, fn in self.steps:
            if is_vector:
                columns[var] = fn(ev, cb)
            else:
                columns[var] = self._scalar_column(ev, fn, cb, bound)
            bound = bound + (var,)
        keep = None
        if self.where_step is not None:
            is_vector, fn = self.where_step
            col = (
                fn(ev, cb)
                if is_vector
                else self._scalar_column(ev, fn, cb, bound)
            )
            keep = [truthy(value) for value in col]
        if self.select_value_step is not None:
            is_vector, fn = self.select_value_step
            col = (
                fn(ev, cb)
                if is_vector
                else self._scalar_column(ev, fn, cb, bound)
            )
            if keep is None:
                return list(col)
            return [value for value, ok in zip(col, keep) if ok]
        proj_cols = []
        for name, is_vector, fn in self.projection_steps:
            col = (
                fn(ev, cb)
                if is_vector
                else self._scalar_column(ev, fn, cb, bound)
            )
            proj_cols.append((name, col))
        out = []
        append = out.append
        for i in range(n):
            if keep is not None and not keep[i]:
                continue
            row: Dict[str, object] = {}
            for name, col in proj_cols:
                value = col[i]
                if name is None:  # ``v.*`` expansion
                    if isinstance(value, dict):
                        row.update(value)
                    continue
                if value is not MISSING:
                    row[name] = value
            append(row)
        return out


def compile_block_kernel(
    plan: SelectPlan, params: Tuple[str, ...], ctx
) -> BlockKernel:
    """Compile ``plan`` (a top-level UDF body) into a :class:`BlockKernel`.

    Raises :class:`Unsupported` when the block has FROM terms, grouping,
    ordering, LIMIT, or DISTINCT at the top level — those shapes keep the
    scalar path.  Individual LET/projection expressions outside the vector
    subset fall back per column, not per block.
    """
    if len(params) != 1:
        raise Unsupported("kernels require unary functions")
    if plan.terms is not None:
        raise Unsupported("top-level FROM")
    if plan.has_group or plan.order_items or plan.distinct:
        raise Unsupported("top-level GROUP/ORDER/DISTINCT")
    if plan.limit_fn is not None:
        raise Unsupported("top-level LIMIT")
    kernel = BlockKernel()
    kernel.param = params[0]
    block = plan.block
    known: List[str] = [params[0]]
    steps = []
    fallbacks = 0
    lets = tuple(zip(plan.let_fns, block.lets)) + tuple(
        zip(plan.post_let_fns, block.post_lets)
    )
    for (var, scalar_fn), let in lets:
        try:
            vec = compile_record_expr(
                let.expr, _Scope(list(known), ctx, plan.catalog_names), True
            )
            steps.append((var, True, vec))
        except Unsupported:
            steps.append((var, False, scalar_fn))
            fallbacks += 1
        known.append(var)
    kernel.steps = tuple(steps)
    scope = _Scope(list(known), ctx, plan.catalog_names)
    if plan.where_fn is not None:
        try:
            kernel.where_step = (True, compile_record_expr(block.where, scope, True))
        except Unsupported:
            kernel.where_step = (False, plan.where_fn)
            fallbacks += 1
    if plan.select_value_fn is not None:
        try:
            kernel.select_value_step = (
                True,
                compile_record_expr(block.select_value, scope, True),
            )
        except Unsupported:
            kernel.select_value_step = (False, plan.select_value_fn)
            fallbacks += 1
    else:
        proj_steps = []
        for (name, scalar_fn), proj in zip(plan.projections, block.projections):
            expr = proj.expr.base if isinstance(proj.expr, Star) else proj.expr
            try:
                proj_steps.append(
                    (name, True, compile_record_expr(expr, scope, True))
                )
            except Unsupported:
                proj_steps.append((name, False, scalar_fn))
                fallbacks += 1
        kernel.projection_steps = tuple(proj_steps)
    kernel.fallback_lets = fallbacks
    return kernel


def kernel_for(
    plan: SelectPlan, params: Tuple[str, ...], ctx, registry_version: int
):
    """The cached batch kernel for ``plan`` (or :data:`UNSUPPORTED`).

    Cached on the plan keyed by registry version: a new function or Java
    registration can change how a ``Call`` resolves without invalidating
    the plan cache, so kernels recompile when the version moves.
    """
    cached = plan.batch_kernel
    if cached is not None and cached[0] == registry_version:
        return cached[1]
    try:
        kernel = compile_block_kernel(plan, params, ctx)
    except Unsupported:
        kernel = UNSUPPORTED
    plan.batch_kernel = (registry_version, kernel)
    return kernel
