"""AST node definitions for the SQL++ subset.

The subset covers everything the paper's eight enrichment UDFs and
analytical queries use: SELECT [VALUE] blocks with FROM (including joins),
LET, WHERE, GROUP BY (with aliases and aggregates), ORDER BY, LIMIT,
subqueries, EXISTS/IN, CASE, object/array constructors, path navigation,
indexing, arithmetic/comparison/boolean operators, function calls
(including ``lib#javaUdf`` references), and optimizer hints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


class Expr:
    """Base class for all expression nodes.

    Every node is a ``slots=True`` dataclass: ASTs are allocated on the
    ingestion hot path (probe expressions, circle-flip rewrites), so
    per-instance ``__dict__`` overhead is measurable in the wall-clock
    benchmark (``benchmarks/bench_wallclock.py``).
    """

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class Literal(Expr):
    value: object  # int, float, str, bool, None


@dataclass(frozen=True, slots=True)
class MissingLiteral(Expr):
    pass


@dataclass(frozen=True, slots=True)
class VarRef(Expr):
    name: str


@dataclass(frozen=True, slots=True)
class FieldAccess(Expr):
    base: Expr
    field: str


@dataclass(frozen=True, slots=True)
class IndexAccess(Expr):
    base: Expr
    index: Expr


@dataclass(frozen=True, slots=True)
class Call(Expr):
    """A function call; ``library`` is set for ``lib#fn(...)`` Java UDFs."""

    name: str
    args: Tuple[Expr, ...]
    library: Optional[str] = None

    @property
    def qualified_name(self) -> str:
        return f"{self.library}#{self.name}" if self.library else self.name


@dataclass(frozen=True, slots=True)
class Star(Expr):
    """``v.*`` inside a SELECT projection list."""

    base: Expr


@dataclass(frozen=True, slots=True)
class UnaryOp(Expr):
    op: str  # 'not', '-'
    operand: Expr


@dataclass(frozen=True, slots=True)
class BinaryOp(Expr):
    op: str  # 'and' 'or' '=' '!=' '<' '<=' '>' '>=' '+' '-' '*' '/' '%' 'in' 'not_in'
    left: Expr
    right: Expr


@dataclass(frozen=True, slots=True)
class Exists(Expr):
    subquery: Expr


@dataclass(frozen=True, slots=True)
class CaseExpr(Expr):
    """``CASE [operand] WHEN c THEN v ... [ELSE d] END``."""

    operand: Optional[Expr]
    whens: Tuple[Tuple[Expr, Expr], ...]
    default: Optional[Expr]


@dataclass(frozen=True, slots=True)
class ObjectConstructor(Expr):
    fields: Tuple[Tuple[str, Expr], ...]


@dataclass(frozen=True, slots=True)
class ArrayConstructor(Expr):
    items: Tuple[Expr, ...]


@dataclass(frozen=True, slots=True)
class Subquery(Expr):
    """A parenthesized SELECT usable as an expression (yields an array)."""

    select: "SelectBlock"


# --------------------------------------------------------------------- SELECT


@dataclass(frozen=True, slots=True)
class FromTerm:
    """One FROM binding: ``expr [AS] var``, with optional per-source hints."""

    source: Expr
    var: str
    hints: Tuple[str, ...] = ()


@dataclass(frozen=True, slots=True)
class LetClause:
    var: str
    expr: Expr


@dataclass(frozen=True, slots=True)
class Projection:
    """One SELECT list item: expression plus optional output alias.

    ``Star`` projections expand the base record's fields in place.
    """

    expr: Expr
    alias: Optional[str] = None


@dataclass(frozen=True, slots=True)
class GroupKey:
    expr: Expr
    alias: Optional[str] = None


@dataclass(frozen=True, slots=True)
class OrderItem:
    expr: Expr
    descending: bool = False


@dataclass(slots=True)
class SelectBlock(Expr):
    """A full SELECT block (also usable as a subquery expression)."""

    projections: List[Projection] = field(default_factory=list)
    select_value: Optional[Expr] = None  # SELECT VALUE <expr>
    from_terms: List[FromTerm] = field(default_factory=list)
    lets: List[LetClause] = field(default_factory=list)  # LET before SELECT
    post_lets: List[LetClause] = field(default_factory=list)  # LET after FROM
    where: Optional[Expr] = None
    group_keys: List[GroupKey] = field(default_factory=list)
    order_items: List[OrderItem] = field(default_factory=list)
    limit: Optional[Expr] = None
    distinct: bool = False
    hints: Tuple[str, ...] = ()

    @property
    def all_lets(self) -> List[LetClause]:
        return list(self.lets) + list(self.post_lets)


# ------------------------------------------------------------------ functions


@dataclass(slots=True)
class FunctionDefinition:
    """``CREATE FUNCTION name(params) { body }`` — the SQL++ UDF form."""

    name: str
    params: List[str]
    body: Expr  # usually a SelectBlock, possibly with leading LETs folded in


def walk(expr) -> "list":
    """Pre-order traversal of an expression tree (including select blocks)."""
    out = []
    stack = [expr]
    while stack:
        node = stack.pop()
        if node is None:
            continue
        out.append(node)
        if isinstance(node, SelectBlock):
            for proj in node.projections:
                stack.append(proj.expr)
            stack.append(node.select_value)
            for term in node.from_terms:
                stack.append(term.source)
            for let in node.all_lets:
                stack.append(let.expr)
            stack.append(node.where)
            for key in node.group_keys:
                stack.append(key.expr)
            for item in node.order_items:
                stack.append(item.expr)
            stack.append(node.limit)
        elif isinstance(node, Subquery):
            stack.append(node.select)
        elif isinstance(node, FieldAccess):
            stack.append(node.base)
        elif isinstance(node, IndexAccess):
            stack.append(node.base)
            stack.append(node.index)
        elif isinstance(node, Call):
            stack.extend(node.args)
        elif isinstance(node, Star):
            stack.append(node.base)
        elif isinstance(node, UnaryOp):
            stack.append(node.operand)
        elif isinstance(node, BinaryOp):
            stack.append(node.left)
            stack.append(node.right)
        elif isinstance(node, Exists):
            stack.append(node.subquery)
        elif isinstance(node, CaseExpr):
            stack.append(node.operand)
            for cond, value in node.whens:
                stack.append(cond)
                stack.append(value)
            stack.append(node.default)
        elif isinstance(node, ObjectConstructor):
            for _name, value in node.fields:
                stack.append(value)
        elif isinstance(node, ArrayConstructor):
            stack.extend(node.items)
    return out
