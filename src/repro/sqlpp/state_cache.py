"""Cross-batch enrichment-state cache, keyed by reference-data version.

The paper's computing job rebuilds all per-batch intermediate state (hash
join build tables, batch-cached scans, uncorrelated top-k subquery
results) on every invocation so that enrichment UDFs observe reference
updates at batch boundaries (§5, §7.3).  When the reference dataset has
*not* changed between two batches that rebuild is pure waste: the build
input is byte-identical, so the build output is too.  Every
:class:`~repro.storage.dataset.Dataset` carries a monotonic ``version``
counter bumped on each committed write, which is exactly the proof needed
— the classic view-maintenance observation (Gupta & Mumick) specialised
to the degenerate "nothing changed" delta.

This module implements that reuse as an LRU-by-bytes cache:

* entries are keyed by the *identity* of the materialised state — e.g.
  ``("scan", dataset_name)``, ``("hash", dataset_name, field)``,
  ``("uncorrelated", plan_token)`` — and guarded by a **version key**
  derived from the referenced dataset versions at build time;
* :meth:`StateCache.get` returns the entry only when the stored version
  key equals the current one, so *any* committed write (insert, upsert,
  delete, dead-letter replay) between batches forces a rebuild at the
  next batch boundary — precisely where the per-batch-rebuild baseline
  would have picked the change up;
* DDL and function changes clear the cache wholesale (the owning
  :class:`~repro.udf.registry.FunctionRegistry` calls :meth:`clear` from
  ``invalidate_plans``/``replace_sqlpp``), so ``create_index`` /
  ``drop_index`` / ``load_dataset`` / ``CREATE OR REPLACE FUNCTION`` all
  start the next batch from a cold build;
* eviction (LRU by estimated bytes, against a per-feed configured
  budget) only drops the *cache's* reference — a batch that already
  installed the table into its per-batch ``batch_cache`` keeps using it
  safely, so eviction can never invalidate state a worker is mid-probe
  on.

Semantics are therefore unchanged from per-batch rebuild: state is still
stale-within-batch, and it refreshes at exactly the same batch
boundaries.  Only the *cost* of the refresh changes, which is why the
:class:`~repro.hyracks.cost.WorkMeter` grows explicit
``state_cache_hits`` / ``state_cache_reused_records`` counters instead of
silently dropping the build charges.

Concurrency: the elastic worker pool shares one cache per feed (it hangs
off the registry), but workers run on the cooperative discrete-event
scheduler and a computing-job invocation is synchronous within one worker
resume, so ``get``/``put`` never interleave mid-build.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

#: fixed per-entry overhead (key + version key + OrderedDict slot) and the
#: legacy per-record estimate kept for callers that size by row count.
ENTRY_OVERHEAD_BYTES = 512
RECORD_ESTIMATE_BYTES = 256


def estimate_record_bytes(records: int) -> int:
    """Legacy row-count size estimate (``512 + 256·records``).

    Superseded by :func:`estimate_payload_bytes` as the cache's default
    sizer — a record count says nothing about whether the rows are bare
    ints or kilobyte documents — but kept for callers that only know a
    cardinality.
    """
    return ENTRY_OVERHEAD_BYTES + RECORD_ESTIMATE_BYTES * max(0, int(records))


#: CPython-flavoured base costs for the payload-aware sizer: small-object
#: header + typical container slack.  Estimates, not ``sys.getsizeof``
#: truth — the budget is a working-set bound, not an accounting ledger —
#: but they track *relative* entry weight, which is what LRU-by-bytes
#: eviction order actually depends on.
_SCALAR_BYTES = 28
_STR_BASE_BYTES = 49
_BYTES_BASE_BYTES = 33
_SEQ_BASE_BYTES = 56
_SEQ_SLOT_BYTES = 8
_DICT_BASE_BYTES = 64
_DICT_SLOT_BYTES = 24
_OPAQUE_BYTES = 48


def estimate_payload_bytes(value) -> int:
    """Recursive, payload-aware size estimate for a cached value.

    Walks dicts/lists/tuples/sets and sums per-element estimates, so an
    entry holding ten 1 KiB documents weighs ~40× one holding ten small
    ints — unlike :func:`estimate_record_bytes`, which priced both
    identically.  Shared sub-objects are counted at every reference
    (deliberate: eviction should track what the entry *pins*, and a
    conservative overestimate only evicts a little early).
    """
    if value is None or isinstance(value, (bool, int, float)):
        return _SCALAR_BYTES
    if isinstance(value, str):
        return _STR_BASE_BYTES + len(value)
    if isinstance(value, (bytes, bytearray)):
        return _BYTES_BASE_BYTES + len(value)
    if isinstance(value, dict):
        total = _DICT_BASE_BYTES
        for key, item in value.items():
            total += (
                _DICT_SLOT_BYTES
                + estimate_payload_bytes(key)
                + estimate_payload_bytes(item)
            )
        return total
    if isinstance(value, (list, tuple, set, frozenset)):
        total = _SEQ_BASE_BYTES
        for item in value:
            total += _SEQ_SLOT_BYTES + estimate_payload_bytes(item)
        return total
    return _OPAQUE_BYTES  # datetimes, spatial values, other leaf objects


class StateCacheEntry:
    """One cached piece of build-side state."""

    __slots__ = ("key", "version_key", "value", "records", "nbytes")

    def __init__(self, key, version_key, value, records: int, nbytes: int):
        self.key = key
        self.version_key = version_key
        self.value = value
        self.records = records
        self.nbytes = nbytes


class StateCache:
    """LRU-by-bytes cache of version-guarded enrichment state.

    ``budget_bytes`` bounds the estimated resident size; ``put`` evicts
    least-recently-used entries until the new entry fits.  An entry
    larger than the whole budget is not admitted at all (it would only
    evict everything and then thrash).

    The budget is *live-resizable*: :meth:`configure` may be called
    mid-run (the multi-tenant memory governor does, at batch boundaries)
    and a shrink evicts immediately, so the cache never sits over its
    current grant.  :meth:`mark_window`/:attr:`windowed_hit_ratio` give a
    recency-weighted utility signal for that arbitration without
    disturbing the cumulative counters reports diff.
    """

    #: tenant-kind tag for governor/report labeling (subclasses override)
    kind = "state"

    def __init__(self, budget_bytes: int = 0, label: str = ""):
        self.budget_bytes = int(budget_bytes)
        #: owner tag for multi-tenant reporting (e.g. ``"F3.state"``);
        #: empty for the registry-shared singleton
        self.label = label
        self._entries: "OrderedDict[tuple, StateCacheEntry]" = OrderedDict()
        self.current_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0  # full clears (DDL / function replace)
        self.version_mismatches = 0  # stale entries displaced by a rebuild
        # window marks: lookups since the last mark_window() (the memory
        # governor's recency-weighted hit-ratio signal)
        self._window_hits_mark = 0
        self._window_misses_mark = 0

    # ---------------------------------------------------------------- config

    def configure(self, budget_bytes: int) -> None:
        """Set the byte budget (a feed policy attaching to this cache).

        Shrinking the budget evicts immediately so a freshly attached
        feed never observes the cache over its own bound.
        """
        self.budget_bytes = int(budget_bytes)
        self._evict_to(self.budget_bytes)

    # ---------------------------------------------------------------- lookup

    def get(self, key: tuple, version_key) -> Optional[StateCacheEntry]:
        """The entry for ``key`` iff it was built at ``version_key``.

        A present-but-stale entry counts as a miss (and is left in place
        — the subsequent :meth:`put` of the rebuilt state replaces it).
        """
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        if entry.version_key != version_key:
            self.misses += 1
            self.version_mismatches += 1
            return None
        self.hits += 1
        self._entries.move_to_end(key)
        return entry

    def put(
        self, key: tuple, version_key, value, records: int,
        nbytes: Optional[int] = None,
    ) -> None:
        """Install freshly built state under the current version key."""
        if nbytes is None:
            nbytes = ENTRY_OVERHEAD_BYTES + estimate_payload_bytes(value)
        old = self._entries.pop(key, None)
        if old is not None:
            self.current_bytes -= old.nbytes
        if nbytes > self.budget_bytes:
            return  # would thrash the whole cache; skip admission
        self._evict_to(self.budget_bytes - nbytes)
        self._entries[key] = StateCacheEntry(
            key, version_key, value, records, nbytes
        )
        self.current_bytes += nbytes

    def _evict_to(self, target_bytes: int) -> None:
        while self._entries and self.current_bytes > target_bytes:
            _key, entry = self._entries.popitem(last=False)
            self.current_bytes -= entry.nbytes
            self.evictions += 1

    # ------------------------------------------------------------ management

    def clear(self) -> None:
        """Drop everything (DDL change / function replacement)."""
        if self._entries:
            self.invalidations += 1
        self._entries.clear()
        self.current_bytes = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries

    # ----------------------------------------------------------------- stats

    @property
    def hit_ratio(self) -> float:
        """Hits over lookups (0.0 before the first lookup)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def window_counts(self) -> Tuple[int, int]:
        """``(hits, misses)`` since the last :meth:`mark_window`."""
        return (
            self.hits - self._window_hits_mark,
            self.misses - self._window_misses_mark,
        )

    @property
    def windowed_hit_ratio(self) -> float:
        """Hit ratio since the last :meth:`mark_window`.

        Falls back to the cumulative ratio while the current window has
        no lookups, so a governor sampling between batches never reads a
        spurious 0.0 from a momentarily idle tenant.
        """
        hits, misses = self.window_counts()
        lookups = hits + misses
        return hits / lookups if lookups else self.hit_ratio

    def mark_window(self) -> None:
        """Start a fresh observation window (governor rebalance boundary)."""
        self._window_hits_mark = self.hits
        self._window_misses_mark = self.misses

    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self._entries),
            "bytes": self.current_bytes,
            "budget_bytes": self.budget_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "hit_ratio": self.hit_ratio,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "version_mismatches": self.version_mismatches,
        }


def dataset_version_key(catalog: Dict[str, object], names) -> Tuple:
    """The version key for state derived from several datasets.

    Sorted ``(name, version)`` pairs: equal iff every referenced dataset
    is at the same committed version as when the state was built.
    """
    return tuple(
        (name, catalog[name].version) for name in sorted(names)
        if name in catalog
    )
