"""Semantic analysis: free variables, dataset references, statefulness.

The paper's key distinction (Section 4.3) is *stateless* vs *stateful*
UDFs: a stateful UDF accesses data beyond its input record (reference
datasets or node-local resource files) and therefore builds intermediate
state whose freshness the ingestion framework must manage.
"""

from __future__ import annotations

from typing import List, Optional, Set

from .ast import (
    ArrayConstructor,
    BinaryOp,
    Call,
    CaseExpr,
    Exists,
    Expr,
    FieldAccess,
    FunctionDefinition,
    IndexAccess,
    Literal,
    MissingLiteral,
    ObjectConstructor,
    SelectBlock,
    Star,
    Subquery,
    UnaryOp,
    VarRef,
)
from .functions import AGGREGATE_NAMES, BUILTINS


def free_vars(expr: Optional[Expr], bound: Optional[Set[str]] = None) -> Set[str]:
    """Variables referenced by ``expr`` that are not bound inside it."""
    if expr is None:
        return set()
    bound = bound or set()
    out: Set[str] = set()
    _free_vars(expr, frozenset(bound), out)
    return out


def _free_vars(expr, bound: frozenset, out: Set[str]) -> None:
    if expr is None:
        return
    if isinstance(expr, VarRef):
        if expr.name not in bound and expr.name != "*":
            out.add(expr.name)
    elif isinstance(expr, FieldAccess):
        _free_vars(expr.base, bound, out)
    elif isinstance(expr, IndexAccess):
        _free_vars(expr.base, bound, out)
        _free_vars(expr.index, bound, out)
    elif isinstance(expr, Call):
        for arg in expr.args:
            _free_vars(arg, bound, out)
    elif isinstance(expr, Star):
        _free_vars(expr.base, bound, out)
    elif isinstance(expr, UnaryOp):
        _free_vars(expr.operand, bound, out)
    elif isinstance(expr, BinaryOp):
        _free_vars(expr.left, bound, out)
        _free_vars(expr.right, bound, out)
    elif isinstance(expr, Exists):
        _free_vars(expr.subquery, bound, out)
    elif isinstance(expr, CaseExpr):
        _free_vars(expr.operand, bound, out)
        for cond, value in expr.whens:
            _free_vars(cond, bound, out)
            _free_vars(value, bound, out)
        _free_vars(expr.default, bound, out)
    elif isinstance(expr, ObjectConstructor):
        for _name, value in expr.fields:
            _free_vars(value, bound, out)
    elif isinstance(expr, ArrayConstructor):
        for item in expr.items:
            _free_vars(item, bound, out)
    elif isinstance(expr, Subquery):
        _free_vars(expr.select, bound, out)
    elif isinstance(expr, SelectBlock):
        inner = set(bound)
        for let in expr.lets:
            _free_vars(let.expr, frozenset(inner), out)
            inner.add(let.var)
        for term in expr.from_terms:
            _free_vars(term.source, frozenset(inner), out)
            inner.add(term.var)
        for let in expr.post_lets:
            _free_vars(let.expr, frozenset(inner), out)
            inner.add(let.var)
        frozen = frozenset(inner)
        _free_vars(expr.where, frozen, out)
        for key in expr.group_keys:
            _free_vars(key.expr, frozen, out)
            if key.alias:
                inner.add(key.alias)
        frozen = frozenset(inner)
        for item in expr.order_items:
            _free_vars(item.expr, frozen, out)
        for proj in expr.projections:
            _free_vars(proj.expr, frozen, out)
        _free_vars(expr.select_value, frozen, out)
        _free_vars(expr.limit, frozen, out)
    elif isinstance(expr, (Literal, MissingLiteral)):
        pass


def dataset_references(expr: Optional[Expr], catalog_names: Set[str]) -> Set[str]:
    """Names of catalog datasets the expression reads from.

    A dataset reference is a free variable that resolves to a dataset name
    — exactly how SQL++ resolves an unbound FROM identifier.
    """
    return {name for name in free_vars(expr) if name in catalog_names}


def is_stateful(
    definition: FunctionDefinition, catalog_names: Set[str]
) -> bool:
    """Stateful = the body reads anything beyond its parameters (§4.3.1)."""
    outside = free_vars(definition.body, set(definition.params))
    return bool(outside & catalog_names)


def split_conjuncts(expr: Optional[Expr]) -> List[Expr]:
    """Flatten a WHERE clause into its top-level AND conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, BinaryOp) and expr.op == "and":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def references_only(expr: Expr, allowed: Set[str]) -> bool:
    """True if every free variable of ``expr`` is in ``allowed``."""
    return free_vars(expr) <= allowed


def field_path_of(expr: Expr, var: str) -> Optional[str]:
    """If ``expr`` is a pure field path rooted at ``var``, return the path.

    ``m.monument_location`` rooted at ``m`` -> ``"monument_location"``;
    nested paths join with dots.  Returns None otherwise.
    """
    parts: List[str] = []
    node = expr
    while isinstance(node, FieldAccess):
        parts.append(node.field)
        node = node.base
    if isinstance(node, VarRef) and node.name == var and parts:
        return ".".join(reversed(parts))
    return None


def contains_aggregate(expr: Optional[Expr]) -> bool:
    """True if ``expr`` has an aggregate call not nested in a subquery."""
    if expr is None:
        return False
    if isinstance(expr, Call):
        if expr.library is None and expr.name.lower() in AGGREGATE_NAMES:
            return True
        return any(contains_aggregate(a) for a in expr.args)
    if isinstance(expr, FieldAccess):
        return contains_aggregate(expr.base)
    if isinstance(expr, IndexAccess):
        return contains_aggregate(expr.base) or contains_aggregate(expr.index)
    if isinstance(expr, UnaryOp):
        return contains_aggregate(expr.operand)
    if isinstance(expr, BinaryOp):
        return contains_aggregate(expr.left) or contains_aggregate(expr.right)
    if isinstance(expr, CaseExpr):
        if contains_aggregate(expr.operand) or contains_aggregate(expr.default):
            return True
        return any(
            contains_aggregate(c) or contains_aggregate(v) for c, v in expr.whens
        )
    if isinstance(expr, ObjectConstructor):
        return any(contains_aggregate(v) for _n, v in expr.fields)
    if isinstance(expr, ArrayConstructor):
        return any(contains_aggregate(i) for i in expr.items)
    # Subquery / SelectBlock / Exists: aggregates inside belong to the
    # nested scope, not this one.
    return False


def uses_unsupported_builtin(definition: FunctionDefinition) -> List[str]:
    """Names called that are neither builtins nor aggregate functions.

    Used at registration time to surface typos early; calls to other
    registered UDFs are filtered out by the caller.
    """
    from .ast import walk

    unknown = []
    for node in walk(definition.body):
        if isinstance(node, Call) and node.library is None:
            name = node.name.lower()
            if name not in BUILTINS and name not in AGGREGATE_NAMES:
                unknown.append(node.name)
    return unknown
