"""Key-level enrichment memoization: an L1/L2 probe-key result memo.

The :class:`~repro.sqlpp.state_cache.StateCache` (PR 5) reuses *build-side*
state across batches — the hash table behind a probe, a materialised scan —
but every record still pays the probe and its per-match shaping, and every
external probe key is re-sent to the remote once per batch even when the
identical key was enriched moments ago.  Production traces show exactly
this redundancy: cowrieprocessor's ADR-007 measured 5–6× repeated
enrichment calls for the same keys at 1.68M sessions.  This module
memoizes the *result* of enriching one key, across batches:

* **L1** is per-batch and free: within one batch the columnar probe
  kernel resolves duplicate keys from a plain dict, and the external
  coordinator's PR-8 key dedup already guarantees one remote hit per
  distinct key per batch.
* **L2** is the :class:`EnrichmentMemo` below — a cross-batch
  LRU-by-bytes inventory (it reuses the StateCache machinery: same
  ``get``/``put``/``configure``/``clear`` contract, same payload-aware
  sizer) keyed on the **canonical probe key** and guarded by the same
  ``dataset_version_key`` proofs as the StateCache, so a hit is a proof
  the recomputation would return an identical value.  It is attached to a
  run only when ``FeedPolicy.enrichment_memo_bytes > 0`` (default 0 =
  off, keeping every committed benchmark table byte-identical).

Invalidation mirrors the StateCache exactly: any committed write bumps
the source dataset's ``version`` and makes entries guarded by it
unreachable; DDL / ``replace_sqlpp`` / ``load_dataset`` / dead-letter
replay clear the memo wholesale through the owning
:class:`~repro.udf.registry.FunctionRegistry`.  External-enrichment
entries carry the constant :data:`EXTERNAL_VERSION_KEY` guard (a remote's
answer is not derived from any local dataset) and only ``"ok"`` outcomes
are ever memoized — PENDING/timeout/error outcomes must stay re-probable
so ``backfill_pending`` semantics survive.

Reuse is charged honestly through the priced ``memo_hits`` /
``memo_reused_records`` :class:`~repro.hyracks.cost.WorkMeter` counters
(local paths) and shows up as genuinely skipped remote calls (external
path: an L2 hit consumes no lane time, no rate-limit token, and no
breaker budget).
"""

from __future__ import annotations

from .state_cache import StateCache

#: version guard for externally-enriched entries: the remote's answer is
#: not derived from any catalog dataset, so the guard never goes stale —
#: only registry-level clears (DDL / function replace) drop the entries.
EXTERNAL_VERSION_KEY = ("external",)

_OBJ_TAG = "\x00obj"
_ARR_TAG = "\x00arr"
_OPAQUE_TAG = "\x00opaque"


def canonical_probe_key(value):
    """A hashable canonical form of one probe-key value.

    Scalars pass through unchanged (so ``1``, ``1.0``, and ``True``
    collapse exactly as dict-key equality already collapses them in a
    hash-probe table); arrays and objects become tagged tuples with
    object fields sorted by field name, so two ADM values that compare
    equal canonicalize identically regardless of construction order.
    The tags are namespaced with a NUL prefix no real string key starts
    with, so a list value can never collide with a string key.

    This is the one shared normalization used by the enrichment memo,
    the :class:`~repro.ingestion.external.EnrichmentCoordinator`'s
    per-batch key dedup, and the keyless-record replay-dedup fallback.
    """
    if value is None or isinstance(value, (str, int, float, bool, bytes)):
        return value
    if isinstance(value, dict):
        return (
            _OBJ_TAG,
            tuple(
                (str(name), canonical_probe_key(item))
                for name, item in sorted(
                    value.items(), key=lambda pair: str(pair[0])
                )
            ),
        )
    if isinstance(value, (list, tuple)):
        return (_ARR_TAG, tuple(canonical_probe_key(item) for item in value))
    try:
        hash(value)
    except TypeError:
        return (_OPAQUE_TAG, repr(value))
    return value


class EnrichmentMemo(StateCache):
    """The cross-batch (L2) per-key enrichment memo.

    Identical mechanics to the StateCache — LRU by payload-estimated
    bytes, version-key-guarded lookups, wholesale ``clear`` on DDL — but
    its entries are per-key *results* (one correlated-subquery answer,
    one shaped probe-kernel row, one external enrichment value), not
    build-side tables.  Subclassing keeps the two caches behaviourally
    interchangeable while letting reports tell their counters apart —
    including under the multi-tenant memory governor, which resizes both
    kinds through the shared ``configure``/``mark_window`` surface.
    """

    __slots__ = ()

    kind = "memo"
