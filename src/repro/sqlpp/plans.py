"""Compile-once query plans for SQL++ SELECT blocks (the §5.2 analog).

The paper's parameterized predeployed jobs compile a computing job once
and re-invoke it per batch with only the parameters changing.  This module
is the expression-level counterpart: all *structural* analysis of a
``SelectBlock`` — conjunct splitting, free-variable classification, greedy
join ordering, access-path selection — plus compilation of every scalar
expression into a direct-call closure happens exactly once per (block,
visible-names) pair and is cached for the lifetime of the function
definition.  The per-record inner loop then runs closures instead of
walking the AST through ``Evaluator._DISPATCH``.

What is deliberately *not* decided at plan time:

* which physical index serves an access path — ``Dataset.index_on`` is
  consulted per batch-cache miss, so dropping/creating an index flips the
  chosen path without any plan invalidation;
* per-batch visibility — the plan calls back into the evaluator's
  ``_scan_dataset`` / ``_hash_probe`` / ``_btree_probe`` / ``_rtree_probe``
  primitives, so the generation rules (hash builds stale-within-batch,
  index probes live) and every ``WorkMeter`` charge are byte-identical to
  interpreted evaluation.

Closures are duck-typed ``fn(evaluator, env) -> value``; this module never
imports the evaluator (the evaluator imports *us*), which keeps the layer
acyclic.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from ..adm.values import MISSING
from ..errors import SqlppAnalysisError, SqlppEvaluationError
from .analysis import (
    contains_aggregate,
    field_path_of,
    free_vars,
    references_only,
    split_conjuncts,
)
from .ast import (
    ArrayConstructor,
    BinaryOp,
    Call,
    CaseExpr,
    Exists,
    Expr,
    FieldAccess,
    FromTerm,
    IndexAccess,
    Literal,
    MissingLiteral,
    ObjectConstructor,
    SelectBlock,
    Star,
    Subquery,
    UnaryOp,
    VarRef,
)
from .functions import AGGREGATE_NAMES, BUILTINS

#: the "name is unbound" marker shared with ``Env`` (class attr ``_SENTINEL``)
SENTINEL = object()


class DatasetRef:
    """Wrapper marking a variable that resolved to a stored dataset."""

    __slots__ = ("dataset",)

    def __init__(self, dataset):
        self.dataset = dataset


# ------------------------------------------------------------ shared helpers


def aggregate_values(name: str, values):
    """Fold a cleaned value list with the named SQL++ aggregate."""
    if name == "count":
        return len(values)
    if name == "array_agg":
        return list(values)
    if not values:
        return None
    if name == "sum":
        return sum(values)
    if name == "avg":
        return sum(values) / len(values)
    if name == "min":
        return min(values)
    if name == "max":
        return max(values)
    raise SqlppEvaluationError(f"unknown aggregate {name!r}")


def truthy(value) -> bool:
    """SQL++ WHERE semantics: NULL/MISSING are not true."""
    if value is MISSING or value is None:
        return False
    return bool(value)


def add_values(left, right):
    from ..adm.values import DateTime, Duration

    if isinstance(left, DateTime) and isinstance(right, Duration):
        return left.add(right)
    if isinstance(left, Duration) and isinstance(right, DateTime):
        return right.add(left)
    if isinstance(left, str) or isinstance(right, str):
        if isinstance(left, str) and isinstance(right, str):
            return left + right
        raise SqlppEvaluationError("cannot add string and non-string")
    return left + right


def subtract_values(left, right):
    from ..adm.values import DateTime, Duration

    if isinstance(left, DateTime) and isinstance(right, Duration):
        return left.add(Duration(-right.months, -right.millis))
    return left - right


def membership(op: str, left, right):
    if right is MISSING or left is MISSING:
        return MISSING
    if right is None:
        return None
    if not isinstance(right, list):
        raise SqlppEvaluationError("IN requires an array on the right side")
    result = left in right
    return result if op == "in" else not result


def apply_binary(op: str, left, right):
    """Non-short-circuit binary operator semantics on evaluated operands."""
    if op in ("in", "not_in"):
        return membership(op, left, right)
    if left is MISSING or right is MISSING:
        return MISSING
    if left is None or right is None:
        return None
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    try:
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        if op == "+":
            return add_values(left, right)
        if op == "-":
            return subtract_values(left, right)
        if op == "*":
            return left * right
        if op == "/":
            return left / right
        if op == "%":
            return left % right
    except TypeError as exc:
        raise SqlppEvaluationError(
            f"operator {op!r} cannot combine "
            f"{type(left).__name__} and {type(right).__name__}"
        ) from exc
    raise SqlppEvaluationError(f"unknown operator {op!r}")


def default_alias(expr: Expr, fallback: Optional[str]) -> Optional[str]:
    if isinstance(expr, FieldAccess):
        return expr.field
    if isinstance(expr, VarRef):
        return expr.name
    if isinstance(expr, Call):
        return expr.name
    return fallback


def has_top_level_aggregate(block: SelectBlock) -> bool:
    if block.select_value is not None and contains_aggregate(block.select_value):
        return True
    return any(contains_aggregate(p.expr) for p in block.projections)


# ------------------------------------- access-path pattern matchers (§4.3.4)


def match_equality(conjunct: Expr, var: str, allowed: Set[str]):
    """Match ``var.path = <expr free of var>`` (either side)."""
    if not (isinstance(conjunct, BinaryOp) and conjunct.op == "="):
        return None
    outer_allowed = allowed - {var}
    for term_side, other_side in (
        (conjunct.left, conjunct.right),
        (conjunct.right, conjunct.left),
    ):
        path = field_path_of(term_side, var)
        if path is not None and references_only(other_side, outer_allowed):
            return (path, other_side)
    return None


def match_spatial(conjunct: Expr, var: str, allowed: Set[str]):
    """Match spatial_intersect patterns usable with an R-tree on ``var``.

    Handled shapes (x = any expression not referencing ``var``):
      spatial_intersect(var.f, X)                -> probe with X
      spatial_intersect(X, var.f)                -> probe with X
      spatial_intersect(X, create_circle(var.f, R)) -> probe with circle(X', R)
        (point-in-circle around var.f  ==  var.f within R of the point)
    Returns (field, probe_expr) where probe_expr evaluates to the query
    region, or None.
    """
    if not (
        isinstance(conjunct, Call)
        and conjunct.library is None
        and conjunct.name.lower() == "spatial_intersect"
        and len(conjunct.args) == 2
    ):
        return None
    outer_allowed = allowed - {var}
    a, b = conjunct.args
    for term_side, other_side in ((a, b), (b, a)):
        path = field_path_of(term_side, var)
        if path is not None and references_only(other_side, outer_allowed):
            return (path, other_side)
        # create_circle(var.f, R) vs outer point/expr
        if (
            isinstance(term_side, Call)
            and term_side.library is None
            and term_side.name.lower() == "create_circle"
            and len(term_side.args) == 2
        ):
            center, radius = term_side.args
            path = field_path_of(center, var)
            if (
                path is not None
                and references_only(radius, outer_allowed)
                and references_only(other_side, outer_allowed)
            ):
                probe = Call("create_circle", (other_side_center(other_side), radius))
                return (path, probe)
    return None


def other_side_center(expr: Expr) -> Expr:
    """The probe center for the circle-flip rewrite.

    If the outer side is ``create_point(x, y)`` we can use it directly;
    any other expression is used as-is (it must evaluate to a point).
    """
    return expr


def find_access_path(
    term: FromTerm,
    conjuncts: List[Expr],
    bound: Set[str],
    catalog_names: FrozenSet[str],
):
    """Return ("equality"|"spatial", field, probe_expr) or None."""
    if not isinstance(term.source, VarRef):
        return None
    if term.source.name not in catalog_names:
        return None
    var = term.var
    allowed = set(bound) | catalog_names
    for conjunct in conjuncts:
        path = match_equality(conjunct, var, allowed)
        if path is not None:
            return ("equality",) + path
        path = match_spatial(conjunct, var, allowed)
        if path is not None:
            return ("spatial",) + path
    return None


def order_terms(
    terms: List[FromTerm],
    conjuncts: List[Expr],
    outer_bound: Set[str],
    catalog_names: FrozenSet[str],
) -> List[FromTerm]:
    """Greedy join-order: pick next the term with a usable access path."""
    remaining = list(terms)
    ordered: List[FromTerm] = []
    bound = set(outer_bound)
    while remaining:
        chosen = None
        for term in remaining:
            if find_access_path(term, conjuncts, bound, catalog_names) is not None:
                chosen = term
                break
        if chosen is None:
            chosen = remaining[0]
        ordered.append(chosen)
        remaining.remove(chosen)
        bound.add(chosen.var)
    return ordered


# -------------------------------------------------------- expression closures


def compile_expr(expr: Expr) -> Callable:
    """Compile ``expr`` to a closure ``fn(evaluator, env) -> value``.

    Each closure mirrors the corresponding ``Evaluator._eval_*`` method
    exactly (including error messages and GROUP BY key shadowing); the
    structural decisions — which node kind, which operator, which argument
    sub-closures — are made here, once, instead of per record.
    """
    builder = _COMPILERS.get(type(expr))
    if builder is None:
        raise SqlppEvaluationError(f"cannot compile node {type(expr).__name__}")
    return builder(expr)


def _compile_literal(expr: Literal) -> Callable:
    value = expr.value
    return lambda ev, env: value


def _compile_missing(expr: MissingLiteral) -> Callable:
    return lambda ev, env: MISSING


def _compile_varref(expr: VarRef) -> Callable:
    name = expr.name

    def run(ev, env):
        # group-key expression lookup first (GROUP BY aliases shadow);
        # ``_group_env`` is the O(1) cached ``find_group()`` pointer
        genv = env._group_env
        if genv is not None and genv.group_key_values:
            if expr in genv.group_key_values:
                return genv.group_key_values[expr]
        value = env.lookup(name)
        if value is not SENTINEL:
            return value
        dataset = ev.ctx.dataset(name)
        if dataset is not None:
            return DatasetRef(dataset)
        raise SqlppAnalysisError(f"unresolved variable: {name}")

    return run


def _compile_field(expr: FieldAccess) -> Callable:
    base_fn = compile_expr(expr.base)
    field = expr.field

    def run(ev, env):
        genv = env._group_env
        if genv is not None and genv.group_key_values:
            if expr in genv.group_key_values:
                return genv.group_key_values[expr]
        base = base_fn(ev, env)
        if base is MISSING or base is None:
            return MISSING
        if isinstance(base, dict):
            return base.get(field, MISSING)
        return MISSING

    return run


def _compile_index(expr: IndexAccess) -> Callable:
    base_fn = compile_expr(expr.base)
    index_fn = compile_expr(expr.index)

    def run(ev, env):
        base = base_fn(ev, env)
        index = index_fn(ev, env)
        if base is MISSING or index is MISSING:
            return MISSING
        if base is None or index is None:
            return None
        if not isinstance(base, list) or not isinstance(index, int):
            return MISSING
        if -len(base) <= index < len(base):
            return base[index]
        return MISSING

    return run


def _compile_unary(expr: UnaryOp) -> Callable:
    operand_fn = compile_expr(expr.operand)
    if expr.op == "not":

        def run(ev, env):
            value = operand_fn(ev, env)
            if value is MISSING or value is None:
                return value
            return not bool(value)

        return run
    if expr.op == "-":

        def run(ev, env):
            value = operand_fn(ev, env)
            if value is MISSING or value is None:
                return value
            return -value

        return run
    raise SqlppEvaluationError(f"unknown unary operator {expr.op!r}")


def _compile_binary(expr: BinaryOp) -> Callable:
    op = expr.op
    left_fn = compile_expr(expr.left)
    right_fn = compile_expr(expr.right)
    if op == "and":

        def run(ev, env):
            if not truthy(left_fn(ev, env)):
                return False
            return truthy(right_fn(ev, env))

        return run
    if op == "or":

        def run(ev, env):
            if truthy(left_fn(ev, env)):
                return True
            return truthy(right_fn(ev, env))

        return run

    if op == "=" or op == "!=":
        # the hottest comparisons (probe/WHERE predicates): inline the
        # MISSING/NULL propagation instead of re-dispatching on op
        equals = op == "="

        def run(ev, env):
            left = left_fn(ev, env)
            right = right_fn(ev, env)
            if left is MISSING or right is MISSING:
                return MISSING
            if left is None or right is None:
                return None
            return (left == right) if equals else (left != right)

        return run

    def run(ev, env):
        return apply_binary(op, left_fn(ev, env), right_fn(ev, env))

    return run


def _compile_aggregate(expr: Call, lowered: str) -> Callable:
    """Aggregate call: iterate the group with a *compiled* argument closure.

    Mirrors ``Evaluator._eval_aggregate`` exactly — grouped form folds the
    argument over the member envs, ungrouped form is the SQL++ array form.
    Malformed corner cases (no argument, ``*`` outside a group) delegate to
    the interpreted method so error messages stay identical.
    """
    count_star = bool(expr.args) and isinstance(expr.args[0], Star)
    arg_fn = None
    if expr.args and not count_star:
        arg_fn = compile_expr(expr.args[0])

    def run(ev, env):
        genv = env._group_env
        if genv is not None:
            if count_star:
                return aggregate_values(lowered, [1] * len(genv.group))
            if arg_fn is None:
                return ev._eval_aggregate(expr, env)
            values = []
            for tuple_env in genv.group:
                value = arg_fn(ev, tuple_env)
                if value is not MISSING and value is not None:
                    values.append(value)
            return aggregate_values(lowered, values)
        # No group: SQL++ array form — the argument must be a collection.
        if not expr.args or count_star:
            return ev._eval_aggregate(expr, env)
        value = arg_fn(ev, env)
        if value is MISSING:
            return MISSING
        if value is None:
            return None
        if not isinstance(value, list):
            raise SqlppEvaluationError(
                f"{lowered}() outside GROUP BY requires an array argument"
            )
        cleaned = [v for v in value if v is not None and v is not MISSING]
        return aggregate_values(lowered, cleaned)

    return run


def _compile_call(expr: Call) -> Callable:
    name = expr.name
    lowered = name.lower()
    library = expr.library
    if library is None and lowered in AGGREGATE_NAMES:
        return _compile_aggregate(expr, lowered)
    arg_fns = tuple(compile_expr(arg) for arg in expr.args)
    if library is not None:
        qualified = expr.qualified_name

        def run(ev, env):
            args = [fn(ev, env) for fn in arg_fns]
            functions = ev.ctx.functions
            if functions is None:
                raise SqlppAnalysisError(f"no function registry for {qualified}")
            return functions.invoke_java(library, name, args, ev.ctx)

        return run

    def run(ev, env):
        args = [fn(ev, env) for fn in arg_fns]
        functions = ev.ctx.functions
        if functions is not None and functions.has(name):
            return functions.invoke(name, args, ev.ctx)
        builtin = BUILTINS.lookup(lowered)
        if builtin is None:
            raise SqlppAnalysisError(f"unknown function: {name}")
        try:
            return builtin(ev.ctx, *args)
        except (TypeError, ValueError, AttributeError) as exc:
            raise SqlppEvaluationError(f"{name}: {exc}") from exc

    return run


def _compile_case(expr: CaseExpr) -> Callable:
    operand_fn = compile_expr(expr.operand) if expr.operand is not None else None
    when_fns = tuple(
        (compile_expr(cond), compile_expr(value)) for cond, value in expr.whens
    )
    default_fn = compile_expr(expr.default) if expr.default is not None else None
    if operand_fn is not None:

        def run(ev, env):
            operand = operand_fn(ev, env)
            for cond_fn, value_fn in when_fns:
                if cond_fn(ev, env) == operand:
                    return value_fn(ev, env)
            if default_fn is not None:
                return default_fn(ev, env)
            return None

        return run

    def run(ev, env):
        for cond_fn, value_fn in when_fns:
            if truthy(cond_fn(ev, env)):
                return value_fn(ev, env)
        if default_fn is not None:
            return default_fn(ev, env)
        return None

    return run


def _compile_object(expr: ObjectConstructor) -> Callable:
    field_fns = tuple((name, compile_expr(value)) for name, value in expr.fields)

    def run(ev, env):
        out = {}
        for name, fn in field_fns:
            value = fn(ev, env)
            if value is not MISSING:
                out[name] = value
        return out

    return run


def _compile_array(expr: ArrayConstructor) -> Callable:
    item_fns = tuple(compile_expr(item) for item in expr.items)

    def run(ev, env):
        return [fn(ev, env) for fn in item_fns]

    return run


def _compile_exists(expr: Exists) -> Callable:
    sub_fn = compile_expr(expr.subquery)

    def run(ev, env):
        value = sub_fn(ev, env)
        if isinstance(value, list):
            return len(value) > 0
        return value is not MISSING and value is not None

    return run


def _compile_subquery(expr: Subquery) -> Callable:
    select = expr.select
    # Child plans resolve through _cached_select at runtime: the child's
    # plan key depends on the *runtime* visible names (group aliases,
    # ORDER BY row envs), which static simulation cannot reproduce.
    return lambda ev, env: ev._cached_select(select, env)


def _compile_select(expr: SelectBlock) -> Callable:
    return lambda ev, env: ev._cached_select(expr, env)


def _compile_star(expr: Star) -> Callable:
    def run(ev, env):
        raise SqlppEvaluationError("'.*' is only valid in a SELECT clause")

    return run


_COMPILERS = {
    Literal: _compile_literal,
    MissingLiteral: _compile_missing,
    VarRef: _compile_varref,
    FieldAccess: _compile_field,
    IndexAccess: _compile_index,
    UnaryOp: _compile_unary,
    BinaryOp: _compile_binary,
    Call: _compile_call,
    CaseExpr: _compile_case,
    ObjectConstructor: _compile_object,
    ArrayConstructor: _compile_array,
    Exists: _compile_exists,
    Subquery: _compile_subquery,
    SelectBlock: _compile_select,
    Star: _compile_star,
}


# -------------------------------------------------------------- select plans


class TermPlan:
    """The precomputed access decision for one (ordered) FROM term."""

    __slots__ = (
        "term",
        "var",
        "is_dataset",
        "dataset_name",
        "no_index",
        "access_kind",  # "equality" | "spatial" | None
        "access_field",
        "probe_fn",
        "source_fn",  # compiled source for non-dataset terms
    )

    def __init__(self):
        self.term = None
        self.var = None
        self.is_dataset = False
        self.dataset_name = None
        self.no_index = False
        self.access_kind = None
        self.access_field = None
        self.probe_fn = None
        self.source_fn = None


class SelectPlan:
    """Everything per-record evaluation needs, analyzed exactly once."""

    __slots__ = (
        "block",
        "token",
        "cacheable",
        "dataset_deps",  # frozenset of referenced datasets when cacheable
        "correlated_vars",  # sorted tuple of free non-catalog (outer) vars
        "correlated_deps",  # frozenset of free catalog datasets
        "catalog_names",
        "let_fns",
        "post_let_fns",
        "where_fn",
        "terms",  # tuple of TermPlan in join order, or None (no FROM)
        "has_group",
        "implicit_group",
        "group_keys",  # tuple of (expr, alias, default_name, fn)
        "select_value_fn",
        "projections",  # tuple of (name, fn); name None = ``v.*`` expansion
        "order_items",  # tuple of (fn, descending)
        "limit_fn",
        "distinct",
        "batch_kernel",  # (registry_version, BlockKernel|UNSUPPORTED) or None
    )


def build_select_plan(
    block: SelectBlock,
    bound_names: FrozenSet[str],
    catalog_names: FrozenSet[str],
    token: int,
) -> SelectPlan:
    """Analyze ``block`` once for the given visible names and catalog."""
    plan = SelectPlan()
    plan.block = block
    plan.token = token
    plan.catalog_names = catalog_names
    fv = free_vars(block)
    # Cacheable = uncorrelated: every free variable is a catalog dataset
    # (the stale-until-next-batch top-10 list of Figure 18).
    plan.cacheable = bool(fv) and fv <= catalog_names
    # The datasets the cached result is derived from: the guard set for
    # the cross-batch StateCache's version key (None when not cacheable).
    plan.dataset_deps = frozenset(fv) if plan.cacheable else None
    # Correlated split (the key-level enrichment memo's guard material):
    # the outer variables whose bindings parameterize the block's result,
    # and the catalog datasets the result is derived from.
    plan.correlated_vars = tuple(sorted(fv - catalog_names))
    plan.correlated_deps = frozenset(fv & catalog_names)
    plan.let_fns = tuple((let.var, compile_expr(let.expr)) for let in block.lets)
    plan.post_let_fns = tuple(
        (let.var, compile_expr(let.expr)) for let in block.post_lets
    )
    plan.where_fn = compile_expr(block.where) if block.where is not None else None
    plan.terms = (
        _plan_from_terms(block, bound_names, catalog_names)
        if block.from_terms
        else None
    )
    implicit = (
        not block.group_keys
        and bool(block.from_terms)
        and has_top_level_aggregate(block)
    )
    plan.implicit_group = implicit
    plan.has_group = bool(block.group_keys) or implicit
    plan.group_keys = tuple(
        (
            key.expr,
            key.alias,
            default_alias(key.expr, fallback=None),
            compile_expr(key.expr),
        )
        for key in block.group_keys
    )
    plan.select_value_fn = (
        compile_expr(block.select_value) if block.select_value is not None else None
    )
    projections = []
    for position, proj in enumerate(block.projections, start=1):
        if isinstance(proj.expr, Star):
            projections.append((None, compile_expr(proj.expr.base)))
        else:
            name = proj.alias or default_alias(proj.expr, fallback=f"${position}")
            projections.append((name, compile_expr(proj.expr)))
    plan.projections = tuple(projections)
    plan.order_items = tuple(
        (compile_expr(item.expr), item.descending) for item in block.order_items
    )
    plan.limit_fn = compile_expr(block.limit) if block.limit is not None else None
    plan.distinct = block.distinct
    plan.batch_kernel = None  # lazily compiled by columnar.kernel_for
    return plan


def _plan_from_terms(
    block: SelectBlock,
    bound_names: FrozenSet[str],
    catalog_names: FrozenSet[str],
) -> Tuple[TermPlan, ...]:
    """Join-order the FROM terms and fix each term's access decision.

    Mirrors ``Evaluator._generate_tuples``: the greedy ordering and the
    access-path match depend only on the AST, the names visible outside
    the block, and the catalog's dataset names — all fixed per plan.
    """
    conjuncts = split_conjuncts(block.where)
    scope_names = set(bound_names)
    for let in block.lets:
        scope_names.add(let.var)
    outer_bound = scope_names - catalog_names
    order = order_terms(block.from_terms, conjuncts, outer_bound, catalog_names)
    plans: List[TermPlan] = []
    bound = set(outer_bound)
    visible = set(scope_names)
    for term in order:
        tp = TermPlan()
        tp.term = term
        tp.var = term.var
        source = term.source
        tp.is_dataset = (
            isinstance(source, VarRef)
            and source.name in catalog_names
            and source.name not in visible
        )
        if tp.is_dataset:
            tp.dataset_name = source.name
            tp.no_index = "no-index" in term.hints or "no-index" in block.hints
            path = find_access_path(term, conjuncts, bound, catalog_names)
            if path is not None:
                tp.access_kind, tp.access_field, probe = path
                tp.probe_fn = compile_expr(probe)
        else:
            tp.source_fn = compile_expr(source)
        plans.append(tp)
        bound.add(term.var)
        visible.add(term.var)
    return tuple(plans)


# ---------------------------------------------------------------- plan cache


class PlanCache:
    """Compiled plans keyed by stable AST identity.

    Raw ``id()`` keys are unsafe on their own — a GC'd AST node's id can be
    recycled by a later allocation (e.g. a re-registered function body).
    The cache therefore pins every keyed block with a strong reference, so
    an id stays unique for as long as it is used as a key, and hands out
    monotonically increasing *tokens* for batch-cache keys.  Tokens are
    never reused, even across :meth:`invalidate`, so a stale
    ``("uncorrelated", token)`` batch-cache entry can never be served to a
    different block.
    """

    def __init__(self):
        self._plans: Dict[tuple, SelectPlan] = {}
        self._blocks: Dict[int, SelectBlock] = {}  # strong refs pin ids
        self._tokens: Dict[int, int] = {}
        self._next_token = 0
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        # Columnar-execution observability (cumulative, like hits/misses):
        # batches/records that ran through a batch kernel, and scalar
        # fallbacks (one per fallen-back column per batch, plus one per
        # whole-frame fallback).
        self.vectorized_batches = 0
        self.vectorized_records = 0
        self.scalar_fallbacks = 0

    def token_for(self, block: SelectBlock) -> int:
        """A stable, never-reused identity token for ``block``."""
        token = self._tokens.get(id(block))
        if token is None:
            self._blocks[id(block)] = block
            self._next_token += 1
            token = self._next_token
            self._tokens[id(block)] = token
        return token

    def plan_for(
        self, block: SelectBlock, bound_names: Set[str], catalog: Dict[str, object]
    ) -> SelectPlan:
        """The compiled plan for ``block`` with the given visible names.

        Revalidated against the catalog's dataset names on every lookup, so
        CREATE/DROP DATASET transparently re-plans; index changes need no
        re-plan at all (``index_on`` is consulted at runtime).
        """
        key = (id(block), frozenset(bound_names))
        plan = self._plans.get(key)
        if plan is not None and catalog.keys() == plan.catalog_names:
            self.hits += 1
            return plan
        self.misses += 1
        plan = build_select_plan(
            block,
            frozenset(bound_names),
            frozenset(catalog),
            self.token_for(block),
        )
        self._plans[key] = plan
        return plan

    def invalidate(self) -> None:
        """Drop every plan (function UPSERT / DDL change).

        ``_next_token`` is deliberately NOT reset: batch caches may still
        hold ``("uncorrelated", token)`` entries from the dropped plans
        within the current generation, and a recycled token would let a
        new block read another block's cached rows.
        """
        if self._plans or self._tokens:
            self.invalidations += 1
        self._plans.clear()
        self._blocks.clear()
        self._tokens.clear()

    def stats(self) -> Dict[str, int]:
        return {
            "plans": len(self._plans),
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "vectorized_batches": self.vectorized_batches,
            "vectorized_records": self.vectorized_records,
            "scalar_fallbacks": self.scalar_fallbacks,
        }

    def __len__(self) -> int:
        return len(self._plans)
